//! Engine-side observability: per-band metric handles, trace events, and
//! the rolling beyond-accuracy windows, attached to a [`ServingEngine`]
//! after construction.
//!
//! Attachment is optional and one-shot (`OnceLock`): an un-attached
//! engine pays one atomic load per request and nothing else, which is
//! what keeps the pre-existing serve/query benches (and their CI guards)
//! measuring the same code they always did. When attached, the hot path
//! adds two clock reads, a histogram observation, a counter bump, and one
//! short mutex hold to feed the rolling window — the cost the
//! `BENCH_obs` CI guard bounds at ≤ 1.15× the un-instrumented cold path.
//!
//! Lock discipline: every `EngineObs` lock is a leaf — taken after the
//! engine's state/cache locks, never before, and never while calling back
//! into the engine.

use crate::bundle::ModelBundle;
use crate::engine::ServeError;
use ganc_dataset::stats::LongTail;
use ganc_dataset::ItemId;
use ganc_obs::{
    CatalogProfile, Counter, Gauge, Histogram, ObsHub, RollingWindow, TraceData, WindowFold,
    WindowStats, WindowWire,
};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Tail mass for the long-tail split: the classic Pareto cut (tail = items
/// outside the most-popular set holding 80% of interaction mass), matching
/// `ganc_dataset::stats::LongTail::pareto`.
const TAIL_MASS: f64 = 0.2;

/// Build the frozen per-item catalog facts (novelty micro-bits, long-tail
/// membership) for one bundle generation. Reads the already-loaded train
/// popularity; holds **no** reference into the bundle afterwards.
pub(crate) fn catalog_profile(bundle: &ModelBundle) -> CatalogProfile {
    let tail = LongTail::from_train(&bundle.train, TAIL_MASS);
    CatalogProfile::from_popularity(
        &bundle.train.item_popularity(),
        bundle.train.n_users(),
        tail.mask().to_vec(),
    )
}

/// The rolling window plus the catalog profile it scores against. The
/// profile is frozen per bundle generation (rebuilt on hot-swap, *not* on
/// every ingest — novelty attribution stays stable between fits, exactly
/// like the fitted Pop scores the paper's metrics are defined over).
struct WindowState {
    window: RollingWindow,
    catalog: Arc<CatalogProfile>,
}

/// Per-engine observability handles. Cheap to use, built once per attach.
pub(crate) struct EngineObs {
    hub: Arc<ObsHub>,
    band: Option<u32>,
    hit_us: Arc<Histogram>,
    miss_us: Arc<Histogram>,
    batch_us: Arc<Histogram>,
    hit_total: Arc<Counter>,
    miss_total: Arc<Counter>,
    error_total: Arc<Counter>,
    batch_users_total: Arc<Counter>,
    ingest_total: Arc<Counter>,
    swap_total: Arc<Counter>,
    generation_gauge: Arc<Gauge>,
    coverage_gauge: Arc<Gauge>,
    novelty_gauge: Arc<Gauge>,
    tail_gauge: Arc<Gauge>,
    lists_gauge: Arc<Gauge>,
    window: Mutex<WindowState>,
}

impl EngineObs {
    /// Register this engine's metric series (idempotent: re-attaching the
    /// same band after a refit returns the same underlying atomics, so
    /// counters survive hot-swaps) and seed the rolling window from the
    /// served bundle.
    pub(crate) fn new(
        hub: Arc<ObsHub>,
        band: Option<u32>,
        window: Duration,
        bundle: &ModelBundle,
        generation: u64,
    ) -> EngineObs {
        let band_label = match band {
            Some(j) => j.to_string(),
            None => "all".to_string(),
        };
        fn with_band<'a>(band: &'a str, extra: &[(&'a str, &'a str)]) -> Vec<(&'a str, &'a str)> {
            let mut l = vec![("band", band)];
            l.extend_from_slice(extra);
            l
        }
        let m = &hub.metrics;
        let hit_us = m.histogram(
            "ganc_engine_request_us",
            "Engine request latency by cache outcome (microseconds)",
            &with_band(&band_label, &[("result", "hit")]),
        );
        let miss_us = m.histogram(
            "ganc_engine_request_us",
            "Engine request latency by cache outcome (microseconds)",
            &with_band(&band_label, &[("result", "miss")]),
        );
        let batch_us = m.histogram(
            "ganc_engine_batch_us",
            "Engine batch latency (microseconds)",
            &with_band(&band_label, &[]),
        );
        let hit_total = m.counter(
            "ganc_engine_requests_total",
            "Engine requests by cache outcome",
            &with_band(&band_label, &[("result", "hit")]),
        );
        let miss_total = m.counter(
            "ganc_engine_requests_total",
            "Engine requests by cache outcome",
            &with_band(&band_label, &[("result", "miss")]),
        );
        let error_total = m.counter(
            "ganc_engine_errors_total",
            "Requests rejected by the engine (unknown user/item)",
            &with_band(&band_label, &[]),
        );
        let batch_users_total = m.counter(
            "ganc_engine_batch_users_total",
            "Users served through the batch path",
            &with_band(&band_label, &[]),
        );
        let ingest_total = m.counter(
            "ganc_engine_ingest_total",
            "Interactions ingested",
            &with_band(&band_label, &[]),
        );
        let swap_total = m.counter(
            "ganc_engine_swap_total",
            "Bundle hot-swaps completed",
            &with_band(&band_label, &[]),
        );
        let generation_gauge = m.gauge(
            "ganc_engine_generation",
            "Bundle generation currently served",
            &with_band(&band_label, &[]),
        );
        generation_gauge.set(generation as f64);
        let coverage_gauge = m.gauge(
            "ganc_window_coverage",
            "Rolling catalog coverage@N over served lists",
            &with_band(&band_label, &[]),
        );
        let novelty_gauge = m.gauge(
            "ganc_window_novelty_bits",
            "Rolling mean novelty of served items (-log2 popularity, bits)",
            &with_band(&band_label, &[]),
        );
        let tail_gauge = m.gauge(
            "ganc_window_long_tail_share",
            "Rolling share of served items from the long tail",
            &with_band(&band_label, &[]),
        );
        let lists_gauge = m.gauge(
            "ganc_window_lists",
            "Served lists currently inside the rolling window",
            &with_band(&band_label, &[]),
        );
        let catalog = Arc::new(catalog_profile(bundle));
        let window = Mutex::new(WindowState {
            window: RollingWindow::new(window, catalog.n_items()),
            catalog,
        });
        EngineObs {
            hub,
            band,
            hit_us,
            miss_us,
            batch_us,
            hit_total,
            miss_total,
            error_total,
            batch_users_total,
            ingest_total,
            swap_total,
            generation_gauge,
            coverage_gauge,
            novelty_gauge,
            tail_gauge,
            lists_gauge,
            window,
        }
    }

    /// Clock read for stage timing.
    pub(crate) fn now_us(&self) -> u64 {
        self.hub.now_us()
    }

    fn observe_list(&self, at_us: u64, list: &[ItemId]) {
        let mut state = self.window.lock().unwrap();
        let WindowState { window, catalog } = &mut *state;
        // ItemId is a transparent u32 wrapper; map without allocating twice.
        let items: Vec<u32> = list.iter().map(|i| i.0).collect();
        window.observe(at_us, &items, catalog);
    }

    /// One single-user request served (hit or computed).
    pub(crate) fn record_request(
        &self,
        t0_us: u64,
        user: u32,
        generation: u64,
        cache_hit: bool,
        list: &[ItemId],
    ) {
        let now = self.hub.now_us();
        let elapsed = now.saturating_sub(t0_us);
        if cache_hit {
            self.hit_us.observe_us(elapsed);
            self.hit_total.inc();
        } else {
            self.miss_us.observe_us(elapsed);
            self.miss_total.inc();
        }
        self.observe_list(now, list);
        self.hub.trace.record(
            now,
            TraceData::Request {
                request_id: 0,
                user,
                generation,
                band: self.band,
                cache_hit,
                elapsed_us: elapsed,
            },
        );
    }

    /// One rejected request (unknown user/item).
    pub(crate) fn record_error(&self) {
        self.error_total.inc();
    }

    /// One batch served: per-list window observations, batch latency, and
    /// per-result error attribution.
    #[allow(clippy::type_complexity)]
    pub(crate) fn record_batch(
        &self,
        t0_us: u64,
        generation: u64,
        results: &[Option<Result<Arc<Vec<ItemId>>, ServeError>>],
    ) {
        let now = self.hub.now_us();
        let elapsed = now.saturating_sub(t0_us);
        self.batch_us.observe_us(elapsed);
        self.batch_users_total.add(results.len() as u64);
        let mut errors = 0u64;
        {
            let mut state = self.window.lock().unwrap();
            let WindowState { window, catalog } = &mut *state;
            let mut items: Vec<u32> = Vec::new();
            for r in results {
                match r {
                    Some(Ok(list)) => {
                        items.clear();
                        items.extend(list.iter().map(|i| i.0));
                        window.observe(now, &items, catalog);
                    }
                    Some(Err(_)) => errors += 1,
                    None => {}
                }
            }
        }
        self.error_total.add(errors);
        self.hub.trace.record(
            now,
            TraceData::Batch {
                users: results.len() as u32,
                generation,
                band: self.band,
                elapsed_us: elapsed,
            },
        );
    }

    /// One accepted ingest.
    pub(crate) fn record_ingest(&self, user: u32, item: u32) {
        self.ingest_total.inc();
        self.hub.trace.record(
            self.hub.now_us(),
            TraceData::Ingest {
                user,
                item,
                band: self.band,
            },
        );
    }

    /// A bundle hot-swap completed: bump the generation gauge, refreeze
    /// the catalog profile against the new bundle, and reset the window —
    /// the new generation serves a new point on the trade-off curve, and
    /// mixing pre-swap lists into its coverage/novelty attribution would
    /// blur exactly the signal the window exists to isolate.
    pub(crate) fn record_swap(&self, generation: u64, bundle: &ModelBundle) {
        self.swap_total.inc();
        self.generation_gauge.set(generation as f64);
        let catalog = Arc::new(catalog_profile(bundle));
        {
            let mut state = self.window.lock().unwrap();
            state.window = RollingWindow::new(
                Duration::from_micros(state.window.window_us()),
                catalog.n_items(),
            );
            state.catalog = catalog;
        }
        self.hub.trace.record(
            self.hub.now_us(),
            TraceData::BundleSwap {
                band: self.band,
                generation,
            },
        );
    }

    /// Current rolling-window metrics; also publishes them as gauges so
    /// `/v1/metrics` and `/v1/stats` agree.
    pub(crate) fn window_stats(&self) -> WindowStats {
        let now = self.hub.now_us();
        let stats = self.window.lock().unwrap().window.stats(now);
        self.publish(stats);
        stats
    }

    /// Expire + merge this engine's window into a cross-band fold,
    /// returning (and publishing) its own stats.
    pub(crate) fn fold_window(&self, fold: &mut WindowFold) -> WindowStats {
        let now = self.hub.now_us();
        let stats = self.window.lock().unwrap().window.fold_into(now, fold);
        self.publish(stats);
        stats
    }

    /// Expire + export this engine's window as a transportable summary
    /// (what `GET /v1/window` answers), publishing the gauges alongside.
    pub(crate) fn window_wire(&self) -> WindowWire {
        let now = self.hub.now_us();
        let wire = self.window.lock().unwrap().window.wire(now);
        self.publish(wire.stats());
        wire
    }

    fn publish(&self, stats: WindowStats) {
        self.coverage_gauge.set(stats.coverage);
        self.novelty_gauge.set(stats.mean_novelty_bits);
        self.tail_gauge.set(stats.long_tail_share);
        self.lists_gauge.set(stats.lists as f64);
    }
}
