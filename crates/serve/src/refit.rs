//! Background refit with atomic bundle hot-swap.
//!
//! A frozen bundle goes stale under ingestion: popularity drifts, candidate
//! pools shrink, and — the failure mode rank-aggregation work warns about —
//! a stale coverage model quietly re-concentrates recommendations on head
//! items. The incremental refreshes in [`crate::engine`] keep Pop/Stat
//! state exact between fits, but the `Dyn` frequency snapshots and any
//! factorized base model only move when the optimizer reruns. Fit is
//! cheap (single-digit milliseconds on the bench profiles), so the fix is
//! to rerun it continuously:
//!
//! 1. **Snapshot** — clone the baseline train set and the ingest log
//!    prefix under the serving lock (cheap; serving continues).
//! 2. **Fit** — merge the log into the train set
//!    ([`merge_interactions`]), re-estimate θ, refit the base model, and
//!    re-run [`ModelBundle::fit`] — all on the background thread.
//! 3. **Swap** — re-cut θ bands against the refitted θ (rebalance), build
//!    the new shard topology, and install it atomically: in-flight
//!    requests finish on the old generation, the generation counter bumps,
//!    and ingests that raced the fit are replayed onto the new shards
//!    before they go live, so nothing is lost.
//!
//! The swap result is *exactly* the bundle a from-scratch
//! [`ModelBundle::fit`] on the accumulated interactions produces — the
//! equivalence `tests/refit_hotswap.rs` pins down, concurrently.

use crate::bundle::{FitConfig, FittedModel, ModelBundle};
use crate::shard::ShardedEngine;
use ganc_dataset::dataset::Rating;
use ganc_dataset::{Interactions, ItemId, UserId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

// The clock seam moved to `ganc-obs` in the observability PR so metrics,
// trace timestamps, rolling windows, and the refit cadence all read the
// same injectable time source; re-exported here so existing
// `ganc_serve::refit::{Clock, ...}` paths keep working.
pub use ganc_obs::clock::{Clock, ManualClock, SystemClock};

/// Refits the model-side state from an accumulated train set: returns the
/// fitted base model and the per-user θ estimates the next generation
/// serves. Deterministic refitters make post-swap state reproducible.
pub type Refitter = dyn Fn(&Interactions) -> (FittedModel, Vec<f64>) + Send + Sync;

/// The train set plus everything ingested since it was frozen, as one
/// deduplicated interaction matrix: a re-rated `(user, item)` pair keeps
/// the latest rating. This is the "accumulated interactions" a refit (and
/// the from-scratch fit the tests compare against) runs on.
pub fn merge_interactions(base: &Interactions, ingested: &[(UserId, ItemId, f32)]) -> Interactions {
    let mut ratings: Vec<Rating> = base
        .iter()
        .map(|(user, item, value)| Rating { user, item, value })
        .collect();
    let mut at: HashMap<(u32, u32), usize> = ratings
        .iter()
        .enumerate()
        .map(|(k, r)| ((r.user.0, r.item.0), k))
        .collect();
    for &(user, item, value) in ingested {
        match at.entry((user.0, item.0)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                ratings[*e.get()].value = value;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(ratings.len());
                ratings.push(Rating { user, item, value });
            }
        }
    }
    Interactions::from_ratings(base.n_users(), base.n_items(), &ratings)
}

/// Atomically persist a refitted bundle: write a sibling file, sync it,
/// `rename` over the target. A crash at any point leaves either the old
/// artifact or the new one — never a torn envelope (which would strand the
/// WAL records the following truncation drops).
fn persist_artifact(bundle: &ModelBundle, path: &std::path::Path) -> std::io::Result<()> {
    use crate::saveload::SaveLoad;
    let bytes = bundle
        .to_bytes()
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    let tmp = path.with_extension("ganc.tmp");
    {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)
}

/// What one refit pass did.
#[derive(Debug, Clone)]
pub enum RefitOutcome {
    /// A new generation is live; the refitted (unsliced) bundle is returned
    /// so callers can verify or persist it.
    Swapped {
        /// The shard set's new generation.
        generation: u64,
        /// The refitted baseline bundle the new shards were sliced from —
        /// the same allocation the engine now serves, not a copy.
        bundle: Arc<ModelBundle>,
    },
    /// A competing swap changed the generation while this fit ran; the
    /// result was discarded without touching the engine.
    Raced,
}

impl ShardedEngine {
    /// Run one complete refit pass synchronously: snapshot, fit on
    /// train + ingested, rebalance θ bands, and hot-swap. Serving continues
    /// on the old generation for the whole fit; only the final install
    /// takes the write lock.
    pub fn refit_once(&self, fitter: &Refitter, cfg: &FitConfig) -> RefitOutcome {
        let (generation, baseline, log) = self.refit_snapshot();
        let consumed = log.len();
        self.obs_refit_started(generation, consumed as u64);
        let train = merge_interactions(&baseline.train, &log);
        let (model, theta) = fitter(&train);
        let bundle = Arc::new(ModelBundle::fit(model, theta, train, cfg));
        match self.install_refit(generation, Arc::clone(&bundle), consumed) {
            Some(generation) => {
                self.obs_refit_swapped(generation);
                // Durable engines compact the WAL now that the consumed
                // ingests are inside the installed bundle — but only once
                // the refitted artifact is safely on disk, so every
                // acknowledged interaction is always recoverable from
                // WAL ∪ artifact. With no artifact path configured the
                // swap exists only in memory and the WAL is the sole
                // durable copy of the consumed ingests: truncation is
                // skipped entirely (the log grows until restart) rather
                // than orphaning acknowledged history behind a crash. A
                // crash between persist and truncate replays interactions
                // the artifact already holds; the merge is
                // last-rating-wins, so that double-apply is harmless and
                // the next truncation clears it.
                if let Some(durable) = self.durable() {
                    if let Some(path) = durable.artifact_path() {
                        if persist_artifact(&bundle, path).is_ok() {
                            // A failed truncation only delays compaction;
                            // the un-truncated records replay harmlessly.
                            let _ = durable.truncate(consumed, generation);
                        }
                    }
                }
                RefitOutcome::Swapped { generation, bundle }
            }
            None => {
                self.obs_refit_raced(generation);
                RefitOutcome::Raced
            }
        }
    }
}

/// Adaptive refit cadence: refit when enough has been ingested (volume
/// trigger) or when anything at all has waited too long (staleness
/// ceiling), but never more often than a floor interval (storm guard).
///
/// The trade-off this encodes is the one the serving layer must not get
/// wrong silently: every refit moves all users onto a new generation of
/// the accuracy/novelty/coverage curve, so refitting *too eagerly* churns
/// the curve under users (and burns fit cycles during ingest floods),
/// while refitting *too lazily* serves a coverage model that has drifted
/// from live popularity. A fixed timer picks one point; this policy adapts
/// between the bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CadenceConfig {
    /// Pending ingests that make the bundle stale enough to refit now
    /// (subject to `min_interval`). Clamped to ≥ 1.
    pub volume_threshold: usize,
    /// Floor between consecutive refits: an ingest flood can never cause a
    /// refit storm tighter than this.
    pub min_interval: Duration,
    /// Staleness ceiling: once *any* ingest is pending, a refit happens at
    /// most this long after the previous one even below the volume
    /// threshold. A quiescent engine (nothing pending) never refits.
    pub max_interval: Duration,
}

impl Default for CadenceConfig {
    fn default() -> CadenceConfig {
        CadenceConfig {
            volume_threshold: 1_024,
            min_interval: Duration::from_secs(1),
            max_interval: Duration::from_secs(60),
        }
    }
}

/// The decision state of one adaptive cadence: pure bookkeeping over an
/// injected "now", so every branch is unit-testable without threads.
#[derive(Debug, Clone)]
pub struct AdaptiveCadence {
    cfg: CadenceConfig,
    last_refit: Duration,
}

impl AdaptiveCadence {
    /// A cadence whose floor interval starts counting at `now` (the spawn
    /// instant counts as the zeroth "refit" so a freshly started engine
    /// doesn't immediately refit on leftover volume).
    pub fn new(cfg: CadenceConfig, now: Duration) -> AdaptiveCadence {
        assert!(
            cfg.min_interval <= cfg.max_interval,
            "cadence floor must not exceed the staleness ceiling"
        );
        AdaptiveCadence {
            cfg,
            last_refit: now,
        }
    }

    /// Should a refit pass run at `now` given `pending` un-refitted
    /// ingests?
    pub fn should_refit(&self, now: Duration, pending: usize) -> bool {
        if pending == 0 {
            // Quiescent: a refit would reproduce the served bundle.
            return false;
        }
        let since = now.saturating_sub(self.last_refit);
        if since < self.cfg.min_interval {
            return false;
        }
        pending >= self.cfg.volume_threshold.max(1) || since >= self.cfg.max_interval
    }

    /// Record that a refit pass completed at `now`.
    pub fn note_refit(&mut self, now: Duration) {
        self.last_refit = now;
    }
}

/// A background thread that refits a [`ShardedEngine`] and hot-swaps the
/// result — on a fixed timer ([`RefitController::spawn`]) or adaptively on
/// ingest volume/staleness ([`RefitController::spawn_adaptive`]). Dropping
/// the controller stops and joins it.
pub struct RefitController {
    stop: Arc<AtomicBool>,
    refits: Arc<AtomicU64>,
    worker: Option<JoinHandle<()>>,
}

impl RefitController {
    /// Start refitting `engine` every `interval` with `fitter` under `cfg`.
    /// The interval is the *pause between* passes; each pass itself runs
    /// snapshot → fit → swap to completion. Unlike the adaptive cadence,
    /// the timer fires whether or not anything was ingested.
    pub fn spawn(
        engine: Arc<ShardedEngine>,
        fitter: Arc<Refitter>,
        cfg: FitConfig,
        interval: Duration,
    ) -> RefitController {
        Self::spawn_with(move |stop, refits| {
            // Sleep in short slices so drop-stop stays responsive even
            // under long intervals.
            let slice = interval
                .min(Duration::from_millis(20))
                .max(Duration::from_micros(50));
            let mut slept = Duration::ZERO;
            while !stop.load(Ordering::Relaxed) {
                if slept < interval {
                    std::thread::sleep(slice);
                    slept += slice;
                    continue;
                }
                slept = Duration::ZERO;
                engine.refit_once(fitter.as_ref(), &cfg);
                refits.fetch_add(1, Ordering::Relaxed);
            }
        })
    }

    /// Start an adaptive controller: refit when `cadence` says so, judged
    /// against `clock` and the engine's pending-ingest count. The worker
    /// polls its stop flag and the clock in short real-time slices, but
    /// every *decision* reads only the injected clock, so a [`ManualClock`]
    /// makes the firing pattern deterministic.
    pub fn spawn_adaptive<C: Clock>(
        engine: Arc<ShardedEngine>,
        fitter: Arc<Refitter>,
        cfg: FitConfig,
        cadence_cfg: CadenceConfig,
        clock: C,
    ) -> RefitController {
        // Validate on the caller's thread: a bad config must panic here,
        // not inside the worker (where the panic would be swallowed by the
        // shutdown join and the controller would just silently never
        // refit).
        let mut cadence = AdaptiveCadence::new(cadence_cfg, clock.now());
        Self::spawn_with(move |stop, refits| {
            let slice = (cadence_cfg.min_interval / 4)
                .clamp(Duration::from_micros(100), Duration::from_millis(20));
            while !stop.load(Ordering::Relaxed) {
                if cadence.should_refit(clock.now(), engine.pending_ingests()) {
                    engine.refit_once(fitter.as_ref(), &cfg);
                    cadence.note_refit(clock.now());
                    refits.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                std::thread::sleep(slice);
            }
        })
    }

    fn spawn_with(
        body: impl FnOnce(Arc<AtomicBool>, Arc<AtomicU64>) + Send + 'static,
    ) -> RefitController {
        let stop = Arc::new(AtomicBool::new(false));
        let refits = Arc::new(AtomicU64::new(0));
        let worker = {
            let stop = Arc::clone(&stop);
            let refits = Arc::clone(&refits);
            std::thread::spawn(move || body(stop, refits))
        };
        RefitController {
            stop,
            refits,
            worker: Some(worker),
        }
    }

    /// Completed refit passes so far.
    pub fn refits(&self) -> u64 {
        self.refits.load(Ordering::Relaxed)
    }

    /// Is the background worker still running? `false` after
    /// [`RefitController::shutdown`] or if the worker died (e.g. a fit
    /// panic) — surfaced by `/v1/healthz` so a silently dead controller
    /// is visible to operators.
    pub fn alive(&self) -> bool {
        self.worker.as_ref().is_some_and(|w| !w.is_finished())
    }

    /// Signal the worker to stop and wait for it to finish.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for RefitController {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, ServingEngine};
    use crate::shard::ShardConfig;
    use ganc_core::coverage::CoverageKind;
    use ganc_dataset::synth::DatasetProfile;
    use ganc_preference::GeneralizedConfig;
    use ganc_recommender::pop::MostPopular;

    fn fixture() -> (Interactions, FitConfig) {
        let data = DatasetProfile::tiny().generate(5);
        let split = data.split_per_user(0.5, 2).unwrap();
        let cfg = FitConfig {
            coverage: CoverageKind::Dynamic,
            sample_size: 12,
            ..FitConfig::new(5)
        };
        (split.train, cfg)
    }

    fn pop_fitter() -> Arc<Refitter> {
        Arc::new(|train: &Interactions| {
            (
                FittedModel::Pop(MostPopular::fit(train)),
                GeneralizedConfig::default().estimate(train),
            )
        })
    }

    #[test]
    fn merge_keeps_latest_rating_and_appends_new_pairs() {
        let (train, _) = fixture();
        let (u, i) = {
            let mut found = (UserId(0), ItemId(0));
            'outer: for uu in 0..train.n_users() {
                for ii in 0..train.n_items() {
                    if train.contains(UserId(uu), ItemId(ii)) {
                        found = (UserId(uu), ItemId(ii));
                        break 'outer;
                    }
                }
            }
            found
        };
        let fresh = (0..train.n_items())
            .map(ItemId)
            .find(|&it| !train.contains(u, it))
            .unwrap();
        let merged = merge_interactions(&train, &[(u, i, 1.5), (u, fresh, 2.5), (u, i, 3.5)]);
        assert_eq!(merged.n_users(), train.n_users());
        assert_eq!(merged.nnz(), train.nnz() + 1);
        assert_eq!(merged.get(u, i), Some(3.5), "last rating wins");
        assert_eq!(merged.get(u, fresh), Some(2.5));
        // No ingests: merge is the identity.
        assert_eq!(merge_interactions(&train, &[]), train);
    }

    #[test]
    fn refit_once_swaps_to_the_from_scratch_fit() {
        let (train, cfg) = fixture();
        let fitter = pop_fitter();
        let (model, theta) = fitter(&train);
        let bundle = ModelBundle::fit(model, theta, train.clone(), &cfg);
        let engine = ShardedEngine::new(bundle, ShardConfig::quantile(3));

        // Ingest a few interactions, then refit.
        let lists: Vec<_> = (0..3)
            .map(|u| engine.recommend(UserId(u)).unwrap())
            .collect();
        for (u, list) in lists.iter().enumerate() {
            engine.ingest(UserId(u as u32), list[0], 5.0).unwrap();
        }
        assert_eq!(engine.pending_ingests(), 3);
        let ingested: Vec<(UserId, ItemId, f32)> = lists
            .iter()
            .enumerate()
            .map(|(u, l)| (UserId(u as u32), l[0], 5.0))
            .collect();

        let outcome = engine.refit_once(fitter.as_ref(), &cfg);
        let RefitOutcome::Swapped { generation, bundle } = outcome else {
            panic!("uncontended refit must swap");
        };
        assert_eq!(generation, 1);
        assert_eq!(engine.generation(), 1);
        assert_eq!(engine.pending_ingests(), 0, "log consumed by the refit");

        // The installed bundle equals a from-scratch fit on accumulated
        // interactions, and the engine serves exactly that fit.
        let expected_train = merge_interactions(&train, &ingested);
        let (model, theta) = fitter(&expected_train);
        let expected = ModelBundle::fit(model, theta, expected_train, &cfg);
        assert_eq!(*bundle, expected);
        let reference = ServingEngine::new(expected, EngineConfig::default());
        for u in 0..engine.n_users() {
            assert_eq!(
                engine.recommend(UserId(u)).unwrap(),
                reference.recommend(UserId(u)).unwrap(),
                "user {u} diverges from the from-scratch fit"
            );
        }
    }

    #[test]
    fn refit_replays_ingests_that_raced_the_fit() {
        // Simulate the race by snapshotting, then ingesting, then
        // installing a fit of the snapshot: the installed generation must
        // still reflect the late ingest, and the log must keep it for the
        // next refit.
        let (train, cfg) = fixture();
        let fitter = pop_fitter();
        let (model, theta) = fitter(&train);
        let bundle = ModelBundle::fit(model, theta, train, &cfg);
        let engine = ShardedEngine::new(bundle, ShardConfig::quantile(2));

        let (generation, baseline, log) = engine.refit_snapshot();
        assert!(log.is_empty());
        let consumed = log.len();
        // Late ingest lands while the "fit" runs.
        let u = UserId(1);
        let late = engine.recommend(u).unwrap()[0];
        engine.ingest(u, late, 4.0).unwrap();

        let merged = merge_interactions(&baseline.train, &log);
        let (model, theta) = fitter(&merged);
        let refit = Arc::new(ModelBundle::fit(model, theta, merged, &cfg));
        assert!(engine.install_refit(generation, refit, consumed).is_some());

        assert_eq!(engine.pending_ingests(), 1, "late ingest survives the swap");
        let after = engine.recommend(u).unwrap();
        assert!(
            !after.contains(&late),
            "replayed ingest must keep {late:?} excluded after the swap"
        );
    }

    #[test]
    fn stale_refit_is_discarded() {
        let (train, cfg) = fixture();
        let fitter = pop_fitter();
        let (model, theta) = fitter(&train);
        let bundle = ModelBundle::fit(model, theta, train, &cfg);
        let engine = ShardedEngine::new(bundle, ShardConfig::quantile(2));
        let (generation, baseline, _) = engine.refit_snapshot();
        // A competing refit wins first.
        assert!(matches!(
            engine.refit_once(fitter.as_ref(), &cfg),
            RefitOutcome::Swapped { generation: 1, .. }
        ));
        // Installing against the stale generation must be refused.
        assert!(engine.install_refit(generation, baseline, 0).is_none());
        assert_eq!(engine.generation(), 1);
    }

    #[test]
    fn controller_refits_in_background_and_stops_on_drop() {
        let (train, cfg) = fixture();
        let fitter = pop_fitter();
        let (model, theta) = fitter(&train);
        let bundle = ModelBundle::fit(model, theta, train, &cfg);
        let engine = Arc::new(ShardedEngine::new(bundle, ShardConfig::quantile(2)));
        let controller = RefitController::spawn(
            Arc::clone(&engine),
            Arc::clone(&fitter),
            cfg,
            Duration::from_millis(1),
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while controller.refits() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(controller.refits() >= 2, "controller never refitted");
        drop(controller); // must stop and join without hanging
        assert!(engine.generation() >= 2);
    }

    // ---- adaptive cadence (deterministic: injected clock, no threads) ----

    fn secs(s: u64) -> Duration {
        Duration::from_secs(s)
    }

    fn cadence_cfg() -> CadenceConfig {
        CadenceConfig {
            volume_threshold: 10,
            min_interval: secs(5),
            max_interval: secs(60),
        }
    }

    #[test]
    fn cadence_fires_on_volume_threshold_after_the_floor() {
        let c = AdaptiveCadence::new(cadence_cfg(), secs(0));
        // Threshold met, but the floor interval hasn't passed yet.
        assert!(!c.should_refit(secs(4), 10), "min_interval must gate");
        // Floor passed, threshold met: fire.
        assert!(c.should_refit(secs(5), 10));
        assert!(c.should_refit(secs(5), 10_000));
        // Floor passed, below threshold, below ceiling: hold.
        assert!(!c.should_refit(secs(5), 9));
    }

    #[test]
    fn cadence_staleness_ceiling_fires_below_the_volume_threshold() {
        let mut c = AdaptiveCadence::new(cadence_cfg(), secs(0));
        // One lonely pending ingest: held until the ceiling...
        assert!(!c.should_refit(secs(59), 1));
        // ...then forced, so no interaction waits unbounded.
        assert!(c.should_refit(secs(60), 1));
        assert!(c.should_refit(secs(1_000_000), 1));
        // The ceiling is measured from the last refit, not from spawn.
        c.note_refit(secs(60));
        assert!(!c.should_refit(secs(119), 1));
        assert!(c.should_refit(secs(120), 1));
    }

    #[test]
    fn cadence_quiescent_engine_never_refits() {
        let c = AdaptiveCadence::new(cadence_cfg(), secs(0));
        for t in [0, 5, 60, 3_600, 1_000_000] {
            assert!(
                !c.should_refit(secs(t), 0),
                "nothing pending at t={t}s: a refit would reproduce the served bundle"
            );
        }
    }

    #[test]
    fn cadence_ingest_flood_cannot_cause_a_refit_storm() {
        // Simulate a controller loop under a sustained flood (pending
        // always huge) with a fine-grained poll: the floor interval caps
        // the firing rate no matter how fast ingestion runs.
        let cfg = cadence_cfg();
        let mut c = AdaptiveCadence::new(cfg, secs(0));
        let mut refits = 0u32;
        let mut t = Duration::ZERO;
        let poll = Duration::from_millis(100);
        let horizon = secs(300);
        while t < horizon {
            if c.should_refit(t, usize::MAX) {
                c.note_refit(t);
                refits += 1;
            }
            t += poll;
        }
        let cap = (horizon.as_secs() / cfg.min_interval.as_secs()) as u32;
        assert!(
            refits <= cap,
            "{refits} refits in {horizon:?} breaks the {:?} floor",
            cfg.min_interval
        );
        assert!(refits >= cap - 1, "flood should keep the cadence saturated");
    }

    #[test]
    fn cadence_floor_must_not_exceed_ceiling() {
        let bad = CadenceConfig {
            volume_threshold: 1,
            min_interval: secs(10),
            max_interval: secs(5),
        };
        assert!(std::panic::catch_unwind(|| AdaptiveCadence::new(bad, secs(0))).is_err());
    }

    #[test]
    fn adaptive_controller_follows_the_injected_clock() {
        let (train, cfg) = fixture();
        let fitter = pop_fitter();
        let (model, theta) = fitter(&train);
        let bundle = ModelBundle::fit(model, theta, train, &cfg);
        let engine = Arc::new(ShardedEngine::new(bundle, ShardConfig::quantile(2)));
        let clock = Arc::new(ManualClock::new());
        let cadence = CadenceConfig {
            volume_threshold: 2,
            min_interval: secs(10),
            max_interval: secs(100),
        };
        let controller = RefitController::spawn_adaptive(
            Arc::clone(&engine),
            Arc::clone(&fitter),
            cfg,
            cadence,
            Arc::clone(&clock),
        );
        let wait_for = |target: u64| {
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while controller.refits() < target && std::time::Instant::now() < deadline {
                std::thread::yield_now();
            }
            controller.refits()
        };
        let settle = || {
            // Give the worker a real-time window to (wrongly) fire; the
            // manual clock pins its decisions, so the count must hold.
            let until = std::time::Instant::now() + Duration::from_millis(30);
            while std::time::Instant::now() < until {
                std::thread::yield_now();
            }
        };

        // Volume reached but the floor hasn't: no refit even in real time.
        let list = engine.recommend(UserId(0)).unwrap();
        engine.ingest(UserId(0), list[0], 5.0).unwrap();
        engine.ingest(UserId(0), list[1], 5.0).unwrap();
        settle();
        assert_eq!(controller.refits(), 0, "floor interval must gate");

        // Floor passes on the injected clock: exactly one refit fires and
        // consumes the log.
        clock.advance(secs(10));
        assert_eq!(wait_for(1), 1, "volume trigger never fired");
        settle();
        assert_eq!(controller.refits(), 1, "consumed log must quiesce");
        assert_eq!(engine.pending_ingests(), 0);

        // A single below-threshold ingest holds below the staleness
        // ceiling (the floor has passed, the ceiling has not)...
        let list = engine.recommend(UserId(1)).unwrap();
        engine.ingest(UserId(1), list[0], 4.0).unwrap();
        clock.advance(secs(50));
        settle();
        assert_eq!(controller.refits(), 1, "below threshold, below ceiling");
        // ...and fires once the ceiling since the last refit passes.
        clock.advance(secs(50));
        assert_eq!(wait_for(2), 2, "staleness ceiling never fired");
        settle();
        assert_eq!(engine.pending_ingests(), 0);

        // Quiescent far past the ceiling: still nothing to refit.
        clock.advance(secs(1_000));
        settle();
        assert_eq!(controller.refits(), 2, "quiescent engine must not refit");

        drop(controller); // must stop and join without hanging
        assert_eq!(engine.generation(), 2);
    }
}
