//! Per-node write-ahead log for durable, exactly-once ingestion.
//!
//! The paper's dynamic models (DynCoverage, the OSLG refit) only stay
//! correct if every observed interaction is applied exactly once — but the
//! refit log lives in memory, so a node restart silently loses ratings and
//! a retried `/v1/ingest` double-applies one. This module closes both
//! holes:
//!
//! * **Durability** — every acknowledged ingest is appended to a
//!   length-prefixed, CRC32-checksummed, generation-stamped log *before*
//!   the acknowledgement, and replayed through the normal ingest path on
//!   startup. Replay recovers the longest valid record prefix: a torn tail
//!   or a flipped bit stops the replay cleanly at the first bad record —
//!   never a panic, never a garbage interaction applied.
//! * **Exactly-once** — ingests may carry an idempotency key; a bounded
//!   dedup window remembers recently acknowledged keys, and the window
//!   itself is persisted in the WAL (keys ride on their ingest records;
//!   truncation rewrites surviving keys as key-only stubs), so a retried
//!   or replayed request is a no-op **across restarts** too.
//!
//! Truncation is atomic (write a fresh log beside the live one, then
//! `rename` over it) and keeps everything still unaccounted for: ingests
//! that raced the refit stay as full records, already-refitted keys shrink
//! to stubs. Process-death durability (the crash-recovery oracle in
//! `tests/wal_recovery.rs` SIGKILLs a node mid-storm) comes from the
//! ack-after-append discipline alone; **power-loss** durability is the
//! [`SyncPolicy`] knob on [`DurableConfig`] — `fdatasync` per append,
//! clock-driven group commit, or the OS-flush-only default.

use ganc_dataset::{ItemId, UserId};
use ganc_obs::clock::{Clock, SystemClock};
use ganc_obs::{Counter, ObsHub, TraceData};
use std::collections::{HashSet, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Leading magic bytes of every WAL file.
pub const WAL_MAGIC: [u8; 4] = *b"GWAL";

/// WAL format version; bump on any framing or payload change.
pub const WAL_VERSION: u16 = 1;

/// File header: magic + version.
const HEADER_LEN: u64 = 6;

/// Frame prefix: payload length (u32) + CRC32 of the payload (u32).
const FRAME_PREFIX: usize = 8;

/// Largest payload a reader accepts — guards a corrupted length prefix
/// from turning into a giant allocation.
pub const MAX_PAYLOAD: u32 = 64 * 1024;

/// Longest idempotency key accepted anywhere in the stack.
pub const MAX_KEY_LEN: usize = 128;

/// Validate an idempotency key at ingress: 1..=[`MAX_KEY_LEN`] bytes of
/// visible ASCII (`0x21..=0x7E`).
///
/// Enforced *before* a key reaches a WAL record or an outbound HTTP
/// header, because both layers have hard requirements the write path must
/// guarantee: the replay decoder treats keys longer than [`MAX_KEY_LEN`]
/// as corruption (an unchecked oversized key would become an acknowledged
/// record that replay refuses, truncating every acknowledged ingest behind
/// it), and the `Idempotency-Key` header is raw text on the wire (a CR/LF
/// or control byte in a client-supplied key would be header injection
/// against internal peers).
pub fn validate_key(key: &str) -> Result<(), &'static str> {
    if key.is_empty() {
        return Err("idempotency key must not be empty");
    }
    if key.len() > MAX_KEY_LEN {
        return Err("idempotency key longer than 128 bytes");
    }
    if !key.bytes().all(|b| (0x21..=0x7E).contains(&b)) {
        return Err("idempotency key must be visible ASCII without spaces or control characters");
    }
    Ok(())
}

// ---------------------------------------------------------------- crc32

/// CRC-32 (IEEE 802.3, reflected), table-driven — std-only, no crates.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (n, slot) in table.iter_mut().enumerate() {
            let mut c = n as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

// -------------------------------------------------------------- records

/// One durable log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An acknowledged ingest not yet covered by a persisted refit.
    /// Replay re-applies it and (when keyed) re-arms the dedup window.
    Ingest {
        /// Shard-set generation at acknowledgement time (diagnostic).
        generation: u64,
        /// User the rating came from.
        user: UserId,
        /// Item rated.
        item: ItemId,
        /// Rating value.
        rating: f32,
        /// Idempotency key the ingest carried, if any.
        key: Option<String>,
    },
    /// A dedup-key stub: its interaction is already inside a persisted
    /// artifact, so replay only re-arms the dedup window.
    Key {
        /// Generation whose truncation wrote the stub.
        generation: u64,
        /// The idempotency key.
        key: String,
    },
}

const TAG_INGEST: u8 = 0;
const TAG_KEY: u8 = 1;

fn push_key(out: &mut Vec<u8>, key: &str) {
    // Writers validate at ingress ([`validate_key`]); this backstop makes
    // it impossible to encode a record the replay decoder would refuse as
    // corrupt (and keeps the u16 length prefix from ever wrapping).
    assert!(
        key.len() <= MAX_KEY_LEN,
        "unvalidated idempotency key ({} bytes) reached the WAL encoder",
        key.len()
    );
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(key.as_bytes());
}

fn encode_payload(rec: &WalRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match rec {
        WalRecord::Ingest {
            generation,
            user,
            item,
            rating,
            key,
        } => {
            out.push(TAG_INGEST);
            out.extend_from_slice(&generation.to_le_bytes());
            out.extend_from_slice(&user.0.to_le_bytes());
            out.extend_from_slice(&item.0.to_le_bytes());
            out.extend_from_slice(&rating.to_bits().to_le_bytes());
            push_key(&mut out, key.as_deref().unwrap_or(""));
        }
        WalRecord::Key { generation, key } => {
            out.push(TAG_KEY);
            out.extend_from_slice(&generation.to_le_bytes());
            push_key(&mut out, key);
        }
    }
    out
}

/// Encode one record as its complete wire frame:
/// `len:u32le | crc32(payload):u32le | payload`.
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let payload = encode_payload(rec);
    let mut out = Vec::with_capacity(FRAME_PREFIX + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let slice = self.buf.get(self.at..end)?;
        self.at = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_le_bytes([s[0], s[1]]))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    fn key(&mut self) -> Option<String> {
        let len = self.u16()? as usize;
        if len > MAX_KEY_LEN {
            return None;
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let mut c = Cursor {
        buf: payload,
        at: 0,
    };
    let rec = match c.u8()? {
        TAG_INGEST => {
            let generation = c.u64()?;
            let user = UserId(c.u32()?);
            let item = ItemId(c.u32()?);
            let rating = f32::from_bits(c.u32()?);
            let key = c.key()?;
            WalRecord::Ingest {
                generation,
                user,
                item,
                rating,
                key: (!key.is_empty()).then_some(key),
            }
        }
        TAG_KEY => {
            let generation = c.u64()?;
            let key = c.key()?;
            if key.is_empty() {
                return None;
            }
            WalRecord::Key { generation, key }
        }
        _ => return None,
    };
    // Trailing bytes inside a CRC-valid payload mean a framing bug, not
    // line noise — refuse rather than guess.
    (c.at == payload.len()).then_some(rec)
}

/// What a replay of a record stream recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalReplaySummary {
    /// Records in the recovered (longest valid) prefix.
    pub records: u64,
    /// Bytes of that prefix, **excluding** the file header.
    pub bytes: u64,
    /// The stream ended at a torn or corrupt record instead of cleanly.
    pub corrupted: bool,
}

/// Decode a record stream (the file contents *after* the header),
/// recovering the longest valid prefix. Never panics; a bad length, a CRC
/// mismatch, an unknown tag, or a torn tail ends the replay at the last
/// good record.
pub fn decode_stream(buf: &[u8]) -> (Vec<WalRecord>, WalReplaySummary) {
    let mut records = Vec::new();
    let mut at = 0usize;
    let mut corrupted = false;
    loop {
        let rest = &buf[at..];
        if rest.is_empty() {
            break;
        }
        if rest.len() < FRAME_PREFIX {
            corrupted = true;
            break;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD || rest.len() < FRAME_PREFIX + len as usize {
            corrupted = true;
            break;
        }
        let payload = &rest[FRAME_PREFIX..FRAME_PREFIX + len as usize];
        if crc32(payload) != crc {
            corrupted = true;
            break;
        }
        match decode_payload(payload) {
            Some(rec) => records.push(rec),
            None => {
                corrupted = true;
                break;
            }
        }
        at += FRAME_PREFIX + len as usize;
    }
    let summary = WalReplaySummary {
        records: records.len() as u64,
        bytes: at as u64,
        corrupted,
    };
    (records, summary)
}

// ------------------------------------------------------------------ wal

/// The append handle over one WAL file.
///
/// [`Wal::open`] replays the existing file (recovering the longest valid
/// prefix and truncating any corrupt tail away, so later appends extend a
/// clean log), [`Wal::append`] adds one framed record, and
/// [`Wal::rewrite`] atomically replaces the whole file (write-beside +
/// `rename`).
pub struct Wal {
    path: PathBuf,
    file: File,
    records: u64,
    bytes: u64,
}

impl Wal {
    /// Open (or create) the WAL at `path`, replaying whatever it holds.
    pub fn open(path: impl AsRef<Path>) -> io::Result<(Wal, Vec<WalRecord>, WalReplaySummary)> {
        let path = path.as_ref().to_path_buf();
        let mut buf = Vec::new();
        match File::open(&path) {
            Ok(mut f) => {
                f.read_to_end(&mut buf)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let (records, mut summary, valid_len) = if buf.is_empty() {
            (
                Vec::new(),
                WalReplaySummary {
                    records: 0,
                    bytes: 0,
                    corrupted: false,
                },
                0,
            )
        } else if buf.len() < HEADER_LEN as usize
            || buf[..4] != WAL_MAGIC
            || u16::from_le_bytes([buf[4], buf[5]]) != WAL_VERSION
        {
            // A foreign or mangled header means there is no valid prefix at
            // all: recover nothing, start a fresh log.
            (
                Vec::new(),
                WalReplaySummary {
                    records: 0,
                    bytes: 0,
                    corrupted: true,
                },
                0,
            )
        } else {
            let (records, summary) = decode_stream(&buf[HEADER_LEN as usize..]);
            let valid = HEADER_LEN + summary.bytes;
            (records, summary, valid)
        };
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        if valid_len == 0 {
            // Fresh or unreadable: rewrite the header in place.
            file.set_len(0)?;
            file.write_all(&WAL_MAGIC)?;
            file.write_all(&WAL_VERSION.to_le_bytes())?;
        } else if (valid_len) < buf.len() as u64 {
            // Drop the corrupt tail so future appends extend the valid
            // prefix instead of burying records behind garbage.
            file.set_len(valid_len)?;
        }
        file.flush()?;
        let bytes = if valid_len == 0 {
            HEADER_LEN
        } else {
            valid_len
        };
        summary.bytes = bytes.saturating_sub(HEADER_LEN);
        let wal = Wal {
            path,
            file,
            records: records.len() as u64,
            bytes,
        };
        Ok((wal, records, summary))
    }

    /// Append one record (written before the caller acknowledges the
    /// ingest — the whole point). Flushed to the OS, not fsynced: pair
    /// with [`Wal::sync_data`] under a [`SyncPolicy`] for power-loss
    /// durability.
    pub fn append(&mut self, rec: &WalRecord) -> io::Result<()> {
        let frame = encode_record(rec);
        self.file.write_all(&frame)?;
        self.file.flush()?;
        self.records += 1;
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Force appended records onto stable storage (`fdatasync`): the
    /// power-loss half of durability that [`Wal::append`]'s OS flush alone
    /// does not provide.
    pub fn sync_data(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Atomically replace the log's contents: write a sibling file, fsync
    /// it, `rename` over the live path. A crash at any point leaves either
    /// the old log or the new one — never a torn mix.
    pub fn rewrite(&mut self, records: &[WalRecord]) -> io::Result<()> {
        let tmp = self.path.with_extension("wal.tmp");
        let mut out = Vec::new();
        out.extend_from_slice(&WAL_MAGIC);
        out.extend_from_slice(&WAL_VERSION.to_le_bytes());
        for rec in records {
            out.extend_from_slice(&encode_record(rec));
        }
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&out)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        self.file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&self.path)?;
        self.records = records.len() as u64;
        self.bytes = out.len() as u64;
        Ok(())
    }

    /// Records currently in the log.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes currently in the log (header included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// --------------------------------------------------------- dedup window

/// Bounded FIFO window of recently acknowledged idempotency keys.
#[derive(Debug)]
pub struct DedupWindow {
    cap: usize,
    seen: HashSet<String>,
    order: VecDeque<String>,
    evictions: u64,
}

impl DedupWindow {
    /// A window remembering up to `cap` keys (clamped to ≥ 1).
    pub fn new(cap: usize) -> DedupWindow {
        DedupWindow {
            cap: cap.max(1),
            seen: HashSet::new(),
            order: VecDeque::new(),
            evictions: 0,
        }
    }

    /// Is `key` inside the window?
    pub fn contains(&self, key: &str) -> bool {
        self.seen.contains(key)
    }

    /// Record `key`; returns `false` (and changes nothing) if it was
    /// already present. At capacity the oldest key falls out.
    pub fn observe(&mut self, key: &str) -> bool {
        if self.seen.contains(key) {
            return false;
        }
        if self.order.len() == self.cap {
            if let Some(evicted) = self.order.pop_front() {
                self.seen.remove(&evicted);
                self.evictions += 1;
            }
        }
        self.seen.insert(key.to_string());
        self.order.push_back(key.to_string());
        true
    }

    /// Keys currently remembered, oldest first.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.order.iter().map(|k| k.as_str())
    }

    /// Keys currently remembered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Is the window empty?
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The retention bound: how many distinct keys the window holds
    /// before the oldest is forgotten.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Keys forgotten so far because `cap` newer distinct keys arrived.
    /// A nonzero value means a sufficiently delayed retry could re-apply
    /// — the retention contract surfaced by `/v1/healthz`.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

// ---------------------------------------------------------- durable log

/// What an acknowledged ingest did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestAck {
    /// The interaction was applied (and logged, on durable nodes).
    Applied,
    /// The idempotency key was already acknowledged: nothing changed.
    Deduplicated,
}

/// When acknowledged appends reach **stable storage**, closing (or
/// bounding) the power-loss window that [`Wal::append`]'s OS-level flush
/// leaves open. Orthogonal to process-crash durability: every policy
/// survives SIGKILL; the policies differ only in what a power cut or
/// kernel panic can take with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Flush to the OS page cache only (the pre-policy behavior, and the
    /// default): acknowledged ingests survive process death but a power
    /// cut may lose any number of them.
    Flush,
    /// `fdatasync` before every acknowledgement: zero-loss under power
    /// cuts, at the cost of one device sync per append (benched in
    /// `BENCH_serve.json` under `"wal"`).
    PerAppend,
    /// Group commit: an append `fdatasync`s only when the last sync is at
    /// least this old (measured on the injected [`Clock`]), so a burst of
    /// appends shares one device sync. A power cut can lose at most the
    /// appends acknowledged since the last sync — a bounded window traded
    /// for near-[`SyncPolicy::Flush`] throughput.
    Interval(Duration),
}

/// Durable-log construction knobs.
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// WAL file path.
    pub path: PathBuf,
    /// Dedup-window capacity (keys remembered across truncations and
    /// restarts).
    pub dedup_window: usize,
    /// When set, a refit swap persists the refitted bundle here (atomic
    /// write-beside + rename) *before* truncating the WAL, so every
    /// acknowledged interaction is always in the WAL or in the artifact.
    /// When `None`, a refit swap exists only in memory, so the WAL is
    /// **never truncated** (it keeps every acknowledged ingest and grows
    /// until restart) — truncating after an in-memory-only swap would
    /// orphan the consumed ingests on the next crash.
    pub artifact_path: Option<PathBuf>,
    /// When acknowledged appends are fsynced (power-loss durability).
    pub sync_policy: SyncPolicy,
}

impl DurableConfig {
    /// Defaults: 4096-key window, no artifact persistence, OS-flush-only
    /// sync policy.
    pub fn new(path: impl Into<PathBuf>) -> DurableConfig {
        DurableConfig {
            path: path.into(),
            dedup_window: 4096,
            artifact_path: None,
            sync_policy: SyncPolicy::Flush,
        }
    }
}

struct DurableInner {
    wal: Wal,
    window: DedupWindow,
    /// Ingest records since the last truncation, append order — kept 1:1
    /// with the engine's in-memory refit log so a truncation knows which
    /// prefix a refit consumed.
    pending: Vec<WalRecord>,
    /// When the log last reached stable storage (clock time), for
    /// [`SyncPolicy::Interval`] group commit.
    last_sync: Duration,
}

/// WAL metric handles, registered at [`DurableLog::attach_obs`].
struct WalObs {
    hub: Arc<ObsHub>,
    appends: Arc<Counter>,
    replayed: Arc<Counter>,
    truncations: Arc<Counter>,
    dedup_hits: Arc<Counter>,
}

/// A point-in-time view of the durable log, for `/v1/healthz` and stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Records currently in the log file.
    pub records: u64,
    /// Bytes currently in the log file (header included).
    pub bytes: u64,
    /// Appends acknowledged over this handle's lifetime.
    pub appends: u64,
    /// Records recovered by the startup replay.
    pub replayed: u64,
    /// Truncations (refit compactions) performed.
    pub truncations: u64,
    /// Keyed ingests answered from the dedup window (no-ops).
    pub dedup_hits: u64,
    /// Keys currently inside the dedup window.
    pub dedup_keys: usize,
    /// The dedup window's retention bound (capacity in distinct keys).
    pub dedup_window: usize,
    /// Keys the dedup window has forgotten to make room for newer ones.
    pub dedup_evictions: u64,
    /// Device syncs (`fdatasync`) issued by the [`SyncPolicy`]. Always 0
    /// under [`SyncPolicy::Flush`]; equals `appends` under
    /// [`SyncPolicy::PerAppend`]; counts group commits under
    /// [`SyncPolicy::Interval`].
    pub syncs: u64,
}

/// The WAL + dedup window + counters bundle a durable node threads through
/// its ingest path. Thread-safe; one per node.
pub struct DurableLog {
    inner: Mutex<DurableInner>,
    artifact_path: Option<PathBuf>,
    replay: WalReplaySummary,
    sync_policy: SyncPolicy,
    /// Clock the [`SyncPolicy::Interval`] group commit reads; injected so
    /// tests drive the interval deterministically.
    clock: Arc<dyn Clock>,
    appends: AtomicU64,
    truncations: AtomicU64,
    dedup_hits: AtomicU64,
    syncs: AtomicU64,
    obs: OnceLock<WalObs>,
}

impl DurableLog {
    /// Open the log, replaying what survives: returns the handle plus the
    /// recovered interactions, which the caller must re-apply through its
    /// normal ingest path (the dedup window is already re-armed).
    #[allow(clippy::type_complexity)]
    pub fn open(cfg: DurableConfig) -> io::Result<(DurableLog, Vec<(UserId, ItemId, f32)>)> {
        DurableLog::open_with_clock(cfg, Arc::new(SystemClock::new()))
    }

    /// [`DurableLog::open`] with an injected clock for the
    /// [`SyncPolicy::Interval`] group commit (tests drive a
    /// [`ganc_obs::clock::ManualClock`]).
    #[allow(clippy::type_complexity)]
    pub fn open_with_clock(
        cfg: DurableConfig,
        clock: Arc<dyn Clock>,
    ) -> io::Result<(DurableLog, Vec<(UserId, ItemId, f32)>)> {
        let (wal, records, replay) = Wal::open(&cfg.path)?;
        let mut window = DedupWindow::new(cfg.dedup_window);
        let mut recovered = Vec::new();
        let mut pending = Vec::new();
        for rec in records {
            match &rec {
                WalRecord::Ingest {
                    user,
                    item,
                    rating,
                    key,
                    ..
                } => {
                    if let Some(k) = key {
                        window.observe(k);
                    }
                    recovered.push((*user, *item, *rating));
                    pending.push(rec);
                }
                WalRecord::Key { key, .. } => {
                    window.observe(key);
                }
            }
        }
        let last_sync = clock.now();
        let log = DurableLog {
            inner: Mutex::new(DurableInner {
                wal,
                window,
                pending,
                last_sync,
            }),
            artifact_path: cfg.artifact_path,
            replay,
            sync_policy: cfg.sync_policy,
            clock,
            appends: AtomicU64::new(0),
            truncations: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            obs: OnceLock::new(),
        };
        Ok((log, recovered))
    }

    /// The configured power-loss sync policy.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync_policy
    }

    /// Where a refit swap should persist the refitted bundle, when
    /// configured.
    pub fn artifact_path(&self) -> Option<&Path> {
        self.artifact_path.as_deref()
    }

    /// What the startup replay recovered.
    pub fn replay_summary(&self) -> WalReplaySummary {
        self.replay
    }

    /// Log one acknowledged ingest *before* the caller applies it.
    /// [`IngestAck::Deduplicated`] means the key was already acknowledged:
    /// the caller must skip the apply entirely. A key that fails
    /// [`validate_key`] is rejected (`InvalidInput`) before anything is
    /// written — every appended record is guaranteed decodable on replay.
    pub fn append(
        &self,
        key: Option<&str>,
        generation: u64,
        user: UserId,
        item: ItemId,
        rating: f32,
    ) -> io::Result<IngestAck> {
        if let Some(k) = key {
            validate_key(k).map_err(|msg| io::Error::new(io::ErrorKind::InvalidInput, msg))?;
        }
        let mut inner = self.inner.lock().unwrap();
        if let Some(k) = key {
            if inner.window.contains(k) {
                self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                if let Some(obs) = self.obs.get() {
                    obs.dedup_hits.inc();
                }
                return Ok(IngestAck::Deduplicated);
            }
        }
        let rec = WalRecord::Ingest {
            generation,
            user,
            item,
            rating,
            key: key.map(str::to_string),
        };
        inner.wal.append(&rec)?;
        // Apply the power-loss policy before the acknowledgement escapes
        // the mutex: under `PerAppend` the ack implies the record is on
        // stable storage, under `Interval` at most one interval's appends
        // ride the page cache.
        match self.sync_policy {
            SyncPolicy::Flush => {}
            SyncPolicy::PerAppend => {
                inner.wal.sync_data()?;
                self.syncs.fetch_add(1, Ordering::Relaxed);
            }
            SyncPolicy::Interval(every) => {
                let now = self.clock.now();
                if now.saturating_sub(inner.last_sync) >= every {
                    inner.wal.sync_data()?;
                    inner.last_sync = now;
                    self.syncs.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if let Some(k) = key {
            inner.window.observe(k);
        }
        inner.pending.push(rec);
        self.appends.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = self.obs.get() {
            obs.appends.inc();
        }
        Ok(IngestAck::Applied)
    }

    /// Compact after a refit swap: the first `consumed` pending ingests
    /// are inside the newly installed (and, when configured, persisted)
    /// bundle, so their full records are no longer needed — their keys
    /// shrink to stubs, racing ingests stay whole. Atomic.
    pub fn truncate(&self, consumed: usize, generation: u64) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        let consumed = consumed.min(inner.pending.len());
        let racers = inner.pending.split_off(consumed);
        let racer_keys: HashSet<&str> = racers
            .iter()
            .filter_map(|r| match r {
                WalRecord::Ingest { key: Some(k), .. } => Some(k.as_str()),
                _ => None,
            })
            .collect();
        let mut recs: Vec<WalRecord> = inner
            .window
            .keys()
            .filter(|k| !racer_keys.contains(k))
            .map(|k| WalRecord::Key {
                generation,
                key: k.to_string(),
            })
            .collect();
        recs.extend(racers.iter().cloned());
        let retained = recs.len() as u64;
        match inner.wal.rewrite(&recs) {
            Ok(()) => {}
            Err(e) => {
                // Put the racers back so pending stays 1:1 with the refit
                // log; the un-truncated records replay harmlessly (the
                // merge is last-rating-wins) until the next compaction.
                inner.pending = racers;
                return Err(e);
            }
        }
        inner.pending = racers;
        self.truncations.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = self.obs.get() {
            obs.truncations.inc();
            obs.hub.trace.record(
                obs.hub.now_us(),
                TraceData::WalTruncate {
                    retained,
                    generation,
                },
            );
        }
        Ok(())
    }

    /// Register `ganc_wal_*` counters and emit the startup-replay trace
    /// event. One-shot; later calls are no-ops.
    pub fn attach_obs(&self, hub: Arc<ObsHub>) {
        let m = &hub.metrics;
        let obs = WalObs {
            appends: m.counter("ganc_wal_appends_total", "WAL records appended", &[]),
            replayed: m.counter(
                "ganc_wal_replayed_total",
                "WAL records recovered by startup replay",
                &[],
            ),
            truncations: m.counter(
                "ganc_wal_truncations_total",
                "WAL compactions after refit swaps",
                &[],
            ),
            dedup_hits: m.counter(
                "ganc_wal_dedup_hits_total",
                "Keyed ingests answered from the dedup window",
                &[],
            ),
            hub: Arc::clone(&hub),
        };
        if self.obs.set(obs).is_ok() {
            let obs = self.obs.get().expect("just set");
            // Catch the counters up with whatever happened pre-attach.
            obs.appends.add(self.appends.load(Ordering::Relaxed));
            obs.replayed.add(self.replay.records);
            obs.truncations
                .add(self.truncations.load(Ordering::Relaxed));
            obs.dedup_hits.add(self.dedup_hits.load(Ordering::Relaxed));
            obs.hub.trace.record(
                obs.hub.now_us(),
                TraceData::WalReplay {
                    records: self.replay.records,
                    bytes: self.replay.bytes,
                    corrupted: self.replay.corrupted,
                },
            );
        }
    }

    /// Current counters and sizes.
    pub fn stats(&self) -> WalStats {
        let inner = self.inner.lock().unwrap();
        WalStats {
            records: inner.wal.records(),
            bytes: inner.wal.bytes(),
            appends: self.appends.load(Ordering::Relaxed),
            replayed: self.replay.records,
            truncations: self.truncations.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            dedup_keys: inner.window.len(),
            dedup_window: inner.window.cap(),
            dedup_evictions: inner.window.evictions(),
            syncs: self.syncs.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ganc_wal_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}_{}.wal", std::process::id()));
        std::fs::remove_file(&path).ok();
        path
    }

    fn ingest(user: u32, item: u32, key: Option<&str>) -> WalRecord {
        WalRecord::Ingest {
            generation: 0,
            user: UserId(user),
            item: ItemId(item),
            rating: 4.5,
            key: key.map(str::to_string),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_frames_round_trip() {
        for rec in [
            ingest(3, 7, None),
            ingest(0, 0, Some("k-1")),
            WalRecord::Key {
                generation: 9,
                key: "abc".to_string(),
            },
        ] {
            let frame = encode_record(&rec);
            let (decoded, summary) = decode_stream(&frame);
            assert_eq!(decoded, vec![rec]);
            assert!(!summary.corrupted);
            assert_eq!(summary.bytes, frame.len() as u64);
        }
    }

    #[test]
    fn append_reopen_replays_everything() {
        let path = tmp("reopen");
        let (mut wal, recs, summary) = Wal::open(&path).unwrap();
        assert!(recs.is_empty());
        assert!(!summary.corrupted);
        wal.append(&ingest(1, 2, Some("a"))).unwrap();
        wal.append(&ingest(3, 4, None)).unwrap();
        drop(wal);
        let (wal, recs, summary) = Wal::open(&path).unwrap();
        assert_eq!(recs, vec![ingest(1, 2, Some("a")), ingest(3, 4, None)]);
        assert_eq!(wal.records(), 2);
        assert!(!summary.corrupted);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_recovers_prefix_and_truncates() {
        let path = tmp("torn");
        let (mut wal, _, _) = Wal::open(&path).unwrap();
        wal.append(&ingest(1, 2, None)).unwrap();
        wal.append(&ingest(3, 4, None)).unwrap();
        drop(wal);
        // Tear the last record mid-frame.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (mut wal, recs, summary) = Wal::open(&path).unwrap();
        assert_eq!(recs, vec![ingest(1, 2, None)]);
        assert!(summary.corrupted);
        // The tail was dropped, so a new append lands on a clean log.
        wal.append(&ingest(5, 6, None)).unwrap();
        drop(wal);
        let (_, recs, summary) = Wal::open(&path).unwrap();
        assert_eq!(recs, vec![ingest(1, 2, None), ingest(5, 6, None)]);
        assert!(!summary.corrupted);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_header_starts_fresh_without_panicking() {
        let path = tmp("header");
        std::fs::write(&path, b"definitely not a wal").unwrap();
        let (mut wal, recs, summary) = Wal::open(&path).unwrap();
        assert!(recs.is_empty());
        assert!(summary.corrupted);
        wal.append(&ingest(1, 1, None)).unwrap();
        drop(wal);
        let (_, recs, _) = Wal::open(&path).unwrap();
        assert_eq!(recs.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dedup_window_is_bounded_fifo() {
        let mut w = DedupWindow::new(2);
        assert!(w.observe("a"));
        assert!(!w.observe("a"), "duplicate detected");
        assert!(w.observe("b"));
        assert!(w.observe("c"), "capacity evicts the oldest");
        assert!(!w.contains("a"), "a fell out of the window");
        assert!(w.contains("b") && w.contains("c"));
        assert_eq!(w.keys().collect::<Vec<_>>(), vec!["b", "c"]);
    }

    #[test]
    fn durable_log_dedups_across_reopen_and_truncation() {
        let path = tmp("durable");
        let cfg = DurableConfig::new(&path);
        let (log, recovered) = DurableLog::open(cfg.clone()).unwrap();
        assert!(recovered.is_empty());
        let ack = |log: &DurableLog, key: Option<&str>, u: u32| {
            log.append(key, 0, UserId(u), ItemId(1), 5.0).unwrap()
        };
        assert_eq!(ack(&log, Some("k1"), 0), IngestAck::Applied);
        assert_eq!(ack(&log, Some("k1"), 0), IngestAck::Deduplicated);
        assert_eq!(ack(&log, None, 1), IngestAck::Applied);
        assert_eq!(ack(&log, Some("k2"), 2), IngestAck::Applied);
        assert_eq!(log.stats().appends, 3);
        assert_eq!(log.stats().dedup_hits, 1);

        // Refit consumed the first two ingests; k2's record raced it.
        log.truncate(2, 1).unwrap();
        let stats = log.stats();
        assert_eq!(stats.truncations, 1);
        // k1 stub + k2 full record.
        assert_eq!(stats.records, 2);
        assert_eq!(ack(&log, Some("k1"), 0), IngestAck::Deduplicated);
        assert_eq!(ack(&log, Some("k2"), 2), IngestAck::Deduplicated);
        drop(log);

        // Reopen: only the racer replays, both keys still dedup.
        let (log, recovered) = DurableLog::open(cfg).unwrap();
        assert_eq!(recovered, vec![(UserId(2), ItemId(1), 5.0)]);
        assert_eq!(ack(&log, Some("k1"), 0), IngestAck::Deduplicated);
        assert_eq!(ack(&log, Some("k2"), 0), IngestAck::Deduplicated);
        assert_eq!(ack(&log, Some("k3"), 3), IngestAck::Applied);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validate_key_enforces_length_and_charset() {
        assert!(validate_key("order-42").is_ok());
        assert!(validate_key(&"k".repeat(MAX_KEY_LEN)).is_ok());
        assert!(validate_key("!~A_z.9").is_ok(), "full visible-ASCII range");
        for bad in [
            "",
            "has space",
            "crlf\r\ninjection",
            "tab\there",
            "nul\0byte",
            "ünïcode",
        ] {
            assert!(validate_key(bad).is_err(), "{bad:?} accepted");
        }
        assert!(validate_key(&"k".repeat(MAX_KEY_LEN + 1)).is_err());
    }

    #[test]
    fn append_rejects_invalid_keys_before_writing() {
        // The review scenario: an unchecked >MAX_KEY_LEN key would become
        // an acknowledged, CRC-valid record that replay refuses as
        // corruption — truncating every acknowledged ingest behind it.
        // Write-time validation must refuse it before anything hits disk.
        let path = tmp("invalid_keys");
        let cfg = DurableConfig::new(&path);
        let (log, _) = DurableLog::open(cfg.clone()).unwrap();
        let long = "x".repeat(MAX_KEY_LEN + 1);
        for bad in [long.as_str(), "crlf\r\nkey", "with space", "nül"] {
            let err = log
                .append(Some(bad), 0, UserId(0), ItemId(0), 1.0)
                .expect_err("invalid key acknowledged");
            assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "{bad:?}");
        }
        assert_eq!(log.stats().appends, 0, "nothing may reach the file");

        // A max-length valid key appends, replays, and still dedups.
        let max = "k".repeat(MAX_KEY_LEN);
        assert_eq!(
            log.append(Some(&max), 0, UserId(1), ItemId(2), 3.0)
                .unwrap(),
            IngestAck::Applied
        );
        drop(log);
        let (log, recovered) = DurableLog::open(cfg).unwrap();
        assert_eq!(recovered, vec![(UserId(1), ItemId(2), 3.0)]);
        assert!(!log.replay_summary().corrupted);
        assert_eq!(
            log.append(Some(&max), 0, UserId(1), ItemId(2), 3.0)
                .unwrap(),
            IngestAck::Deduplicated
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sync_policy_flush_never_syncs_and_per_append_always_does() {
        let path = tmp("sync_flush");
        {
            let (log, _) = DurableLog::open(DurableConfig::new(&path)).unwrap();
            for k in 0..3u32 {
                log.append(None, 0, UserId(0), ItemId(k), 3.0).unwrap();
            }
            assert_eq!(log.stats().syncs, 0, "Flush must never touch the device");
        }
        std::fs::remove_file(&path).ok();

        let path = tmp("sync_per_append");
        let cfg = DurableConfig {
            sync_policy: SyncPolicy::PerAppend,
            ..DurableConfig::new(&path)
        };
        let (log, _) = DurableLog::open(cfg).unwrap();
        for k in 0..3u32 {
            log.append(None, 0, UserId(0), ItemId(k), 3.0).unwrap();
        }
        let stats = log.stats();
        assert_eq!((stats.appends, stats.syncs), (3, 3), "one sync per ack");
        // A deduplicated resend writes nothing, so it must sync nothing.
        log.append(Some("k1"), 0, UserId(0), ItemId(9), 3.0)
            .unwrap();
        log.append(Some("k1"), 0, UserId(0), ItemId(9), 3.0)
            .unwrap();
        assert_eq!(log.stats().syncs, 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sync_policy_interval_group_commits_on_the_injected_clock() {
        use ganc_obs::clock::ManualClock;
        let path = tmp("sync_interval");
        let clock = Arc::new(ManualClock::new());
        let cfg = DurableConfig {
            sync_policy: SyncPolicy::Interval(Duration::from_millis(10)),
            ..DurableConfig::new(&path)
        };
        let (log, _) =
            DurableLog::open_with_clock(cfg, Arc::clone(&clock) as Arc<dyn Clock>).unwrap();

        // A burst inside the interval shares the page cache: no syncs.
        for k in 0..5u32 {
            log.append(None, 0, UserId(0), ItemId(k), 3.0).unwrap();
        }
        assert_eq!(log.stats().syncs, 0, "interval not yet elapsed");

        // Crossing the interval: the next append carries the group commit.
        clock.advance(Duration::from_millis(10));
        log.append(None, 0, UserId(0), ItemId(5), 3.0).unwrap();
        assert_eq!(log.stats().syncs, 1, "first append past the interval syncs");

        // The window restarts from that sync, not from each append.
        log.append(None, 0, UserId(0), ItemId(6), 3.0).unwrap();
        clock.advance(Duration::from_millis(9));
        log.append(None, 0, UserId(0), ItemId(7), 3.0).unwrap();
        assert_eq!(log.stats().syncs, 1, "9ms since last sync: still grouped");
        clock.advance(Duration::from_millis(1));
        log.append(None, 0, UserId(0), ItemId(8), 3.0).unwrap();
        assert_eq!(log.stats().syncs, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_or_binary_keys_are_refused_by_decode() {
        // A hand-built frame with a key length beyond MAX_KEY_LEN must be
        // treated as corruption, not allocated and trusted.
        let mut payload = vec![TAG_KEY];
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&(MAX_KEY_LEN as u16 + 1).to_le_bytes());
        payload.extend(std::iter::repeat_n(b'x', MAX_KEY_LEN + 1));
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let (recs, summary) = decode_stream(&frame);
        assert!(recs.is_empty());
        assert!(summary.corrupted);
    }
}
