//! The concurrent serving engine: answer single-user top-N requests from a
//! loaded [`ModelBundle`], cache responses, batch concurrent work, and
//! ingest new interactions online.
//!
//! Concurrency model:
//!
//! * the fitted state sits behind one `RwLock` — reads (requests) share it,
//!   ingestion takes the write side briefly;
//! * the LRU response cache has its own mutex so cache hits never touch the
//!   model state at all;
//! * [`ServingEngine::recommend_batch`] fans a request batch across worker
//!   threads, each of which builds its scorer and score buffers **once**
//!   per batch — the amortization that makes micro-batching pay.
//!
//! Staleness contract: ingesting an interaction immediately (a) removes the
//! item from that user's candidate pool, (b) refreshes popularity-derived
//! state (the Pop model's scores and Stat coverage), and (c) invalidates
//! that user's cached response. Other users' cached responses may serve
//! scores from before the ingest until they expire from the LRU — bounded
//! staleness, the standard serving trade-off. [`ServingEngine::flush_cache`]
//! forces global freshness.
//!
//! Generation contract: [`ServingEngine::swap_bundle`] atomically replaces
//! the fitted state (background refit publishes through it) and bumps the
//! state's *generation*. Every response is computed entirely under one
//! read-lock hold, so it reflects exactly one generation — never a torn mix
//! of two bundles — and the traced APIs report which. Cached responses are
//! tagged with the generation that computed them and the whole cache is
//! cleared under the swap's write lock, so a response can never pair a new
//! bundle with an older bundle's cache entry; a cache hit racing a swap may
//! still serve the previous generation momentarily (its tag says so).
//! [`ServingEngine::recommend_batch`] holds one read lock across the whole
//! batch — cache hits included — so a batch is always single-generation.

use crate::bundle::{make_scorer_with_mask, CoverageState, FittedModel, ModelBundle};
use crate::lru::LruCache;
use crate::obs::EngineObs;
use ganc_core::query::{
    fused_select, fused_select_recording, fused_select_runs, RequestOptions, RerankMode, UserQuery,
};
use ganc_dataset::{Interactions, ItemId, UserId};
use ganc_obs::{ObsHub, WindowStats, WindowWire};
use ganc_recommender::pop::MostPopular;
use ganc_recommender::topn::{train_item_mask, unseen_train_candidates};
use ganc_recommender::Recommender;
use ganc_rerank::five_d::FiveD;
use ganc_rerank::pra::Pra;
use ganc_rerank::rbt::{Rbt, RbtCriterion};
use ganc_rerank::Reranker;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Duration;

/// A cached response: the bundle generation that computed it plus the list.
type CachedList = (u64, Arc<Vec<ItemId>>);

/// One user's hoisted candidate `[lo, hi)` runs, shared with batch workers.
type RunList = Arc<Vec<(u32, u32)>>;

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Maximum cached responses (LRU-evicted beyond this).
    pub cache_capacity: usize,
    /// Worker threads for batched requests.
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            cache_capacity: 16_384,
            threads: std::thread::available_parallelism().map_or(4, |p| p.get()),
        }
    }
}

/// A snapshot of the engine's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests answered from the response cache.
    pub cache_hits: u64,
    /// Requests that computed a fresh list.
    pub cache_misses: u64,
    /// Interactions ingested.
    pub ingested: u64,
    /// Cache entries invalidated by ingestion.
    pub invalidated: u64,
    /// Entries currently cached.
    pub cached: usize,
}

/// Why a request or ingest was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The user id is outside the bundle's user space.
    UnknownUser(UserId),
    /// The item id is outside the bundle's catalog.
    UnknownItem(ItemId),
    /// The node's write-ahead log could not record the ingest, so it was
    /// not applied — safe to retry (idempotency keys make retries no-ops).
    Durability,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownUser(u) => write!(f, "unknown user {}", u.0),
            ServeError::UnknownItem(i) => write!(f, "unknown item {}", i.0),
            ServeError::Durability => write!(f, "write-ahead log append failed"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Model-side state guarded by the engine's `RwLock`.
struct EngineState {
    bundle: ModelBundle,
    /// Which bundle generation this state serves: 0 at construction, +1 per
    /// [`ServingEngine::swap_bundle`]. Lives *inside* the lock so a reader
    /// observes the generation and the bundle it belongs to atomically.
    generation: u64,
    /// Items with ≥1 train rating (the candidate mask), shared by workers.
    in_train: Vec<bool>,
    /// Sorted complement of `in_train` — the exclusion list the fused
    /// candidate walk merges instead of testing a mask per item.
    non_train: Vec<u32>,
    /// Per-user items ingested after fit (sorted), excluded from candidates.
    extra_seen: Vec<Vec<u32>>,
    /// Live popularity: train counts plus ingested interactions.
    pop_counts: Vec<u32>,
    /// user id → index into `bundle.seed_lists`; entries are dropped when
    /// ingestion staledates a sampled user's precomputed list.
    seed_index: HashMap<u32, usize>,
    /// Whether the bundle's accuracy vector is the same for every user
    /// (user-independent base model under `Normalized` adaptation).
    accuracy_is_shared: bool,
    /// Whether the Pop model's stored scores are exactly the raw
    /// `pop_counts`, making the `O(1)` [`MostPopular::bump`] refresh valid.
    /// False for models fit on other data and for legacy v1 artifacts
    /// (which persisted min–max normalized scores) — those fall back to a
    /// full rebuild from `pop_counts` on ingest, the pre-v2 behavior.
    pop_bump_ok: bool,
    /// Lazily built per model version: the shared normalized accuracy
    /// vector. Rebuilt on first request after an ingest invalidates it, so
    /// ingestion itself stays `O(touched items)`.
    shared_accuracy: Mutex<Option<Arc<Vec<f64>>>>,
    /// Lazily hoisted per-user candidate runs (the ROADMAP
    /// candidate-run-reuse item): a user's exclusion merge
    /// (`seen + extra_seen + non_train`) only changes when *they* ingest,
    /// so repeat requests — the batch parallel phase above all — replay the
    /// frozen `[lo, hi)` runs instead of re-merging. Invalidated per user
    /// under the ingest write lock; a bundle swap rebuilds the whole state.
    candidate_runs: Vec<OnceLock<RunList>>,
    /// Lazily built online re-rankers (indexed Pra/Rbt/FiveD), each fit on
    /// the bundle's train snapshot exactly like batch
    /// [`ganc_rerank::rerank_all`] callers would fit them — the equivalence
    /// oracle's contract. Built at most once per bundle generation.
    rerankers: [OnceLock<Arc<dyn Reranker>>; 3],
}

/// Construct the online re-ranker for `mode` the way the batch experiments
/// do: fit on the train snapshot with the paper's default parameters. The
/// equivalence suite builds its batch-side re-ranker through this same
/// function, so online output is byte-identical to `rerank_all` by
/// construction.
pub fn build_reranker(
    mode: RerankMode,
    train: &Interactions,
    base_name: &str,
) -> Arc<dyn Reranker> {
    match mode {
        RerankMode::Pra => Arc::new(Pra::new(train, base_name, 10)),
        RerankMode::Rbt => Arc::new(Rbt::new(train, RbtCriterion::Popularity, base_name)),
        RerankMode::FiveD => Arc::new(FiveD::new(train, base_name)),
    }
}

/// Merge two sorted, deduplicated ascending id lists into one.
fn merge_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

impl EngineState {
    fn new(bundle: ModelBundle) -> EngineState {
        EngineState::with_generation(bundle, 0)
    }

    fn with_generation(bundle: ModelBundle, generation: u64) -> EngineState {
        let in_train = train_item_mask(&bundle.train);
        let pop_counts = bundle.train.item_popularity();
        let extra_seen = vec![Vec::new(); bundle.train.n_users() as usize];
        let seed_index = bundle
            .seed_lists
            .iter()
            .enumerate()
            .map(|(k, (u, _))| (u.0, k))
            .collect();
        let accuracy_is_shared = bundle.accuracy_mode
            == ganc_core::accuracy::AccuracyMode::Normalized
            && bundle
                .model
                .bind(&bundle.train)
                .scores_are_user_independent();
        let non_train = ganc_recommender::topn::non_train_items(&in_train);
        let pop_bump_ok = match &*bundle.model {
            FittedModel::Pop(pop) => pop_counts
                .iter()
                .enumerate()
                .all(|(i, &f)| pop.popularity_score(ItemId(i as u32)) == f as f64),
            _ => false,
        };
        let candidate_runs = std::iter::repeat_with(OnceLock::new)
            .take(bundle.train.n_users() as usize)
            .collect();
        EngineState {
            bundle,
            generation,
            in_train,
            non_train,
            extra_seen,
            pop_counts,
            seed_index,
            accuracy_is_shared,
            pop_bump_ok,
            shared_accuracy: Mutex::new(None),
            candidate_runs,
            rerankers: [OnceLock::new(), OnceLock::new(), OnceLock::new()],
        }
    }

    /// The lazily built online re-ranker for `mode`.
    fn reranker(&self, mode: RerankMode) -> &Arc<dyn Reranker> {
        let slot = match mode {
            RerankMode::Pra => 0,
            RerankMode::Rbt => 1,
            RerankMode::FiveD => 2,
        };
        self.rerankers[slot]
            .get_or_init(|| build_reranker(mode, &self.bundle.train, &self.bundle.model_name))
    }

    /// The user's hoisted candidate runs, if a previous serve recorded
    /// them for the current exclusion state (see the field docs). A first
    /// serve streams the merge and records the runs as a side effect —
    /// never a separate merge walk — so hoisting costs a cold request
    /// nothing and repeat requests skip the merge entirely.
    fn cached_runs(&self, user: UserId) -> Option<&RunList> {
        self.candidate_runs[user.idx()].get()
    }

    /// Cache `runs` recorded by a first serve (a racing serve of the same
    /// user recorded identical runs; losing the race is fine).
    fn record_runs(&self, user: UserId, runs: Vec<(u32, u32)>) {
        let _ = self.candidate_runs[user.idx()].set(Arc::new(runs));
    }

    /// The per-user-constant normalized accuracy vector, when the model
    /// supports one — computed at most once per model version.
    fn shared_accuracy(&self) -> Option<Arc<Vec<f64>>> {
        if !self.accuracy_is_shared {
            return None;
        }
        let mut guard = self.shared_accuracy.lock().unwrap();
        if guard.is_none() {
            let b = &self.bundle;
            let mut a = vec![0.0; b.n_items() as usize];
            // Identical to NormalizedScores::accuracy_scores for any user.
            b.model.bind(&b.train).score_items(UserId(0), &mut a);
            ganc_dataset::stats::min_max_normalize(&mut a);
            *guard = Some(Arc::new(a));
        }
        guard.clone()
    }

    /// The fused-path list for one user at an explicit θ given a prefetched
    /// shared accuracy vector. The candidate pool is the user's default one
    /// (runs are θ-independent), so cached runs are served and recorded as
    /// on the default path.
    fn compute_shared(&self, user: UserId, accuracy: &[f64], theta_u: f64) -> Vec<ItemId> {
        let b = &self.bundle;
        let view = b.coverage.provider().view(user, theta_u);
        if let Some(runs) = self.cached_runs(user) {
            return fused_select_runs(b.n, theta_u, accuracy, &view, runs);
        }
        let (list, runs) = fused_select_recording(
            b.n,
            theta_u,
            accuracy,
            &view,
            &b.train,
            &self.non_train,
            user,
            &self.extra_seen[user.idx()],
        );
        self.record_runs(user, runs);
        list
    }

    /// Compute one user's list the way the batch optimizer would.
    fn compute(&self, user: UserId) -> Vec<ItemId> {
        let b = &self.bundle;
        if matches!(b.coverage, CoverageState::Dynamic(_)) {
            if let Some(&k) = self.seed_index.get(&user.0) {
                return b.seed_lists[k].1.clone();
            }
        }
        if let Some(a) = self.shared_accuracy() {
            return self.compute_shared(user, &a, b.theta[user.idx()]);
        }
        let bound = b.model.bind(&b.train);
        let scorer = make_scorer_with_mask(&bound, b.accuracy_mode, &b.train, &self.in_train, b.n);
        let mut query = UserQuery::new(scorer.as_ref(), &b.train, &self.in_train, b.n);
        self.query_topn(&mut query, user, b.theta[user.idx()])
    }

    /// One user's list through a prepared [`UserQuery`] at an explicit θ,
    /// serving cached candidate runs when present and recording them when
    /// not.
    fn query_topn(&self, query: &mut UserQuery<'_>, user: UserId, theta_u: f64) -> Vec<ItemId> {
        let b = &self.bundle;
        let provider = b.coverage.provider();
        if let Some(runs) = self.cached_runs(user) {
            return query.topn_with_runs(user, theta_u, provider, runs);
        }
        let (list, runs) =
            query.topn_excluding_recording(user, theta_u, provider, &self.extra_seen[user.idx()]);
        self.record_runs(user, runs);
        list
    }

    /// The override fused path: one user's list at an explicit θ with extra
    /// per-request exclusions. Never consults precomputed seed lists (an
    /// override always answers from the fused path — the oracle's
    /// definition), never records candidate runs polluted by request
    /// exclusions, and ignores exclusion ids outside the catalog (they can
    /// never be recommended anyway).
    fn compute_with(&self, user: UserId, theta_u: f64, exclude: &[u32]) -> Vec<ItemId> {
        let b = &self.bundle;
        if exclude.is_empty() {
            // Same candidate pool as the default path: the hoisted-run
            // cache applies (runs are θ-independent).
            if let Some(a) = self.shared_accuracy() {
                return self.compute_shared(user, &a, theta_u);
            }
            let bound = b.model.bind(&b.train);
            let scorer =
                make_scorer_with_mask(&bound, b.accuracy_mode, &b.train, &self.in_train, b.n);
            let mut query = UserQuery::new(scorer.as_ref(), &b.train, &self.in_train, b.n);
            return self.query_topn(&mut query, user, theta_u);
        }
        let merged = merge_sorted(&self.extra_seen[user.idx()], exclude);
        if let Some(a) = self.shared_accuracy() {
            let view = b.coverage.provider().view(user, theta_u);
            return fused_select(
                b.n,
                theta_u,
                &a,
                &view,
                &b.train,
                &self.non_train,
                user,
                &merged,
            );
        }
        let bound = b.model.bind(&b.train);
        let scorer = make_scorer_with_mask(&bound, b.accuracy_mode, &b.train, &self.in_train, b.n);
        let mut query = UserQuery::new(scorer.as_ref(), &b.train, &self.in_train, b.n);
        query.topn_excluding(user, theta_u, b.coverage.provider(), &merged)
    }

    /// The online re-rank path: run `mode`'s re-ranker as a per-request
    /// post-processor over the base model's raw scores, mirroring batch
    /// [`ganc_rerank::rerank_all`] input-for-input (raw `score_items`
    /// buffer, ascending unseen-train candidates) so a fresh engine's
    /// output is byte-identical to the batch driver's. Post-fit ingests and
    /// request exclusions additionally leave the candidate pool, matching
    /// the fused path's staleness contract.
    fn compute_rerank(&self, user: UserId, mode: RerankMode, exclude: &[u32]) -> Vec<ItemId> {
        let b = &self.bundle;
        let reranker = self.reranker(mode);
        let bound = b.model.bind(&b.train);
        let mut scores = vec![0.0f64; b.n_items() as usize];
        bound.score_items(user, &mut scores);
        let mut cands: Vec<u32> = unseen_train_candidates(&b.train, &self.in_train, user).collect();
        let extra = &self.extra_seen[user.idx()];
        if !extra.is_empty() || !exclude.is_empty() {
            cands.retain(|i| extra.binary_search(i).is_err() && exclude.binary_search(i).is_err());
        }
        reranker.rerank(user, &scores, &cands, b.n)
    }
}

/// A thread-safe online server over one [`ModelBundle`].
pub struct ServingEngine {
    state: RwLock<EngineState>,
    cache: Mutex<LruCache<u32, CachedList>>,
    threads: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    ingested: AtomicU64,
    invalidated: AtomicU64,
    /// Optional observability handles ([`ServingEngine::attach_obs`]).
    /// Un-attached engines pay one atomic load per request and nothing
    /// else; attachment is one-shot.
    obs: OnceLock<Arc<EngineObs>>,
}

// Lock discipline: `state` before `cache`, or `cache` alone. Writers
// (ingest, swap) mutate the cache while still holding the state write lock;
// computes insert while still holding the state read lock. That makes cache
// contents always belong to the current state — an invalidation or swap can
// never be undone by a racing compute, so no separate version counter is
// needed. The one path that touches the cache without the state lock is the
// single-request hit fast path, which only reads.
impl ServingEngine {
    /// Start serving a bundle.
    pub fn new(bundle: ModelBundle, cfg: EngineConfig) -> ServingEngine {
        ServingEngine {
            state: RwLock::new(EngineState::new(bundle)),
            cache: Mutex::new(LruCache::new(cfg.cache_capacity)),
            threads: cfg.threads.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            ingested: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            obs: OnceLock::new(),
        }
    }

    /// Attach observability: register this engine's metric series on `hub`
    /// (labelled with `band`, or `band="all"` for an unbanded engine) and
    /// start a rolling beyond-accuracy window of span `window` over its
    /// served lists. One-shot; a second attach is a no-op.
    pub fn attach_obs(&self, hub: Arc<ObsHub>, band: Option<u32>, window: Duration) {
        let state = self.state.read().unwrap();
        let obs = EngineObs::new(hub, band, window, &state.bundle, state.generation);
        drop(state);
        let _ = self.obs.set(Arc::new(obs));
    }

    /// Current rolling-window metrics, when observability is attached.
    pub fn window_stats(&self) -> Option<WindowStats> {
        self.obs.get().map(|o| o.window_stats())
    }

    /// This engine's rolling window as a transportable summary, when
    /// observability is attached — what a remote node ships to a router
    /// so the router's aggregate window stays an exact union.
    pub fn window_wire(&self) -> Option<WindowWire> {
        self.obs.get().map(|o| o.window_wire())
    }

    /// The attached observability handles, if any (sharding layer + tests).
    pub(crate) fn engine_obs(&self) -> Option<&Arc<EngineObs>> {
        self.obs.get()
    }

    /// Answer one user's top-N request.
    pub fn recommend(&self, user: UserId) -> Result<Arc<Vec<ItemId>>, ServeError> {
        self.recommend_traced(user).map(|(list, _)| list)
    }

    /// Answer one user's top-N request, reporting the bundle generation the
    /// response was computed under. A cache hit may report the previous
    /// generation for an instant around a [`ServingEngine::swap_bundle`];
    /// the list always matches the reported generation's bundle.
    pub fn recommend_traced(&self, user: UserId) -> Result<(Arc<Vec<ItemId>>, u64), ServeError> {
        let obs = self.obs.get();
        let t0 = obs.map_or(0, |o| o.now_us());
        // Hit fast path: never touches the model state.
        let cached = {
            let mut cache = self.cache.lock().unwrap();
            cache
                .get(&user.0)
                .map(|&(generation, ref hit)| (generation, Arc::clone(hit)))
        };
        if let Some((generation, hit)) = cached {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = obs {
                o.record_request(t0, user.0, generation, true, &hit);
            }
            return Ok((hit, generation));
        }
        let state = self.state.read().unwrap();
        if user.idx() >= state.bundle.n_users() as usize {
            if let Some(o) = obs {
                o.record_error();
            }
            return Err(ServeError::UnknownUser(user));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let list = Arc::new(state.compute(user));
        // Insert while still holding the read lock: no ingest or swap can
        // interleave, so the generation tag is exact and an invalidation
        // cannot be undone by this insert landing late.
        self.cache
            .lock()
            .unwrap()
            .insert(user.0, (state.generation, Arc::clone(&list)));
        if let Some(o) = obs {
            o.record_request(t0, user.0, state.generation, false, &list);
        }
        Ok((list, state.generation))
    }

    /// Answer one request with per-request overrides. A default `opts`
    /// delegates to the unmodified default path ([`recommend_traced`] —
    /// cache included); any override computes fresh under the state read
    /// lock and **never touches the user-keyed response cache** in either
    /// direction: a cached default list must not answer an override, and an
    /// override's list must not be served to a later default request.
    ///
    /// θ overrides serve the fused path at that θ (seed lists and all);
    /// exclusions shrink the candidate pool for this request only; `rerank`
    /// swaps the fused selection for the named batch re-ranker run online
    /// (θ then only affects routing, never the list).
    ///
    /// [`recommend_traced`]: ServingEngine::recommend_traced
    pub fn recommend_with_traced(
        &self,
        user: UserId,
        opts: &RequestOptions,
    ) -> Result<(Arc<Vec<ItemId>>, u64), ServeError> {
        if opts.is_default() {
            return self.recommend_traced(user);
        }
        let obs = self.obs.get();
        let t0 = obs.map_or(0, |o| o.now_us());
        let state = self.state.read().unwrap();
        if user.idx() >= state.bundle.n_users() as usize {
            if let Some(o) = obs {
                o.record_error();
            }
            return Err(ServeError::UnknownUser(user));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let theta_u = opts.theta.unwrap_or_else(|| state.bundle.theta[user.idx()]);
        let list = Arc::new(match opts.rerank {
            Some(mode) => state.compute_rerank(user, mode, &opts.exclude),
            None => state.compute_with(user, theta_u, &opts.exclude),
        });
        let generation = state.generation;
        if let Some(o) = obs {
            o.record_request(t0, user.0, generation, false, &list);
        }
        Ok((list, generation))
    }

    /// Batch counterpart of [`ServingEngine::recommend_with_traced`]: every
    /// request in the batch shares one override set and one bundle
    /// generation. A default `opts` delegates to the unmodified batch path.
    #[allow(clippy::type_complexity)]
    pub fn recommend_batch_with_traced(
        &self,
        users: &[UserId],
        opts: &RequestOptions,
    ) -> (Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64) {
        if opts.is_default() {
            return self.recommend_batch_traced(users);
        }
        let obs = self.obs.get();
        let t0 = obs.map_or(0, |o| o.now_us());
        let state = self.state.read().unwrap();
        let generation = state.generation;
        let n_users = state.bundle.n_users() as usize;
        let mut served = 0u64;
        let results: Vec<Option<Result<Arc<Vec<ItemId>>, ServeError>>> = users
            .iter()
            .map(|&user| {
                if user.idx() >= n_users {
                    return Some(Err(ServeError::UnknownUser(user)));
                }
                served += 1;
                let theta_u = opts.theta.unwrap_or_else(|| state.bundle.theta[user.idx()]);
                let list = match opts.rerank {
                    Some(mode) => state.compute_rerank(user, mode, &opts.exclude),
                    None => state.compute_with(user, theta_u, &opts.exclude),
                };
                Some(Ok(Arc::new(list)))
            })
            .collect();
        self.misses.fetch_add(served, Ordering::Relaxed);
        if let Some(o) = obs {
            o.record_batch(t0, generation, &results);
        }
        (
            results.into_iter().map(|r| r.unwrap()).collect(),
            generation,
        )
    }

    /// Answer a batch of requests, fanning cache misses across worker
    /// threads. Results come back in request order; unknown users get the
    /// per-request error.
    #[allow(clippy::type_complexity)]
    pub fn recommend_batch(&self, users: &[UserId]) -> Vec<Result<Arc<Vec<ItemId>>, ServeError>> {
        self.recommend_batch_traced(users).0
    }

    /// Like [`ServingEngine::recommend_batch`], also reporting the single
    /// bundle generation every response in the batch was served from.
    ///
    /// The state read lock is held across the *entire* batch — the cache-hit
    /// phase included — so a concurrent [`ServingEngine::swap_bundle`]
    /// cannot land mid-batch: every cached entry observed under the lock was
    /// inserted under the current generation (swaps clear the cache while
    /// holding the write lock), and every miss computes against it.
    #[allow(clippy::type_complexity)]
    pub fn recommend_batch_traced(
        &self,
        users: &[UserId],
    ) -> (Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64) {
        let obs = self.obs.get();
        let t0 = obs.map_or(0, |o| o.now_us());
        let state = self.state.read().unwrap();
        let generation = state.generation;
        let mut results: Vec<Option<Result<Arc<Vec<ItemId>>, ServeError>>> =
            vec![None; users.len()];
        // Serve cache hits under one short cache-lock hold (the state read
        // lock above pins their generation).
        let mut miss_idx: Vec<usize> = Vec::new();
        {
            let mut cache = self.cache.lock().unwrap();
            for (k, u) in users.iter().enumerate() {
                if let Some(&(tag, ref hit)) = cache.get(&u.0) {
                    debug_assert_eq!(tag, generation, "cache outlived a swap");
                    results[k] = Some(Ok(Arc::clone(hit)));
                } else {
                    miss_idx.push(k);
                }
            }
        }
        self.hits
            .fetch_add((users.len() - miss_idx.len()) as u64, Ordering::Relaxed);
        if miss_idx.is_empty() {
            if let Some(o) = obs {
                o.record_batch(t0, generation, &results);
            }
            return (
                results.into_iter().map(|r| r.unwrap()).collect(),
                generation,
            );
        }

        // Reject unknown users up front so the miss counter only covers
        // requests that actually compute (matching `recommend`).
        let n_users = state.bundle.n_users() as usize;
        miss_idx.retain(|&k| {
            if users[k].idx() >= n_users {
                results[k] = Some(Err(ServeError::UnknownUser(users[k])));
                false
            } else {
                true
            }
        });
        self.misses
            .fetch_add(miss_idx.len() as u64, Ordering::Relaxed);
        if miss_idx.is_empty() {
            if let Some(o) = obs {
                o.record_batch(t0, generation, &results);
            }
            return (
                results.into_iter().map(|r| r.unwrap()).collect(),
                generation,
            );
        }

        // Compute misses in parallel; each worker sets up its scorer and
        // buffers once for its whole chunk. The shared accuracy vector (if
        // the model supports one) is resolved once for the whole batch.
        let shared_accuracy = state.shared_accuracy();
        let mut computed: Vec<(usize, Arc<Vec<ItemId>>)> = Vec::with_capacity(miss_idx.len());
        let threads = self.threads.min(miss_idx.len());
        let chunk = miss_idx.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for piece in miss_idx.chunks(chunk) {
                let state = &state;
                let shared_accuracy = shared_accuracy.clone();
                handles.push(scope.spawn(move || {
                    let b = &state.bundle;
                    let is_dyn = matches!(b.coverage, CoverageState::Dynamic(_));
                    let mut out = Vec::with_capacity(piece.len());
                    if let Some(a) = shared_accuracy {
                        for &k in piece {
                            let user = users[k];
                            let list = match state.seed_index.get(&user.0) {
                                Some(&s) if is_dyn => b.seed_lists[s].1.clone(),
                                _ => state.compute_shared(user, &a, b.theta[user.idx()]),
                            };
                            out.push((k, Arc::new(list)));
                        }
                        return out;
                    }
                    let bound = b.model.bind(&b.train);
                    let scorer = make_scorer_with_mask(
                        &bound,
                        b.accuracy_mode,
                        &b.train,
                        &state.in_train,
                        b.n,
                    );
                    let mut query = UserQuery::new(scorer.as_ref(), &b.train, &state.in_train, b.n);
                    for &k in piece {
                        let user = users[k];
                        let list = match state.seed_index.get(&user.0) {
                            Some(&s) if is_dyn => b.seed_lists[s].1.clone(),
                            _ => state.query_topn(&mut query, user, b.theta[user.idx()]),
                        };
                        out.push((k, Arc::new(list)));
                    }
                    out
                }));
            }
            for h in handles {
                computed.extend(h.join().expect("serving worker panicked"));
            }
        });

        // Still under the state read lock: no writer has run, so the
        // computed lists are current and their generation tag is exact.
        let mut cache = self.cache.lock().unwrap();
        for (k, list) in computed {
            cache.insert(users[k].0, (generation, Arc::clone(&list)));
            results[k] = Some(Ok(list));
        }
        drop(cache);
        drop(state);
        if let Some(o) = obs {
            o.record_batch(t0, generation, &results);
        }
        (
            results.into_iter().map(|r| r.unwrap()).collect(),
            generation,
        )
    }

    /// Ingest one observed interaction: the item leaves the user's
    /// candidate pool, popularity-derived state refreshes, and the user's
    /// cached response is invalidated (see the module docs for the
    /// staleness contract).
    pub fn ingest(&self, user: UserId, item: ItemId, _rating: f32) -> Result<(), ServeError> {
        let mut state = self.state.write().unwrap();
        if user.idx() >= state.bundle.n_users() as usize {
            return Err(ServeError::UnknownUser(user));
        }
        if item.idx() >= state.bundle.n_items() as usize {
            return Err(ServeError::UnknownItem(item));
        }
        if !state.bundle.train.contains(user, item) {
            let extra = &mut state.extra_seen[user.idx()];
            if let Err(pos) = extra.binary_search(&item.0) {
                extra.insert(pos, item.0);
            }
        }
        // The user's hoisted candidate runs baked in the old exclusion
        // state; drop them (other users' pools are untouched — popularity
        // drift never changes who a candidate is).
        state.candidate_runs[user.idx()].take();
        state.pop_counts[item.idx()] += 1;
        let count = state.pop_counts[item.idx()];
        // Popularity-derived state refreshes in O(touched items): both the
        // Pop model (raw-count scores) and Stat coverage (per-item
        // `1/√(f+1)`) support single-item updates identical to a full
        // rebuild from `pop_counts`.
        let pop_bump_ok = state.pop_bump_ok;
        if matches!(&*state.bundle.model, FittedModel::Pop(_)) {
            if pop_bump_ok {
                // The model allocation may be shared with sibling θ-band
                // shards (see `ModelBundle::slice_theta_band`); copy-on-write
                // keeps this shard's bump from leaking into theirs.
                if let FittedModel::Pop(pop) = Arc::make_mut(&mut state.bundle.model) {
                    pop.bump(item);
                }
            } else {
                // Legacy v1 artifacts store normalized scores (and a Pop
                // model could have been fit off-train); a +1 bump would be
                // on the wrong scale, so rebuild from the live counts.
                state.bundle.model = Arc::new(FittedModel::Pop(MostPopular::from_popularity(
                    &state.pop_counts,
                )));
                state.pop_bump_ok = true;
            }
            // The shared normalized-accuracy vector is derived from the
            // model; drop it (O(1)) and let the next request rebuild it.
            *state.shared_accuracy.lock().unwrap() = None;
        }
        if let CoverageState::Static(stat) = &mut state.bundle.coverage {
            stat.set_count(item, count);
        }
        // The sampled user's precomputed list no longer reflects their
        // candidate pool; fall back to the snapshot query path for them.
        state.seed_index.remove(&user.0);
        // Invalidate while still holding the write lock: any compute that
        // could re-insert a pre-ingest list also holds the state lock, so it
        // either finished (and its entry is removed here) or starts after
        // this write completes (and computes the post-ingest list).
        if self.cache.lock().unwrap().remove_entry(&user.0).is_some() {
            self.invalidated.fetch_add(1, Ordering::Relaxed);
        }
        drop(state);
        self.ingested.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = self.obs.get() {
            o.record_ingest(user.0, item.0);
        }
        Ok(())
    }

    /// Atomically replace the fitted state with a freshly fitted bundle —
    /// the hot-swap half of background refit. In-flight requests finish on
    /// the bundle they started with (they hold the read lock); requests that
    /// start after the swap see only the new one. The response cache is
    /// cleared under the same write-lock hold, so the new generation can
    /// never serve a previous generation's cached list. Returns the new
    /// generation.
    pub fn swap_bundle(&self, bundle: ModelBundle) -> u64 {
        let mut state = self.state.write().unwrap();
        let generation = state.generation + 1;
        *state = EngineState::with_generation(bundle, generation);
        self.cache.lock().unwrap().clear();
        // Record under the write lock (obs locks are leaves) so the swap
        // event and the catalog refreeze are atomic with the swap itself.
        if let Some(o) = self.obs.get() {
            o.record_swap(generation, &state.bundle);
        }
        drop(state);
        generation
    }

    /// The current bundle generation (0 until the first
    /// [`ServingEngine::swap_bundle`]).
    pub fn generation(&self) -> u64 {
        self.state.read().unwrap().generation
    }

    /// Drop every cached response (force global freshness after a burst of
    /// ingestion).
    pub fn flush_cache(&self) {
        self.cache.lock().unwrap().clear();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            ingested: self.ingested.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            cached: self.cache.lock().unwrap().len(),
        }
    }

    /// List size `N` this engine serves.
    pub fn n(&self) -> usize {
        self.state.read().unwrap().bundle.n
    }

    /// Number of users the bundle covers.
    pub fn n_users(&self) -> u32 {
        self.state.read().unwrap().bundle.n_users()
    }

    /// Run `f` against the currently served bundle (crate-internal: the
    /// sharding layer uses it to verify allocation sharing across slices).
    #[cfg(test)]
    pub(crate) fn with_bundle<R>(&self, f: impl FnOnce(&ModelBundle) -> R) -> R {
        f(&self.state.read().unwrap().bundle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::FitConfig;
    use ganc_core::coverage::CoverageKind;
    use ganc_dataset::synth::DatasetProfile;
    use ganc_preference::GeneralizedConfig;

    fn engine(kind: CoverageKind) -> ServingEngine {
        let data = DatasetProfile::tiny().generate(5);
        let split = data.split_per_user(0.5, 2).unwrap();
        let theta = GeneralizedConfig::default().estimate(&split.train);
        let pop = MostPopular::fit(&split.train);
        let cfg = FitConfig {
            coverage: kind,
            sample_size: 12,
            ..FitConfig::new(5)
        };
        let bundle = ModelBundle::fit(FittedModel::Pop(pop), theta, split.train, &cfg);
        ServingEngine::new(bundle, EngineConfig::default())
    }

    #[test]
    fn recommend_serves_and_caches() {
        let e = engine(CoverageKind::Dynamic);
        let a = e.recommend(UserId(0)).unwrap();
        assert_eq!(a.len(), 5);
        let b = e.recommend(UserId(0)).unwrap();
        assert_eq!(a, b);
        let s = e.stats();
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cached, 1);
    }

    #[test]
    fn unknown_ids_are_rejected() {
        let e = engine(CoverageKind::Static);
        let u_bad = UserId(e.n_users() + 10);
        assert_eq!(e.recommend(u_bad), Err(ServeError::UnknownUser(u_bad)));
        assert_eq!(
            e.ingest(UserId(0), ItemId(1_000_000), 5.0),
            Err(ServeError::UnknownItem(ItemId(1_000_000)))
        );
    }

    #[test]
    fn batch_matches_single_requests() {
        let e = engine(CoverageKind::Dynamic);
        let users: Vec<UserId> = (0..e.n_users()).map(UserId).collect();
        let batch = e.recommend_batch(&users);
        for (u, got) in users.iter().zip(&batch) {
            let single = e.recommend(*u).unwrap();
            assert_eq!(got.as_ref().unwrap(), &single, "user {u:?}");
        }
    }

    #[test]
    fn batch_counts_misses_only_for_served_users() {
        let e = engine(CoverageKind::Dynamic);
        let bad = UserId(e.n_users() + 1);
        let batch = e.recommend_batch(&[UserId(0), bad, UserId(1)]);
        assert!(batch[0].is_ok());
        assert_eq!(batch[1], Err(ServeError::UnknownUser(bad)));
        assert!(batch[2].is_ok());
        let s = e.stats();
        assert_eq!(s.cache_misses, 2, "unknown users must not count as misses");
        assert_eq!(s.cache_hits, 0);
    }

    #[test]
    fn ingest_removes_item_from_user_lists() {
        let e = engine(CoverageKind::Dynamic);
        let u = UserId(1);
        let before = e.recommend(u).unwrap();
        let consumed = before[0];
        e.ingest(u, consumed, 5.0).unwrap();
        let after = e.recommend(u).unwrap();
        assert!(
            !after.contains(&consumed),
            "{consumed:?} was consumed and must not be re-recommended"
        );
        assert_eq!(after.len(), 5);
        let s = e.stats();
        assert_eq!(s.ingested, 1);
        assert_eq!(s.invalidated, 1);
    }

    #[test]
    fn ingest_invalidates_hoisted_runs_for_the_batch_path() {
        // Static coverage: batch misses take the fused query path over the
        // hoisted candidate runs; a stale run list would re-recommend the
        // consumed item.
        let e = engine(CoverageKind::Static);
        let u = UserId(1);
        let neighbor = UserId(2);
        let before = e.recommend_batch(&[u, neighbor]);
        let consumed = before[0].as_ref().unwrap()[0];
        let neighbor_before = before[1].as_ref().unwrap().clone();
        e.ingest(u, consumed, 5.0).unwrap();
        e.flush_cache();
        let after = e.recommend_batch(&[u, neighbor]);
        assert!(
            !after[0].as_ref().unwrap().contains(&consumed),
            "stale hoisted runs re-recommended {consumed:?}"
        );
        {
            let state = e.state.read().unwrap();
            let runs = state
                .cached_runs(u)
                .expect("the post-ingest serve re-recorded the runs");
            assert!(
                !runs.iter().any(|&(lo, hi)| (lo..hi).contains(&consumed.0)),
                "rebuilt runs still contain the consumed item"
            );
            // The untouched neighbor's pool is unchanged (popularity drift
            // is not a candidate change)...
            assert!(state.cached_runs(neighbor).is_some());
        }
        // ...even though their *scores* may move with global popularity.
        let fresh = engine(CoverageKind::Static);
        assert_eq!(
            neighbor_before,
            fresh.recommend(neighbor).unwrap(),
            "sanity: neighbor's pre-ingest list matches a fresh engine"
        );
        assert!(after[1].is_ok());
    }

    #[test]
    fn ingest_refreshes_pop_scores() {
        let e = engine(CoverageKind::Static);
        // Hammer one tail item with ratings from every user; its popularity
        // should now dominate Pop scores for users who haven't seen it.
        let tail = {
            let state = e.state.read().unwrap();
            // Pick the least popular item.
            let (idx, _) = state
                .pop_counts
                .iter()
                .enumerate()
                .min_by_key(|&(_, &c)| c)
                .unwrap();
            ItemId(idx as u32)
        };
        for u in 0..e.n_users() {
            e.ingest(UserId(u), tail, 5.0).unwrap();
            // Re-ingesting the same pair still counts popularity but the
            // candidate exclusion stays deduplicated.
            e.ingest(UserId(u), tail, 4.0).unwrap();
        }
        let state = e.state.read().unwrap();
        let max = *state.pop_counts.iter().max().unwrap();
        assert_eq!(state.pop_counts[tail.idx()], max, "tail item now hottest");
    }

    #[test]
    fn legacy_normalized_pop_ingest_rebuilds_instead_of_bumping() {
        // Simulate a format-v1-era Pop model, which persisted min–max
        // normalized scores: a +1 bump on that scale would catapult the
        // ingested item to the top of every ranking.
        let data = DatasetProfile::tiny().generate(5);
        let split = data.split_per_user(0.5, 2).unwrap();
        let theta = GeneralizedConfig::default().estimate(&split.train);
        let mut normalized: Vec<f64> = split
            .train
            .item_popularity()
            .iter()
            .map(|&f| f as f64)
            .collect();
        ganc_dataset::stats::min_max_normalize(&mut normalized);
        // MostPopular's wire shape is its score vector.
        let legacy_pop: MostPopular =
            bincode::deserialize(&bincode::serialize(&normalized).unwrap()).unwrap();
        let cfg = FitConfig {
            coverage: CoverageKind::Static,
            sample_size: 12,
            ..FitConfig::new(5)
        };
        let bundle = ModelBundle::fit(FittedModel::Pop(legacy_pop), theta, split.train, &cfg);
        let e = ServingEngine::new(bundle, EngineConfig::default());
        assert!(!e.state.read().unwrap().pop_bump_ok);
        e.ingest(UserId(0), ItemId(3), 5.0).unwrap();
        let state = e.state.read().unwrap();
        assert!(state.pop_bump_ok, "rebuild resets to raw-count scores");
        match &*state.bundle.model {
            FittedModel::Pop(pop) => {
                assert_eq!(pop, &MostPopular::from_popularity(&state.pop_counts));
            }
            _ => panic!("expected Pop model"),
        }
    }

    #[test]
    fn incremental_ingest_matches_full_rebuild() {
        use ganc_core::coverage::StatCoverage;
        let e = engine(CoverageKind::Static);
        let n_users = e.n_users();
        for k in 0..7u32 {
            e.ingest(UserId(k % n_users), ItemId(k % 5), 4.0).unwrap();
        }
        let state = e.state.read().unwrap();
        match &state.bundle.coverage {
            CoverageState::Static(stat) => {
                assert_eq!(stat, &StatCoverage::from_popularity(&state.pop_counts));
            }
            other => panic!("expected Static coverage, got {:?}", other.kind()),
        }
        match &*state.bundle.model {
            FittedModel::Pop(pop) => {
                assert_eq!(pop, &MostPopular::from_popularity(&state.pop_counts));
            }
            _ => panic!("expected Pop model"),
        }
    }

    #[test]
    fn swap_bundle_bumps_generation_and_clears_cache() {
        let data = DatasetProfile::tiny().generate(5);
        let split = data.split_per_user(0.5, 2).unwrap();
        let theta = GeneralizedConfig::default().estimate(&split.train);
        let cfg = FitConfig {
            coverage: CoverageKind::Static,
            sample_size: 12,
            ..FitConfig::new(5)
        };
        let pop = MostPopular::fit(&split.train);
        let a = ModelBundle::fit(
            FittedModel::Pop(pop),
            theta.clone(),
            split.train.clone(),
            &cfg,
        );
        // Bundle B: θ flipped to 1 for everyone — different lists.
        let pop = MostPopular::fit(&split.train);
        let b = ModelBundle::fit(
            FittedModel::Pop(pop),
            vec![1.0; theta.len()],
            split.train.clone(),
            &cfg,
        );
        let expect_b = {
            let e = ServingEngine::new(b.clone(), EngineConfig::default());
            e.recommend(UserId(0)).unwrap()
        };

        let e = ServingEngine::new(a, EngineConfig::default());
        let (before, g0) = e.recommend_traced(UserId(0)).unwrap();
        assert_eq!(g0, 0);
        assert_eq!(e.generation(), 0);
        assert_eq!(e.swap_bundle(b), 1);
        assert_eq!(e.generation(), 1);
        assert_eq!(e.stats().cached, 0, "swap clears the response cache");
        let (after, g1) = e.recommend_traced(UserId(0)).unwrap();
        assert_eq!(g1, 1);
        assert_eq!(after, expect_b);
        assert_ne!(before, after, "θ flip must change the served list");
        let (_, batch_gen) = e.recommend_batch_traced(&[UserId(0), UserId(1)]);
        assert_eq!(batch_gen, 1);
    }

    #[test]
    fn concurrent_requests_and_ingests_hold_up() {
        let e = Arc::new(engine(CoverageKind::Dynamic));
        let n_users = e.n_users();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let e = Arc::clone(&e);
                scope.spawn(move || {
                    for k in 0..200u32 {
                        let u = UserId((t * 7 + k) % n_users);
                        let list = e.recommend(u).unwrap();
                        assert_eq!(list.len(), 5);
                        if k % 17 == 0 {
                            e.ingest(u, list[0], 5.0).unwrap();
                        }
                    }
                });
            }
        });
        let s = e.stats();
        assert_eq!(s.cache_hits + s.cache_misses, 800);
        assert!(s.ingested > 0);
    }
}
