//! The concurrent serving engine: answer single-user top-N requests from a
//! loaded [`ModelBundle`], cache responses, batch concurrent work, and
//! ingest new interactions online.
//!
//! Concurrency model:
//!
//! * the fitted state sits behind one `RwLock` — reads (requests) share it,
//!   ingestion takes the write side briefly;
//! * the LRU response cache has its own mutex so cache hits never touch the
//!   model state at all;
//! * [`ServingEngine::recommend_batch`] fans a request batch across worker
//!   threads, each of which builds its scorer and score buffers **once**
//!   per batch — the amortization that makes micro-batching pay.
//!
//! Staleness contract: ingesting an interaction immediately (a) removes the
//! item from that user's candidate pool, (b) refreshes popularity-derived
//! state (the Pop model's scores and Stat coverage), and (c) invalidates
//! that user's cached response. Other users' cached responses may serve
//! scores from before the ingest until they expire from the LRU — bounded
//! staleness, the standard serving trade-off. [`ServingEngine::flush_cache`]
//! forces global freshness.

use crate::bundle::{make_scorer_with_mask, CoverageState, FittedModel, ModelBundle};
use crate::lru::LruCache;
use ganc_core::query::{fused_select, UserQuery};
use ganc_dataset::{ItemId, UserId};
use ganc_recommender::pop::MostPopular;
use ganc_recommender::topn::train_item_mask;
use ganc_recommender::Recommender;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Maximum cached responses (LRU-evicted beyond this).
    pub cache_capacity: usize,
    /// Worker threads for batched requests.
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            cache_capacity: 16_384,
            threads: std::thread::available_parallelism().map_or(4, |p| p.get()),
        }
    }
}

/// A snapshot of the engine's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests answered from the response cache.
    pub cache_hits: u64,
    /// Requests that computed a fresh list.
    pub cache_misses: u64,
    /// Interactions ingested.
    pub ingested: u64,
    /// Cache entries invalidated by ingestion.
    pub invalidated: u64,
    /// Entries currently cached.
    pub cached: usize,
}

/// Why a request or ingest was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The user id is outside the bundle's user space.
    UnknownUser(UserId),
    /// The item id is outside the bundle's catalog.
    UnknownItem(ItemId),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownUser(u) => write!(f, "unknown user {}", u.0),
            ServeError::UnknownItem(i) => write!(f, "unknown item {}", i.0),
        }
    }
}

impl std::error::Error for ServeError {}

/// Model-side state guarded by the engine's `RwLock`.
struct EngineState {
    bundle: ModelBundle,
    /// Items with ≥1 train rating (the candidate mask), shared by workers.
    in_train: Vec<bool>,
    /// Sorted complement of `in_train` — the exclusion list the fused
    /// candidate walk merges instead of testing a mask per item.
    non_train: Vec<u32>,
    /// Per-user items ingested after fit (sorted), excluded from candidates.
    extra_seen: Vec<Vec<u32>>,
    /// Live popularity: train counts plus ingested interactions.
    pop_counts: Vec<u32>,
    /// user id → index into `bundle.seed_lists`; entries are dropped when
    /// ingestion staledates a sampled user's precomputed list.
    seed_index: HashMap<u32, usize>,
    /// Whether the bundle's accuracy vector is the same for every user
    /// (user-independent base model under `Normalized` adaptation).
    accuracy_is_shared: bool,
    /// Whether the Pop model's stored scores are exactly the raw
    /// `pop_counts`, making the `O(1)` [`MostPopular::bump`] refresh valid.
    /// False for models fit on other data and for legacy v1 artifacts
    /// (which persisted min–max normalized scores) — those fall back to a
    /// full rebuild from `pop_counts` on ingest, the pre-v2 behavior.
    pop_bump_ok: bool,
    /// Lazily built per model version: the shared normalized accuracy
    /// vector. Rebuilt on first request after an ingest invalidates it, so
    /// ingestion itself stays `O(touched items)`.
    shared_accuracy: Mutex<Option<Arc<Vec<f64>>>>,
}

impl EngineState {
    fn new(bundle: ModelBundle) -> EngineState {
        let in_train = train_item_mask(&bundle.train);
        let pop_counts = bundle.train.item_popularity();
        let extra_seen = vec![Vec::new(); bundle.train.n_users() as usize];
        let seed_index = bundle
            .seed_lists
            .iter()
            .enumerate()
            .map(|(k, (u, _))| (u.0, k))
            .collect();
        let accuracy_is_shared = bundle.accuracy_mode
            == ganc_core::accuracy::AccuracyMode::Normalized
            && bundle
                .model
                .bind(&bundle.train)
                .scores_are_user_independent();
        let non_train = ganc_recommender::topn::non_train_items(&in_train);
        let pop_bump_ok = match &bundle.model {
            FittedModel::Pop(pop) => pop_counts
                .iter()
                .enumerate()
                .all(|(i, &f)| pop.popularity_score(ItemId(i as u32)) == f as f64),
            _ => false,
        };
        EngineState {
            bundle,
            in_train,
            non_train,
            extra_seen,
            pop_counts,
            seed_index,
            accuracy_is_shared,
            pop_bump_ok,
            shared_accuracy: Mutex::new(None),
        }
    }

    /// The per-user-constant normalized accuracy vector, when the model
    /// supports one — computed at most once per model version.
    fn shared_accuracy(&self) -> Option<Arc<Vec<f64>>> {
        if !self.accuracy_is_shared {
            return None;
        }
        let mut guard = self.shared_accuracy.lock().unwrap();
        if guard.is_none() {
            let b = &self.bundle;
            let mut a = vec![0.0; b.n_items() as usize];
            // Identical to NormalizedScores::accuracy_scores for any user.
            b.model.bind(&b.train).score_items(UserId(0), &mut a);
            ganc_dataset::stats::min_max_normalize(&mut a);
            *guard = Some(Arc::new(a));
        }
        guard.clone()
    }

    /// The fused-path list for one user given a prefetched shared accuracy
    /// vector.
    fn compute_shared(&self, user: UserId, accuracy: &[f64]) -> Vec<ItemId> {
        let b = &self.bundle;
        let theta_u = b.theta[user.idx()];
        let view = b.coverage.provider().view(user, theta_u);
        fused_select(
            b.n,
            theta_u,
            accuracy,
            &view,
            &b.train,
            &self.non_train,
            user,
            &self.extra_seen[user.idx()],
        )
    }

    /// Compute one user's list the way the batch optimizer would.
    fn compute(&self, user: UserId) -> Vec<ItemId> {
        let b = &self.bundle;
        if matches!(b.coverage, CoverageState::Dynamic(_)) {
            if let Some(&k) = self.seed_index.get(&user.0) {
                return b.seed_lists[k].1.clone();
            }
        }
        if let Some(a) = self.shared_accuracy() {
            return self.compute_shared(user, &a);
        }
        let bound = b.model.bind(&b.train);
        let scorer = make_scorer_with_mask(&bound, b.accuracy_mode, &b.train, &self.in_train, b.n);
        let mut query = UserQuery::new(scorer.as_ref(), &b.train, &self.in_train, b.n);
        query.topn_excluding(
            user,
            b.theta[user.idx()],
            b.coverage.provider(),
            &self.extra_seen[user.idx()],
        )
    }
}

/// A thread-safe online server over one [`ModelBundle`].
pub struct ServingEngine {
    state: RwLock<EngineState>,
    cache: Mutex<LruCache<u32, Arc<Vec<ItemId>>>>,
    /// Bumped by every ingest, *before* its cache invalidation. A response
    /// computed under an older version is never inserted into the cache —
    /// otherwise a compute that raced an ingest could re-insert a stale
    /// list right after the ingest invalidated it, and it would then be
    /// served from cache indefinitely.
    version: AtomicU64,
    threads: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    ingested: AtomicU64,
    invalidated: AtomicU64,
}

impl ServingEngine {
    /// Start serving a bundle.
    pub fn new(bundle: ModelBundle, cfg: EngineConfig) -> ServingEngine {
        ServingEngine {
            state: RwLock::new(EngineState::new(bundle)),
            cache: Mutex::new(LruCache::new(cfg.cache_capacity)),
            version: AtomicU64::new(0),
            threads: cfg.threads.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            ingested: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
        }
    }

    /// Answer one user's top-N request.
    pub fn recommend(&self, user: UserId) -> Result<Arc<Vec<ItemId>>, ServeError> {
        if let Some(hit) = self.cache.lock().unwrap().get(&user.0) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        let version = self.version.load(Ordering::SeqCst);
        let state = self.state.read().unwrap();
        if user.idx() >= state.bundle.n_users() as usize {
            return Err(ServeError::UnknownUser(user));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let list = Arc::new(state.compute(user));
        drop(state);
        let mut cache = self.cache.lock().unwrap();
        if self.version.load(Ordering::SeqCst) == version {
            cache.insert(user.0, Arc::clone(&list));
        }
        drop(cache);
        Ok(list)
    }

    /// Answer a batch of requests, fanning cache misses across worker
    /// threads. Results come back in request order; unknown users get the
    /// per-request error.
    #[allow(clippy::type_complexity)]
    pub fn recommend_batch(&self, users: &[UserId]) -> Vec<Result<Arc<Vec<ItemId>>, ServeError>> {
        let mut results: Vec<Option<Result<Arc<Vec<ItemId>>, ServeError>>> =
            vec![None; users.len()];
        // Serve cache hits under one short lock.
        let mut miss_idx: Vec<usize> = Vec::new();
        {
            let mut cache = self.cache.lock().unwrap();
            for (k, u) in users.iter().enumerate() {
                if let Some(hit) = cache.get(&u.0) {
                    results[k] = Some(Ok(Arc::clone(hit)));
                } else {
                    miss_idx.push(k);
                }
            }
        }
        self.hits
            .fetch_add((users.len() - miss_idx.len()) as u64, Ordering::Relaxed);
        if miss_idx.is_empty() {
            return results.into_iter().map(|r| r.unwrap()).collect();
        }

        let version = self.version.load(Ordering::SeqCst);
        let state = self.state.read().unwrap();
        // Reject unknown users up front so the miss counter only covers
        // requests that actually compute (matching `recommend`).
        let n_users = state.bundle.n_users() as usize;
        miss_idx.retain(|&k| {
            if users[k].idx() >= n_users {
                results[k] = Some(Err(ServeError::UnknownUser(users[k])));
                false
            } else {
                true
            }
        });
        self.misses
            .fetch_add(miss_idx.len() as u64, Ordering::Relaxed);
        if miss_idx.is_empty() {
            drop(state);
            return results.into_iter().map(|r| r.unwrap()).collect();
        }

        // Compute misses in parallel; each worker sets up its scorer and
        // buffers once for its whole chunk. The shared accuracy vector (if
        // the model supports one) is resolved once for the whole batch.
        let shared_accuracy = state.shared_accuracy();
        let mut computed: Vec<(usize, Arc<Vec<ItemId>>)> = Vec::with_capacity(miss_idx.len());
        let threads = self.threads.min(miss_idx.len());
        let chunk = miss_idx.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for piece in miss_idx.chunks(chunk) {
                let state = &state;
                let shared_accuracy = shared_accuracy.clone();
                handles.push(scope.spawn(move || {
                    let b = &state.bundle;
                    let is_dyn = matches!(b.coverage, CoverageState::Dynamic(_));
                    let mut out = Vec::with_capacity(piece.len());
                    if let Some(a) = shared_accuracy {
                        for &k in piece {
                            let user = users[k];
                            let list = match state.seed_index.get(&user.0) {
                                Some(&s) if is_dyn => b.seed_lists[s].1.clone(),
                                _ => state.compute_shared(user, &a),
                            };
                            out.push((k, Arc::new(list)));
                        }
                        return out;
                    }
                    let bound = b.model.bind(&b.train);
                    let scorer = make_scorer_with_mask(
                        &bound,
                        b.accuracy_mode,
                        &b.train,
                        &state.in_train,
                        b.n,
                    );
                    let mut query = UserQuery::new(scorer.as_ref(), &b.train, &state.in_train, b.n);
                    for &k in piece {
                        let user = users[k];
                        let list = match state.seed_index.get(&user.0) {
                            Some(&s) if is_dyn => b.seed_lists[s].1.clone(),
                            _ => query.topn_excluding(
                                user,
                                b.theta[user.idx()],
                                b.coverage.provider(),
                                &state.extra_seen[user.idx()],
                            ),
                        };
                        out.push((k, Arc::new(list)));
                    }
                    out
                }));
            }
            for h in handles {
                computed.extend(h.join().expect("serving worker panicked"));
            }
        });
        drop(state);

        let mut cache = self.cache.lock().unwrap();
        let fresh = self.version.load(Ordering::SeqCst) == version;
        for (k, list) in computed {
            if fresh {
                cache.insert(users[k].0, Arc::clone(&list));
            }
            results[k] = Some(Ok(list));
        }
        drop(cache);
        results.into_iter().map(|r| r.unwrap()).collect()
    }

    /// Ingest one observed interaction: the item leaves the user's
    /// candidate pool, popularity-derived state refreshes, and the user's
    /// cached response is invalidated (see the module docs for the
    /// staleness contract).
    pub fn ingest(&self, user: UserId, item: ItemId, _rating: f32) -> Result<(), ServeError> {
        let mut state = self.state.write().unwrap();
        if user.idx() >= state.bundle.n_users() as usize {
            return Err(ServeError::UnknownUser(user));
        }
        if item.idx() >= state.bundle.n_items() as usize {
            return Err(ServeError::UnknownItem(item));
        }
        if !state.bundle.train.contains(user, item) {
            let extra = &mut state.extra_seen[user.idx()];
            if let Err(pos) = extra.binary_search(&item.0) {
                extra.insert(pos, item.0);
            }
        }
        state.pop_counts[item.idx()] += 1;
        let count = state.pop_counts[item.idx()];
        // Popularity-derived state refreshes in O(touched items): both the
        // Pop model (raw-count scores) and Stat coverage (per-item
        // `1/√(f+1)`) support single-item updates identical to a full
        // rebuild from `pop_counts`.
        let pop_bump_ok = state.pop_bump_ok;
        if let FittedModel::Pop(pop) = &mut state.bundle.model {
            if pop_bump_ok {
                pop.bump(item);
            } else {
                // Legacy v1 artifacts store normalized scores (and a Pop
                // model could have been fit off-train); a +1 bump would be
                // on the wrong scale, so rebuild from the live counts.
                state.bundle.model =
                    FittedModel::Pop(MostPopular::from_popularity(&state.pop_counts));
                state.pop_bump_ok = true;
            }
            // The shared normalized-accuracy vector is derived from the
            // model; drop it (O(1)) and let the next request rebuild it.
            *state.shared_accuracy.lock().unwrap() = None;
        }
        if let CoverageState::Static(stat) = &mut state.bundle.coverage {
            stat.set_count(item, count);
        }
        // The sampled user's precomputed list no longer reflects their
        // candidate pool; fall back to the snapshot query path for them.
        state.seed_index.remove(&user.0);
        drop(state);
        // Bump before invalidating: in-flight computes that started under
        // the old version will see the new one at insert time and skip the
        // cache, so the invalidation below cannot be undone by a racer.
        self.version.fetch_add(1, Ordering::SeqCst);
        if self.cache.lock().unwrap().remove_entry(&user.0).is_some() {
            self.invalidated.fetch_add(1, Ordering::Relaxed);
        }
        self.ingested.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Drop every cached response (force global freshness after a burst of
    /// ingestion).
    pub fn flush_cache(&self) {
        self.cache.lock().unwrap().clear();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            ingested: self.ingested.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            cached: self.cache.lock().unwrap().len(),
        }
    }

    /// List size `N` this engine serves.
    pub fn n(&self) -> usize {
        self.state.read().unwrap().bundle.n
    }

    /// Number of users the bundle covers.
    pub fn n_users(&self) -> u32 {
        self.state.read().unwrap().bundle.n_users()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::FitConfig;
    use ganc_core::coverage::CoverageKind;
    use ganc_dataset::synth::DatasetProfile;
    use ganc_preference::GeneralizedConfig;

    fn engine(kind: CoverageKind) -> ServingEngine {
        let data = DatasetProfile::tiny().generate(5);
        let split = data.split_per_user(0.5, 2).unwrap();
        let theta = GeneralizedConfig::default().estimate(&split.train);
        let pop = MostPopular::fit(&split.train);
        let cfg = FitConfig {
            coverage: kind,
            sample_size: 12,
            ..FitConfig::new(5)
        };
        let bundle = ModelBundle::fit(FittedModel::Pop(pop), theta, split.train, &cfg);
        ServingEngine::new(bundle, EngineConfig::default())
    }

    #[test]
    fn recommend_serves_and_caches() {
        let e = engine(CoverageKind::Dynamic);
        let a = e.recommend(UserId(0)).unwrap();
        assert_eq!(a.len(), 5);
        let b = e.recommend(UserId(0)).unwrap();
        assert_eq!(a, b);
        let s = e.stats();
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cached, 1);
    }

    #[test]
    fn unknown_ids_are_rejected() {
        let e = engine(CoverageKind::Static);
        let u_bad = UserId(e.n_users() + 10);
        assert_eq!(e.recommend(u_bad), Err(ServeError::UnknownUser(u_bad)));
        assert_eq!(
            e.ingest(UserId(0), ItemId(1_000_000), 5.0),
            Err(ServeError::UnknownItem(ItemId(1_000_000)))
        );
    }

    #[test]
    fn batch_matches_single_requests() {
        let e = engine(CoverageKind::Dynamic);
        let users: Vec<UserId> = (0..e.n_users()).map(UserId).collect();
        let batch = e.recommend_batch(&users);
        for (u, got) in users.iter().zip(&batch) {
            let single = e.recommend(*u).unwrap();
            assert_eq!(got.as_ref().unwrap(), &single, "user {u:?}");
        }
    }

    #[test]
    fn batch_counts_misses_only_for_served_users() {
        let e = engine(CoverageKind::Dynamic);
        let bad = UserId(e.n_users() + 1);
        let batch = e.recommend_batch(&[UserId(0), bad, UserId(1)]);
        assert!(batch[0].is_ok());
        assert_eq!(batch[1], Err(ServeError::UnknownUser(bad)));
        assert!(batch[2].is_ok());
        let s = e.stats();
        assert_eq!(s.cache_misses, 2, "unknown users must not count as misses");
        assert_eq!(s.cache_hits, 0);
    }

    #[test]
    fn ingest_removes_item_from_user_lists() {
        let e = engine(CoverageKind::Dynamic);
        let u = UserId(1);
        let before = e.recommend(u).unwrap();
        let consumed = before[0];
        e.ingest(u, consumed, 5.0).unwrap();
        let after = e.recommend(u).unwrap();
        assert!(
            !after.contains(&consumed),
            "{consumed:?} was consumed and must not be re-recommended"
        );
        assert_eq!(after.len(), 5);
        let s = e.stats();
        assert_eq!(s.ingested, 1);
        assert_eq!(s.invalidated, 1);
    }

    #[test]
    fn ingest_refreshes_pop_scores() {
        let e = engine(CoverageKind::Static);
        // Hammer one tail item with ratings from every user; its popularity
        // should now dominate Pop scores for users who haven't seen it.
        let tail = {
            let state = e.state.read().unwrap();
            // Pick the least popular item.
            let (idx, _) = state
                .pop_counts
                .iter()
                .enumerate()
                .min_by_key(|&(_, &c)| c)
                .unwrap();
            ItemId(idx as u32)
        };
        for u in 0..e.n_users() {
            e.ingest(UserId(u), tail, 5.0).unwrap();
            // Re-ingesting the same pair still counts popularity but the
            // candidate exclusion stays deduplicated.
            e.ingest(UserId(u), tail, 4.0).unwrap();
        }
        let state = e.state.read().unwrap();
        let max = *state.pop_counts.iter().max().unwrap();
        assert_eq!(state.pop_counts[tail.idx()], max, "tail item now hottest");
    }

    #[test]
    fn legacy_normalized_pop_ingest_rebuilds_instead_of_bumping() {
        // Simulate a format-v1-era Pop model, which persisted min–max
        // normalized scores: a +1 bump on that scale would catapult the
        // ingested item to the top of every ranking.
        let data = DatasetProfile::tiny().generate(5);
        let split = data.split_per_user(0.5, 2).unwrap();
        let theta = GeneralizedConfig::default().estimate(&split.train);
        let mut normalized: Vec<f64> = split
            .train
            .item_popularity()
            .iter()
            .map(|&f| f as f64)
            .collect();
        ganc_dataset::stats::min_max_normalize(&mut normalized);
        // MostPopular's wire shape is its score vector.
        let legacy_pop: MostPopular =
            bincode::deserialize(&bincode::serialize(&normalized).unwrap()).unwrap();
        let cfg = FitConfig {
            coverage: CoverageKind::Static,
            sample_size: 12,
            ..FitConfig::new(5)
        };
        let bundle = ModelBundle::fit(FittedModel::Pop(legacy_pop), theta, split.train, &cfg);
        let e = ServingEngine::new(bundle, EngineConfig::default());
        assert!(!e.state.read().unwrap().pop_bump_ok);
        e.ingest(UserId(0), ItemId(3), 5.0).unwrap();
        let state = e.state.read().unwrap();
        assert!(state.pop_bump_ok, "rebuild resets to raw-count scores");
        match &state.bundle.model {
            FittedModel::Pop(pop) => {
                assert_eq!(pop, &MostPopular::from_popularity(&state.pop_counts));
            }
            _ => panic!("expected Pop model"),
        }
    }

    #[test]
    fn incremental_ingest_matches_full_rebuild() {
        use ganc_core::coverage::StatCoverage;
        let e = engine(CoverageKind::Static);
        let n_users = e.n_users();
        for k in 0..7u32 {
            e.ingest(UserId(k % n_users), ItemId(k % 5), 4.0).unwrap();
        }
        let state = e.state.read().unwrap();
        match &state.bundle.coverage {
            CoverageState::Static(stat) => {
                assert_eq!(stat, &StatCoverage::from_popularity(&state.pop_counts));
            }
            other => panic!("expected Static coverage, got {:?}", other.kind()),
        }
        match &state.bundle.model {
            FittedModel::Pop(pop) => {
                assert_eq!(pop, &MostPopular::from_popularity(&state.pop_counts));
            }
            _ => panic!("expected Pop model"),
        }
    }

    #[test]
    fn concurrent_requests_and_ingests_hold_up() {
        let e = Arc::new(engine(CoverageKind::Dynamic));
        let n_users = e.n_users();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let e = Arc::clone(&e);
                scope.spawn(move || {
                    for k in 0..200u32 {
                        let u = UserId((t * 7 + k) % n_users);
                        let list = e.recommend(u).unwrap();
                        assert_eq!(list.len(), 5);
                        if k % 17 == 0 {
                            e.ingest(u, list[0], 5.0).unwrap();
                        }
                    }
                });
            }
        });
        let s = e.stats();
        assert_eq!(s.cache_hits + s.cache_misses, 800);
        assert!(s.ingested > 0);
    }
}
