//! Micro-batching front door: coalesce concurrent single-user requests
//! into engine batches.
//!
//! Callers block on [`MicroBatcher::request`]; a background worker drains
//! the queue, waits up to `max_wait` for up to `max_batch` requests to
//! accumulate, and answers them with one
//! [`ServingEngine::recommend_batch`] call — so each serving worker's
//! scorer/buffer setup is amortized over the whole batch instead of paid
//! per request.

use crate::engine::{ServeError, ServingEngine};
use ganc_dataset::{ItemId, UserId};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Batching knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Largest batch handed to the engine at once.
    pub max_batch: usize,
    /// Longest a request waits for companions before the batch flushes.
    pub max_wait: Duration,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            max_batch: 64,
            max_wait: Duration::from_micros(200),
        }
    }
}

struct Request {
    user: UserId,
    reply: mpsc::Sender<Result<Arc<Vec<ItemId>>, ServeError>>,
}

/// A handle submitting requests into the batching queue.
///
/// Dropping the batcher closes the queue and joins the worker.
pub struct MicroBatcher {
    tx: Option<mpsc::Sender<Request>>,
    worker: Option<JoinHandle<()>>,
}

impl MicroBatcher {
    /// Start a batching worker over `engine`.
    pub fn spawn(engine: Arc<ServingEngine>, cfg: BatchConfig) -> MicroBatcher {
        let (tx, rx) = mpsc::channel::<Request>();
        let max_batch = cfg.max_batch.max(1);
        let max_wait = cfg.max_wait;
        let worker = std::thread::spawn(move || {
            // Block for the first request of each batch; then collect
            // companions until the window closes or the batch fills.
            while let Ok(first) = rx.recv() {
                let mut pending = vec![first];
                let deadline = Instant::now() + max_wait;
                while pending.len() < max_batch {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match rx.recv_timeout(deadline - now) {
                        Ok(req) => pending.push(req),
                        Err(_) => break,
                    }
                }
                let users: Vec<UserId> = pending.iter().map(|r| r.user).collect();
                let answers = engine.recommend_batch(&users);
                for (req, answer) in pending.into_iter().zip(answers) {
                    // A receiver that gave up is not an error for the batch.
                    let _ = req.reply.send(answer);
                }
            }
        });
        MicroBatcher {
            tx: Some(tx),
            worker: Some(worker),
        }
    }

    /// Submit one request and block for its answer.
    pub fn request(&self, user: UserId) -> Result<Arc<Vec<ItemId>>, ServeError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.tx
            .as_ref()
            .expect("batcher running")
            .send(Request {
                user,
                reply: reply_tx,
            })
            .expect("batch worker alive");
        reply_rx.recv().expect("batch worker answers")
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{FitConfig, FittedModel, ModelBundle};
    use crate::engine::EngineConfig;
    use ganc_dataset::synth::DatasetProfile;
    use ganc_preference::GeneralizedConfig;
    use ganc_recommender::pop::MostPopular;

    fn engine() -> Arc<ServingEngine> {
        let data = DatasetProfile::tiny().generate(7);
        let split = data.split_per_user(0.5, 2).unwrap();
        let theta = GeneralizedConfig::default().estimate(&split.train);
        let pop = MostPopular::fit(&split.train);
        let cfg = FitConfig {
            sample_size: 10,
            ..FitConfig::new(5)
        };
        let bundle = ModelBundle::fit(FittedModel::Pop(pop), theta, split.train, &cfg);
        Arc::new(ServingEngine::new(bundle, EngineConfig::default()))
    }

    #[test]
    fn batched_answers_match_direct_requests() {
        let e = engine();
        let batcher = MicroBatcher::spawn(Arc::clone(&e), BatchConfig::default());
        let n_users = e.n_users();
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let batcher = &batcher;
                let e = Arc::clone(&e);
                scope.spawn(move || {
                    for k in 0..50u32 {
                        let u = UserId((t * 13 + k) % n_users);
                        let batched = batcher.request(u).unwrap();
                        let direct = e.recommend(u).unwrap();
                        assert_eq!(batched, direct, "user {u:?}");
                    }
                });
            }
        });
    }

    #[test]
    fn unknown_user_error_propagates_through_batch() {
        let e = engine();
        let batcher = MicroBatcher::spawn(Arc::clone(&e), BatchConfig::default());
        let bad = UserId(e.n_users() + 5);
        assert_eq!(batcher.request(bad), Err(ServeError::UnknownUser(bad)));
    }

    #[test]
    fn drop_joins_worker_cleanly() {
        let e = engine();
        let batcher = MicroBatcher::spawn(e, BatchConfig::default());
        batcher.request(UserId(0)).unwrap();
        drop(batcher); // must not hang or panic
    }
}
