//! Micro-batching front door: coalesce concurrent single-user requests
//! into one batch call against a [`BatchSource`].
//!
//! Callers block on [`Coalescer::request_traced`]; a background worker
//! drains the queue, waits up to `max_wait` (the *linger*) for up to
//! `max_batch` requests to accumulate, and answers them with one
//! [`BatchSource::batch`] call. Two things get amortized:
//!
//! * against a local [`ServingEngine`] source, each serving worker's
//!   scorer/buffer setup is paid once per batch instead of per request;
//! * against a remote peer (the `ganc-http` router's `RemoteShard` hop),
//!   one HTTP round-trip replaces one-per-request — the wire win the
//!   coalescing layer exists for.
//!
//! Generation contract: every request coalesced into one batch is answered
//! from that batch's single generation (a [`BatchSource::batch`] call
//! reports exactly one), so coalescing can never hand two callers of the
//! same batch different model versions — the staleness invariant
//! `tests/remote_coalescing.rs` locks down under refit churn.
//!
//! Shutdown contract: [`Coalescer::shutdown`] (and `Drop`) closes the
//! queue and *flushes* — every request already accepted is answered before
//! the worker exits, and a pending linger is cut short the moment the
//! queue closes, so shutdown latency is one in-flight batch, not
//! `max_wait`.

use crate::engine::{ServeError, ServingEngine};
use ganc_dataset::{ItemId, UserId};
use std::convert::Infallible;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Batching knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Largest batch handed to the source at once.
    pub max_batch: usize,
    /// Longest a request waits for companions before the batch flushes
    /// (the linger bound). Queue shutdown cuts a pending linger short.
    pub max_wait: Duration,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            max_batch: 64,
            max_wait: Duration::from_micros(200),
        }
    }
}

/// Something that can answer a whole batch of single-user requests in one
/// call, reporting per-slot results and the **single** generation the
/// batch was served from.
///
/// `Error` is a whole-batch failure (e.g. the transport to a remote peer
/// died); it is cloned to every caller the batch coalesced.
pub trait BatchSource: Send + Sync + 'static {
    /// Whole-batch failure type. [`Infallible`] for in-process sources.
    type Error: Clone + Send + 'static;

    /// Answer `users` in one call. A successful answer MUST contain
    /// exactly `users.len()` slots, in order — the coalescer distributes
    /// them positionally, and a short answer would strand callers, so the
    /// contract is enforced (a violating implementation panics the batch
    /// worker). Transports that cannot trust their peer must validate
    /// before returning `Ok` (as the HTTP `RemoteShard` client does) and
    /// report a whole-batch `Err` instead.
    #[allow(clippy::type_complexity)]
    fn batch(
        &self,
        users: &[UserId],
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), Self::Error>;
}

/// A local serving engine never fails as a whole batch.
impl BatchSource for Arc<ServingEngine> {
    type Error = Infallible;

    fn batch(
        &self,
        users: &[UserId],
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), Infallible> {
        Ok(self.recommend_batch_traced(users))
    }
}

/// One caller's answer: the per-slot result plus the generation of the
/// batch it was coalesced into, or the whole batch's failure.
pub type CoalescedAnswer<E> = Result<(Result<Arc<Vec<ItemId>>, ServeError>, u64), E>;

struct Pending<E> {
    user: UserId,
    reply: mpsc::Sender<CoalescedAnswer<E>>,
}

/// A handle submitting single requests into the batching queue of some
/// [`BatchSource`]. [`MicroBatcher`] is the engine-backed special case.
pub struct Coalescer<S: BatchSource> {
    tx: Mutex<Option<mpsc::Sender<Pending<S::Error>>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
    /// Requests enqueued so far (bumped strictly *after* the send lands),
    /// monotonic. Paired with `answered` so `pending()` never over-counts
    /// a request that is still mid-submit — the injection tests wait on
    /// exact queue depths without sleeps.
    accepted: Arc<AtomicUsize>,
    /// Requests answered (or failed) by the worker, monotonic.
    answered: Arc<AtomicUsize>,
}

impl<S: BatchSource> Coalescer<S> {
    /// Start a batching worker over `source`.
    pub fn spawn(source: S, cfg: BatchConfig) -> Coalescer<S> {
        let (tx, rx) = mpsc::channel::<Pending<S::Error>>();
        let max_batch = cfg.max_batch.max(1);
        let max_wait = cfg.max_wait;
        let accepted = Arc::new(AtomicUsize::new(0));
        let answered = Arc::new(AtomicUsize::new(0));
        let worker = {
            let answered = Arc::clone(&answered);
            std::thread::spawn(move || {
                // Block for the first request of each batch; then collect
                // companions until the window closes, the batch fills, or
                // the queue shuts down (which flushes immediately).
                while let Ok(first) = rx.recv() {
                    let mut batch = vec![first];
                    let deadline = Instant::now() + max_wait;
                    // Backlog coalescing is free: drain whatever already
                    // queued (e.g. while the previous batch was in flight)
                    // before spending any linger budget.
                    while batch.len() < max_batch {
                        match rx.try_recv() {
                            Ok(req) => batch.push(req),
                            Err(_) => break,
                        }
                    }
                    // Then linger for stragglers.
                    while batch.len() < max_batch {
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        match rx.recv_timeout(deadline - now) {
                            Ok(req) => batch.push(req),
                            // Timeout ends the linger; Disconnected means
                            // shutdown started — flush what we have now.
                            Err(_) => break,
                        }
                    }
                    let users: Vec<UserId> = batch.iter().map(|r| r.user).collect();
                    let answer = source.batch(&users);
                    match answer {
                        Ok((slots, generation)) => {
                            // Release-mode check: a short answer would
                            // silently strand the unmatched callers on a
                            // dead reply channel; fail loudly at the
                            // source of the contract violation instead.
                            assert_eq!(
                                slots.len(),
                                batch.len(),
                                "BatchSource contract violation: {} slots for {} requests",
                                slots.len(),
                                batch.len()
                            );
                            for (req, slot) in batch.iter().zip(slots) {
                                // A receiver that gave up is not an error
                                // for the rest of the batch.
                                let _ = req.reply.send(Ok((slot, generation)));
                            }
                        }
                        Err(e) => {
                            for req in &batch {
                                let _ = req.reply.send(Err(e.clone()));
                            }
                        }
                    }
                    answered.fetch_add(batch.len(), Ordering::Release);
                }
            })
        };
        Coalescer {
            tx: Mutex::new(Some(tx)),
            worker: Mutex::new(Some(worker)),
            accepted,
            answered,
        }
    }

    /// Submit one request and block until its batch is answered: the
    /// per-slot result plus the single generation the whole batch shares.
    ///
    /// Panics if called after [`Coalescer::shutdown`].
    pub fn request_traced(&self, user: UserId) -> CoalescedAnswer<S::Error> {
        let tx = self
            .tx
            .lock()
            .unwrap()
            .as_ref()
            .cloned()
            .expect("coalescer running");
        let (reply_tx, reply_rx) = mpsc::channel();
        tx.send(Pending {
            user,
            reply: reply_tx,
        })
        .expect("batch worker alive");
        // Count strictly after the send: `pending() == n` must certify n
        // requests are really in the queue (or in the in-flight batch) —
        // never a caller still mid-submit.
        self.accepted.fetch_add(1, Ordering::Release);
        // The send is in: even if shutdown races us from here on, the
        // worker drains the queue before exiting, so this recv always gets
        // an answer (the flush-on-shutdown contract).
        drop(tx);
        reply_rx
            .recv()
            .expect("batch worker died before answering (BatchSource contract violation?)")
    }

    /// Requests enqueued but not yet answered. Transiently *under*-counts
    /// (a request being answered right as its caller finishes the submit
    /// accounting) but never over-counts, so waiting for `pending() == n`
    /// guarantees n requests are queued or in flight.
    pub fn pending(&self) -> usize {
        // `answered` first: reading it stale can only shrink the result.
        let answered = self.answered.load(Ordering::Acquire);
        self.accepted
            .load(Ordering::Acquire)
            .saturating_sub(answered)
    }

    /// Close the queue and flush: requests already accepted are answered,
    /// a pending linger ends immediately, then the worker is joined. New
    /// [`Coalescer::request_traced`] calls panic after this.
    pub fn shutdown(&self) {
        drop(self.tx.lock().unwrap().take());
        if let Some(worker) = self.worker.lock().unwrap().take() {
            let _ = worker.join();
        }
    }
}

impl<S: BatchSource> Drop for Coalescer<S> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The engine-backed micro-batcher: coalesces concurrent callers into
/// [`ServingEngine::recommend_batch`] calls.
///
/// Dropping the batcher closes the queue, flushes accepted requests, and
/// joins the worker.
pub struct MicroBatcher {
    inner: Coalescer<Arc<ServingEngine>>,
}

impl MicroBatcher {
    /// Start a batching worker over `engine`.
    pub fn spawn(engine: Arc<ServingEngine>, cfg: BatchConfig) -> MicroBatcher {
        MicroBatcher {
            inner: Coalescer::spawn(engine, cfg),
        }
    }

    /// Submit one request and block for its answer.
    pub fn request(&self, user: UserId) -> Result<Arc<Vec<ItemId>>, ServeError> {
        self.request_traced(user).map(|(list, _)| list)
    }

    /// Like [`MicroBatcher::request`], also reporting the generation of
    /// the engine batch this request was coalesced into.
    pub fn request_traced(&self, user: UserId) -> Result<(Arc<Vec<ItemId>>, u64), ServeError> {
        match self.inner.request_traced(user) {
            Ok((slot, generation)) => slot.map(|list| (list, generation)),
            Err(infallible) => match infallible {},
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{FitConfig, FittedModel, ModelBundle};
    use crate::engine::EngineConfig;
    use ganc_dataset::synth::DatasetProfile;
    use ganc_preference::GeneralizedConfig;
    use ganc_recommender::pop::MostPopular;

    fn engine() -> Arc<ServingEngine> {
        let data = DatasetProfile::tiny().generate(7);
        let split = data.split_per_user(0.5, 2).unwrap();
        let theta = GeneralizedConfig::default().estimate(&split.train);
        let pop = MostPopular::fit(&split.train);
        let cfg = FitConfig {
            sample_size: 10,
            ..FitConfig::new(5)
        };
        let bundle = ModelBundle::fit(FittedModel::Pop(pop), theta, split.train, &cfg);
        Arc::new(ServingEngine::new(bundle, EngineConfig::default()))
    }

    #[test]
    fn batched_answers_match_direct_requests() {
        let e = engine();
        let batcher = MicroBatcher::spawn(Arc::clone(&e), BatchConfig::default());
        let n_users = e.n_users();
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let batcher = &batcher;
                let e = Arc::clone(&e);
                scope.spawn(move || {
                    for k in 0..50u32 {
                        let u = UserId((t * 13 + k) % n_users);
                        let batched = batcher.request(u).unwrap();
                        let direct = e.recommend(u).unwrap();
                        assert_eq!(batched, direct, "user {u:?}");
                    }
                });
            }
        });
    }

    #[test]
    fn unknown_user_error_propagates_through_batch() {
        let e = engine();
        let batcher = MicroBatcher::spawn(Arc::clone(&e), BatchConfig::default());
        let bad = UserId(e.n_users() + 5);
        assert_eq!(batcher.request(bad), Err(ServeError::UnknownUser(bad)));
    }

    #[test]
    fn traced_requests_report_the_engine_generation() {
        let e = engine();
        let batcher = MicroBatcher::spawn(Arc::clone(&e), BatchConfig::default());
        let (list, generation) = batcher.request_traced(UserId(0)).unwrap();
        assert_eq!(generation, 0);
        assert_eq!(list, e.recommend(UserId(0)).unwrap());
    }

    #[test]
    fn drop_joins_worker_cleanly() {
        let e = engine();
        let batcher = MicroBatcher::spawn(e, BatchConfig::default());
        batcher.request(UserId(0)).unwrap();
        drop(batcher); // must not hang or panic
    }
}
