//! θ-band sharded serving: partition users by their long-tail preference
//! so each shard holds only the coverage-snapshot sub-range its band needs,
//! with a router dispatching single requests and splitting batches.
//!
//! The paper assigns every user a θ on the accuracy/coverage trade-off
//! curve, and a user's request only ever reads the frequency snapshot
//! nearest their θ — so the snapshot store shards *cleanly* along θ:
//! [`ganc_core::coverage::CoverageSnapshots::slice_band`] gives each band
//! the sub-range any of its θs can resolve to, and resolution through the
//! slice is provably identical to resolution through the full store. That
//! turns multi-node deployment into a routing problem: a node loads one
//! [`ModelBundle::slice_theta_band`] artifact and serves its band, nothing
//! else.
//!
//! [`ShardedEngine`] runs the same topology in-process: one
//! [`ServingEngine`] per band over a sliced bundle, an outer `RwLock` that
//! makes bundle hot-swaps atomic across *all* shards (see
//! [`crate::refit`]), and an ingest path that fans each interaction to
//! every shard — popularity is global state every replica tracks, while the
//! ingesting user's candidate exclusion only matters on the shard that
//! serves them. Output is byte-identical to an unsharded engine by
//! construction, which `tests/shard_equivalence.rs` checks exhaustively.

use crate::bundle::ModelBundle;
use crate::engine::{EngineConfig, EngineStats, ServeError, ServingEngine};
use crate::saveload::{PersistError, SaveLoad};
use crate::wal::{DurableConfig, DurableLog, IngestAck, WalReplaySummary, WalStats};
use ganc_core::query::{band_bounds, cut_theta_bands, shard_of, RequestOptions};
use ganc_dataset::{ItemId, UserId};
use ganc_obs::{Counter, Gauge, ObsHub, TraceData, WindowFold, WindowStats, WindowWire};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Duration;

/// How the θ axis is cut into bands.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardPlan {
    /// `S` bands of (approximately) equal user population, cut at θ
    /// quantiles ([`cut_theta_bands`]). Rebalancing after a refit re-cuts
    /// against the refitted θ estimates.
    Quantile(usize),
    /// Explicit ascending cut points (possibly uneven); `k` cuts make
    /// `k + 1` bands. Kept verbatim across refits.
    Explicit(Vec<f64>),
}

impl ShardPlan {
    /// Resolve the plan into concrete cut points for a θ population.
    pub fn cuts(&self, theta: &[f64]) -> Vec<f64> {
        match self {
            ShardPlan::Quantile(shards) => cut_theta_bands(theta, *shards),
            ShardPlan::Explicit(cuts) => {
                assert!(
                    cuts.windows(2).all(|w| w[0] <= w[1]),
                    "explicit cuts must be ascending"
                );
                cuts.clone()
            }
        }
    }
}

/// Sharded-engine construction knobs.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// θ-band layout.
    pub plan: ShardPlan,
    /// Per-shard engine tuning.
    pub engine: EngineConfig,
}

impl ShardConfig {
    /// `shards` equal-population bands with default engine tuning.
    pub fn quantile(shards: usize) -> ShardConfig {
        ShardConfig {
            plan: ShardPlan::Quantile(shards),
            engine: EngineConfig::default(),
        }
    }
}

/// Static description of one shard, fixed per generation.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardInfo {
    /// Band lower bound (−∞ for the first shard).
    pub theta_lo: f64,
    /// Band upper bound, exclusive (+∞ for the last shard).
    pub theta_hi: f64,
    /// Users routed to this shard.
    pub users: usize,
    /// Snapshots the shard's coverage sub-range holds (0 for Rand/Stat).
    pub snapshots: usize,
    /// Serialized bytes of the shard's coverage state — the per-shard
    /// memory that is `O(band)` instead of `O(S·|I|)`.
    pub coverage_bytes: usize,
}

/// One generation's complete shard topology. Swapped wholesale under the
/// outer lock so a refit replaces every shard atomically.
struct ShardSet {
    engines: Vec<ServingEngine>,
    info: Vec<ShardInfo>,
    /// Per-user shard index, derived from the bundle's θ and the cuts.
    user_shard: Vec<u16>,
    /// The ascending θ cut points this generation was built with — the
    /// routing table a per-request θ override resolves through
    /// ([`shard_of`]): the overridden request runs on the band that *owns*
    /// that θ (whose snapshot sub-range can resolve it), not the user's
    /// home band.
    cuts: Vec<f64>,
    /// The unsliced bundle this generation was built from — the baseline
    /// the next refit merges ingested interactions into. Shared (`Arc`)
    /// with the [`crate::refit::RefitOutcome`] that installed it, so
    /// installing never deep-copies the bundle.
    bundle: Arc<ModelBundle>,
    generation: u64,
}

impl ShardSet {
    fn build(
        bundle: Arc<ModelBundle>,
        plan: &ShardPlan,
        engine_cfg: EngineConfig,
        generation: u64,
    ) -> ShardSet {
        let cuts = plan.cuts(&bundle.theta);
        let shards = cuts.len() + 1;
        assert!(shards <= u16::MAX as usize, "shard count exceeds router");
        let user_shard: Vec<u16> = bundle
            .theta
            .iter()
            .map(|&t| shard_of(&cuts, t) as u16)
            .collect();
        let mut engines = Vec::with_capacity(shards);
        let mut info = Vec::with_capacity(shards);
        for j in 0..shards {
            let (lo, hi) = band_bounds(&cuts, j);
            let sliced = bundle.slice_theta_band(lo, hi);
            let snapshots = match &sliced.coverage {
                crate::bundle::CoverageState::Dynamic(s) => s.len(),
                _ => 0,
            };
            let coverage_bytes = bincode::serialize(&sliced.coverage)
                .map(|b| b.len())
                .unwrap_or(0);
            info.push(ShardInfo {
                theta_lo: lo,
                theta_hi: hi,
                users: user_shard.iter().filter(|&&s| s as usize == j).count(),
                snapshots,
                coverage_bytes,
            });
            engines.push(ServingEngine::new(sliced, engine_cfg));
        }
        ShardSet {
            engines,
            info,
            user_shard,
            cuts,
            bundle,
            generation,
        }
    }

    /// Apply one ingested interaction to every shard: the popularity bump
    /// is global state all replicas must track; the candidate exclusion
    /// only matters on the owner shard but is consistent everywhere.
    fn apply_ingest(&self, user: UserId, item: ItemId, rating: f32) -> Result<(), ServeError> {
        for engine in &self.engines {
            engine.ingest(user, item, rating)?;
        }
        Ok(())
    }
}

/// A θ-band sharded serving engine: byte-identical output to a single
/// [`ServingEngine`] over the same bundle, with per-band coverage state and
/// per-band request parallelism.
pub struct ShardedEngine {
    set: RwLock<ShardSet>,
    /// Interactions ingested since the current baseline bundle was fitted,
    /// in arrival order — the refit path's input (see [`crate::refit`]).
    ingest_log: Mutex<Vec<(UserId, ItemId, f32)>>,
    engine_cfg: EngineConfig,
    plan: ShardPlan,
    /// Optional observability ([`ShardedEngine::attach_obs`]): the hub and
    /// window span to thread onto every generation's band engines, plus
    /// refit lifecycle counters.
    obs: OnceLock<ShardObs>,
    /// Optional durability ([`ShardedEngine::attach_durable`]): the WAL +
    /// dedup window every acknowledged ingest goes through.
    durable: OnceLock<Arc<DurableLog>>,
}

/// Shard-level observability state: what every new generation's engines
/// are attached with, plus the refit lifecycle instruments.
struct ShardObs {
    hub: Arc<ObsHub>,
    window: Duration,
    refit_started: Arc<Counter>,
    refit_swapped: Arc<Counter>,
    refit_raced: Arc<Counter>,
    pending_gauge: Arc<Gauge>,
    generation_gauge: Arc<Gauge>,
}

impl ShardObs {
    fn new(hub: Arc<ObsHub>, window: Duration) -> ShardObs {
        let m = &hub.metrics;
        let refit_started = m.counter("ganc_refit_started_total", "Refit passes started", &[]);
        let refit_swapped = m.counter(
            "ganc_refit_swapped_total",
            "Refit passes that installed a new generation",
            &[],
        );
        let refit_raced = m.counter(
            "ganc_refit_raced_total",
            "Refit passes discarded after losing the install race",
            &[],
        );
        let pending_gauge = m.gauge(
            "ganc_refit_pending_ingests",
            "Ingest-log entries awaiting the next refit",
            &[],
        );
        let generation_gauge = m.gauge(
            "ganc_shard_generation",
            "Shard-set generation currently served",
            &[],
        );
        ShardObs {
            hub,
            window,
            refit_started,
            refit_swapped,
            refit_raced,
            pending_gauge,
            generation_gauge,
        }
    }

    /// Attach per-band engine observability to a shard set's engines.
    fn attach_engines(&self, set: &ShardSet) {
        for (j, engine) in set.engines.iter().enumerate() {
            engine.attach_obs(Arc::clone(&self.hub), Some(j as u32), self.window);
        }
    }
}

// Lock discipline: outer `set` lock before `ingest_log`, and outer before
// any inner engine lock. Requests hold the outer read side; ingests and
// refit swaps take the outer write side — an ingest mutates *every* shard,
// and holding the write lock is what keeps a multi-shard batch from
// observing some shards pre-ingest and others post-ingest (the same batch
// atomicity the unsharded engine gets from its single state lock).
impl ShardedEngine {
    /// Shard a fitted bundle and start serving.
    pub fn new(bundle: ModelBundle, cfg: ShardConfig) -> ShardedEngine {
        ShardedEngine {
            set: RwLock::new(ShardSet::build(Arc::new(bundle), &cfg.plan, cfg.engine, 0)),
            ingest_log: Mutex::new(Vec::new()),
            engine_cfg: cfg.engine,
            plan: cfg.plan,
            obs: OnceLock::new(),
            durable: OnceLock::new(),
        }
    }

    /// Attach observability: per-band metric series and rolling windows on
    /// the current generation's engines (re-attached automatically to every
    /// generation a refit installs), plus refit lifecycle counters and
    /// trace events on `hub`. One-shot; a second attach is a no-op.
    pub fn attach_obs(&self, hub: Arc<ObsHub>, window: Duration) {
        let obs = ShardObs::new(hub, window);
        let set = self.set.read().unwrap();
        obs.attach_engines(&set);
        obs.generation_gauge.set(set.generation as f64);
        drop(set);
        let _ = self.obs.set(obs);
        // Either attach order works: whichever of obs/durable arrives
        // second threads the WAL counters through.
        if let (Some(obs), Some(durable)) = (self.obs.get(), self.durable.get()) {
            durable.attach_obs(Arc::clone(&obs.hub));
        }
    }

    /// Attach a write-ahead log: open (or create) the WAL at `cfg.path`,
    /// replay whatever survives through the normal ingest path, and route
    /// every subsequent ingest through the log before acknowledgement.
    /// One-shot; must happen before serving starts (a second attach is
    /// refused). Returns what the startup replay recovered.
    ///
    /// Fails with `InvalidData` if a recovered interaction is outside the
    /// bundle's id space — a WAL paired with the wrong artifact is a
    /// deployment error worth refusing loudly, not a reason to silently
    /// drop acknowledged ratings.
    pub fn attach_durable(&self, cfg: DurableConfig) -> std::io::Result<WalReplaySummary> {
        let (log, recovered) = DurableLog::open(cfg)?;
        let summary = log.replay_summary();
        #[allow(clippy::readonly_write_lock)]
        let set = self.set.write().unwrap();
        for &(u, i, _) in &recovered {
            if u.idx() >= set.bundle.n_users() as usize || i.idx() >= set.bundle.n_items() as usize
            {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "WAL record (user {}, item {}) is outside the artifact's id space",
                        u.0, i.0
                    ),
                ));
            }
        }
        // Recovered interactions re-enter through the normal path — refit
        // log then shards, keeping the WAL's pending records 1:1 with the
        // log — but are NOT re-appended (they are already in the WAL).
        let mut ingest_log = self.ingest_log.lock().unwrap();
        for &(u, i, r) in &recovered {
            ingest_log.push((u, i, r));
            set.apply_ingest(u, i, r)
                .expect("validated against the bundle above");
        }
        drop(ingest_log);
        drop(set);
        self.durable
            .set(Arc::new(log))
            .map_err(|_| std::io::Error::other("durable log already attached"))?;
        if let (Some(obs), Some(durable)) = (self.obs.get(), self.durable.get()) {
            durable.attach_obs(Arc::clone(&obs.hub));
        }
        Ok(summary)
    }

    /// The attached durable log, when any ([`crate::refit`] truncates it
    /// after a swap).
    pub(crate) fn durable(&self) -> Option<&Arc<DurableLog>> {
        self.durable.get()
    }

    /// WAL counters and sizes, when a durable log is attached.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.durable.get().map(|d| d.stats())
    }

    /// Per-band rolling-window metrics plus their cross-band aggregate
    /// (coverage over the **union** of served items), when observability is
    /// attached.
    pub fn window_stats(&self) -> Option<(Vec<WindowStats>, WindowStats)> {
        self.obs.get()?;
        let set = self.set.read().unwrap();
        let mut fold = WindowFold::new(set.bundle.n_items() as usize);
        let mut bands = Vec::with_capacity(set.engines.len());
        for engine in &set.engines {
            let obs = engine
                .engine_obs()
                .expect("attach_obs threads onto every generation");
            bands.push(obs.fold_window(&mut fold));
        }
        Some((bands, fold.stats()))
    }

    /// The cross-band aggregate window as one transportable summary,
    /// when observability is attached — a sharded node answers a
    /// router's window fetch with its bands already unioned.
    pub fn window_wire(&self) -> Option<WindowWire> {
        self.obs.get()?;
        let set = self.set.read().unwrap();
        let mut fold = WindowFold::new(set.bundle.n_items() as usize);
        for engine in &set.engines {
            let obs = engine
                .engine_obs()
                .expect("attach_obs threads onto every generation");
            obs.fold_window(&mut fold);
        }
        Some(fold.wire())
    }

    /// Refit lifecycle hooks, called by [`crate::refit`].
    pub(crate) fn obs_refit_started(&self, generation: u64, pending: u64) {
        if let Some(obs) = self.obs.get() {
            obs.refit_started.inc();
            obs.pending_gauge.set(pending as f64);
            obs.hub.trace.record(
                obs.hub.now_us(),
                TraceData::RefitStarted {
                    generation,
                    pending,
                },
            );
        }
    }

    pub(crate) fn obs_refit_swapped(&self, generation: u64) {
        if let Some(obs) = self.obs.get() {
            obs.refit_swapped.inc();
            obs.generation_gauge.set(generation as f64);
            obs.pending_gauge.set(self.pending_ingests() as f64);
            obs.hub
                .trace
                .record(obs.hub.now_us(), TraceData::RefitSwapped { generation });
        }
    }

    pub(crate) fn obs_refit_raced(&self, generation: u64) {
        if let Some(obs) = self.obs.get() {
            obs.refit_raced.inc();
            obs.hub
                .trace
                .record(obs.hub.now_us(), TraceData::RefitRaced { generation });
        }
    }

    /// Answer one user's top-N request from their θ band's shard.
    pub fn recommend(&self, user: UserId) -> Result<Arc<Vec<ItemId>>, ServeError> {
        self.recommend_traced(user).map(|(list, _)| list)
    }

    /// Like [`ShardedEngine::recommend`], reporting the shard-set
    /// generation the response was served from. The generation is read
    /// under the same outer lock hold that serves the request, so the pair
    /// is exact — a concurrent refit swap can never tear it.
    pub fn recommend_traced(&self, user: UserId) -> Result<(Arc<Vec<ItemId>>, u64), ServeError> {
        let set = self.set.read().unwrap();
        let Some(&shard) = set.user_shard.get(user.idx()) else {
            return Err(ServeError::UnknownUser(user));
        };
        let list = set.engines[shard as usize].recommend(user)?;
        Ok((list, set.generation))
    }

    /// Answer a batch of requests, splitting it across shards (one worker
    /// thread per shard touched). Results come back in request order, the
    /// whole batch served from one shard-set generation.
    #[allow(clippy::type_complexity)]
    pub fn recommend_batch(&self, users: &[UserId]) -> Vec<Result<Arc<Vec<ItemId>>, ServeError>> {
        self.recommend_batch_traced(users).0
    }

    /// Like [`ShardedEngine::recommend_batch`], also reporting the single
    /// generation the batch was served from.
    #[allow(clippy::type_complexity)]
    pub fn recommend_batch_traced(
        &self,
        users: &[UserId],
    ) -> (Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64) {
        let set = self.set.read().unwrap();
        let generation = set.generation;
        let mut results: Vec<Option<Result<Arc<Vec<ItemId>>, ServeError>>> =
            vec![None; users.len()];
        // Split the batch by owning shard, keeping request positions.
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); set.engines.len()];
        for (k, u) in users.iter().enumerate() {
            match set.user_shard.get(u.idx()) {
                Some(&s) => per_shard[s as usize].push(k),
                None => results[k] = Some(Err(ServeError::UnknownUser(*u))),
            }
        }
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (shard, idxs) in per_shard.into_iter().enumerate() {
                if idxs.is_empty() {
                    continue;
                }
                let engine = &set.engines[shard];
                handles.push(scope.spawn(move || {
                    let sub: Vec<UserId> = idxs.iter().map(|&k| users[k]).collect();
                    let answers = engine.recommend_batch(&sub);
                    idxs.into_iter().zip(answers).collect::<Vec<_>>()
                }));
            }
            for h in handles {
                for (k, answer) in h.join().expect("shard worker panicked") {
                    results[k] = Some(answer);
                }
            }
        });
        (
            results.into_iter().map(|r| r.unwrap()).collect(),
            generation,
        )
    }

    /// Answer one request with per-request overrides. A θ override routes
    /// through the generation's cut points to the band that **owns** that θ
    /// ([`shard_of`]) — the only band whose coverage sub-range can resolve
    /// it — instead of the user's home band; all other overrides run on the
    /// home band. A default `opts` delegates to the unmodified default
    /// path.
    pub fn recommend_with_traced(
        &self,
        user: UserId,
        opts: &RequestOptions,
    ) -> Result<(Arc<Vec<ItemId>>, u64), ServeError> {
        if opts.is_default() {
            return self.recommend_traced(user);
        }
        let set = self.set.read().unwrap();
        let Some(&home) = set.user_shard.get(user.idx()) else {
            return Err(ServeError::UnknownUser(user));
        };
        let shard = match opts.theta {
            Some(t) => shard_of(&set.cuts, t),
            None => home as usize,
        };
        let (list, _) = set.engines[shard].recommend_with_traced(user, opts)?;
        Ok((list, set.generation))
    }

    /// Batch counterpart of [`ShardedEngine::recommend_with_traced`]: a θ
    /// override sends the whole batch to the band that owns that θ; other
    /// overrides split per home band as usual. A default `opts` delegates
    /// to the unmodified batch path.
    #[allow(clippy::type_complexity)]
    pub fn recommend_batch_with_traced(
        &self,
        users: &[UserId],
        opts: &RequestOptions,
    ) -> (Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64) {
        if opts.is_default() {
            return self.recommend_batch_traced(users);
        }
        let set = self.set.read().unwrap();
        let generation = set.generation;
        let theta_shard = opts.theta.map(|t| shard_of(&set.cuts, t));
        let mut results: Vec<Option<Result<Arc<Vec<ItemId>>, ServeError>>> =
            vec![None; users.len()];
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); set.engines.len()];
        for (k, u) in users.iter().enumerate() {
            match set.user_shard.get(u.idx()) {
                Some(&home) => per_shard[theta_shard.unwrap_or(home as usize)].push(k),
                None => results[k] = Some(Err(ServeError::UnknownUser(*u))),
            }
        }
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (shard, idxs) in per_shard.into_iter().enumerate() {
                if idxs.is_empty() {
                    continue;
                }
                let engine = &set.engines[shard];
                handles.push(scope.spawn(move || {
                    let sub: Vec<UserId> = idxs.iter().map(|&k| users[k]).collect();
                    let (answers, _) = engine.recommend_batch_with_traced(&sub, opts);
                    idxs.into_iter().zip(answers).collect::<Vec<_>>()
                }));
            }
            for h in handles {
                for (k, answer) in h.join().expect("shard worker panicked") {
                    results[k] = Some(answer);
                }
            }
        });
        (
            results.into_iter().map(|r| r.unwrap()).collect(),
            generation,
        )
    }

    /// Ingest one observed interaction: recorded in the refit log and
    /// fanned out to every shard (each replica tracks global popularity;
    /// the user's candidate exclusion lands on their own shard too).
    ///
    /// Takes the outer write lock — the ingest mutates all shards, and
    /// requests (which hold the read side) must observe either none or all
    /// of it, never a half-applied fan-out mid-batch.
    pub fn ingest(&self, user: UserId, item: ItemId, rating: f32) -> Result<(), ServeError> {
        self.ingest_keyed(None, user, item, rating).map(|_| ())
    }

    /// Like [`ShardedEngine::ingest`], with an optional idempotency key.
    /// On a durable engine the interaction hits the WAL before anything
    /// else (and before the caller is acknowledged); a key already inside
    /// the dedup window short-circuits to
    /// [`IngestAck::Deduplicated`] without touching the log or any shard.
    // The guard is never written *through* (shard mutation goes via the
    // inner engines' own locks); the write side is held purely for its
    // exclusion against in-flight batches.
    #[allow(clippy::readonly_write_lock)]
    pub fn ingest_keyed(
        &self,
        key: Option<&str>,
        user: UserId,
        item: ItemId,
        rating: f32,
    ) -> Result<IngestAck, ServeError> {
        let set = self.set.write().unwrap();
        // Validate against the baseline bundle before touching anything so
        // a rejected ingest leaves neither the WAL, the log, nor any shard
        // modified.
        if user.idx() >= set.bundle.n_users() as usize {
            return Err(ServeError::UnknownUser(user));
        }
        if item.idx() >= set.bundle.n_items() as usize {
            return Err(ServeError::UnknownItem(item));
        }
        // WAL first (still under the outer write lock, so WAL order, log
        // order, and shard application order all agree), then the refit
        // log, then the shards: a refit swap can never observe the shards
        // ahead of the log, and a crash after the WAL append replays an
        // interaction the client may not have seen acknowledged — which
        // the oracle tolerates because applying it is what the client
        // retry would have done anyway.
        if let Some(durable) = self.durable.get() {
            match durable.append(key, set.generation, user, item, rating) {
                Ok(IngestAck::Deduplicated) => return Ok(IngestAck::Deduplicated),
                Ok(IngestAck::Applied) => {}
                Err(_) => return Err(ServeError::Durability),
            }
        }
        self.ingest_log.lock().unwrap().push((user, item, rating));
        set.apply_ingest(user, item, rating)?;
        Ok(IngestAck::Applied)
    }

    /// Drop every shard's cached responses.
    pub fn flush_cache(&self) {
        let set = self.set.read().unwrap();
        for engine in &set.engines {
            engine.flush_cache();
        }
    }

    /// The current shard-set generation (0 until the first refit swap).
    pub fn generation(&self) -> u64 {
        self.set.read().unwrap().generation
    }

    /// Number of shards in the current generation.
    pub fn shards(&self) -> usize {
        self.set.read().unwrap().engines.len()
    }

    /// Static per-shard layout of the current generation.
    pub fn shard_info(&self) -> Vec<ShardInfo> {
        self.set.read().unwrap().info.clone()
    }

    /// Aggregate counters across all shards of the current generation.
    pub fn stats(&self) -> EngineStats {
        let set = self.set.read().unwrap();
        let mut total = EngineStats {
            cache_hits: 0,
            cache_misses: 0,
            ingested: 0,
            invalidated: 0,
            cached: 0,
        };
        for engine in &set.engines {
            let s = engine.stats();
            total.cache_hits += s.cache_hits;
            total.cache_misses += s.cache_misses;
            total.ingested += s.ingested;
            total.invalidated += s.invalidated;
            total.cached += s.cached;
        }
        total
    }

    /// List size `N` this engine serves.
    pub fn n(&self) -> usize {
        self.set.read().unwrap().bundle.n
    }

    /// Number of users the current bundle covers.
    pub fn n_users(&self) -> u32 {
        self.set.read().unwrap().bundle.n_users()
    }

    /// Interactions ingested since the current baseline bundle was fitted.
    pub fn pending_ingests(&self) -> usize {
        self.ingest_log.lock().unwrap().len()
    }

    /// The current baseline bundle (the refit merge base), shared.
    pub fn baseline_bundle(&self) -> Arc<ModelBundle> {
        Arc::clone(&self.set.read().unwrap().bundle)
    }

    /// Write one [`ModelBundle::slice_theta_band`] artifact per shard of
    /// the current generation next to `base` (see [`shard_artifact_path`])
    /// — the deployment unit a multi-node rollout distributes. Returns the
    /// written paths in shard order.
    pub fn save_shard_artifacts(
        &self,
        base: impl AsRef<Path>,
    ) -> Result<Vec<PathBuf>, PersistError> {
        let set = self.set.read().unwrap();
        let cuts: Vec<f64> = set.info[1..].iter().map(|i| i.theta_lo).collect();
        save_shard_artifacts(&set.bundle, &cuts, base)
    }

    /// Internal hook for [`crate::refit`]: the current generation, the
    /// shared baseline bundle, and a snapshot of the ingest log.
    pub(crate) fn refit_snapshot(&self) -> (u64, Arc<ModelBundle>, Vec<(UserId, ItemId, f32)>) {
        let set = self.set.read().unwrap();
        let log = self.ingest_log.lock().unwrap();
        (set.generation, Arc::clone(&set.bundle), log.clone())
    }

    /// Internal hook for [`crate::refit`]: atomically install a refitted
    /// bundle. `consumed` is how many log entries the refit merged; the
    /// remainder (ingests that raced the background fit) is replayed onto
    /// the new shards before they go live. Returns the new generation, or
    /// `None` if `expected_generation` no longer matches (a competing swap
    /// won).
    pub(crate) fn install_refit(
        &self,
        expected_generation: u64,
        bundle: Arc<ModelBundle>,
        consumed: usize,
    ) -> Option<u64> {
        // Build the new topology outside the write lock: slicing and
        // engine construction are the expensive part, and the old
        // generation keeps serving throughout.
        let new_set = ShardSet::build(bundle, &self.plan, self.engine_cfg, expected_generation + 1);
        // Thread observability onto the new generation's engines before
        // they go live (same metric series as the outgoing generation —
        // the registry hands back the existing per-band atomics).
        if let Some(obs) = self.obs.get() {
            obs.attach_engines(&new_set);
        }
        let mut set = self.set.write().unwrap();
        if set.generation != expected_generation {
            return None;
        }
        let mut log = self.ingest_log.lock().unwrap();
        let consumed = consumed.min(log.len());
        log.drain(..consumed);
        // Replay ingests that arrived while the fit ran, so the swap loses
        // nothing: they stay in the log for the *next* refit and are live
        // in the new shards immediately.
        for &(u, i, r) in log.iter() {
            // The refitted bundle spans the same id space; replay cannot
            // fail for entries the old generation accepted.
            new_set
                .apply_ingest(u, i, r)
                .expect("refit bundle must cover previously accepted ids");
        }
        let generation = new_set.generation;
        *set = new_set;
        Some(generation)
    }
}

/// The per-shard artifact path next to a base artifact path:
/// `bundle.ganc` → `bundle.shard3.ganc` for shard 3.
pub fn shard_artifact_path(base: impl AsRef<Path>, shard: usize) -> PathBuf {
    let base = base.as_ref();
    let stem = base
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bundle");
    let ext = base.extension().and_then(|s| s.to_str()).unwrap_or("ganc");
    base.with_file_name(format!("{stem}.shard{shard}.{ext}"))
}

/// Slice `bundle` into `cuts.len() + 1` θ-band artifacts and save each —
/// the deployment path for multi-node serving: every node loads exactly one
/// slice and serves its band. Returns the written paths in shard order.
pub fn save_shard_artifacts(
    bundle: &ModelBundle,
    cuts: &[f64],
    base: impl AsRef<Path>,
) -> Result<Vec<PathBuf>, PersistError> {
    let mut paths = Vec::with_capacity(cuts.len() + 1);
    for j in 0..=cuts.len() {
        let (lo, hi) = band_bounds(cuts, j);
        let path = shard_artifact_path(&base, j);
        bundle.slice_theta_band(lo, hi).save(&path)?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{FitConfig, FittedModel};
    use ganc_core::coverage::CoverageKind;
    use ganc_dataset::synth::DatasetProfile;
    use ganc_preference::GeneralizedConfig;
    use ganc_recommender::pop::MostPopular;

    fn bundle(kind: CoverageKind) -> ModelBundle {
        let data = DatasetProfile::tiny().generate(5);
        let split = data.split_per_user(0.5, 2).unwrap();
        let theta = GeneralizedConfig::default().estimate(&split.train);
        let pop = MostPopular::fit(&split.train);
        let cfg = FitConfig {
            coverage: kind,
            sample_size: 12,
            ..FitConfig::new(5)
        };
        ModelBundle::fit(FittedModel::Pop(pop), theta, split.train, &cfg)
    }

    #[test]
    fn sharded_matches_unsharded_for_every_user() {
        for kind in [
            CoverageKind::Random,
            CoverageKind::Static,
            CoverageKind::Dynamic,
        ] {
            let b = bundle(kind);
            let single = ServingEngine::new(b.clone(), EngineConfig::default());
            let sharded = ShardedEngine::new(b, ShardConfig::quantile(3));
            for u in 0..sharded.n_users() {
                assert_eq!(
                    sharded.recommend(UserId(u)).unwrap(),
                    single.recommend(UserId(u)).unwrap(),
                    "{kind:?} user {u}"
                );
            }
        }
    }

    #[test]
    fn batch_split_preserves_order_and_errors() {
        let b = bundle(CoverageKind::Dynamic);
        let sharded = ShardedEngine::new(b, ShardConfig::quantile(4));
        let n = sharded.n_users();
        let bad = UserId(n + 3);
        let users = vec![UserId(2), bad, UserId(0), UserId(1), UserId(2)];
        let (answers, generation) = sharded.recommend_batch_traced(&users);
        assert_eq!(generation, 0);
        assert_eq!(answers[1], Err(ServeError::UnknownUser(bad)));
        for (k, u) in users.iter().enumerate() {
            if k == 1 {
                continue;
            }
            assert_eq!(
                answers[k].as_ref().unwrap(),
                &sharded.recommend(*u).unwrap(),
                "slot {k}"
            );
        }
    }

    #[test]
    fn ingest_fans_out_and_logs() {
        let b = bundle(CoverageKind::Static);
        let single = ServingEngine::new(b.clone(), EngineConfig::default());
        let sharded = ShardedEngine::new(b, ShardConfig::quantile(3));
        let u = UserId(1);
        let before = sharded.recommend(u).unwrap();
        let consumed = before[0];
        sharded.ingest(u, consumed, 5.0).unwrap();
        single.ingest(u, consumed, 5.0).unwrap();
        assert_eq!(sharded.pending_ingests(), 1);
        for q in 0..sharded.n_users() {
            assert_eq!(
                sharded.recommend(UserId(q)).unwrap(),
                single.recommend(UserId(q)).unwrap(),
                "user {q} diverges after ingest"
            );
        }
        let bad = UserId(sharded.n_users() + 1);
        assert_eq!(
            sharded.ingest(bad, ItemId(0), 3.0),
            Err(ServeError::UnknownUser(bad))
        );
        assert_eq!(sharded.pending_ingests(), 1, "rejected ingest not logged");
    }

    #[test]
    fn shard_info_reports_band_local_state() {
        let b = bundle(CoverageKind::Dynamic);
        let total_snaps = match &b.coverage {
            crate::bundle::CoverageState::Dynamic(s) => s.len(),
            _ => unreachable!(),
        };
        let sharded = ShardedEngine::new(b, ShardConfig::quantile(4));
        let info = sharded.shard_info();
        assert_eq!(info.len(), 4);
        assert_eq!(
            info.iter().map(|i| i.users).sum::<usize>() as u32,
            sharded.n_users()
        );
        for w in info.windows(2) {
            assert_eq!(w[0].theta_hi, w[1].theta_lo);
        }
        assert_eq!(info[0].theta_lo, f64::NEG_INFINITY);
        assert_eq!(info[3].theta_hi, f64::INFINITY);
        // Each band holds a strict subset of the snapshots (bands overlap
        // only at boundary snapshots).
        for i in &info {
            assert!(i.snapshots >= 1);
            assert!(i.snapshots <= total_snaps);
            assert!(i.coverage_bytes > 0);
        }
        assert!(
            info.iter().any(|i| i.snapshots < total_snaps),
            "at least one shard must hold a strict sub-range"
        );
    }

    #[test]
    fn explicit_uneven_cuts_still_serve_exactly() {
        let b = bundle(CoverageKind::Dynamic);
        let single = ServingEngine::new(b.clone(), EngineConfig::default());
        let cfg = ShardConfig {
            plan: ShardPlan::Explicit(vec![0.03, 0.04, 0.9]),
            engine: EngineConfig::default(),
        };
        let sharded = ShardedEngine::new(b, cfg);
        assert_eq!(sharded.shards(), 4);
        for u in 0..sharded.n_users() {
            assert_eq!(
                sharded.recommend(UserId(u)).unwrap(),
                single.recommend(UserId(u)).unwrap(),
                "user {u}"
            );
        }
    }

    #[test]
    fn shard_artifacts_round_trip_and_serve_their_band() {
        let b = bundle(CoverageKind::Dynamic);
        let sharded = ShardedEngine::new(b.clone(), ShardConfig::quantile(3));
        let dir = std::env::temp_dir().join("ganc_shard_artifacts");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("bundle.ganc");
        let paths = sharded.save_shard_artifacts(&base).unwrap();
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[1], dir.join("bundle.shard1.ganc"));
        // A "node" loads one slice and serves its own band identically.
        let info = sharded.shard_info();
        for (j, path) in paths.iter().enumerate() {
            let slice = ModelBundle::load(path).unwrap();
            let node = ServingEngine::new(slice, EngineConfig::default());
            for u in 0..b.n_users() {
                let t = b.theta[u as usize];
                if t >= info[j].theta_lo && t < info[j].theta_hi {
                    assert_eq!(
                        node.recommend(UserId(u)).unwrap(),
                        sharded.recommend(UserId(u)).unwrap(),
                        "shard {j} user {u}"
                    );
                }
            }
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn shards_share_train_model_theta_allocations() {
        // The ROADMAP fix: an in-process ShardedEngine must not clone the
        // train set, the fitted model, or the θ vector per shard — every
        // slice points at the baseline bundle's allocations.
        let b = bundle(CoverageKind::Dynamic);
        const SHARDS: usize = 4;
        let sharded = ShardedEngine::new(b, ShardConfig::quantile(SHARDS));
        let baseline = sharded.baseline_bundle();
        let mut distinct_coverage = 0usize;
        let set = sharded.set.read().unwrap();
        for engine in &set.engines {
            engine.with_bundle(|slice| {
                assert!(
                    Arc::ptr_eq(&slice.train, &baseline.train),
                    "shard cloned the train set"
                );
                assert!(
                    Arc::ptr_eq(&slice.model, &baseline.model),
                    "shard cloned the fitted model"
                );
                assert!(
                    Arc::ptr_eq(&slice.theta, &baseline.theta),
                    "shard cloned the θ vector"
                );
                // The per-band coverage sub-range is the one component each
                // shard genuinely owns.
                if slice.coverage != baseline.coverage {
                    distinct_coverage += 1;
                }
            });
        }
        assert!(
            distinct_coverage >= SHARDS - 1,
            "θ-band slices must hold band-local coverage state"
        );
        // Memory parity: S shards hold exactly one train/model/θ replica
        // between them (strong count = S slices + the baseline bundle),
        // not one each.
        assert_eq!(Arc::strong_count(&baseline.train), SHARDS + 1);
        assert_eq!(Arc::strong_count(&baseline.model), SHARDS + 1);
        assert_eq!(Arc::strong_count(&baseline.theta), SHARDS + 1);
    }

    #[test]
    fn ingest_copy_on_write_keeps_shards_isolated_but_consistent() {
        // Ingestion bumps the Pop model per shard through Arc::make_mut;
        // output must stay byte-identical to an unsharded engine fed the
        // same stream (the pre-Arc behavior).
        let b = bundle(CoverageKind::Static);
        let single = ServingEngine::new(b.clone(), EngineConfig::default());
        let sharded = ShardedEngine::new(b, ShardConfig::quantile(3));
        for k in 0..5u32 {
            let u = UserId(k % sharded.n_users());
            let pick = sharded.recommend(u).unwrap()[k as usize % 5];
            sharded.ingest(u, pick, 4.0).unwrap();
            single.ingest(u, pick, 4.0).unwrap();
        }
        for u in 0..sharded.n_users() {
            assert_eq!(
                sharded.recommend(UserId(u)).unwrap(),
                single.recommend(UserId(u)).unwrap(),
                "user {u} diverges after copy-on-write ingest"
            );
        }
    }

    #[test]
    fn single_shard_plan_degenerates_to_unsharded() {
        let b = bundle(CoverageKind::Dynamic);
        let single = ServingEngine::new(b.clone(), EngineConfig::default());
        let sharded = ShardedEngine::new(b, ShardConfig::quantile(1));
        assert_eq!(sharded.shards(), 1);
        let users: Vec<UserId> = (0..sharded.n_users()).map(UserId).collect();
        let batch = sharded.recommend_batch(&users);
        for (u, got) in users.iter().zip(batch) {
            assert_eq!(got.unwrap(), single.recommend(*u).unwrap(), "user {u:?}");
        }
    }
}
