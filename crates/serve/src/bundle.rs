//! The persisted unit of serving: every fitted component a GANC
//! configuration needs to answer top-N requests, in one artifact.
//!
//! A [`ModelBundle`] freezes the output of the *fit* phase — the base
//! recommender, the per-user θ estimates, the coverage state (for `Dyn`,
//! the OSLG sequential phase's frequency snapshots plus the sampled users'
//! precomputed lists), and the train interactions that define candidate
//! pools. Loading a bundle is sufficient to serve any user without
//! re-running the batch optimizer.

use ganc_core::accuracy::{AccuracyMode, AccuracyScorer, NormalizedScores, TopNIndicator};
use ganc_core::coverage::{CoverageKind, CoverageSnapshots, RandCoverage, StatCoverage};
use ganc_core::oslg::{oslg_seed_phase, OslgConfig, UserOrdering};
use ganc_core::query::CoverageProvider;
use ganc_dataset::{Interactions, ItemId, UserId};
use ganc_recommender::item_avg::ItemAvg;
use ganc_recommender::knn::{ItemKnn, ItemKnnRecommender};
use ganc_recommender::pop::MostPopular;
use ganc_recommender::psvd::Psvd;
use ganc_recommender::rankmf::RankMf;
use ganc_recommender::rsvd::Rsvd;
use ganc_recommender::Recommender;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::collections::HashMap;
use std::sync::Arc;

/// An owned, serializable fitted base recommender.
///
/// The one model whose scoring needs the train set at request time
/// (item-kNN) is bound to it lazily by [`FittedModel::bind`].
#[derive(Debug, Clone, PartialEq)]
pub enum FittedModel {
    /// Most-popular (§III-A's non-personalized accuracy champion).
    Pop(MostPopular),
    /// Damped item-average ratings.
    ItemAvg(ItemAvg),
    /// Item-based kNN.
    ItemKnn(ItemKnn),
    /// Regularized SVD (SGD matrix factorization).
    Rsvd(Rsvd),
    /// PureSVD via randomized truncated SVD.
    Psvd(Psvd),
    /// Pairwise ranking MF.
    RankMf(RankMf),
}

/// A [`FittedModel`] bound to train interactions, usable as a
/// [`Recommender`] for scoring.
pub enum BoundModel<'a> {
    /// Models that score from their own state alone.
    Owned(&'a dyn Recommender),
    /// Item-kNN, which reads the user's train row at request time.
    Knn(ItemKnnRecommender<'a>),
}

impl Recommender for BoundModel<'_> {
    fn name(&self) -> String {
        match self {
            BoundModel::Owned(m) => m.name(),
            BoundModel::Knn(m) => m.name(),
        }
    }

    fn score_items(&self, user: UserId, out: &mut [f64]) {
        match self {
            BoundModel::Owned(m) => m.score_items(user, out),
            BoundModel::Knn(m) => m.score_items(user, out),
        }
    }

    fn predicts_ratings(&self) -> bool {
        match self {
            BoundModel::Owned(m) => m.predicts_ratings(),
            BoundModel::Knn(m) => m.predicts_ratings(),
        }
    }

    fn scores_are_user_independent(&self) -> bool {
        match self {
            BoundModel::Owned(m) => m.scores_are_user_independent(),
            BoundModel::Knn(m) => m.scores_are_user_independent(),
        }
    }
}

impl FittedModel {
    /// Bind to the train set for scoring.
    pub fn bind<'a>(&'a self, train: &'a Interactions) -> BoundModel<'a> {
        match self {
            FittedModel::Pop(m) => BoundModel::Owned(m),
            FittedModel::ItemAvg(m) => BoundModel::Owned(m),
            FittedModel::ItemKnn(m) => BoundModel::Knn(ItemKnnRecommender::new(m, train)),
            FittedModel::Rsvd(m) => BoundModel::Owned(m),
            FittedModel::Psvd(m) => BoundModel::Owned(m),
            FittedModel::RankMf(m) => BoundModel::Owned(m),
        }
    }

    fn variant_index(&self) -> u32 {
        match self {
            FittedModel::Pop(_) => 0,
            FittedModel::ItemAvg(_) => 1,
            FittedModel::ItemKnn(_) => 2,
            FittedModel::Rsvd(_) => 3,
            FittedModel::Psvd(_) => 4,
            FittedModel::RankMf(_) => 5,
        }
    }
}

// The vendor serde derive handles unit enums only; data-carrying enums are
// implemented by hand (variant tag + payload).
impl Serialize for FittedModel {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        s.put_variant(self.variant_index())?;
        match self {
            FittedModel::Pop(m) => m.serialize(s),
            FittedModel::ItemAvg(m) => m.serialize(s),
            FittedModel::ItemKnn(m) => m.serialize(s),
            FittedModel::Rsvd(m) => m.serialize(s),
            FittedModel::Psvd(m) => m.serialize(s),
            FittedModel::RankMf(m) => m.serialize(s),
        }
    }
}

impl<'de> Deserialize<'de> for FittedModel {
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        Ok(match d.get_variant()? {
            0 => FittedModel::Pop(MostPopular::deserialize(d)?),
            1 => FittedModel::ItemAvg(ItemAvg::deserialize(d)?),
            2 => FittedModel::ItemKnn(ItemKnn::deserialize(d)?),
            3 => FittedModel::Rsvd(Rsvd::deserialize(d)?),
            4 => FittedModel::Psvd(Psvd::deserialize(d)?),
            5 => FittedModel::RankMf(RankMf::deserialize(d)?),
            _ => return Err(d.invalid("FittedModel variant")),
        })
    }
}

/// The coverage recommender's serving-time state.
#[derive(Debug, Clone, PartialEq)]
pub enum CoverageState {
    /// `Rand`: the per-run seed (scores are hashed on demand).
    Random(RandCoverage),
    /// `Stat`: precomputed inverse-popularity scores.
    Static(StatCoverage),
    /// `Dyn`: the OSLG sequential phase's θ-sorted frequency snapshots.
    Dynamic(CoverageSnapshots),
}

impl CoverageState {
    /// Which paper coverage recommender this state serves.
    pub fn kind(&self) -> CoverageKind {
        match self {
            CoverageState::Random(_) => CoverageKind::Random,
            CoverageState::Static(_) => CoverageKind::Static,
            CoverageState::Dynamic(_) => CoverageKind::Dynamic,
        }
    }

    /// The read-only provider single-user queries score against.
    pub fn provider(&self) -> &dyn CoverageProvider {
        match self {
            CoverageState::Random(r) => r,
            CoverageState::Static(s) => s,
            CoverageState::Dynamic(snaps) => snaps,
        }
    }
}

impl Serialize for CoverageState {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        match self {
            CoverageState::Random(r) => {
                s.put_variant(0)?;
                r.serialize(s)
            }
            CoverageState::Static(st) => {
                s.put_variant(1)?;
                st.serialize(s)
            }
            CoverageState::Dynamic(snaps) => {
                s.put_variant(2)?;
                snaps.serialize(s)
            }
        }
    }
}

impl<'de> Deserialize<'de> for CoverageState {
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        Ok(match d.get_variant()? {
            0 => CoverageState::Random(RandCoverage::deserialize(d)?),
            1 => CoverageState::Static(StatCoverage::deserialize(d)?),
            2 => CoverageState::Dynamic(CoverageSnapshots::deserialize(d)?),
            _ => return Err(d.invalid("CoverageState variant")),
        })
    }
}

/// Adapt a base recommender to `[0,1]` accuracy scores per the mode —
/// the same adaptation [`ganc_core::GancBuilder::build_topn`] applies.
pub fn make_scorer<'a>(
    rec: &'a dyn Recommender,
    mode: AccuracyMode,
    train: &'a Interactions,
    n: usize,
) -> Box<dyn AccuracyScorer + 'a> {
    match mode {
        AccuracyMode::Normalized => Box::new(NormalizedScores::new(rec)),
        AccuracyMode::TopNIndicator => Box::new(TopNIndicator::new(rec, train, n)),
    }
}

/// Like [`make_scorer`], borrowing an already-computed item mask so the
/// per-request serving path never re-walks the train set to rebuild it.
pub fn make_scorer_with_mask<'a>(
    rec: &'a dyn Recommender,
    mode: AccuracyMode,
    train: &'a Interactions,
    in_train: &'a [bool],
    n: usize,
) -> Box<dyn AccuracyScorer + 'a> {
    match mode {
        AccuracyMode::Normalized => Box::new(NormalizedScores::new(rec)),
        AccuracyMode::TopNIndicator => Box::new(TopNIndicator::with_mask(rec, train, in_train, n)),
    }
}

/// How a bundle is fitted: mirrors [`ganc_core::GancBuilder`]'s knobs so
/// bundle serving reproduces batch output exactly.
#[derive(Debug, Clone, Copy)]
pub struct FitConfig {
    /// Recommendation list size `N`.
    pub n: usize,
    /// Coverage recommender kind.
    pub coverage: CoverageKind,
    /// Accuracy adaptation of the base model.
    pub accuracy_mode: AccuracyMode,
    /// OSLG sample size `S` (Dyn only).
    pub sample_size: usize,
    /// OSLG sequential ordering (Dyn only).
    pub ordering: UserOrdering,
    /// Seed for KDE sampling (Dyn) and Rand coverage.
    pub seed: u64,
}

impl FitConfig {
    /// Paper defaults matching `GancBuilder::new(n)`: Dyn coverage,
    /// normalized accuracy, `S = 500`, increasing-θ order.
    pub fn new(n: usize) -> FitConfig {
        FitConfig {
            n,
            coverage: CoverageKind::Dynamic,
            accuracy_mode: AccuracyMode::Normalized,
            sample_size: 500,
            ordering: UserOrdering::IncreasingTheta,
            seed: 0x0000_0516,
        }
    }
}

/// Everything needed to serve GANC top-N requests, frozen at fit time.
///
/// Persist with [`crate::SaveLoad`] (format v2: `Dyn` coverage snapshots
/// travel as `O(|I| + S·N)` sparse deltas instead of `S` dense count
/// vectors; v1 artifacts still load, and [`crate::legacy`] writes them);
/// serve with [`crate::engine::ServingEngine`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ModelBundle {
    /// Display name of the base model (e.g. `"Pop"`, `"PSVD100"`).
    pub model_name: String,
    /// List size `N` requests are answered with.
    pub n: usize,
    /// Accuracy adaptation mode.
    pub accuracy_mode: AccuracyMode,
    /// Per-user long-tail preference θ, indexed by user id. Behind `Arc` so
    /// θ-band slices ([`ModelBundle::slice_theta_band`]) share one
    /// allocation instead of cloning `O(|U|)` per shard; `Arc` is
    /// transparent on the wire, so the artifact format is unchanged.
    pub theta: Arc<Vec<f64>>,
    /// The fitted base recommender, shared across θ-band slices. Ingestion
    /// paths that mutate the model (the Pop bump) copy-on-write through
    /// [`Arc::make_mut`], so a shard's ingest never leaks into its
    /// siblings.
    pub model: Arc<FittedModel>,
    /// Serving-time coverage state.
    pub coverage: CoverageState,
    /// For Dyn coverage: the sequential phase's assignments (last draw per
    /// user, sorted by user id). Served verbatim so bundle output matches
    /// batch output for sampled users too. Empty for Rand/Stat.
    pub seed_lists: Vec<(UserId, Vec<ItemId>)>,
    /// The train interactions: candidate pools (`I^R \ I_u^R`) and the
    /// per-user rows kNN scoring reads. Shared across θ-band slices — the
    /// train set is the largest replicated component, and nothing mutates
    /// it after fit.
    pub train: Arc<Interactions>,
}

impl ModelBundle {
    /// Fit a bundle: for Dyn coverage this runs OSLG's *sequential* phase
    /// only (Algorithm 1, lines 2–10) and freezes its snapshots; Rand and
    /// Stat need no optimization at all.
    pub fn fit(
        model: FittedModel,
        theta: Vec<f64>,
        train: Interactions,
        cfg: &FitConfig,
    ) -> ModelBundle {
        assert_eq!(
            theta.len(),
            train.n_users() as usize,
            "one θ per user required"
        );
        let (coverage, seed_lists) = match cfg.coverage {
            CoverageKind::Random => (
                CoverageState::Random(RandCoverage::new(cfg.seed)),
                Vec::new(),
            ),
            CoverageKind::Static => (CoverageState::Static(StatCoverage::fit(&train)), Vec::new()),
            CoverageKind::Dynamic => {
                let bound = model.bind(&train);
                let scorer = make_scorer(&bound, cfg.accuracy_mode, &train, cfg.n);
                let oslg_cfg = OslgConfig {
                    n: cfg.n,
                    sample_size: cfg.sample_size,
                    ordering: cfg.ordering,
                    threads: 1,
                    seed: cfg.seed,
                };
                let seed = oslg_seed_phase(scorer.as_ref(), &theta, &train, &oslg_cfg);
                // Batch output keeps the final draw per sampled user.
                let mut last: HashMap<u32, Vec<ItemId>> = HashMap::new();
                for (u, list) in seed.assignments {
                    last.insert(u.0, list);
                }
                let mut lists: Vec<(UserId, Vec<ItemId>)> =
                    last.into_iter().map(|(u, l)| (UserId(u), l)).collect();
                lists.sort_by_key(|(u, _)| u.0);
                (CoverageState::Dynamic(seed.snapshots), lists)
            }
        };
        let model_name = model.bind(&train).name();
        ModelBundle {
            model_name,
            n: cfg.n,
            accuracy_mode: cfg.accuracy_mode,
            theta: Arc::new(theta),
            model: Arc::new(model),
            coverage,
            seed_lists,
            train: Arc::new(train),
        }
    }

    /// The artifact a θ-band shard serves: everything this bundle has,
    /// except that `Dyn` coverage keeps only the snapshot sub-range any
    /// θ ∈ `[lo, hi)` can resolve to (see
    /// [`CoverageSnapshots::slice_band`]) and the precomputed seed lists
    /// keep only the sampled users whose θ falls in the band. Use
    /// `lo = f64::NEG_INFINITY` / `hi = f64::INFINITY` for the open ends of
    /// the first and last band.
    ///
    /// Serving an in-band user from the slice is byte-identical to serving
    /// them from the full bundle: the snapshot sub-range provably resolves
    /// nearest-θ the same way, and every other component is unchanged. The
    /// train set, base model, and θ vector travel with each shard by
    /// `Arc` — an in-process [`crate::ShardedEngine`] holds them *once*
    /// regardless of shard count — while the state that was `O(S·|I|)` and
    /// is now `O(band)` per shard is the snapshot store.
    pub fn slice_theta_band(&self, lo: f64, hi: f64) -> ModelBundle {
        let coverage = match &self.coverage {
            CoverageState::Dynamic(snaps) => CoverageState::Dynamic(snaps.slice_band(lo, hi)),
            other => other.clone(),
        };
        let seed_lists = self
            .seed_lists
            .iter()
            .filter(|(u, _)| {
                let t = self.theta[u.idx()];
                t >= lo && t < hi
            })
            .cloned()
            .collect();
        ModelBundle {
            model_name: self.model_name.clone(),
            n: self.n,
            accuracy_mode: self.accuracy_mode,
            theta: Arc::clone(&self.theta),
            model: Arc::clone(&self.model),
            coverage,
            seed_lists,
            train: Arc::clone(&self.train),
        }
    }

    /// Number of users this bundle can serve.
    pub fn n_users(&self) -> u32 {
        self.train.n_users()
    }

    /// Catalog size.
    pub fn n_items(&self) -> u32 {
        self.train.n_items()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::saveload::SaveLoad;
    use ganc_dataset::synth::DatasetProfile;
    use ganc_preference::GeneralizedConfig;

    fn small_fixture() -> (Interactions, Vec<f64>) {
        let data = DatasetProfile::tiny().generate(8);
        let split = data.split_per_user(0.5, 3).unwrap();
        let theta = GeneralizedConfig::default().estimate(&split.train);
        (split.train, theta)
    }

    #[test]
    fn bundle_round_trips_through_bytes() {
        let (train, theta) = small_fixture();
        let pop = MostPopular::fit(&train);
        let cfg = FitConfig {
            sample_size: 10,
            ..FitConfig::new(5)
        };
        let bundle = ModelBundle::fit(FittedModel::Pop(pop), theta, train, &cfg);
        let bytes = bundle.to_bytes().unwrap();
        let restored = ModelBundle::from_bytes(&bytes).unwrap();
        assert_eq!(restored, bundle);
        assert_eq!(restored.model_name, "Pop");
        assert!(!restored.seed_lists.is_empty());
    }

    #[test]
    fn every_coverage_kind_fits() {
        let (train, theta) = small_fixture();
        for kind in [
            CoverageKind::Random,
            CoverageKind::Static,
            CoverageKind::Dynamic,
        ] {
            let pop = MostPopular::fit(&train);
            let cfg = FitConfig {
                coverage: kind,
                sample_size: 10,
                ..FitConfig::new(5)
            };
            let bundle =
                ModelBundle::fit(FittedModel::Pop(pop), theta.clone(), train.clone(), &cfg);
            assert_eq!(bundle.coverage.kind(), kind);
            let restored = ModelBundle::from_bytes(&bundle.to_bytes().unwrap()).unwrap();
            assert_eq!(restored, bundle);
        }
    }

    #[test]
    fn seed_lists_sorted_and_unique() {
        let (train, theta) = small_fixture();
        let pop = MostPopular::fit(&train);
        let cfg = FitConfig {
            sample_size: 30,
            ..FitConfig::new(5)
        };
        let bundle = ModelBundle::fit(FittedModel::Pop(pop), theta, train, &cfg);
        let ids: Vec<u32> = bundle.seed_lists.iter().map(|(u, _)| u.0).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted, "seed lists must be sorted and deduplicated");
    }
}
