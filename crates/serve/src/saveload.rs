//! Artifact persistence: a versioned save/load envelope over bincode.
//!
//! Every serializable fitted component (recommender models, θ vectors,
//! coverage state, whole [`crate::ModelBundle`]s) gets [`SaveLoad`] through
//! a blanket impl: 4 magic bytes + a format version + the bincode payload.
//! The payload encoding is positional, so the version gate is what makes
//! artifacts safe to evolve — readers refuse payloads written by a
//! different format generation instead of misinterpreting them.

use std::fmt;
use std::path::Path;

/// Leading magic bytes of every artifact written by this crate.
pub const MAGIC: [u8; 4] = *b"GANC";

/// Current artifact format version. Bump on any change to the serialized
/// shape of a persisted type.
///
/// v2 (this build): coverage snapshots are delta-encoded
/// (`O(|I| + S·N)` bytes instead of `O(S·|I|)` dense count vectors).
pub const FORMAT_VERSION: u16 = 2;

/// Oldest artifact format this build still reads. v1 payloads (dense
/// snapshot encoding) are detected by the snapshot decoder itself and
/// converted on load; every other persisted shape is unchanged since v1.
/// Writing always uses [`FORMAT_VERSION`] — see [`crate::legacy`] for the
/// explicit v1 downgrade path.
pub const MIN_FORMAT_VERSION: u16 = 1;

/// Why an artifact failed to persist or load.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem error (path attached).
    Io(String, std::io::Error),
    /// The payload failed to encode or decode.
    Codec(bincode::Error),
    /// The artifact does not start with [`MAGIC`].
    BadMagic,
    /// The artifact was written by an incompatible format generation.
    VersionMismatch {
        /// Version found in the artifact header.
        found: u16,
        /// Version this build reads.
        expected: u16,
    },
    /// The artifact is too short to contain a header.
    Truncated,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(path, e) => write!(f, "io error on {path}: {e}"),
            PersistError::Codec(e) => write!(f, "codec error: {e}"),
            PersistError::BadMagic => write!(f, "not a GANC artifact (bad magic)"),
            PersistError::VersionMismatch { found, expected } => {
                write!(f, "artifact format v{found}, this build reads v{expected}")
            }
            PersistError::Truncated => write!(f, "artifact truncated before header end"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<bincode::Error> for PersistError {
    fn from(e: bincode::Error) -> PersistError {
        PersistError::Codec(e)
    }
}

/// Versioned binary persistence for fitted artifacts.
///
/// Blanket-implemented for every `Serialize + Deserialize` type, so each
/// fitted component can be saved standalone and a [`crate::ModelBundle`]
/// is just one more artifact.
pub trait SaveLoad: Sized {
    /// Encode with the magic/version envelope.
    fn to_bytes(&self) -> Result<Vec<u8>, PersistError>;

    /// Decode, verifying magic and version.
    fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError>;

    /// Write the artifact to a file.
    fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let path = path.as_ref();
        let bytes = self.to_bytes()?;
        std::fs::write(path, bytes).map_err(|e| PersistError::Io(path.display().to_string(), e))
    }

    /// Read an artifact from a file.
    fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let path = path.as_ref();
        let bytes =
            std::fs::read(path).map_err(|e| PersistError::Io(path.display().to_string(), e))?;
        Self::from_bytes(&bytes)
    }
}

impl<T> SaveLoad for T
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de>,
{
    fn to_bytes(&self) -> Result<Vec<u8>, PersistError> {
        let payload = bincode::serialize(self)?;
        let mut out = Vec::with_capacity(payload.len() + 6);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&payload);
        Ok(out)
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        if bytes.len() < 6 {
            return Err(PersistError::Truncated);
        }
        if bytes[..4] != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let found = u16::from_le_bytes([bytes[4], bytes[5]]);
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&found) {
            return Err(PersistError::VersionMismatch {
                found,
                expected: FORMAT_VERSION,
            });
        }
        Ok(bincode::deserialize(&bytes[6..])?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips() {
        let v: Vec<f64> = vec![1.5, -2.25, 0.0];
        let bytes = v.to_bytes().unwrap();
        assert_eq!(&bytes[..4], b"GANC");
        assert_eq!(Vec::<f64>::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = vec![7.0f64].to_bytes().unwrap();
        bytes[0] = b'X';
        assert!(matches!(
            Vec::<f64>::from_bytes(&bytes),
            Err(PersistError::BadMagic)
        ));
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut bytes = vec![7.0f64].to_bytes().unwrap();
        bytes[4] = 99;
        assert!(matches!(
            Vec::<f64>::from_bytes(&bytes),
            Err(PersistError::VersionMismatch { found: 99, .. })
        ));
        bytes[4] = 0;
        assert!(matches!(
            Vec::<f64>::from_bytes(&bytes),
            Err(PersistError::VersionMismatch { found: 0, .. })
        ));
    }

    #[test]
    fn legacy_v1_envelope_accepted() {
        // Unchanged shapes read v1 envelopes directly.
        let v: Vec<f64> = vec![0.5, 2.0];
        let mut bytes = v.to_bytes().unwrap();
        assert_eq!(bytes[4..6], FORMAT_VERSION.to_le_bytes());
        bytes[4..6].copy_from_slice(&MIN_FORMAT_VERSION.to_le_bytes());
        assert_eq!(Vec::<f64>::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            Vec::<f64>::from_bytes(b"GAN"),
            Err(PersistError::Truncated)
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("ganc_saveload_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("theta.ganc");
        let theta: Vec<f64> = (0..100).map(|k| k as f64 / 100.0).collect();
        theta.save(&path).unwrap();
        assert_eq!(Vec::<f64>::load(&path).unwrap(), theta);
        std::fs::remove_file(&path).ok();
    }
}
