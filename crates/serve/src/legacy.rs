//! Format-v1 downgrade support.
//!
//! [`crate::SaveLoad`] always *writes* the current format
//! ([`crate::saveload::FORMAT_VERSION`]) and *reads* every version back to
//! [`crate::saveload::MIN_FORMAT_VERSION`]. During a fleet rollout the
//! reverse direction matters too: a v2 fitter may need to publish bundles
//! that v1 serving binaries can still load. This module re-encodes a
//! [`ModelBundle`] in the v1 wire layout — identical for every component
//! except the coverage snapshots, which v1 stored as dense per-snapshot
//! count vectors instead of the delta chain.
//!
//! The compat test suite also uses this writer to produce genuine v1
//! artifacts for the legacy read path.

use crate::bundle::{CoverageState, ModelBundle};
use crate::saveload::{PersistError, MAGIC, MIN_FORMAT_VERSION};
use ganc_core::coverage::CoverageSnapshots;
use serde::Serialize;

/// Wrap a raw payload in the v1 magic/version envelope.
pub fn v1_envelope(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 6);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&MIN_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The wire format is positional with no framing, so a struct's encoding is
/// the concatenation of its fields' encodings — which lets this module
/// swap one field's layout without reimplementing the rest.
fn append<T: Serialize + ?Sized>(payload: &mut Vec<u8>, value: &T) -> Result<(), PersistError> {
    payload.extend(bincode::serialize(value)?);
    Ok(())
}

/// Encode coverage snapshots in the dense v1 layout
/// (`thetas: Vec<f64>, counts: Vec<Box<[u32]>>`), reconstructing each
/// snapshot's dense counts from the delta chain.
pub fn snapshots_to_v1_payload(snaps: &CoverageSnapshots) -> Result<Vec<u8>, PersistError> {
    let mut out = Vec::new();
    append(&mut out, snaps.thetas())?;
    let counts: Vec<Box<[u32]>> = (0..snaps.len())
        .map(|k| snaps.counts_at(k).into_boxed_slice())
        .collect();
    append(&mut out, &counts)?;
    Ok(out)
}

/// Encode a fitted bundle as a complete v1 artifact (envelope included),
/// loadable by both format-v1 builds and [`crate::SaveLoad`]'s legacy read
/// path.
pub fn bundle_to_v1_bytes(bundle: &ModelBundle) -> Result<Vec<u8>, PersistError> {
    let mut payload = Vec::new();
    append(&mut payload, &bundle.model_name)?;
    append(&mut payload, &bundle.n)?;
    append(&mut payload, &bundle.accuracy_mode)?;
    append(&mut payload, &bundle.theta)?;
    append(&mut payload, &bundle.model)?;
    match &bundle.coverage {
        CoverageState::Dynamic(snaps) => {
            // Variant tag, then the dense v1 snapshot layout.
            append(&mut payload, &2u32)?;
            payload.extend(snapshots_to_v1_payload(snaps)?);
        }
        other => append(&mut payload, other)?,
    }
    append(&mut payload, &bundle.seed_lists)?;
    append(&mut payload, &bundle.train)?;
    Ok(v1_envelope(&payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{FitConfig, FittedModel};
    use crate::saveload::SaveLoad;
    use ganc_dataset::synth::DatasetProfile;
    use ganc_preference::GeneralizedConfig;
    use ganc_recommender::pop::MostPopular;

    #[test]
    fn v1_bundle_bytes_carry_v1_header_and_load() {
        let data = DatasetProfile::tiny().generate(12);
        let split = data.split_per_user(0.5, 3).unwrap();
        let theta = GeneralizedConfig::default().estimate(&split.train);
        let pop = MostPopular::fit(&split.train);
        let cfg = FitConfig {
            sample_size: 10,
            ..FitConfig::new(5)
        };
        let bundle = ModelBundle::fit(FittedModel::Pop(pop), theta, split.train, &cfg);
        let v1 = bundle_to_v1_bytes(&bundle).unwrap();
        assert_eq!(&v1[..4], b"GANC");
        assert_eq!(u16::from_le_bytes([v1[4], v1[5]]), 1);
        let restored = ModelBundle::from_bytes(&v1).unwrap();
        assert_eq!(restored.model_name, bundle.model_name);
        assert_eq!(restored.theta, bundle.theta);
        assert_eq!(restored.seed_lists, bundle.seed_lists);
    }
}
