//! A fixed-capacity LRU map for the response cache: O(1) get / insert /
//! remove via an intrusive doubly-linked list over a slab of entries.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// Least-recently-used cache with a hard capacity.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Entry<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Copy, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> LruCache<K, V> {
        let capacity = capacity.max(1);
        LruCache {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn attach_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Look up a key, marking it most-recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let slot = *self.map.get(key)?;
        if self.head != slot {
            self.detach(slot);
            self.attach_front(slot);
        }
        Some(&self.slots[slot].value)
    }

    /// Insert or replace; returns the evicted `(key, value)` if the cache
    /// was full.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&slot) = self.map.get(&key) {
            self.slots[slot].value = value;
            if self.head != slot {
                self.detach(slot);
                self.attach_front(slot);
            }
            return None;
        }
        let evicted = if self.map.len() == self.capacity {
            let lru = self.tail;
            self.detach(lru);
            let old_key = self.slots[lru].key;
            self.map.remove(&old_key);
            self.free.push(lru);
            // Take the value out by swapping in the new entry below.
            Some((lru, old_key))
        } else {
            None
        };
        let slot = if let Some(free) = self.free.pop() {
            self.slots[free].key = key;
            free
        } else {
            self.slots.push(Entry {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            self.map.insert(key, self.slots.len() - 1);
            self.attach_front(self.slots.len() - 1);
            return None;
        };
        let old_value = std::mem::replace(&mut self.slots[slot].value, value);
        self.map.insert(key, slot);
        self.attach_front(slot);
        evicted.map(|(_, k)| (k, old_value))
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

impl<K: Eq + Hash + Copy, V: Default> LruCache<K, V> {
    /// Remove one key, returning its value (`V: Default` supplies the
    /// placeholder left in the freed slab slot until it is reused).
    pub fn remove_entry(&mut self, key: &K) -> Option<V> {
        let slot = self.map.remove(key)?;
        self.detach(slot);
        self.free.push(slot);
        Some(std::mem::take(&mut self.slots[slot].value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, String> = LruCache::new(2);
        assert!(c.insert(1, "a".into()).is_none());
        assert!(c.insert(2, "b".into()).is_none());
        // Touch 1 so 2 becomes LRU.
        assert_eq!(c.get(&1).unwrap(), "a");
        let evicted = c.insert(3, "c".into()).unwrap();
        assert_eq!(evicted.0, 2);
        assert_eq!(evicted.1, "b");
        assert!(c.get(&2).is_none());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn replace_updates_value_without_eviction() {
        let mut c: LruCache<u32, String> = LruCache::new(2);
        c.insert(1, "a".into());
        assert!(c.insert(1, "a2".into()).is_none());
        assert_eq!(c.get(&1).unwrap(), "a2");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn remove_entry_frees_slot_for_reuse() {
        let mut c: LruCache<u32, String> = LruCache::new(2);
        c.insert(1, "a".into());
        c.insert(2, "b".into());
        assert_eq!(c.remove_entry(&1).unwrap(), "a");
        assert!(c.get(&1).is_none());
        assert_eq!(c.len(), 1);
        // Reuses the freed slot without evicting 2.
        assert!(c.insert(3, "c".into()).is_none());
        assert_eq!(c.get(&2).unwrap(), "b");
        assert_eq!(c.get(&3).unwrap(), "c");
    }

    #[test]
    fn clear_empties() {
        let mut c: LruCache<u32, String> = LruCache::new(4);
        for k in 0..4 {
            c.insert(k, k.to_string());
        }
        c.clear();
        assert!(c.is_empty());
        assert!(c.get(&0).is_none());
        c.insert(9, "x".into());
        assert_eq!(c.get(&9).unwrap(), "x");
    }

    #[test]
    fn heavy_churn_keeps_capacity_invariant() {
        let mut c: LruCache<u32, u32> = LruCache::new(8);
        for k in 0..1000u32 {
            c.insert(k % 64, k);
            assert!(c.len() <= 8);
            if k % 7 == 0 {
                c.remove_entry(&(k % 64));
            }
        }
        // The 8 most recent distinct keys that weren't removed are present.
        assert!(!c.is_empty());
    }
}
