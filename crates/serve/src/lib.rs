//! # ganc-serve
//!
//! The online serving subsystem: persist fitted GANC state and answer
//! per-user top-N requests without re-running the batch optimizer.
//!
//! Three layers:
//!
//! 1. **Persistence** ([`saveload`], [`bundle`]) — every fitted component
//!    (base recommenders, θ estimates, coverage state) serializes through a
//!    versioned binary envelope; a [`ModelBundle`] packages a complete
//!    serving configuration into one artifact.
//! 2. **Query path** — single-user requests run
//!    [`ganc_core::query::UserQuery`] against the bundle's frozen coverage
//!    state; for `Dyn` coverage that is exactly OSLG's parallel phase
//!    (Algorithm 1, lines 11–15), so served lists match batch output.
//! 3. **Engine** ([`engine`], [`batch`]) — a thread-safe
//!    [`ServingEngine`] with an LRU response cache, batched request
//!    fan-out, interaction ingestion with cache invalidation, generation
//!    counters, and a [`MicroBatcher`] coalescing concurrent callers.
//! 4. **Scale-out** ([`shard`], [`refit`]) — a [`ShardedEngine`] that
//!    partitions users into θ bands (each shard holds only its band's
//!    snapshot sub-range; per-shard artifacts deploy to nodes), plus a
//!    [`RefitController`] that refits on train + ingested interactions in
//!    the background and hot-swaps all shards atomically, rebalancing the
//!    θ bands on every refit.
//!
//! ## Quickstart: fit → save → load → serve
//!
//! ```
//! use ganc_serve::{
//!     EngineConfig, FitConfig, FittedModel, ModelBundle, SaveLoad, ServingEngine,
//! };
//! use ganc_dataset::synth::DatasetProfile;
//! use ganc_dataset::UserId;
//! use ganc_preference::GeneralizedConfig;
//! use ganc_recommender::pop::MostPopular;
//!
//! // Fit: data → θ → base model → bundle (runs OSLG's sequential phase).
//! let data = DatasetProfile::tiny().generate(42);
//! let split = data.split_per_user(0.5, 7).unwrap();
//! let theta = GeneralizedConfig::default().estimate(&split.train);
//! let pop = MostPopular::fit(&split.train);
//! let cfg = FitConfig { sample_size: 20, ..FitConfig::new(10) };
//! let bundle = ModelBundle::fit(FittedModel::Pop(pop), theta, split.train, &cfg);
//!
//! // Save and load the artifact.
//! let bytes = bundle.to_bytes().unwrap();
//! let restored = ModelBundle::from_bytes(&bytes).unwrap();
//!
//! // Serve single requests — no batch optimization happens here.
//! let engine = ServingEngine::new(restored, EngineConfig::default());
//! let list = engine.recommend(UserId(3)).unwrap();
//! assert_eq!(list.len(), 10);
//! ```

pub mod batch;
pub mod bundle;
pub mod engine;
pub mod legacy;
pub mod lru;
pub(crate) mod obs;
pub mod refit;
pub mod saveload;
pub mod shard;
pub mod wal;

pub use batch::{BatchConfig, BatchSource, CoalescedAnswer, Coalescer, MicroBatcher};
pub use bundle::{make_scorer, BoundModel, CoverageState, FitConfig, FittedModel, ModelBundle};
pub use engine::{build_reranker, EngineConfig, EngineStats, ServeError, ServingEngine};
pub use ganc_core::query::{RequestOptions, RerankMode};
pub use lru::LruCache;
pub use refit::{
    merge_interactions, AdaptiveCadence, CadenceConfig, Clock, ManualClock, RefitController,
    RefitOutcome, Refitter, SystemClock,
};
pub use saveload::{PersistError, SaveLoad, FORMAT_VERSION, MAGIC, MIN_FORMAT_VERSION};
pub use shard::{
    save_shard_artifacts, shard_artifact_path, ShardConfig, ShardInfo, ShardPlan, ShardedEngine,
};
pub use wal::{
    crc32, decode_stream, encode_record, validate_key, DedupWindow, DurableConfig, DurableLog,
    IngestAck, SyncPolicy, Wal, WalRecord, WalReplaySummary, WalStats, MAX_KEY_LEN, MAX_PAYLOAD,
    WAL_MAGIC, WAL_VERSION,
};
