//! The generalized long-tail preference `θ^G` (§II-C): a joint minimax
//! optimization over item importance weights `w` and user preferences `θ^G`.
//!
//! The objective (Eq. II.4) is
//!
//! ```text
//! min_w max_θ  Σ_i w_i ε_i − λ₁ Σ_i log w_i,
//! ε_i = Σ_{u ∈ U_i^R} [ 1 − (θ_ui − θ^G_u)² ]          (item mediocrity)
//! ```
//!
//! Alternating the two closed-form stationary conditions:
//!
//! * `w_i = λ₁ / ε_i`                          (Eq. II.5)
//! * `θ^G_u = Σ_i w_i θ_ui / Σ_i w_i`          (Eq. II.6)
//!
//! An item is *important* (large `w_i`) when its raters' preferences deviate
//! from their generalized preference — it is not "mediocre" to them — and a
//! user's `θ^G` is the importance-weighted average of their per-item values.
//! With all weights equal this degenerates to `θ^T`, which is also the
//! initialization.

use crate::tfidf::{theta_tfidf_with, ThetaUi};
use ganc_dataset::{Interactions, ItemId, UserId};

/// Configuration of the alternating optimizer.
#[derive(Debug, Clone, Copy)]
pub struct GeneralizedConfig {
    /// Regularization weight λ₁ (the paper sets 1).
    pub lambda: f64,
    /// Maximum alternating iterations.
    pub max_iters: usize,
    /// Convergence tolerance on `max_u |Δθ^G_u|`.
    pub tol: f64,
}

impl Default for GeneralizedConfig {
    fn default() -> Self {
        GeneralizedConfig {
            lambda: 1.0,
            max_iters: 50,
            tol: 1e-6,
        }
    }
}

/// Diagnostics of one estimation run.
#[derive(Debug, Clone)]
pub struct GeneralizedResult {
    /// The estimated `θ^G`, one entry per user, in `[0, 1]`.
    pub theta: Vec<f64>,
    /// Final item importance weights `w` (λ₁/ε).
    pub weights: Vec<f64>,
    /// Iterations actually run.
    pub iterations: usize,
    /// Final `max_u |Δθ^G_u|`.
    pub final_delta: f64,
}

impl GeneralizedConfig {
    /// Estimate `θ^G` for every user of the train set (convenience wrapper
    /// returning only the preference vector).
    pub fn estimate(&self, train: &Interactions) -> Vec<f64> {
        self.run(train).theta
    }

    /// Full alternating optimization with diagnostics.
    pub fn run(&self, train: &Interactions) -> GeneralizedResult {
        let tui = ThetaUi::from_train(train);
        let n_items = train.n_items() as usize;
        // Initialize with θ^T (w ≡ 1 in Eq. II.6).
        let mut theta = theta_tfidf_with(train, &tui);
        let mut weights = vec![1.0f64; n_items];
        let mut iterations = 0;
        let mut final_delta = f64::INFINITY;
        for it in 0..self.max_iters {
            iterations = it + 1;
            // --- w-step (Eq. II.5): w_i = λ / ε_i ---
            for (i, w) in weights.iter_mut().enumerate() {
                let (users, vals) = train.item_col(ItemId(i as u32));
                if users.is_empty() {
                    *w = 1.0;
                    continue;
                }
                let mut mediocrity = 0.0;
                for (&u, &r) in users.iter().zip(vals) {
                    let t_ui = tui.value(ItemId(i as u32), r);
                    let d = t_ui - theta[u as usize];
                    mediocrity += 1.0 - d * d;
                }
                // θ_ui and θ^G both live in [0,1] so each term is ≥ 0; the
                // guard only protects against an all-extreme corner case.
                *w = self.lambda / mediocrity.max(1e-9);
            }
            // --- θ-step (Eq. II.6): weighted average of θ_ui ---
            let mut delta = 0.0f64;
            for (u, t) in theta.iter_mut().enumerate() {
                let (items, vals) = train.user_row(UserId(u as u32));
                if items.is_empty() {
                    continue;
                }
                let mut num = 0.0;
                let mut den = 0.0;
                for (&i, &r) in items.iter().zip(vals) {
                    let w = weights[i as usize];
                    num += w * tui.value(ItemId(i), r);
                    den += w;
                }
                let new = if den > 0.0 { num / den } else { *t };
                delta = delta.max((new - *t).abs());
                *t = new;
            }
            final_delta = delta;
            if delta < self.tol {
                break;
            }
        }
        GeneralizedResult {
            theta,
            weights,
            iterations,
            final_delta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganc_dataset::synth::DatasetProfile;
    use ganc_dataset::{DatasetBuilder, RatingScale};

    fn fixture() -> Interactions {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        for u in 0..5u32 {
            b.push(UserId(u), ItemId(0), 4.0).unwrap();
        }
        b.push(UserId(0), ItemId(1), 5.0).unwrap();
        b.push(UserId(1), ItemId(2), 5.0).unwrap();
        b.push(UserId(1), ItemId(3), 5.0).unwrap();
        b.build().unwrap().interactions()
    }

    #[test]
    fn converges_and_stays_in_unit_interval() {
        let m = fixture();
        let res = GeneralizedConfig::default().run(&m);
        assert!(res.final_delta < 1e-6 || res.iterations == 50);
        assert!(res.theta.iter().all(|&t| (0.0..=1.0).contains(&t)));
    }

    #[test]
    fn tail_raters_get_higher_theta() {
        let m = fixture();
        let theta = GeneralizedConfig::default().estimate(&m);
        // users 0 and 1 rated rare items highly; users 2..4 only the head.
        assert!(theta[0] > theta[2]);
        assert!(theta[1] > theta[2]);
    }

    #[test]
    fn equal_weights_fixed_point_matches_tfidf_on_symmetric_data() {
        // Fully symmetric data: every user rates every item with the same
        // value. All θ_ui equal → θ^G = θ^T and stays there.
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        for u in 0..3u32 {
            for i in 0..3u32 {
                b.push(UserId(u), ItemId(i), 3.0).unwrap();
            }
        }
        let m = b.build().unwrap().interactions();
        let tfidf = crate::tfidf::theta_tfidf(&m);
        let res = GeneralizedConfig::default().run(&m);
        for (g, t) in res.theta.iter().zip(&tfidf) {
            assert!((g - t).abs() < 1e-9);
        }
    }

    #[test]
    fn weights_are_positive_and_finite() {
        let m = fixture();
        let res = GeneralizedConfig::default().run(&m);
        assert!(res.weights.iter().all(|&w| w > 0.0 && w.is_finite()));
    }

    #[test]
    fn mediocre_items_get_lower_weight() {
        let m = fixture();
        let res = GeneralizedConfig::default().run(&m);
        // Item 0 is rated by everyone with θ_ui at the projection floor and
        // mediocrity ≈ Σ(1 − d²) over 5 users — many concordant raters make
        // it "mediocre"; rare items have a single rater and can reach at
        // most mediocrity 1 → weight ≥ λ.
        assert!(
            res.weights[1] > res.weights[0],
            "rare item weight {} vs head {}",
            res.weights[1],
            res.weights[0]
        );
    }

    #[test]
    fn distribution_is_less_skewed_than_theta_n_on_synthetic_data() {
        // Figure 2's qualitative claim: θ^G is more centered than θ^N.
        let data = DatasetProfile::small().generate(3);
        let split = data.split_per_user(0.5, 1).unwrap();
        let lt = ganc_dataset::stats::LongTail::pareto(&split.train);
        let tn = crate::simple::theta_normalized(&split.train, &lt);
        let tg = GeneralizedConfig::default().estimate(&split.train);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        // θ^G has a larger mean (the paper observes it is normally
        // distributed with larger mean than the right-skewed θ^N).
        assert!(
            mean(&tg) > mean(&tn),
            "mean θG {} should exceed mean θN {}",
            mean(&tg),
            mean(&tn)
        );
    }

    #[test]
    fn respects_iteration_budget() {
        let m = fixture();
        let cfg = GeneralizedConfig {
            max_iters: 1,
            ..Default::default()
        };
        let res = cfg.run(&m);
        assert_eq!(res.iterations, 1);
    }
}
