//! The TFIDF-based preference measure (Eq. II.2) and the per-user-item
//! values `θ_ui` it is built from.
//!
//! `θ_ui = r_ui · log(|U| / |U_i^R|)` treats the rating as a term frequency
//! and the inverse item popularity as an IDF: a high rating on an unpopular
//! item is strong evidence of long-tail appetite. Before any further use the
//! paper projects all `θ_ui` onto `[0, 1]` (§II-C), which this module does
//! globally with the min–max rule.

use ganc_dataset::{Interactions, ItemId, UserId};

/// Precomputed, projected `θ_ui` machinery shared by `θ^T` and `θ^G`.
#[derive(Debug, Clone)]
pub struct ThetaUi {
    /// `log(|U| / |U_i^R|)` per item (0 for unrated items).
    log_factor: Vec<f64>,
    /// Global min of raw `θ_ui` (projection offset).
    min: f64,
    /// Global `max − min` of raw `θ_ui` (projection scale; ≥ tiny).
    span: f64,
}

impl ThetaUi {
    /// Precompute projection constants from a train set.
    pub fn from_train(train: &Interactions) -> ThetaUi {
        let n_users = train.n_users() as f64;
        let log_factor: Vec<f64> = (0..train.n_items())
            .map(|i| {
                let pop = train.item_degree(ItemId(i));
                if pop == 0 {
                    0.0
                } else {
                    (n_users / pop as f64).ln()
                }
            })
            .collect();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for (_, i, r) in train.iter() {
            let raw = r as f64 * log_factor[i.idx()];
            min = min.min(raw);
            max = max.max(raw);
        }
        if !min.is_finite() {
            // Empty train set: degenerate projection.
            min = 0.0;
            max = 1.0;
        }
        ThetaUi {
            log_factor,
            min,
            span: (max - min).max(1e-12),
        }
    }

    /// The projected value `θ_ui ∈ [0, 1]` for one rating.
    #[inline]
    pub fn value(&self, item: ItemId, rating: f32) -> f64 {
        let raw = rating as f64 * self.log_factor[item.idx()];
        ((raw - self.min) / self.span).clamp(0.0, 1.0)
    }
}

/// TFIDF-based measure `θ^T_u = (1/|I_u^R|) Σ_i θ_ui` (Eq. II.2–II.3), on
/// projected `θ_ui` so the result lies in `[0, 1]`. Users with no train
/// ratings get 0.
pub fn theta_tfidf(train: &Interactions) -> Vec<f64> {
    let tui = ThetaUi::from_train(train);
    theta_tfidf_with(train, &tui)
}

/// Same as [`theta_tfidf`] but reusing precomputed projection machinery.
pub fn theta_tfidf_with(train: &Interactions, tui: &ThetaUi) -> Vec<f64> {
    (0..train.n_users())
        .map(|u| {
            let (items, vals) = train.user_row(UserId(u));
            if items.is_empty() {
                return 0.0;
            }
            let sum: f64 = items
                .iter()
                .zip(vals)
                .map(|(&i, &r)| tui.value(ItemId(i), r))
                .sum();
            sum / items.len() as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganc_dataset::{DatasetBuilder, RatingScale};

    /// 4 users. item 0: rated by everyone (popular). item 1: one rater.
    fn fixture() -> Interactions {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        for u in 0..4u32 {
            b.push(UserId(u), ItemId(0), 4.0).unwrap();
        }
        b.push(UserId(0), ItemId(1), 5.0).unwrap();
        b.build().unwrap().interactions()
    }

    #[test]
    fn theta_ui_rewards_rare_high_rated_items() {
        let m = fixture();
        let tui = ThetaUi::from_train(&m);
        // item 0 is rated by all users → log(4/4)=0 → θui = projected min.
        let head = tui.value(ItemId(0), 4.0);
        let tail = tui.value(ItemId(1), 5.0);
        assert!(tail > head, "tail {tail} must exceed head {head}");
        assert_eq!(head, 0.0);
        assert_eq!(tail, 1.0); // extremes of the projection
    }

    #[test]
    fn theta_ui_scales_with_rating() {
        let m = fixture();
        let tui = ThetaUi::from_train(&m);
        assert!(tui.value(ItemId(1), 5.0) > tui.value(ItemId(1), 2.0));
    }

    #[test]
    fn tfidf_user_ordering() {
        let m = fixture();
        let t = theta_tfidf(&m);
        // user 0 rated the rare item highly; users 1..3 only the popular one.
        assert!(t[0] > t[1]);
        assert_eq!(t[1], t[2]);
        assert!(t.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn tfidf_of_uniform_popularity_is_constant() {
        // Every item equally popular → all log factors equal → all θT equal.
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        for u in 0..3u32 {
            for i in 0..3u32 {
                b.push(UserId(u), ItemId(i), 3.0).unwrap();
            }
        }
        let m = b.build().unwrap().interactions();
        let t = theta_tfidf(&m);
        assert!((t[0] - t[1]).abs() < 1e-12);
        assert!((t[1] - t[2]).abs() < 1e-12);
    }

    #[test]
    fn empty_user_rows_get_zero() {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        b.push(UserId(2), ItemId(0), 4.0).unwrap();
        let m = b.build().unwrap().interactions();
        let t = theta_tfidf(&m);
        assert_eq!(t[0], 0.0);
        assert_eq!(t[1], 0.0);
    }
}
