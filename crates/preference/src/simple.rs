//! Simple per-user long-tail preference measures (§II-B) and the two control
//! models of §IV-C.

use ganc_dataset::stats::{min_max_normalize, LongTail};
use ganc_dataset::{Interactions, UserId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Activity measure `θ^A_u = |I_u^R|`, min–max normalized to `[0, 1]`
/// (§II-B). Heavily right-skewed on sparse data because most users rate only
/// a few items (Figure 2).
pub fn theta_activity(train: &Interactions) -> Vec<f64> {
    let mut theta: Vec<f64> = train.user_activity().iter().map(|&a| a as f64).collect();
    min_max_normalize(&mut theta);
    theta
}

/// Normalized long-tail measure `θ^N_u = |I_u^R ∩ L| / |I_u^R|` (Eq. II.1):
/// the fraction of the user's rated items that are long-tail. Users with no
/// train ratings get 0.
pub fn theta_normalized(train: &Interactions, long_tail: &LongTail) -> Vec<f64> {
    (0..train.n_users())
        .map(|u| {
            let (items, _) = train.user_row(UserId(u));
            if items.is_empty() {
                return 0.0;
            }
            let tail = items
                .iter()
                .filter(|&&i| long_tail.contains(ganc_dataset::ItemId(i)))
                .count();
            tail as f64 / items.len() as f64
        })
        .collect()
}

/// Random control `θ^R_u ~ U(0, 1)` (§IV-C). The paper re-draws per run; use
/// a fresh seed per run to reproduce that.
pub fn theta_random(n_users: u32, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_users).map(|_| rng.random::<f64>()).collect()
}

/// Constant control `θ^C_u = c` for every user (§IV-C uses `c = 0.5`).
pub fn theta_constant(n_users: u32, c: f64) -> Vec<f64> {
    vec![c.clamp(0.0, 1.0); n_users as usize]
}

/// Histogram of a θ vector over `bins` equal-width buckets on `[0, 1]` —
/// the Figure 2 series.
pub fn histogram(theta: &[f64], bins: usize) -> Vec<usize> {
    assert!(bins > 0);
    let mut counts = vec![0usize; bins];
    for &t in theta {
        let b = ((t.clamp(0.0, 1.0)) * bins as f64) as usize;
        counts[b.min(bins - 1)] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganc_dataset::{DatasetBuilder, ItemId, RatingScale};

    /// item 0 popular (15 raters after filtering), items 1..3 tail. User 0
    /// rates only head; user 1 rates head+tail; user 2 rates only tail.
    fn fixture() -> Interactions {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        for u in 0..16u32 {
            b.push(UserId(u), ItemId(0), 4.0).unwrap();
        }
        b.push(UserId(1), ItemId(1), 4.0).unwrap();
        b.push(UserId(2), ItemId(2), 4.0).unwrap();
        b.push(UserId(2), ItemId(3), 4.0).unwrap();
        // make user 2 tail-only: remove their head rating by rebuilding
        let d = b.build().unwrap();
        let ratings: Vec<_> = d
            .ratings()
            .iter()
            .copied()
            .filter(|r| !(r.user == UserId(2) && r.item == ItemId(0)))
            .collect();
        Interactions::from_ratings(d.n_users(), d.n_items(), &ratings)
    }

    #[test]
    fn activity_is_normalized_and_ordered() {
        let m = fixture();
        let t = theta_activity(&m);
        assert!(t.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // user 1 rated 2 items, user 0 rated 1 → θA(u1) > θA(u0)
        assert!(t[1] > t[0]);
    }

    #[test]
    fn normalized_measures_tail_fraction() {
        let m = fixture();
        let lt = LongTail::pareto(&m);
        let t = theta_normalized(&m, &lt);
        assert_eq!(t[0], 0.0, "head-only user");
        assert!((t[1] - 0.5).abs() < 1e-12, "half tail user, got {}", t[1]);
        assert_eq!(t[2], 1.0, "tail-only user");
    }

    #[test]
    fn normalized_handles_empty_users() {
        let m = fixture();
        let lt = LongTail::pareto(&m);
        let t = theta_normalized(&m, &lt);
        // users 3..5 rated only item 0 (head)
        assert_eq!(t[3], 0.0);
    }

    #[test]
    fn random_is_seeded_and_in_range() {
        let a = theta_random(100, 5);
        let b = theta_random(100, 5);
        let c = theta_random(100, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn constant_clamps() {
        assert_eq!(theta_constant(3, 0.5), vec![0.5, 0.5, 0.5]);
        assert_eq!(theta_constant(2, 7.0), vec![1.0, 1.0]);
    }

    #[test]
    fn histogram_counts_sum_to_population() {
        let t = vec![0.0, 0.1, 0.5, 0.99, 1.0];
        let h = histogram(&t, 4);
        assert_eq!(h.iter().sum::<usize>(), 5);
        assert_eq!(h[0], 2); // 0.0 and 0.1
        assert_eq!(h[3], 2); // 0.99 and 1.0 (clamped into last bin)
    }
}
