//! Gaussian kernel density estimation over the θ distribution, and the
//! KDE-proportional user sampling used by OSLG (Algorithm 1, line 2).
//!
//! The paper cites Sheather–Jones bandwidth selection; this implementation
//! uses Silverman's rule of thumb `h = 0.9·min(σ̂, IQR/1.34)·n^{-1/5}`, which
//! agrees within a bounded constant factor on unimodal data — OSLG only uses
//! the density to *sample representative preference values*, so the sampled
//! user sets are statistically indistinguishable (documented substitution,
//! DESIGN.md §2).

use ganc_dataset::UserId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A fitted one-dimensional Gaussian KDE.
#[derive(Debug, Clone)]
pub struct Kde {
    samples: Vec<f64>,
    bandwidth: f64,
}

impl Kde {
    /// Fit to observations with Silverman's rule-of-thumb bandwidth.
    ///
    /// Panics on an empty slice. Degenerate (constant) data gets a small
    /// positive floor bandwidth so sampling still works.
    pub fn fit(values: &[f64]) -> Kde {
        assert!(!values.is_empty(), "KDE needs at least one observation");
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let std_dev = var.sqrt();
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let q = |p: f64| -> f64 {
            let idx = (p * (sorted.len() - 1) as f64).round() as usize;
            sorted[idx]
        };
        let iqr = q(0.75) - q(0.25);
        let scale = if iqr > 0.0 {
            std_dev.min(iqr / 1.34)
        } else {
            std_dev
        };
        let bandwidth = (0.9 * scale * n.powf(-0.2)).max(1e-4);
        Kde {
            samples: values.to_vec(),
            bandwidth,
        }
    }

    /// The selected bandwidth `h`.
    #[inline]
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Density estimate at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / ((self.samples.len() as f64) * h * (std::f64::consts::TAU).sqrt());
        self.samples
            .iter()
            .map(|&xi| {
                let z = (x - xi) / h;
                (-0.5 * z * z).exp()
            })
            .sum::<f64>()
            * norm
    }

    /// Draw one value from the KDE (mixture sampling: random kernel + noise).
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        let idx = rng.random_range(0..self.samples.len());
        let center = self.samples[idx];
        center + self.bandwidth * gaussian(rng)
    }

    /// Draw `k` values.
    pub fn sample_n(&self, rng: &mut StdRng, k: usize) -> Vec<f64> {
        (0..k).map(|_| self.sample(rng)).collect()
    }
}

/// Select `sample_size` distinct users whose θ values are distributed like
/// the KDE of θ — Algorithm 1, line 2 ("draw a sample S from KDE(θ) and
/// find the corresponding users").
///
/// Each KDE draw is matched to the nearest not-yet-selected user by θ.
/// Deterministic in `seed`. Returns all users if `sample_size ≥ |U|`.
pub fn sample_users_by_kde(theta: &[f64], sample_size: usize, seed: u64) -> Vec<UserId> {
    let n = theta.len();
    if sample_size >= n {
        return (0..n as u32).map(UserId).collect();
    }
    if n == 0 || sample_size == 0 {
        return Vec::new();
    }
    let kde = Kde::fit(theta);
    let mut rng = StdRng::seed_from_u64(seed);
    // Users sorted by θ; `taken` marks already-claimed entries.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        theta[a as usize]
            .partial_cmp(&theta[b as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let sorted_theta: Vec<f64> = order.iter().map(|&u| theta[u as usize]).collect();
    let mut taken = vec![false; n];
    let mut selected = Vec::with_capacity(sample_size);
    while selected.len() < sample_size {
        let draw = kde.sample(&mut rng);
        // Two-pointer walk outward from the insertion point visits sorted
        // positions in non-decreasing distance from `draw`, so the first
        // unclaimed position is the nearest unclaimed user.
        let pos = sorted_theta.partition_point(|&t| t < draw);
        let mut l = pos as isize - 1;
        let mut r = pos;
        while l >= 0 || r < n {
            let take_left = if l < 0 {
                false
            } else if r >= n {
                true
            } else {
                (draw - sorted_theta[l as usize]).abs() <= (sorted_theta[r] - draw).abs()
            };
            let idx = if take_left {
                let i = l as usize;
                l -= 1;
                i
            } else {
                let i = r;
                r += 1;
                i
            };
            if !taken[idx] {
                taken[idx] = true;
                selected.push(UserId(order[idx]));
                break;
            }
        }
    }
    selected
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u: f64 = loop {
        let u = rng.random::<f64>();
        if u > 0.0 {
            break u;
        }
    };
    let v: f64 = rng.random::<f64>();
    (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdf_integrates_to_one() {
        let kde = Kde::fit(&[0.2, 0.4, 0.5, 0.55, 0.8]);
        // Trapezoid over a wide interval.
        let (a, b, steps) = (-2.0, 3.0, 5000);
        let dx = (b - a) / steps as f64;
        let integral: f64 = (0..=steps)
            .map(|k| {
                let x = a + k as f64 * dx;
                let w = if k == 0 || k == steps { 0.5 } else { 1.0 };
                w * kde.pdf(x)
            })
            .sum::<f64>()
            * dx;
        assert!((integral - 1.0).abs() < 1e-3, "integral {integral}");
    }

    #[test]
    fn pdf_peaks_near_data_mass() {
        let kde = Kde::fit(&[0.5, 0.5, 0.5, 0.51, 0.49, 0.1]);
        assert!(kde.pdf(0.5) > kde.pdf(0.1));
        assert!(kde.pdf(0.5) > kde.pdf(0.9));
    }

    #[test]
    fn degenerate_data_still_works() {
        let kde = Kde::fit(&[0.3; 10]);
        assert!(kde.bandwidth() > 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let s = kde.sample(&mut rng);
        assert!((s - 0.3).abs() < 0.01);
    }

    #[test]
    fn samples_follow_the_distribution() {
        // Bimodal: mass at 0.2 and 0.8.
        let data: Vec<f64> = (0..100)
            .map(|k| if k % 2 == 0 { 0.2 } else { 0.8 })
            .collect();
        let kde = Kde::fit(&data);
        let mut rng = StdRng::seed_from_u64(2);
        let draws = kde.sample_n(&mut rng, 10_000);
        let near = |c: f64| draws.iter().filter(|&&d| (d - c).abs() < 0.15).count();
        let lo = near(0.2);
        let hi = near(0.8);
        assert!(lo > 3500 && hi > 3500, "lo {lo}, hi {hi}");
    }

    #[test]
    fn user_sampling_is_distinct_and_sized() {
        let theta: Vec<f64> = (0..200).map(|k| k as f64 / 200.0).collect();
        let users = sample_users_by_kde(&theta, 50, 3);
        assert_eq!(users.len(), 50);
        let mut ids: Vec<u32> = users.iter().map(|u| u.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 50, "users must be distinct");
    }

    #[test]
    fn user_sampling_tracks_density() {
        // 90% of users near 0.3, 10% near 0.9 — the sample should favor the
        // dense region roughly proportionally.
        let mut theta = vec![0.3; 900];
        theta.extend(vec![0.9; 100]);
        let users = sample_users_by_kde(&theta, 100, 5);
        let dense = users
            .iter()
            .filter(|u| (theta[u.idx()] - 0.3).abs() < 0.2)
            .count();
        assert!(dense > 70, "dense-region users {dense}/100");
    }

    #[test]
    fn oversized_sample_returns_everyone() {
        let theta = vec![0.1, 0.5, 0.9];
        let users = sample_users_by_kde(&theta, 10, 1);
        assert_eq!(users.len(), 3);
    }

    #[test]
    fn sampling_is_deterministic_in_seed() {
        let theta: Vec<f64> = (0..100).map(|k| (k as f64 / 100.0).powi(2)).collect();
        let a = sample_users_by_kde(&theta, 20, 9);
        let b = sample_users_by_kde(&theta, 20, 9);
        assert_eq!(a, b);
    }
}
