//! # ganc-preference
//!
//! User long-tail novelty preference estimation (§II of the paper).
//!
//! Given only the train interactions `R`, these models produce one scalar
//! `θ_u ∈ [0, 1]` per user — the user's willingness to explore less popular
//! items — which GANC then uses to personalize its accuracy/coverage
//! trade-off:
//!
//! | model | paper | constructor |
//! |-------|-------|-------------|
//! | Activity `θ^A` | §II-B | [`simple::theta_activity`] |
//! | Normalized long-tail `θ^N` | Eq. II.1 | [`simple::theta_normalized`] |
//! | TFIDF-based `θ^T` | Eq. II.2 | [`tfidf::theta_tfidf`] |
//! | Generalized `θ^G` | Eq. II.4–II.6 | [`generalized::GeneralizedConfig`] |
//! | Random `θ^R` (control) | §IV-C | [`simple::theta_random`] |
//! | Constant `θ^C` (control) | §IV-C | [`simple::theta_constant`] |
//!
//! [`kde::Kde`] provides the kernel density estimate over θ that the OSLG
//! optimizer samples users from (Algorithm 1, line 2).

pub mod generalized;
pub mod kde;
pub mod simple;
pub mod tfidf;

pub use generalized::GeneralizedConfig;
pub use kde::Kde;

/// Identifier of a preference model — used by experiment harnesses to label
/// GANC variants (`GANC(ARec, θ^G, Dyn)` etc).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThetaModel {
    /// Activity `θ^A`.
    Activity,
    /// Normalized long-tail fraction `θ^N`.
    Normalized,
    /// TFIDF-based `θ^T`.
    Tfidf,
    /// Generalized minimax `θ^G`.
    Generalized,
    /// Uniform-random control `θ^R`.
    Random,
    /// Constant control `θ^C`.
    Constant,
}

impl ThetaModel {
    /// Superscript label as used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            ThetaModel::Activity => "θA",
            ThetaModel::Normalized => "θN",
            ThetaModel::Tfidf => "θT",
            ThetaModel::Generalized => "θG",
            ThetaModel::Random => "θR",
            ThetaModel::Constant => "θC",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(ThetaModel::Generalized.label(), "θG");
        assert_eq!(ThetaModel::Tfidf.label(), "θT");
        assert_eq!(ThetaModel::Normalized.label(), "θN");
    }
}
