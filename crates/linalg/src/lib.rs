//! # ganc-linalg
//!
//! Minimal dense linear algebra substrate for the PureSVD recommender:
//!
//! * [`DMat`] — row-major dense `f64` matrices with the handful of products
//!   the SVD pipeline needs.
//! * [`qr::thin_qr`] — thin QR via modified Gram–Schmidt with
//!   re-orthogonalization (numerically robust enough for range finding).
//! * [`eig::symmetric_eigen`] — cyclic Jacobi eigendecomposition of small
//!   symmetric matrices.
//! * [`svd::randomized_svd`] — Halko–Martinsson–Tropp randomized truncated
//!   SVD over any [`svd::LinOp`], so sparse rating matrices never have to be
//!   densified.
//!
//! The paper's PSVD10/PSVD100 configurations (§IV-A) are `k = 10` and
//! `k = 100` truncations computed with this module.

pub mod dmat;
pub mod eig;
pub mod qr;
pub mod svd;

pub use dmat::DMat;
pub use svd::{randomized_svd, LinOp, Svd, SvdConfig};
