//! Row-major dense `f64` matrices.
//!
//! Deliberately small: only the operations the randomized SVD pipeline and
//! the recommenders need. Rows are contiguous, so per-row slices can feed
//! dot-product kernels without copies.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DMat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMat {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> DMat {
        DMat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a generator over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> DMat {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        DMat { rows, cols, data }
    }

    /// Wrap an existing row-major buffer. Panics if the length is wrong.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> DMat {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        DMat { rows, cols, data }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> DMat {
        DMat::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Matrix product `self × other`.
    pub fn matmul(&self, other: &DMat) -> DMat {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = DMat::zeros(self.rows, other.cols);
        // i-k-j loop order: the inner loop streams both `other.row(k)` and
        // `out.row(i)` contiguously.
        for i in 0..self.rows {
            let a_row = self.row(i);
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                let o_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += aik * b;
                }
            }
        }
        out
    }

    /// Transposed product `selfᵀ × other` without materializing the
    /// transpose.
    pub fn t_matmul(&self, other: &DMat) -> DMat {
        assert_eq!(self.rows, other.rows, "row counts must agree");
        let mut out = DMat::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let o_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> DMat {
        DMat::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Scale every column `c` by `scales[c]` in place.
    pub fn scale_cols(&mut self, scales: &[f64]) {
        assert_eq!(scales.len(), self.cols);
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (v, &s) in row.iter_mut().zip(scales) {
                *v *= s;
            }
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&v| v * v).sum::<f64>().sqrt()
    }

    /// Max absolute element-wise difference to `other`.
    pub fn max_abs_diff(&self, other: &DMat) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Keep only the first `k` columns.
    pub fn truncate_cols(&self, k: usize) -> DMat {
        let k = k.min(self.cols);
        DMat::from_fn(self.rows, k, |r, c| self.get(r, c))
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = DMat::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn matmul_matches_hand_result() {
        let a = DMat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = DMat::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[58.0, 64.0]);
        assert_eq!(c.row(1), &[139.0, 154.0]);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let a = DMat::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = DMat::from_vec(3, 2, vec![0.5, -1.0, 2.0, 0.0, 1.0, 3.0]);
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        assert!(fast.max_abs_diff(&slow) < 1e-12);
    }

    #[test]
    fn identity_is_neutral() {
        let a = DMat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = DMat::identity(2);
        assert!(a.matmul(&i).max_abs_diff(&a) < 1e-15);
        assert!(i.matmul(&a).max_abs_diff(&a) < 1e-15);
    }

    #[test]
    fn scale_cols_scales() {
        let mut a = DMat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        a.scale_cols(&[2.0, 0.5]);
        assert_eq!(a.row(0), &[2.0, 1.0]);
        assert_eq!(a.row(1), &[6.0, 2.0]);
    }

    #[test]
    fn frobenius_norm_known_value() {
        let a = DMat::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn truncate_cols_keeps_prefix() {
        let a = DMat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.truncate_cols(2);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.row(1), &[4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_rejects_mismatch() {
        let a = DMat::zeros(2, 3);
        let b = DMat::zeros(2, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn dot_of_slices() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }
}
