//! Randomized truncated SVD (Halko–Martinsson–Tropp) over abstract linear
//! operators.
//!
//! PureSVD (§III-A of the paper) needs the dominant `k` singular triplets of
//! the zero-imputed user×item rating matrix. That matrix is sparse, so the
//! algorithm only ever touches it through matrix–block products
//! `A·X` / `Aᵀ·X` exposed by the [`LinOp`] trait — the recommender crate
//! implements `LinOp` for its CSR interaction matrix and never densifies.

use crate::dmat::DMat;
use crate::eig::symmetric_eigen;
use crate::qr::thin_qr;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Abstract linear operator: anything that can multiply dense blocks from
/// the left (`A·X`) and transposed (`Aᵀ·X`).
pub trait LinOp {
    /// Row count of `A`.
    fn rows(&self) -> usize;
    /// Column count of `A`.
    fn cols(&self) -> usize;
    /// `A × x` where `x` is `cols × k`; result is `rows × k`.
    fn apply(&self, x: &DMat) -> DMat;
    /// `Aᵀ × x` where `x` is `rows × k`; result is `cols × k`.
    fn apply_t(&self, x: &DMat) -> DMat;
}

impl LinOp for DMat {
    fn rows(&self) -> usize {
        DMat::rows(self)
    }

    fn cols(&self) -> usize {
        DMat::cols(self)
    }

    fn apply(&self, x: &DMat) -> DMat {
        self.matmul(x)
    }

    fn apply_t(&self, x: &DMat) -> DMat {
        self.t_matmul(x)
    }
}

/// Configuration of the randomized range finder.
#[derive(Debug, Clone, Copy)]
pub struct SvdConfig {
    /// Number of singular triplets to keep (`k`).
    pub rank: usize,
    /// Extra columns sampled beyond `rank` for accuracy (`p`, default 10).
    pub oversample: usize,
    /// Power (subspace) iterations `q`; 2 is enough for rating matrices
    /// whose spectra decay slowly.
    pub power_iters: usize,
    /// RNG seed for the Gaussian test matrix.
    pub seed: u64,
}

impl SvdConfig {
    /// Config with sensible defaults for a given rank.
    pub fn with_rank(rank: usize) -> SvdConfig {
        SvdConfig {
            rank,
            oversample: 10,
            power_iters: 2,
            seed: 0x05EE_D57D,
        }
    }
}

/// A truncated singular value decomposition `A ≈ U diag(s) Vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `rows × k`.
    pub u: DMat,
    /// Singular values, descending, length `k`.
    pub s: Vec<f64>,
    /// Right singular vectors, `cols × k`.
    pub v: DMat,
}

impl Svd {
    /// Reconstruct the rank-`k` approximation (test/debug helper; dense).
    pub fn reconstruct(&self) -> DMat {
        let mut us = self.u.clone();
        us.scale_cols(&self.s);
        let vt = self.v.transpose();
        us.matmul(&vt)
    }
}

/// Compute a randomized truncated SVD of `a`.
///
/// Algorithm (Halko et al. 2011, Alg. 4.4 + 5.1 adapted to a Gram-matrix
/// small-SVD):
/// 1. Sample a Gaussian test block `Ω` with `k + p` columns.
/// 2. Range-find `Q = qr(A Ω)` with `q` power iterations, re-orthonormalizing
///    after every product for stability.
/// 3. Form `B = Qᵀ A` implicitly as `(Aᵀ Q)ᵀ` and eigendecompose the small
///    Gram matrix `B Bᵀ = W Λ Wᵀ`.
/// 4. `σ = √λ`, `U = Q W`, `V = Bᵀ W diag(1/σ)`, truncated to `k`.
pub fn randomized_svd<A: LinOp>(a: &A, config: SvdConfig) -> Svd {
    let m = a.rows();
    let n = a.cols();
    assert!(m > 0 && n > 0, "operator must be non-empty");
    let k = config.rank.max(1).min(m.min(n));
    let sketch = (k + config.oversample).min(m.min(n));
    let mut rng = StdRng::seed_from_u64(config.seed);
    let omega = DMat::from_fn(n, sketch, |_, _| ganc_gaussian(&mut rng));
    // Stage A: range finding with power iterations.
    let mut q = thin_qr(&a.apply(&omega));
    for _ in 0..config.power_iters {
        let z = thin_qr(&a.apply_t(&q));
        q = thin_qr(&a.apply(&z));
    }
    // Stage B: project. bt = Aᵀ Q  (n × sketch), so B = btᵀ.
    let bt = a.apply_t(&q);
    // Small Gram matrix B Bᵀ = btᵀ bt (sketch × sketch).
    let gram = bt.t_matmul(&bt);
    let eig = symmetric_eigen(&gram);
    let mut s: Vec<f64> = eig.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
    // U = Q W, V = bt W diag(1/σ)
    let u_full = q.matmul(&eig.vectors);
    let mut v_full = bt.matmul(&eig.vectors);
    let inv_s: Vec<f64> = s
        .iter()
        .map(|&x| if x > 1e-12 { 1.0 / x } else { 0.0 })
        .collect();
    v_full.scale_cols(&inv_s);
    s.truncate(k);
    Svd {
        u: u_full.truncate_cols(k),
        s,
        v: v_full.truncate_cols(k),
    }
}

/// Standard normal draw (Box–Muller, local copy to keep this crate free of a
/// dependency on `ganc-dataset`).
fn ganc_gaussian(rng: &mut StdRng) -> f64 {
    use rand::RngExt;
    let u: f64 = loop {
        let u = rng.random::<f64>();
        if u > 0.0 {
            break u;
        }
    };
    let v: f64 = rng.random::<f64>();
    (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a matrix with known singular values via U diag(s) Vᵀ where U, V
    /// come from QR of fixed matrices.
    fn planted(m: usize, n: usize, svals: &[f64]) -> DMat {
        let k = svals.len();
        let u = thin_qr(&DMat::from_fn(m, k, |r, c| ((r * 13 + c * 7) as f64).sin()));
        let v = thin_qr(&DMat::from_fn(n, k, |r, c| ((r * 5 + c * 11) as f64).cos()));
        let mut us = u.clone();
        us.scale_cols(svals);
        us.matmul(&v.transpose())
    }

    #[test]
    fn recovers_planted_singular_values() {
        let a = planted(40, 25, &[10.0, 5.0, 2.0, 1.0]);
        let svd = randomized_svd(&a, SvdConfig::with_rank(4));
        for (got, want) in svd.s.iter().zip(&[10.0, 5.0, 2.0, 1.0]) {
            assert!((got - want).abs() < 1e-8, "got {got}, want {want}");
        }
    }

    #[test]
    fn low_rank_reconstruction_is_exact() {
        let a = planted(30, 20, &[4.0, 2.0]);
        let svd = randomized_svd(&a, SvdConfig::with_rank(2));
        assert!(svd.reconstruct().max_abs_diff(&a) < 1e-8);
    }

    #[test]
    fn truncation_keeps_dominant_directions() {
        let a = planted(30, 20, &[9.0, 3.0, 0.5]);
        let svd = randomized_svd(&a, SvdConfig::with_rank(2));
        assert_eq!(svd.s.len(), 2);
        assert!((svd.s[0] - 9.0).abs() < 1e-6);
        assert!((svd.s[1] - 3.0).abs() < 1e-6);
        // Error of the rank-2 approximation is the dropped σ₃ = 0.5.
        let err = svd.reconstruct().max_abs_diff(&a);
        assert!(err < 0.5, "error {err} should be bounded by dropped σ");
    }

    #[test]
    fn factors_are_orthonormal() {
        let a = planted(25, 25, &[6.0, 4.0, 1.0]);
        let svd = randomized_svd(&a, SvdConfig::with_rank(3));
        let gu = svd.u.t_matmul(&svd.u);
        let gv = svd.v.t_matmul(&svd.v);
        assert!(gu.max_abs_diff(&DMat::identity(3)) < 1e-8);
        assert!(gv.max_abs_diff(&DMat::identity(3)) < 1e-8);
    }

    #[test]
    fn rank_larger_than_dims_is_clamped() {
        let a = planted(6, 4, &[3.0, 1.0]);
        let svd = randomized_svd(&a, SvdConfig::with_rank(10));
        assert_eq!(svd.s.len(), 4);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = planted(20, 15, &[5.0, 2.0, 1.0]);
        let s1 = randomized_svd(&a, SvdConfig::with_rank(3));
        let s2 = randomized_svd(&a, SvdConfig::with_rank(3));
        assert!(s1.u.max_abs_diff(&s2.u) < 1e-15);
        assert_eq!(s1.s, s2.s);
    }

    #[test]
    fn zero_matrix_yields_zero_spectrum() {
        let a = DMat::zeros(8, 5);
        let svd = randomized_svd(&a, SvdConfig::with_rank(3));
        assert!(svd.s.iter().all(|&s| s.abs() < 1e-10));
    }
}
