//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Only small matrices pass through here — the `(k + oversample)²` Gram
//! matrices of the randomized SVD, at most a few hundred on a side — where
//! Jacobi's simplicity and unconditional stability beat anything fancier.

use crate::dmat::DMat;

/// Result of [`symmetric_eigen`]: `a ≈ vectors × diag(values) × vectorsᵀ`,
/// eigenvalues sorted in **descending** order, eigenvectors in the matching
/// column order.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Column-eigenvector matrix, aligned with `values`.
    pub vectors: DMat,
}

/// Jacobi eigendecomposition of a symmetric matrix.
///
/// Sweeps Givens rotations over all off-diagonal entries until the
/// off-diagonal Frobenius mass falls below `1e-14 × ‖a‖` or `max_sweeps`
/// sweeps have run (30 by default is far more than needed at these sizes).
pub fn symmetric_eigen(a: &DMat) -> SymEigen {
    assert_eq!(a.rows(), a.cols(), "matrix must be square");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = DMat::identity(n);
    let norm = a.frobenius_norm().max(f64::MIN_POSITIVE);
    let tol = 1e-14 * norm;
    let max_sweeps = 40;
    for _ in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m.get(p, q) * m.get(p, q);
            }
        }
        if off.sqrt() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Stable rotation that annihilates m[p][q] (Golub & Van Loan
                // §8.5.2): t = sign(τ) / (|τ| + √(1 + τ²)).
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply rotation on the left and right: rows/cols p and q.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    // Extract and sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    order.sort_by(|&i, &j| {
        diag[j]
            .partial_cmp(&diag[i])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let vectors = DMat::from_fn(n, n, |r, c| v.get(r, order[c]));
    SymEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &SymEigen) -> DMat {
        let n = e.values.len();
        let mut scaled = e.vectors.clone();
        scaled.scale_cols(&e.values);
        let vt = DMat::from_fn(n, n, |r, c| e.vectors.get(c, r));
        scaled.matmul(&vt)
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = DMat::from_vec(3, 3, vec![2.0, 0.0, 0.0, 0.0, 5.0, 0.0, 0.0, 0.0, 1.0]);
        let e = symmetric_eigen(&a);
        assert!((e.values[0] - 5.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = DMat::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = symmetric_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        // eigenvector of 3 is (1,1)/√2 up to sign
        let v0 = (e.vectors.get(0, 0), e.vectors.get(1, 0));
        assert!((v0.0.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0.0 - v0.1).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_round_trip() {
        // Random-ish symmetric matrix.
        let base = DMat::from_fn(6, 6, |r, c| ((r * 7 + c * 3) as f64).sin());
        let a = {
            let mut s = DMat::zeros(6, 6);
            for r in 0..6 {
                for c in 0..6 {
                    s.set(r, c, 0.5 * (base.get(r, c) + base.get(c, r)));
                }
            }
            s
        };
        let e = symmetric_eigen(&a);
        assert!(reconstruct(&e).max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = DMat::from_fn(5, 5, |r, c| 1.0 / (1.0 + (r + c) as f64));
        let e = symmetric_eigen(&a);
        let gram = e.vectors.t_matmul(&e.vectors);
        assert!(gram.max_abs_diff(&DMat::identity(5)) < 1e-9);
    }

    #[test]
    fn values_are_sorted_descending() {
        let a = DMat::from_fn(8, 8, |r, c| if r == c { (r as f64) - 3.0 } else { 0.1 });
        let e = symmetric_eigen(&a);
        assert!(e.values.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn zero_matrix() {
        let e = symmetric_eigen(&DMat::zeros(3, 3));
        assert!(e.values.iter().all(|&v| v.abs() < 1e-15));
    }
}
