//! Thin QR factorization via modified Gram–Schmidt.
//!
//! Used as the range orthonormalizer inside the randomized SVD. A single MGS
//! pass loses orthogonality on ill-conditioned inputs, so columns are
//! re-orthogonalized once ("twice is enough", Giraud et al.), which is
//! plenty for subspace iteration.

use crate::dmat::DMat;

/// Compute a thin QR factorization, returning only the orthonormal factor
/// `Q` (`m × k` with `k = min(m, n)` columns).
///
/// Rank-deficient columns (norm below `1e-12` after projection) are replaced
/// by deterministic canonical-basis fill-ins re-orthogonalized against the
/// previous columns, so `Q` always has orthonormal columns.
pub fn thin_qr(a: &DMat) -> DMat {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);
    // Work column-major for cache-friendly column ops.
    let mut cols: Vec<Vec<f64>> = (0..n)
        .take(k)
        .map(|c| (0..m).map(|r| a.get(r, c)).collect())
        .collect();
    let mut q: Vec<Vec<f64>> = Vec::with_capacity(k);
    for col in cols.iter_mut().take(k) {
        let mut v = std::mem::take(col);
        // Two rounds of MGS projection against all accepted columns.
        for _ in 0..2 {
            for qc in &q {
                let proj: f64 = v.iter().zip(qc).map(|(a, b)| a * b).sum();
                for (vi, qi) in v.iter_mut().zip(qc) {
                    *vi -= proj * qi;
                }
            }
        }
        let mut norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-12 {
            // Deficient column: scan canonical basis vectors for one whose
            // residual after projection is non-degenerate.
            'fill: for basis in 0..m {
                v.iter_mut().for_each(|x| *x = 0.0);
                v[basis] = 1.0;
                for _ in 0..2 {
                    for qc in &q {
                        let proj: f64 = v.iter().zip(qc).map(|(a, b)| a * b).sum();
                        for (vi, qi) in v.iter_mut().zip(qc) {
                            *vi -= proj * qi;
                        }
                    }
                }
                norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
                if norm > 1e-8 {
                    break 'fill;
                }
            }
        }
        let inv = 1.0 / norm;
        v.iter_mut().for_each(|x| *x *= inv);
        q.push(v);
    }
    DMat::from_fn(m, k, |r, c| q[c][r])
}

/// Max absolute deviation of `qᵀq` from the identity — a test/debug helper
/// for orthonormality.
pub fn orthonormality_error(q: &DMat) -> f64 {
    let gram = q.t_matmul(q);
    let eye = DMat::identity(q.cols());
    gram.max_abs_diff(&eye)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_of_identity_is_identity() {
        let q = thin_qr(&DMat::identity(4));
        assert!(q.max_abs_diff(&DMat::identity(4)) < 1e-12);
    }

    #[test]
    fn q_is_orthonormal() {
        let a = DMat::from_fn(6, 3, |r, c| ((r * 3 + c) as f64).sin() + 0.1 * r as f64);
        let q = thin_qr(&a);
        assert_eq!(q.rows(), 6);
        assert_eq!(q.cols(), 3);
        assert!(
            orthonormality_error(&q) < 1e-10,
            "{}",
            orthonormality_error(&q)
        );
    }

    #[test]
    fn q_spans_the_column_space() {
        // A has rank 2; projecting A onto span(Q) must reproduce A.
        let a = DMat::from_vec(4, 2, vec![1.0, 2.0, 2.0, 4.5, -1.0, 0.0, 3.0, 1.0]);
        let q = thin_qr(&a);
        let proj = q.matmul(&q.t_matmul(&a));
        assert!(proj.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn rank_deficient_input_still_orthonormal() {
        // Two identical columns.
        let a = DMat::from_vec(4, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0]);
        let q = thin_qr(&a);
        assert!(orthonormality_error(&q) < 1e-8);
    }

    #[test]
    fn zero_matrix_yields_orthonormal_q() {
        let q = thin_qr(&DMat::zeros(5, 2));
        assert!(orthonormality_error(&q) < 1e-8);
    }

    #[test]
    fn wide_matrix_truncates_to_row_count() {
        let a = DMat::from_fn(2, 5, |r, c| (r + c) as f64 + 1.0);
        let q = thin_qr(&a);
        assert_eq!(q.cols(), 2);
        assert!(orthonormality_error(&q) < 1e-10);
    }
}
