//! A router node for multi-node θ-band deployment: PR 3 made multi-node
//! serving "a routing problem" by slicing one bundle into per-band
//! artifacts; this module is the router. Each band is served either by a
//! local [`ServingEngine`] over its slice or by a peer node reached through
//! a [`PeerTransport`] (production: [`crate::RemoteShard`], optionally
//! wrapped in a [`crate::CoalescedShard`]) — the same `/v1/*` protocol
//! either way, so a band can be moved across nodes without the router's
//! callers noticing.
//!
//! Output equivalence: a user's request is answered by the engine holding
//! their band's slice, and serving from a slice is byte-identical to
//! serving from the full bundle ([`ganc_serve::ModelBundle::slice_theta_band`]),
//! so a router over any local/remote mix produces exactly the lists an
//! in-process [`ganc_serve::ShardedEngine`] produces — which
//! `tests/http_equivalence.rs` asserts across a real two-node topology.
//!
//! Batch dispatch is **parallel**: every touched band's sub-batch goes out
//! concurrently (scoped threads, one per touched band, skipped when all
//! touched bands are local engines that already parallelize internally),
//! so a batch's wall clock is the *slowest* band's round-trip instead of
//! the sum — the win that matters once bands live on remote nodes.
//! Responses are reassembled
//! in request order and the per-band results are folded **in band order**,
//! so ordering, error selection, and the generation-skew check are
//! byte-for-byte identical to the sequential reference
//! ([`RouterNode::recommend_batch_traced_sequential`]), which
//! `tests/router_fanout.rs` proves under injected slow/flaky/reordered
//! peers. The one observable difference is side effects on the wire: the
//! sequential path stops dispatching at the first failed band, the
//! parallel path has already started the rest (read-only calls, so
//! nothing diverges).

use crate::replica::{ProbeHandle, ReplicaConfig, ReplicaSet, ReplicaStats};
use crate::transport::PeerTransport;
use crate::BackendError;
use ganc_core::query::shard_of;
use ganc_dataset::{ItemId, UserId};
use ganc_obs::{Counter, Histogram, ObsHub, WindowFold, WindowStats, WindowWire};
use ganc_serve::{
    DedupWindow, IngestAck, RequestOptions, ServeError, ServingEngine, Wal, WalRecord,
};
use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Where one θ band is served.
pub enum ShardRoute {
    /// In this process, over the band's bundle slice.
    Local(Arc<ServingEngine>),
    /// On a peer node, over a [`PeerTransport`] (HTTP in production).
    Remote(Arc<dyn PeerTransport>),
    /// On a replica group over the band's slice: hedged dispatch,
    /// failover, and health-driven rotation ([`crate::replica`]).
    Replicas(Arc<ReplicaSet>),
}

impl ShardRoute {
    /// A remote route over any peer transport (sugar for wrapping in an
    /// `Arc`).
    pub fn remote(peer: impl PeerTransport + 'static) -> ShardRoute {
        ShardRoute::Remote(Arc::new(peer))
    }

    /// A replicated route over several peers serving the same slice, on
    /// the production clock.
    pub fn replicated(peers: Vec<Arc<dyn PeerTransport>>, cfg: ReplicaConfig) -> ShardRoute {
        ShardRoute::Replicas(ReplicaSet::new(peers, cfg))
    }

    /// Short label for stats: `"local"` for in-process slices, the
    /// transport's own kind (`"remote"`, `"coalesced"`) for peers,
    /// `"replicas"` for replica groups.
    pub(crate) fn kind(&self) -> &'static str {
        match self {
            ShardRoute::Local(_) => "local",
            ShardRoute::Remote(r) => r.kind(),
            ShardRoute::Replicas(_) => "replicas",
        }
    }

    /// Peer address (or double label) for remote routes.
    pub(crate) fn addr(&self) -> Option<String> {
        match self {
            ShardRoute::Local(_) => None,
            ShardRoute::Remote(r) => Some(r.label()),
            ShardRoute::Replicas(set) => Some(set.label()),
        }
    }

    /// Coalescer queue depth, when this route micro-batches.
    pub(crate) fn pending(&self) -> Option<usize> {
        match self {
            ShardRoute::Local(_) => None,
            ShardRoute::Remote(r) => r.pending_depth(),
            ShardRoute::Replicas(_) => None,
        }
    }

    /// This band's rolling-window summary, when the route can produce
    /// one: local slices export their own window, remote peers are asked
    /// over the wire (`GET /v1/window`), replica groups are skipped —
    /// each replica serves a copy of the same traffic, so folding them
    /// would multiply-count every served list.
    pub(crate) fn window_wire(&self) -> Option<WindowWire> {
        match self {
            ShardRoute::Local(engine) => engine.window_wire(),
            ShardRoute::Remote(remote) => remote.window_wire().ok().flatten(),
            ShardRoute::Replicas(_) => None,
        }
    }

    /// The band's replica group, when this route is replicated.
    pub(crate) fn replicas(&self) -> Option<&Arc<ReplicaSet>> {
        match self {
            ShardRoute::Replicas(set) => Some(set),
            _ => None,
        }
    }

    /// Replica-group view for `/v1/stats`: single-backend routes report
    /// as a degenerate group of one healthy replica, so the stats shape
    /// is uniform across route kinds.
    pub(crate) fn replica_view(&self) -> ReplicaStats {
        match self {
            ShardRoute::Replicas(set) => set.stats(),
            _ => ReplicaStats {
                replicas: 1,
                healthy: 1,
                primary: 0,
                hedges: 0,
                failovers: 0,
                ejections: 0,
                restores: 0,
            },
        }
    }

    pub(crate) fn generation(&self) -> Result<u64, BackendError> {
        match self {
            ShardRoute::Local(e) => Ok(e.generation()),
            ShardRoute::Remote(r) => r.generation(),
            ShardRoute::Replicas(set) => set.generation(),
        }
    }

    /// Dispatch one band's sub-batch. Remote/replica failures are wrapped
    /// with the band index so the caller knows *which* shard of the
    /// deployment is unhealthy.
    #[allow(clippy::type_complexity)]
    fn dispatch(
        &self,
        band: usize,
        sub: &[UserId],
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
        let band_err = |e: BackendError| BackendError::Band {
            band,
            message: e.to_string(),
        };
        match self {
            ShardRoute::Local(engine) => Ok(engine.recommend_batch_traced(sub)),
            ShardRoute::Remote(remote) => remote.recommend_batch_traced(sub).map_err(band_err),
            ShardRoute::Replicas(set) => set.recommend_batch_traced(sub).map_err(band_err),
        }
    }
}

/// Per-band router metric handles: dispatch latency and error attribution
/// for every route, plus the availability counters replica groups bump.
struct BandObs {
    dispatch_us: Arc<Histogram>,
    errors: Arc<Counter>,
}

struct RouterObs {
    hub: Arc<ObsHub>,
    /// Indexed by band.
    bands: Vec<BandObs>,
}

impl RouterObs {
    fn new(hub: Arc<ObsHub>, routes: &[ShardRoute]) -> RouterObs {
        let bands = routes
            .iter()
            .enumerate()
            .map(|(j, route)| {
                let band = j.to_string();
                let labels: Vec<(&str, &str)> = vec![("band", &band), ("kind", route.kind())];
                let dispatch_us = hub.metrics.histogram(
                    "ganc_router_band_dispatch_us",
                    "Router per-band dispatch latency (microseconds)",
                    &labels,
                );
                let errors = hub.metrics.counter(
                    "ganc_router_band_errors_total",
                    "Router dispatches that failed, by band",
                    &labels,
                );
                // Availability series, registered at zero for *every*
                // band so dashboards stay stable: replica groups fetch
                // the same handles (registry keying is name + labels)
                // and bump them; single-backend bands stay pinned at 0.
                for (name, help) in [
                    (
                        "ganc_router_band_hedges_total",
                        "Hedged router dispatches, by band",
                    ),
                    (
                        "ganc_router_band_failovers_total",
                        "Dispatches retried on another replica, by band",
                    ),
                    (
                        "ganc_router_band_ejections_total",
                        "Replicas ejected by the consecutive-failure breaker, by band",
                    ),
                    (
                        "ganc_router_band_restores_total",
                        "Ejected replicas restored by a health probe, by band",
                    ),
                ] {
                    hub.metrics.counter(name, help, &labels);
                }
                BandObs {
                    dispatch_us,
                    errors,
                }
            })
            .collect();
        RouterObs { hub, bands }
    }
}

/// How many client-supplied idempotency keys a router remembers for
/// fan-out dedup ([`RouterNode::ingest_keyed`]). Matches the per-node WAL
/// default ([`ganc_serve::DurableConfig`]).
const ROUTER_DEDUP_WINDOW: usize = 4096;

/// Dedup-key WAL window tags. The router repurposes
/// [`WalRecord::Key`]'s `generation` field (it has no model generation
/// to stamp) to say *which* in-memory window a persisted key belongs
/// to — replaying a local-only key into `ingest_keys` would
/// short-circuit its resend and lose the remote repair it still needs.
const INGEST_KEYS_TAG: u64 = 0;
const LOCAL_KEYS_TAG: u64 = 1;

/// Routes each user's request to the engine serving their θ band.
pub struct RouterNode {
    /// Per-user θ (the full population — routing needs every user).
    theta: Arc<Vec<f64>>,
    /// Ascending cut points; `cuts.len() + 1` bands.
    cuts: Vec<f64>,
    routes: Vec<ShardRoute>,
    obs: OnceLock<RouterObs>,
    /// Client-supplied idempotency keys whose fan-out fully succeeded:
    /// a resend of such a key is a no-op at the router, before any wire
    /// call. In-memory only — the durable dedup lives in each WAL-backed
    /// node; this window just short-circuits the common retry.
    ingest_keys: Mutex<DedupWindow>,
    /// Client-supplied keys whose **local** applies already landed. Local
    /// slices have no WAL, so without this window a resend after partial
    /// fan-out failure (remote down, locals applied) would bump local
    /// live-popularity a second time. Recorded once every local route has
    /// applied — even when a remote route failed — so the resend repairs
    /// the remotes and skips the locals.
    local_keys: Mutex<DedupWindow>,
    /// Optional durable mirror of both dedup windows: consumed keys are
    /// appended as [`WalRecord::Key`] stubs and replayed on construction
    /// ([`RouterNode::with_wal`]), so a router restart no longer forgets
    /// which keys it consumed — without this, a resend arriving after a
    /// restart mid-repair re-applies local live counters. Appends are
    /// best-effort: losing one degrades that key to the in-memory-only
    /// at-least-once behavior; it never fails an acknowledged ingest.
    wal: Option<Mutex<Wal>>,
    /// Key-generation state for unkeyed ingests:
    /// `ganc-{epoch:x}-{nonce:x}-{seq:x}` is unique per router instance
    /// per request, so every route of one fan-out shares one key and a
    /// retried route dedups downstream.
    key_epoch: u64,
    /// Per-instance random nonce mixed into every generated key. The
    /// epoch alone is construction time in microseconds — two router
    /// instances built in the same microsecond would emit colliding key
    /// streams, and a collision makes a WAL node answer `Deduplicated`
    /// for a *different* interaction, silently dropping an acknowledged
    /// rating. The nonce (process id + `RandomState` entropy) makes
    /// cross-instance collisions practically impossible.
    key_nonce: u64,
    key_seq: AtomicU64,
}

impl RouterNode {
    /// Build a router over `cuts.len() + 1` routes. `theta` must be the
    /// full bundle's per-user vector (every route's slice carries it, so
    /// any node can stand up a router without extra state).
    pub fn new(theta: Arc<Vec<f64>>, cuts: Vec<f64>, routes: Vec<ShardRoute>) -> RouterNode {
        assert_eq!(
            routes.len(),
            cuts.len() + 1,
            "k cuts require k+1 shard routes"
        );
        assert!(
            cuts.windows(2).all(|w| w[0] <= w[1]),
            "cuts must be ascending"
        );
        let key_epoch = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let key_nonce = {
            let mut h = RandomState::new().build_hasher();
            h.write_u64(key_epoch);
            h.write_u32(std::process::id());
            h.finish()
        };
        RouterNode {
            theta,
            cuts,
            routes,
            obs: OnceLock::new(),
            ingest_keys: Mutex::new(DedupWindow::new(ROUTER_DEDUP_WINDOW)),
            local_keys: Mutex::new(DedupWindow::new(ROUTER_DEDUP_WINDOW)),
            wal: None,
            key_epoch,
            key_nonce,
            key_seq: AtomicU64::new(0),
        }
    }

    /// Build a router whose dedup windows survive restarts: consumed
    /// keys are persisted to a small WAL at `path` as [`WalRecord::Key`]
    /// stubs (tagged by window) and replayed here, so a key consumed
    /// before a crash still answers `Deduplicated` — and still skips the
    /// already-applied local mutations on a resend — after the restart.
    /// Only keys are persisted: interactions themselves are durably
    /// owned by each WAL-backed node, never by the router.
    pub fn with_wal(
        theta: Arc<Vec<f64>>,
        cuts: Vec<f64>,
        routes: Vec<ShardRoute>,
        path: impl AsRef<Path>,
    ) -> io::Result<RouterNode> {
        let mut node = RouterNode::new(theta, cuts, routes);
        let (wal, records, _) = Wal::open(path)?;
        {
            let mut ingest = node.ingest_keys.lock().unwrap();
            let mut local = node.local_keys.lock().unwrap();
            for rec in &records {
                if let WalRecord::Key { generation, key } = rec {
                    match *generation {
                        INGEST_KEYS_TAG => {
                            ingest.observe(key);
                        }
                        LOCAL_KEYS_TAG => {
                            local.observe(key);
                        }
                        // Unknown tags (a future window) are skipped, as
                        // are full `Ingest` records: a router pointed at
                        // a node WAL by mistake must not invent dedup
                        // state from them.
                        _ => {}
                    }
                }
            }
        }
        node.wal = Some(Mutex::new(wal));
        Ok(node)
    }

    /// Attach observability: per-band dispatch histograms/error counters on
    /// this router, plus engine-level metrics (band-labelled) and rolling
    /// windows on every **local** route. Remote bands report their own
    /// metrics on their own node — a router never double-counts them.
    /// One-shot; later calls are ignored.
    pub fn attach_obs(&self, hub: Arc<ObsHub>, window: Duration) {
        if self.obs.get().is_some() {
            return;
        }
        for (j, route) in self.routes.iter().enumerate() {
            match route {
                ShardRoute::Local(engine) => {
                    engine.attach_obs(Arc::clone(&hub), Some(j as u32), window);
                }
                ShardRoute::Replicas(set) => {
                    set.attach_obs(Arc::clone(&hub), j as u32, route.kind());
                }
                ShardRoute::Remote(_) => {}
            }
        }
        let _ = self.obs.set(RouterObs::new(hub, &self.routes));
    }

    /// Dispatch one band's sub-batch with per-band timing and error
    /// attribution. Both batch strategies (parallel fan-out and the
    /// sequential reference) call exactly this, so instrumentation cannot
    /// make them diverge.
    #[allow(clippy::type_complexity)]
    fn dispatch_timed(
        &self,
        j: usize,
        sub: &[UserId],
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
        let Some(obs) = self.obs.get() else {
            return self.routes[j].dispatch(j, sub);
        };
        let t0 = obs.hub.now_us();
        let out = self.routes[j].dispatch(j, sub);
        let band = &obs.bands[j];
        band.dispatch_us
            .observe_us(obs.hub.now_us().saturating_sub(t0));
        if out.is_err() {
            band.errors.inc();
        }
        out
    }

    /// Number of bands.
    pub fn shards(&self) -> usize {
        self.routes.len()
    }

    /// Users this router can place.
    pub fn n_users(&self) -> u32 {
        self.theta.len() as u32
    }

    pub(crate) fn routes(&self) -> &[ShardRoute] {
        &self.routes
    }

    fn route_of(&self, user: UserId) -> Result<usize, ServeError> {
        match self.theta.get(user.idx()) {
            Some(&t) => Ok(shard_of(&self.cuts, t)),
            None => Err(ServeError::UnknownUser(user)),
        }
    }

    /// Answer one request from the user's band, local or remote.
    pub fn recommend_traced(&self, user: UserId) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
        let j = self.route_of(user).map_err(BackendError::Serve)?;
        let obs = self.obs.get();
        let t0 = obs.map_or(0, |o| o.hub.now_us());
        let out = match &self.routes[j] {
            ShardRoute::Local(engine) => engine.recommend_traced(user).map_err(BackendError::Serve),
            ShardRoute::Remote(remote) => remote.recommend_traced(user),
            ShardRoute::Replicas(set) => set.recommend_traced(user),
        };
        if let Some(o) = obs {
            let band = &o.bands[j];
            band.dispatch_us
                .observe_us(o.hub.now_us().saturating_sub(t0));
            if out.is_err() {
                band.errors.inc();
            }
        }
        out
    }

    /// Answer one override-carrying request ([`RequestOptions`]): a θ
    /// override re-routes to the band *owning that θ* — any band can
    /// serve any user at any θ, because every slice shares the full
    /// train/model/θ state
    /// ([`ganc_serve::ModelBundle::slice_theta_band`]) — while
    /// exclusion/rerank-only overrides stay on the user's home band.
    /// Default options delegate to [`RouterNode::recommend_traced`], so
    /// the pinned default path is untouched.
    pub fn recommend_with_traced(
        &self,
        user: UserId,
        opts: &RequestOptions,
    ) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
        if opts.is_default() {
            return self.recommend_traced(user);
        }
        let home = self.route_of(user).map_err(BackendError::Serve)?;
        let j = match opts.theta {
            Some(t) => shard_of(&self.cuts, t),
            None => home,
        };
        let obs = self.obs.get();
        let t0 = obs.map_or(0, |o| o.hub.now_us());
        let out = match &self.routes[j] {
            ShardRoute::Local(engine) => engine
                .recommend_with_traced(user, opts)
                .map_err(BackendError::Serve),
            ShardRoute::Remote(remote) => remote.recommend_with_traced(user, opts),
            ShardRoute::Replicas(set) => set.recommend_with_traced(user, opts),
        };
        if let Some(o) = obs {
            let band = &o.bands[j];
            band.dispatch_us
                .observe_us(o.hub.now_us().saturating_sub(t0));
            if out.is_err() {
                band.errors.inc();
            }
        }
        out
    }

    /// Batch counterpart of [`RouterNode::recommend_with_traced`]: a θ
    /// override collapses the whole batch onto the band owning that θ;
    /// without one, users split across their home bands as usual.
    /// Touched bands are visited sequentially — override batches are
    /// control traffic, not the hot fan-out path — with the same
    /// generation-skew check and request-order reassembly as the default
    /// path, which default options delegate to untouched.
    #[allow(clippy::type_complexity)]
    pub fn recommend_batch_with_traced(
        &self,
        users: &[UserId],
        opts: &RequestOptions,
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
        if opts.is_default() {
            return self.recommend_batch_traced(users);
        }
        let theta_band = opts.theta.map(|t| shard_of(&self.cuts, t));
        let mut results: Vec<Option<Result<Arc<Vec<ItemId>>, ServeError>>> =
            vec![None; users.len()];
        let mut per_route: Vec<Vec<usize>> = vec![Vec::new(); self.routes.len()];
        for (k, &u) in users.iter().enumerate() {
            // Unknown users error per-slot even under a θ override: the
            // override changes *where* a user is served, never *whether*
            // they exist.
            match self.route_of(u) {
                Ok(home) => per_route[theta_band.unwrap_or(home)].push(k),
                Err(e) => results[k] = Some(Err(e)),
            }
        }
        let mut check = generation_check();
        let mut generation = None;
        for (j, idxs) in per_route.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let sub: Vec<UserId> = idxs.iter().map(|&k| users[k]).collect();
            let (answers, g) = self.dispatch_with_timed(j, &sub, opts)?;
            check(&mut generation, g)?;
            for (&k, answer) in idxs.iter().zip(answers) {
                results[k] = Some(answer);
            }
        }
        self.finish_batch(results, generation)
    }

    /// [`RouterNode::dispatch_timed`] with per-request options threaded
    /// through to the route.
    #[allow(clippy::type_complexity)]
    fn dispatch_with_timed(
        &self,
        j: usize,
        sub: &[UserId],
        opts: &RequestOptions,
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
        let band_err = |e: BackendError| BackendError::Band {
            band: j,
            message: e.to_string(),
        };
        let dispatch = || match &self.routes[j] {
            ShardRoute::Local(engine) => Ok(engine.recommend_batch_with_traced(sub, opts)),
            ShardRoute::Remote(remote) => remote
                .recommend_batch_with_traced(sub, opts)
                .map_err(band_err),
            ShardRoute::Replicas(set) => {
                set.recommend_batch_with_traced(sub, opts).map_err(band_err)
            }
        };
        let Some(obs) = self.obs.get() else {
            return dispatch();
        };
        let t0 = obs.hub.now_us();
        let out = dispatch();
        let band = &obs.bands[j];
        band.dispatch_us
            .observe_us(obs.hub.now_us().saturating_sub(t0));
        if out.is_err() {
            band.errors.inc();
        }
        out
    }

    /// Split a batch across bands, dispatch every touched band's sub-batch
    /// **concurrently** (when at least one touched band is remote — an
    /// all-local dispatch runs inline, each local engine parallelizing
    /// internally), and reassemble answers in request order. Every
    /// touched route must report the same generation — nodes are refit
    /// together in a real rollout, and a skewed response here means the
    /// caller would silently mix two model versions, so skew is a hard
    /// error instead. A failed band errors the whole batch, tagged with
    /// the band index ([`BackendError::Band`]).
    #[allow(clippy::type_complexity)]
    pub fn recommend_batch_traced(
        &self,
        users: &[UserId],
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
        let (mut results, per_route) = self.split_batch(users);
        let touched: Vec<(usize, &Vec<usize>)> = per_route
            .iter()
            .enumerate()
            .filter(|(_, idxs)| !idxs.is_empty())
            .collect();
        // Dispatch inline when fan-out can't pay: a single touched band,
        // or all touched bands local — a local engine already spreads its
        // sub-batch across its own worker pool, so extra threads here
        // would only add spawn/join churn (remote hops are where the
        // overlap buys wall clock: the round-trips run concurrently).
        let all_local = touched
            .iter()
            .all(|&(j, _)| matches!(self.routes[j], ShardRoute::Local(_)));
        let band_answers = if touched.len() <= 1 || all_local {
            touched
                .iter()
                .map(|&(j, idxs)| {
                    let sub: Vec<UserId> = idxs.iter().map(|&k| users[k]).collect();
                    self.dispatch_timed(j, &sub)
                })
                .collect()
        } else {
            // One scoped thread per touched band: the fan-out's wall clock
            // is the slowest band, not the sum. Answers are *collected*
            // here and *folded* below in band order, so error selection
            // and skew detection replay the sequential path exactly.
            let mut band_answers = Vec::with_capacity(touched.len());
            std::thread::scope(|scope| {
                let handles: Vec<_> = touched
                    .iter()
                    .map(|&(j, idxs)| {
                        scope.spawn(move || {
                            let sub: Vec<UserId> = idxs.iter().map(|&k| users[k]).collect();
                            self.dispatch_timed(j, &sub)
                        })
                    })
                    .collect();
                for h in handles {
                    band_answers.push(h.join().expect("band dispatch worker panicked"));
                }
            });
            band_answers
        };
        let mut check = generation_check();
        let mut generation = None;
        for (&(_, idxs), answer) in touched.iter().zip(band_answers) {
            let (answers, g) = answer?;
            check(&mut generation, g)?;
            for (&k, answer) in idxs.iter().zip(answers) {
                results[k] = Some(answer);
            }
        }
        self.finish_batch(results, generation)
    }

    /// The sequential reference dispatch: identical splitting, folding,
    /// error selection, and skew detection, with bands visited one after
    /// another (and no band dispatched after a failure). The parallel
    /// path's response must be byte-identical to this — the equivalence
    /// `tests/router_fanout.rs` pins under injected adversarial timing —
    /// and the throughput bench uses it as the baseline the fan-out must
    /// beat.
    #[allow(clippy::type_complexity)]
    pub fn recommend_batch_traced_sequential(
        &self,
        users: &[UserId],
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
        let (mut results, per_route) = self.split_batch(users);
        let mut check = generation_check();
        let mut generation = None;
        for (j, idxs) in per_route.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let sub: Vec<UserId> = idxs.iter().map(|&k| users[k]).collect();
            let (answers, g) = self.dispatch_timed(j, &sub)?;
            check(&mut generation, g)?;
            for (&k, answer) in idxs.iter().zip(answers) {
                results[k] = Some(answer);
            }
        }
        self.finish_batch(results, generation)
    }

    /// Route every user of a batch: per-request errors land in their slot,
    /// placeable users are grouped per route in request order.
    #[allow(clippy::type_complexity)]
    fn split_batch(
        &self,
        users: &[UserId],
    ) -> (
        Vec<Option<Result<Arc<Vec<ItemId>>, ServeError>>>,
        Vec<Vec<usize>>,
    ) {
        let mut results: Vec<Option<Result<Arc<Vec<ItemId>>, ServeError>>> =
            vec![None; users.len()];
        let mut per_route: Vec<Vec<usize>> = vec![Vec::new(); self.routes.len()];
        for (k, &u) in users.iter().enumerate() {
            match self.route_of(u) {
                Ok(j) => per_route[j].push(k),
                Err(e) => results[k] = Some(Err(e)),
            }
        }
        (results, per_route)
    }

    /// Seal a fully folded batch, resolving the generation when nothing
    /// was dispatched.
    #[allow(clippy::type_complexity)]
    fn finish_batch(
        &self,
        results: Vec<Option<Result<Arc<Vec<ItemId>>, ServeError>>>,
        generation: Option<u64>,
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
        let generation = match generation {
            Some(g) => g,
            // Nothing dispatched (empty batch / all unknown): any route's
            // generation describes the deployment.
            None => self.routes[0].generation()?,
        };
        Ok((
            results.into_iter().map(|r| r.unwrap()).collect(),
            generation,
        ))
    }

    /// Fan an ingested interaction to every route: popularity is global
    /// state each band replica tracks, exactly like
    /// [`ganc_serve::ShardedEngine`]'s in-process fan-out.
    /// Sugar for [`RouterNode::ingest_keyed`] with no client key.
    pub fn ingest(&self, user: UserId, item: ItemId, rating: f32) -> Result<(), BackendError> {
        self.ingest_keyed(None, user, item, rating).map(|_| ())
    }

    /// The next router-generated fan-out key: construction-time epoch
    /// micros, the per-instance random nonce, and a per-request sequence.
    /// Always ≤ 55 visible-ASCII bytes, so it passes
    /// [`ganc_serve::wal::validate_key`] everywhere downstream.
    fn next_key(&self) -> String {
        let seq = self.key_seq.fetch_add(1, Ordering::Relaxed);
        format!("ganc-{:x}-{:x}-{:x}", self.key_epoch, self.key_nonce, seq)
    }

    /// Mirror one consumed key into the dedup WAL, best-effort: an
    /// append failure degrades that key to the in-memory-only behavior
    /// (at-least-once after a restart) and must never fail an ingest
    /// every route already acknowledged. `append` flushes to the OS, so
    /// the record survives a process crash/restart — the hole this WAL
    /// closes; an ill-timed power loss only costs the same graceful
    /// degradation. Past 4× the window capacity the log is compacted to
    /// the keys the windows still remember (evicted keys would fall out
    /// of the replayed windows anyway).
    fn persist_key(&self, tag: u64, key: &str) {
        let Some(wal) = &self.wal else { return };
        let mut wal = wal.lock().unwrap();
        let _ = wal.append(&WalRecord::Key {
            generation: tag,
            key: key.to_string(),
        });
        if wal.records() as usize > 4 * ROUTER_DEDUP_WINDOW {
            let mut live = Vec::new();
            for (tag, window) in [
                (INGEST_KEYS_TAG, &self.ingest_keys),
                (LOCAL_KEYS_TAG, &self.local_keys),
            ] {
                // Oldest first, so replay rebuilds eviction order. Safe
                // to lock here: observers release their window lock
                // before calling into the WAL, so no thread holds a
                // window while waiting on the WAL mutex.
                live.extend(window.lock().unwrap().keys().map(|k| WalRecord::Key {
                    generation: tag,
                    key: k.to_string(),
                }));
            }
            let _ = wal.rewrite(&live);
        }
    }

    /// Fan an ingested interaction to every route under one idempotency
    /// key, so the fan-out is safe to retry.
    ///
    /// Cross-process fan-out cannot be atomic, so this path is built to
    /// be *resent*: every route of one call shares one key (the client's,
    /// or a router-generated one for unkeyed requests), WAL-backed nodes
    /// dedup that key durably, and a failed route no longer aborts the
    /// fan-out — every other route still gets the interaction, and the
    /// first failure is returned. An `Err` therefore means "at least one
    /// route is missing this interaction — resend with the same key":
    /// routes that already applied it answer [`IngestAck::Deduplicated`]
    /// and only the missing ones mutate. Client keys are recorded in a
    /// bounded in-memory window only after a *fully* successful fan-out,
    /// so a resend after partial failure repairs instead of no-opping.
    ///
    /// Local [`ServingEngine`] slices have no durable log, so the router
    /// itself dedups their applies: a bounded window of client keys whose
    /// local applies landed is consulted before any local mutation, so a
    /// resend after partial fan-out failure repairs the remotes without
    /// double-bumping local live popularity. The window is in-memory and
    /// bounded ([`RouterNode::dedup_stats`] surfaces the retention
    /// contract) — a key evicted or lost to a router restart degrades to
    /// at-least-once for local *live counters only* (refit state is
    /// immune — [`ganc_serve::merge_interactions`] is last-rating-wins).
    pub fn ingest_keyed(
        &self,
        key: Option<&str>,
        user: UserId,
        item: ItemId,
        rating: f32,
    ) -> Result<IngestAck, BackendError> {
        if user.idx() >= self.theta.len() {
            return Err(BackendError::Serve(ServeError::UnknownUser(user)));
        }
        if let Some(k) = key {
            // The HTTP front 400s malformed keys before reaching here;
            // this guards programmatic callers, failing before any route
            // (local included) mutates — a malformed key would otherwise
            // be refused by every WAL node and wire client anyway.
            if let Err(msg) = ganc_serve::validate_key(k) {
                return Err(BackendError::Transport(format!(
                    "invalid idempotency key: {msg}"
                )));
            }
            if self.ingest_keys.lock().unwrap().contains(k) {
                return Ok(IngestAck::Deduplicated);
            }
        }
        let generated;
        let fan_key = match key {
            Some(k) => k,
            None => {
                generated = self.next_key();
                generated.as_str()
            }
        };
        let mut first_err: Option<BackendError> = None;
        // Remote hops first — an unreachable peer is the common failure,
        // and failing before any local mutation keeps this node clean.
        for route in &self.routes {
            let out = match route {
                ShardRoute::Remote(remote) => remote
                    .ingest_keyed(Some(fan_key), user, item, rating)
                    .map(|_| ()),
                ShardRoute::Replicas(set) => set.ingest_keyed(Some(fan_key), user, item, rating),
                ShardRoute::Local(_) => Ok(()),
            };
            if let Err(e) = out {
                first_err.get_or_insert(e);
            }
        }
        // Local slices dedup here, not in a WAL: skip them when this
        // client key's local applies already landed on an earlier
        // (partially failed) fan-out, so a resend repairs the remotes
        // without double-bumping local live popularity.
        let locals_done = key.is_some_and(|k| self.local_keys.lock().unwrap().contains(k));
        if !locals_done {
            let mut locals_ok = true;
            for route in &self.routes {
                if let ShardRoute::Local(engine) = route {
                    if let Err(e) = engine.ingest(user, item, rating) {
                        first_err.get_or_insert(BackendError::Serve(e));
                        locals_ok = false;
                    }
                }
            }
            if locals_ok {
                if let Some(k) = key {
                    self.local_keys.lock().unwrap().observe(k);
                    self.persist_key(LOCAL_KEYS_TAG, k);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => {
                if let Some(k) = key {
                    self.ingest_keys.lock().unwrap().observe(k);
                    self.persist_key(INGEST_KEYS_TAG, k);
                }
                Ok(IngestAck::Applied)
            }
        }
    }

    /// The deployment's generation (route 0's view).
    pub fn generation(&self) -> Result<u64, BackendError> {
        self.routes[0].generation()
    }

    /// Per-band rolling-window summaries and their cross-band union:
    /// local slices export their window in-process, remote bands are
    /// fetched over the wire ([`PeerTransport::window_wire`]), and the
    /// aggregate folds the transportable summaries exactly like an
    /// in-process [`ganc_serve::ShardedEngine`] folds its engines —
    /// union coverage stays exact because distinct ids cross the wire.
    /// Bands that can't report (unreachable peer, replica group,
    /// observability not attached) hold `None`; the aggregate is `None`
    /// only when *no* band reported.
    #[allow(clippy::type_complexity)]
    pub fn window_stats(&self) -> (Vec<Option<WindowStats>>, Option<WindowStats>) {
        let wires: Vec<Option<WindowWire>> = self
            .routes
            .iter()
            .map(|route| route.window_wire())
            .collect();
        let n_items = wires.iter().flatten().map(|w| w.n_items).max().unwrap_or(0);
        let mut fold = WindowFold::new(n_items);
        let mut any = false;
        let per_band = wires
            .iter()
            .map(|wire| {
                let wire = wire.as_ref()?;
                if wire.n_items == n_items {
                    fold.absorb_wire(wire);
                    any = true;
                }
                Some(wire.stats())
            })
            .collect();
        (per_band, any.then(|| fold.stats()))
    }

    /// The fan-out dedup window's retention contract for `/v1/healthz`:
    /// (capacity, keys currently remembered, keys forgotten to the cap).
    /// A key evicted here is only a lost *short-circuit* — WAL-backed
    /// routes still dedup it durably on resend.
    pub fn dedup_stats(&self) -> (usize, usize, u64) {
        let w = self.ingest_keys.lock().unwrap();
        (w.cap(), w.len(), w.evictions())
    }

    /// Bands running below full replication (some replica ejected), from
    /// tracked breaker state — no wire calls, so `/v1/healthz` stays
    /// cheap. Single-backend bands are never "degraded": they have no
    /// spare to lose.
    pub fn degraded_bands(&self) -> Vec<usize> {
        self.routes
            .iter()
            .enumerate()
            .filter_map(|(j, route)| match route.replicas() {
                Some(set) if set.healthy_len() < set.len() => Some(j),
                _ => None,
            })
            .collect()
    }

    /// Start one background health-probe loop per replicated band; the
    /// returned handles stop and join the loops on drop. Bands without
    /// replicas need no probe.
    pub fn spawn_probes(&self) -> Vec<ProbeHandle> {
        self.routes
            .iter()
            .filter_map(|route| route.replicas().map(|set| set.spawn_probe()))
            .collect()
    }
}

/// The fold-time generation-skew check both dispatch strategies share:
/// the first dispatched band (in band order) pins the generation, every
/// later one must match it.
fn generation_check() -> impl FnMut(&mut Option<u64>, u64) -> Result<(), BackendError> {
    |generation: &mut Option<u64>, g: u64| match *generation {
        None => {
            *generation = Some(g);
            Ok(())
        }
        Some(have) if have == g => Ok(()),
        Some(have) => Err(BackendError::Transport(format!(
            "generation skew across shards: {have} vs {g}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A route that must never be dispatched to — key generation is pure
    /// router-local state.
    struct NeverPeer;

    impl PeerTransport for NeverPeer {
        fn label(&self) -> String {
            "never".to_string()
        }
        fn recommend_traced(&self, _user: UserId) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
            unreachable!("key tests never dispatch")
        }
        fn recommend_batch_traced(
            &self,
            _users: &[UserId],
        ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
            unreachable!("key tests never dispatch")
        }
        fn ingest(&self, _: UserId, _: ItemId, _: f32) -> Result<(), BackendError> {
            unreachable!("key tests never dispatch")
        }
        fn generation(&self) -> Result<u64, BackendError> {
            unreachable!("key tests never dispatch")
        }
    }

    fn bare_router() -> RouterNode {
        RouterNode::new(
            Arc::new(vec![0.0]),
            Vec::new(),
            vec![ShardRoute::Remote(Arc::new(NeverPeer))],
        )
    }

    /// Generated fan-out keys must be valid idempotency keys (they cross
    /// the same ingress validation as client keys) and two routers — even
    /// ones built within the same microsecond — must emit disjoint key
    /// streams: a cross-instance collision makes a WAL node answer
    /// `Deduplicated` for a different interaction, silently dropping an
    /// acknowledged rating.
    #[test]
    fn generated_keys_are_valid_and_disjoint_across_instances() {
        let a = bare_router();
        let b = bare_router();
        let ka: Vec<String> = (0..100).map(|_| a.next_key()).collect();
        let kb: Vec<String> = (0..100).map(|_| b.next_key()).collect();
        for k in ka.iter().chain(&kb) {
            ganc_serve::validate_key(k).unwrap_or_else(|e| panic!("{k:?}: {e}"));
            assert!(k.len() <= ganc_serve::MAX_KEY_LEN);
        }
        let set: std::collections::BTreeSet<&String> = ka.iter().chain(&kb).collect();
        assert_eq!(set.len(), 200, "same-process instances must not collide");
        // Both nonces differ even though the two epochs almost certainly
        // matched (same-microsecond construction is the review scenario).
        assert_ne!(a.key_nonce, b.key_nonce);
    }
}
