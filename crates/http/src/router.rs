//! A router node for multi-node θ-band deployment: PR 3 made multi-node
//! serving "a routing problem" by slicing one bundle into per-band
//! artifacts; this module is the router. Each band is served either by a
//! local [`ServingEngine`] over its slice or by a peer node reached through
//! [`RemoteShard`] — the same `/v1/*` protocol either way, so a band can be
//! moved across nodes without the router's callers noticing.
//!
//! Output equivalence: a user's request is answered by the engine holding
//! their band's slice, and serving from a slice is byte-identical to
//! serving from the full bundle ([`ganc_serve::ModelBundle::slice_theta_band`]),
//! so a router over any local/remote mix produces exactly the lists an
//! in-process [`ganc_serve::ShardedEngine`] produces — which
//! `tests/http_equivalence.rs` asserts across a real two-node topology.

use crate::client::RemoteShard;
use crate::BackendError;
use ganc_core::query::shard_of;
use ganc_dataset::{ItemId, UserId};
use ganc_serve::{ServeError, ServingEngine};
use std::sync::Arc;

/// Where one θ band is served.
pub enum ShardRoute {
    /// In this process, over the band's bundle slice.
    Local(Arc<ServingEngine>),
    /// On a peer node, over HTTP.
    Remote(RemoteShard),
}

impl ShardRoute {
    /// Short label for stats.
    pub(crate) fn kind(&self) -> &'static str {
        match self {
            ShardRoute::Local(_) => "local",
            ShardRoute::Remote(_) => "remote",
        }
    }

    /// Peer address for remote routes.
    pub(crate) fn addr(&self) -> Option<&str> {
        match self {
            ShardRoute::Local(_) => None,
            ShardRoute::Remote(r) => Some(r.addr()),
        }
    }

    fn generation(&self) -> Result<u64, BackendError> {
        match self {
            ShardRoute::Local(e) => Ok(e.generation()),
            ShardRoute::Remote(r) => r.generation(),
        }
    }
}

/// Routes each user's request to the engine serving their θ band.
pub struct RouterNode {
    /// Per-user θ (the full population — routing needs every user).
    theta: Arc<Vec<f64>>,
    /// Ascending cut points; `cuts.len() + 1` bands.
    cuts: Vec<f64>,
    routes: Vec<ShardRoute>,
}

impl RouterNode {
    /// Build a router over `cuts.len() + 1` routes. `theta` must be the
    /// full bundle's per-user vector (every route's slice carries it, so
    /// any node can stand up a router without extra state).
    pub fn new(theta: Arc<Vec<f64>>, cuts: Vec<f64>, routes: Vec<ShardRoute>) -> RouterNode {
        assert_eq!(
            routes.len(),
            cuts.len() + 1,
            "k cuts require k+1 shard routes"
        );
        assert!(
            cuts.windows(2).all(|w| w[0] <= w[1]),
            "cuts must be ascending"
        );
        RouterNode {
            theta,
            cuts,
            routes,
        }
    }

    /// Number of bands.
    pub fn shards(&self) -> usize {
        self.routes.len()
    }

    /// Users this router can place.
    pub fn n_users(&self) -> u32 {
        self.theta.len() as u32
    }

    pub(crate) fn routes(&self) -> &[ShardRoute] {
        &self.routes
    }

    fn route_of(&self, user: UserId) -> Result<usize, ServeError> {
        match self.theta.get(user.idx()) {
            Some(&t) => Ok(shard_of(&self.cuts, t)),
            None => Err(ServeError::UnknownUser(user)),
        }
    }

    /// Answer one request from the user's band, local or remote.
    pub fn recommend_traced(&self, user: UserId) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
        let j = self.route_of(user).map_err(BackendError::Serve)?;
        match &self.routes[j] {
            ShardRoute::Local(engine) => engine.recommend_traced(user).map_err(BackendError::Serve),
            ShardRoute::Remote(remote) => remote.recommend_traced(user),
        }
    }

    /// Split a batch across bands and dispatch each sub-batch through its
    /// route, reassembling answers in request order. Every touched route
    /// must report the same generation — nodes are refit together in a real
    /// rollout, and a skewed response here means the caller would silently
    /// mix two model versions, so skew is a hard error instead.
    #[allow(clippy::type_complexity)]
    pub fn recommend_batch_traced(
        &self,
        users: &[UserId],
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
        let mut results: Vec<Option<Result<Arc<Vec<ItemId>>, ServeError>>> =
            vec![None; users.len()];
        let mut per_route: Vec<Vec<usize>> = vec![Vec::new(); self.routes.len()];
        for (k, &u) in users.iter().enumerate() {
            match self.route_of(u) {
                Ok(j) => per_route[j].push(k),
                Err(e) => results[k] = Some(Err(e)),
            }
        }
        let mut generation: Option<u64> = None;
        let mut check = |g: u64| match generation {
            None => {
                generation = Some(g);
                Ok(())
            }
            Some(have) if have == g => Ok(()),
            Some(have) => Err(BackendError::Transport(format!(
                "generation skew across shards: {have} vs {g}"
            ))),
        };
        for (j, idxs) in per_route.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let sub: Vec<UserId> = idxs.iter().map(|&k| users[k]).collect();
            let (answers, g) = match &self.routes[j] {
                ShardRoute::Local(engine) => engine.recommend_batch_traced(&sub),
                ShardRoute::Remote(remote) => remote.recommend_batch_traced(&sub)?,
            };
            check(g)?;
            for (&k, answer) in idxs.iter().zip(answers) {
                results[k] = Some(answer);
            }
        }
        let generation = match generation {
            Some(g) => g,
            // Nothing dispatched (empty batch / all unknown): any route's
            // generation describes the deployment.
            None => self.routes[0].generation()?,
        };
        Ok((
            results.into_iter().map(|r| r.unwrap()).collect(),
            generation,
        ))
    }

    /// Fan an ingested interaction to every route: popularity is global
    /// state each band replica tracks, exactly like
    /// [`ganc_serve::ShardedEngine`]'s in-process fan-out.
    ///
    /// Cross-process fan-out cannot be atomic: if a route fails mid-way,
    /// the routes already reached keep the interaction and the rest never
    /// see it, so an `Err` here means the deployment's replicas have
    /// diverged and should be re-synced (redeploy the slices, or refit and
    /// roll new artifacts). Remote hops run *first* — the failure mode
    /// that matters in practice is an unreachable peer, and failing before
    /// any local mutation keeps this node clean in that case.
    pub fn ingest(&self, user: UserId, item: ItemId, rating: f32) -> Result<(), BackendError> {
        if user.idx() >= self.theta.len() {
            return Err(BackendError::Serve(ServeError::UnknownUser(user)));
        }
        for route in &self.routes {
            if let ShardRoute::Remote(remote) = route {
                remote.ingest(user, item, rating)?;
            }
        }
        for route in &self.routes {
            if let ShardRoute::Local(engine) = route {
                engine
                    .ingest(user, item, rating)
                    .map_err(BackendError::Serve)?;
            }
        }
        Ok(())
    }

    /// The deployment's generation (route 0's view).
    pub fn generation(&self) -> Result<u64, BackendError> {
        self.routes[0].generation()
    }
}
