//! # ganc-http
//!
//! A dependency-free HTTP/1.1 front-end for the `ganc-serve` engines,
//! built on `std::net` alone (the build environment has no crates.io
//! registry; JSON comes from the vendored `tinyjson` stand-in and socket
//! readiness from the vendored `polling` stand-in, each swappable for the
//! real crate later).
//!
//! Three layers:
//!
//! 1. **Wire** ([`http1`]) — request/response framing with hard limits and
//!    a deterministic response header set (no `Date`), so identical state
//!    produces byte-identical responses.
//! 2. **Server** ([`server`]) — [`HttpServer`]: an event-driven front-end
//!    (one readiness-polling event loop owning every connection, a small
//!    compute-only worker pool for handler dispatch), with keep-alive,
//!    content-length framing, clock-driven idle/slow-loris eviction, and
//!    graceful drain — connection concurrency is bounded by file
//!    descriptors, not workers. Fronts a [`Frontend`] (single engine,
//!    in-process sharded engine, or router), with `POST /admin/refit`
//!    wired to the background-refit machinery.
//! 3. **Client** ([`client`], [`router`]) — [`HttpClient`] /
//!    [`RemoteShard`] / [`RouterNode`]: a router node loads θ + cuts,
//!    serves some bands from local bundle slices, and dispatches the rest
//!    to peer nodes serving `bundle.shardK.ganc` artifacts over the same
//!    protocol — PR 3's per-node slices become a working multi-node
//!    deployment. Batch sub-requests fan out to the touched bands in
//!    parallel (byte-identical to the sequential reference).
//! 4. **Transport seam** ([`transport`], [`testing`]) — the
//!    [`PeerTransport`] trait every remote hop goes through:
//!    [`RemoteShard`] in production, [`CoalescedShard`] to micro-batch
//!    concurrent singles into one wire call, and deterministic
//!    fault/latency-injection doubles for the test suites.
//! 5. **Availability** ([`replica`]) — [`ReplicaSet`]: per-band replica
//!    groups with hedged dispatch under a clock-driven latency budget,
//!    automatic failover behind a consecutive-failure breaker, and a
//!    background health probe that restores ejected replicas and rotates
//!    primaries — responses stay byte-identical to a single-backend
//!    route.
//!
//! ## Quickstart
//!
//! ```
//! use ganc_http::{Frontend, HttpClient, HttpServer, ServerConfig};
//! use ganc_serve::{EngineConfig, FitConfig, FittedModel, ModelBundle, ServingEngine};
//! use ganc_dataset::synth::DatasetProfile;
//! use ganc_preference::GeneralizedConfig;
//! use ganc_recommender::pop::MostPopular;
//! use ganc_recommender::Recommender;
//! use std::sync::Arc;
//!
//! let data = DatasetProfile::tiny().generate(42);
//! let split = data.split_per_user(0.5, 7).unwrap();
//! let theta = GeneralizedConfig::default().estimate(&split.train);
//! let pop = MostPopular::fit(&split.train);
//! let cfg = FitConfig { sample_size: 20, ..FitConfig::new(10) };
//! let bundle = ModelBundle::fit(FittedModel::Pop(pop), theta, split.train, &cfg);
//! let engine = Arc::new(ServingEngine::new(bundle, EngineConfig::default()));
//!
//! let server = HttpServer::bind(
//!     Frontend::Single(engine),
//!     None,
//!     ServerConfig::default(),
//!     "127.0.0.1:0",
//! )
//! .unwrap();
//! let mut client = HttpClient::new(server.local_addr().to_string());
//! let resp = client.request("GET", "/v1/recommend/3?n=5", None).unwrap();
//! assert_eq!(resp.status, 200);
//! ```

pub mod client;
pub mod http1;
pub mod replica;
pub mod router;
pub mod server;
pub mod testing;
pub mod transport;

pub use client::{HttpClient, RemoteShard};
pub use http1::{Limits, Request, Response, StatusCode};
pub use replica::{ProbeHandle, ReplicaConfig, ReplicaSet, ReplicaStats};
pub use router::{RouterNode, ShardRoute};
pub use server::{Frontend, HttpServer, RefitHook, ServerConfig};
pub use transport::{CoalescedShard, IngestEntry, PeerTransport};

use ganc_serve::ServeError;

/// Why a backend could not answer: a typed serving rejection, a transport
/// failure, or one θ-band of a router dispatch failing.
///
/// `Clone` because a coalesced remote batch answers many callers with the
/// same failure.
#[derive(Debug, Clone)]
pub enum BackendError {
    /// The engine rejected the request (unknown user/item).
    Serve(ServeError),
    /// A peer node was unreachable, answered garbage, or the deployment's
    /// generations were skewed mid-batch.
    Transport(String),
    /// One θ-band of a router batch dispatch failed. Carries the band
    /// index so a caller (and the JSON error body) can tell *which* shard
    /// of the deployment is unhealthy instead of guessing positionally.
    Band {
        /// The failed band's index in the router's shard layout.
        band: usize,
        /// The underlying failure, rendered.
        message: String,
    },
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Serve(e) => write!(f, "{e}"),
            BackendError::Transport(msg) => write!(f, "transport: {msg}"),
            BackendError::Band { band, message } => write!(f, "band {band}: {message}"),
        }
    }
}

impl std::error::Error for BackendError {}
