//! HTTP/1.1 wire protocol: request framing, response writing, and the
//! connection state machine rules the server and client share.
//!
//! Scope is exactly what a JSON API over loopback/LAN needs: request-line +
//! headers + `Content-Length` body framing, keep-alive, and hard limits on
//! header and body size. Chunked transfer encoding is rejected rather than
//! implemented. Every framing violation maps to one of two recovery modes:
//!
//! * **fatal** — the byte stream can no longer be re-synchronized (torn
//!   request line, oversized or malformed framing): respond once and close;
//! * **recoverable** — framing was intact but the request is semantically
//!   bad (handled a layer up: bad JSON, unknown route): respond and keep
//!   the connection.
//!
//! Responses carry a fixed, deterministic header set (no `Date`), so a
//! response's bytes depend only on status, body, and keep-alive flag —
//! which is what lets the equivalence suite assert byte-identical output.

use std::io::{self, BufRead, Read, Write};

/// Framing limits; requests beyond them are refused.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers (terminator included).
    pub max_head_bytes: usize,
    /// Maximum request body bytes ([`StatusCode::PAYLOAD_TOO_LARGE`] beyond).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// The status codes this API emits.
pub struct StatusCode;

impl StatusCode {
    /// 200.
    pub const OK: u16 = 200;
    /// 400.
    pub const BAD_REQUEST: u16 = 400;
    /// 404.
    pub const NOT_FOUND: u16 = 404;
    /// 413.
    pub const PAYLOAD_TOO_LARGE: u16 = 413;
    /// 502 (router fronts: an upstream shard failed).
    pub const BAD_GATEWAY: u16 = 502;

    /// Canonical reason phrase.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            413 => "Payload Too Large",
            502 => "Bad Gateway",
            _ => "Unknown",
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Method verbatim (e.g. `GET`).
    pub method: String,
    /// Path without the query string (e.g. `/v1/recommend/3`).
    pub path: String,
    /// Raw query string after `?`, if any (e.g. `n=5`).
    pub query: Option<String>,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// `Idempotency-Key` header value, if the client sent one (exactly-once
    /// ingestion; ignored by every other endpoint).
    pub idempotency_key: Option<String>,
}

/// What reading one request off a connection produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A well-framed request (it may still be semantically invalid).
    Request(Request),
    /// The peer closed (or went idle past the read timeout) between
    /// requests — normal end of a keep-alive session; nothing to send.
    Disconnected,
    /// The byte stream violated framing. Send the error response, then
    /// close: the stream cannot be re-synchronized.
    Fatal {
        /// Status to answer with before closing.
        status: u16,
        /// Human-readable cause (becomes the JSON error body).
        message: &'static str,
    },
}

/// Read one line (through `\n`), enforcing the remaining head budget.
/// Returns the line without its terminator, or `None` for a clean EOF
/// before any byte.
fn read_line<R: BufRead>(reader: &mut R, budget: &mut usize) -> io::Result<Option<Vec<u8>>> {
    let mut line = Vec::new();
    let n = reader
        .take(*budget as u64 + 1)
        .read_until(b'\n', &mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if n > *budget {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "head too large"));
    }
    *budget -= n;
    if line.last() == Some(&b'\n') {
        line.pop();
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        Ok(Some(line))
    } else {
        // EOF mid-line: torn request head.
        Err(io::Error::new(io::ErrorKind::UnexpectedEof, "torn head"))
    }
}

fn is_token(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b))
}

/// Read and parse one request. `reader` must wrap a stream with a read
/// timeout if idle connections should ever be reclaimed.
pub fn read_request<R: BufRead>(reader: &mut R, limits: Limits) -> ReadOutcome {
    let mut budget = limits.max_head_bytes;
    let fatal = |message| ReadOutcome::Fatal {
        status: StatusCode::BAD_REQUEST,
        message,
    };

    // ---- request line ----
    let line = match read_line(reader, &mut budget) {
        Ok(None) => return ReadOutcome::Disconnected,
        Ok(Some(line)) => line,
        Err(e) if idle_disconnect(&e) => return ReadOutcome::Disconnected,
        Err(_) => return fatal("malformed request head"),
    };
    let Ok(line) = String::from_utf8(line) else {
        return fatal("request line is not UTF-8");
    };
    let mut parts = line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return fatal("malformed request line");
    };
    if !is_token(method) {
        return fatal("malformed method");
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return fatal("unsupported HTTP version"),
    };
    if !target.starts_with('/') {
        return fatal("request target must be absolute path");
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    // ---- headers ----
    let mut content_length: Option<usize> = None;
    let mut keep_alive = http11;
    let mut idempotency_key: Option<String> = None;
    loop {
        let line = match read_line(reader, &mut budget) {
            Ok(Some(line)) => line,
            Ok(None) | Err(_) => return fatal("malformed request head"),
        };
        if line.is_empty() {
            break;
        }
        let Ok(line) = String::from_utf8(line) else {
            return fatal("header is not UTF-8");
        };
        let Some((name, value)) = line.split_once(':') else {
            return fatal("malformed header");
        };
        if !is_token(name) {
            return fatal("malformed header name");
        }
        let name = name.to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            // Digits only — `u64::from_str` would accept a leading '+',
            // and any framing disagreement with a standards-conformant
            // intermediary is a smuggling vector.
            "content-length" if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) => {
                return fatal("invalid content-length")
            }
            "content-length" => match value.parse::<u64>() {
                Ok(len) if len <= limits.max_body_bytes as u64 => {
                    if content_length.replace(len as usize).is_some() {
                        return fatal("duplicate content-length");
                    }
                }
                Ok(_) => {
                    // Too large to even drain within budget: refuse + close.
                    return ReadOutcome::Fatal {
                        status: StatusCode::PAYLOAD_TOO_LARGE,
                        message: "request body too large",
                    };
                }
                Err(_) => return fatal("invalid content-length"),
            },
            "transfer-encoding" => return fatal("transfer-encoding not supported"),
            "idempotency-key" if !value.is_empty() => {
                idempotency_key = Some(value.to_string());
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.split(',').any(|t| t.trim() == "close") {
                    keep_alive = false;
                } else if v.split(',').any(|t| t.trim() == "keep-alive") {
                    keep_alive = true;
                }
            }
            _ => {}
        }
    }

    // ---- body ----
    let mut body = Vec::new();
    if let Some(len) = content_length {
        body.resize(len, 0);
        if reader.read_exact(&mut body).is_err() {
            return fatal("body shorter than content-length");
        }
    }

    ReadOutcome::Request(Request {
        method: method.to_string(),
        path,
        query,
        body,
        keep_alive,
        idempotency_key,
    })
}

/// Whether a read error means the peer simply went away between requests.
fn idle_disconnect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
    )
}

/// Write one response with the fixed deterministic header set.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write_response_with_type(w, status, "application/json", body, keep_alive)
}

/// [`write_response`] with an explicit `Content-Type` — the metrics
/// endpoint answers Prometheus text exposition, everything else JSON. Same
/// deterministic header set (no `Date`).
pub fn write_response_with_type(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        StatusCode::reason(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Outcome of [`wait_for_data`].
#[derive(Debug, PartialEq, Eq)]
pub enum WaitOutcome {
    /// Bytes are buffered and ready to parse.
    Data,
    /// The peer closed or idled past the read timeout — nothing to parse.
    Disconnected,
}

/// Block until the next request's first bytes arrive (or the peer goes
/// away). Splitting the keep-alive *wait* from the request *parse* is what
/// lets the server's per-stage parse timer measure parsing instead of
/// client think-time; any real read error is deferred to the parser so the
/// error path stays single.
pub fn wait_for_data<R: BufRead>(reader: &mut R) -> WaitOutcome {
    match reader.fill_buf() {
        Ok([]) => WaitOutcome::Disconnected,
        Ok(_) => WaitOutcome::Data,
        Err(e) if idle_disconnect(&e) => WaitOutcome::Disconnected,
        Err(_) => WaitOutcome::Data,
    }
}

/// A parsed response (client side).
#[derive(Debug)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Whether the server will keep the connection open.
    pub keep_alive: bool,
    /// Body bytes.
    pub body: Vec<u8>,
}

/// Largest response body a client will buffer; a peer declaring more is
/// answering garbage, and the caller gets an error instead of the process
/// attempting an arbitrary allocation.
pub const MAX_RESPONSE_BODY: usize = 16 * 1024 * 1024;

/// Read one response off a client connection.
pub fn read_response<R: BufRead>(reader: &mut R) -> io::Result<Response> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    let mut budget = 64 * 1024;
    let line = read_line(reader, &mut budget)?.ok_or_else(|| bad("no status line"))?;
    let line = String::from_utf8(line).map_err(|_| bad("status line not UTF-8"))?;
    let mut parts = line.splitn(3, ' ');
    let (Some(version), Some(code), _) = (parts.next(), parts.next(), parts.next()) else {
        return Err(bad("malformed status line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad("not an HTTP response"));
    }
    let status: u16 = code.parse().map_err(|_| bad("malformed status code"))?;
    let mut content_length = 0usize;
    let mut keep_alive = true;
    loop {
        let line = read_line(reader, &mut budget)?.ok_or_else(|| bad("truncated head"))?;
        if line.is_empty() {
            break;
        }
        let line = String::from_utf8(line).map_err(|_| bad("header not UTF-8"))?;
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad("malformed header"));
        };
        match name.to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("invalid content-length"))?;
                if content_length > MAX_RESPONSE_BODY {
                    return Err(bad("response body too large"));
                }
            }
            "connection" => keep_alive = !value.trim().eq_ignore_ascii_case("close"),
            _ => {}
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Response {
        status,
        keep_alive,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> ReadOutcome {
        read_request(&mut BufReader::new(bytes), Limits::default())
    }

    #[test]
    fn parses_get_with_query_and_keep_alive_default() {
        let out = parse(b"GET /v1/recommend/3?n=5 HTTP/1.1\r\nHost: x\r\n\r\n");
        let ReadOutcome::Request(r) = out else {
            panic!("expected request, got {out:?}");
        };
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/v1/recommend/3");
        assert_eq!(r.query.as_deref(), Some("n=5"));
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_body_by_content_length_and_leaves_pipelined_bytes() {
        let bytes =
            b"POST /v1/ingest HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcdGET /v1/healthz HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(&bytes[..]);
        let ReadOutcome::Request(r) = read_request(&mut reader, Limits::default()) else {
            panic!("first request");
        };
        assert_eq!(r.body, b"abcd");
        let ReadOutcome::Request(r2) = read_request(&mut reader, Limits::default()) else {
            panic!("pipelined request");
        };
        assert_eq!(r2.path, "/v1/healthz");
    }

    #[test]
    fn framing_violations_are_fatal() {
        let cases: [(&[u8], u16); 9] = [
            (b"GARBAGE\r\n\r\n".as_slice(), StatusCode::BAD_REQUEST),
            (b"GET /x\r\n\r\n".as_slice(), StatusCode::BAD_REQUEST),
            (
                b"GET /x HTTP/2.0\r\n\r\n".as_slice(),
                StatusCode::BAD_REQUEST,
            ),
            (
                b"GET /x HTTP/1.1\r\nBad Header\r\n\r\n".as_slice(),
                StatusCode::BAD_REQUEST,
            ),
            (
                b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n".as_slice(),
                StatusCode::BAD_REQUEST,
            ),
            (
                // u64::from_str would take the '+'; strict framing must not
                // (request-smuggling disagreement with conformant proxies).
                b"POST /x HTTP/1.1\r\nContent-Length: +4\r\n\r\nabcd".as_slice(),
                StatusCode::BAD_REQUEST,
            ),
            (
                b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".as_slice(),
                StatusCode::BAD_REQUEST,
            ),
            (
                b"POST /x HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n".as_slice(),
                StatusCode::PAYLOAD_TOO_LARGE,
            ),
            (
                b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort".as_slice(),
                StatusCode::BAD_REQUEST,
            ),
        ];
        for (bytes, want) in cases {
            match parse(bytes) {
                ReadOutcome::Fatal { status, .. } => {
                    assert_eq!(status, want, "{:?}", String::from_utf8_lossy(bytes))
                }
                other => panic!(
                    "{:?}: expected fatal, got {other:?}",
                    String::from_utf8_lossy(bytes)
                ),
            }
        }
    }

    #[test]
    fn oversized_head_is_fatal() {
        let mut bytes = b"GET /x HTTP/1.1\r\n".to_vec();
        bytes.extend(std::iter::repeat_n(b'a', 9000));
        assert!(matches!(parse(&bytes), ReadOutcome::Fatal { .. }));
    }

    #[test]
    fn empty_stream_is_a_clean_disconnect() {
        assert!(matches!(parse(b""), ReadOutcome::Disconnected));
    }

    #[test]
    fn idempotency_key_header_is_captured() {
        let out = parse(
            b"POST /v1/ingest HTTP/1.1\r\nIdempotency-Key: order-42\r\nContent-Length: 2\r\n\r\n{}",
        );
        let ReadOutcome::Request(r) = out else {
            panic!("expected request, got {out:?}");
        };
        assert_eq!(r.idempotency_key.as_deref(), Some("order-42"));
        // Absent header → no key; an empty value is treated as absent.
        let ReadOutcome::Request(r) = parse(b"GET /v1/healthz HTTP/1.1\r\n\r\n") else {
            panic!()
        };
        assert!(r.idempotency_key.is_none());
        let ReadOutcome::Request(r) =
            parse(b"POST /v1/ingest HTTP/1.1\r\nIdempotency-Key:\r\nContent-Length: 0\r\n\r\n")
        else {
            panic!()
        };
        assert!(r.idempotency_key.is_none());
    }

    #[test]
    fn connection_close_is_honored() {
        let out = parse(b"GET /v1/healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        let ReadOutcome::Request(r) = out else {
            panic!()
        };
        assert!(!r.keep_alive);
    }

    #[test]
    fn response_round_trips_through_client_parser() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, b"{\"ok\":true}", true).unwrap();
        let resp = read_response(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.keep_alive);
        assert_eq!(resp.body, b"{\"ok\":true}");
        let text = String::from_utf8(wire).unwrap();
        assert!(
            !text.to_ascii_lowercase().contains("date:"),
            "responses must be byte-deterministic (no Date header)"
        );
    }
}
