//! Replica sets per θ-band: hedged dispatch, automatic failover, and
//! health-driven primary rotation.
//!
//! PR 3 pinned each θ-band of the trade-off curve to exactly one backend,
//! so one slow or dead peer stalled or failed every batch touching its
//! band. A [`ReplicaSet`] widens a band to a small group of
//! [`PeerTransport`] replicas serving the *same* slice:
//!
//! 1. **Hedged dispatch** — the primary gets the sub-request first; when
//!    it has not answered within [`ReplicaConfig::hedge_budget`] the
//!    request is re-issued to the next replica in rotation and the first
//!    answer wins. The budget is read through the injected
//!    [`Clock`] seam, so tests drive hedges with a [`ManualClock`]
//!    (or a zero budget) instead of wall sleeps. A whole sub-batch is
//!    always one replica's answer, so a hedge can never mix bundle
//!    generations inside one batch — the router's cross-band skew check
//!    then covers the rest.
//! 2. **Automatic failover** — an error from the primary retries the next
//!    healthy replica before surfacing. A per-replica breaker counts
//!    *consecutive* failures; at [`ReplicaConfig::failure_threshold`] the
//!    replica is ejected from rotation and the primary rotates to the
//!    next healthy index.
//! 3. **Health-driven restore** — [`ReplicaSet::probe_once`] asks each
//!    ejected replica for its generation (the same call
//!    `RemoteShard::connect` verifies peers with, i.e. `/v1/healthz` over
//!    HTTP) and restores responders; the primary then rotates back to the
//!    lowest healthy index so a recovered original primary takes over
//!    again. [`ReplicaSet::spawn_probe`] runs that on a clock-driven
//!    background loop.
//!
//! Replica answers are byte-identical to a single-backend route by the
//! same argument the router makes for slices: every replica serves the
//! same deterministic slice, so *which* replica answers is invisible —
//! `tests/router_replicas.rs` proves it under injected slow/dead/flaky
//! primaries, mid-hedge hot-swaps, and all-replicas-down.
//!
//! [`ManualClock`]: ganc_obs::ManualClock

use crate::transport::PeerTransport;
use crate::BackendError;
use ganc_dataset::{ItemId, UserId};
use ganc_obs::{Clock, Counter, ObsHub, SystemClock, TraceData};
use ganc_serve::{RequestOptions, ServeError};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Wall-clock slice for waits that must observe an injected clock: the
/// hedge coordinator and the probe loop sleep in slices this long and
/// re-read the [`Clock`] each wakeup, so a [`ganc_obs::ManualClock`]
/// advance is noticed within one slice without any test ever sleeping
/// for a *budget's* worth of wall time.
const CLOCK_POLL: Duration = Duration::from_millis(1);

/// Tuning for one band's replica group.
#[derive(Clone, Copy, Debug)]
pub struct ReplicaConfig {
    /// Re-issue a dispatch to the next replica after this long without an
    /// answer from the primary. `None` disables hedging (failover and the
    /// breaker still apply); `Some(Duration::ZERO)` hedges immediately,
    /// which is how tests get deterministic hedges without a clock thread.
    pub hedge_budget: Option<Duration>,
    /// Consecutive failures that eject a replica from rotation (min 1).
    pub failure_threshold: u32,
    /// How often the background probe re-checks ejected replicas.
    pub probe_interval: Duration,
    /// Attempts per replica for the keyed ingest fan-out (min 1). Retries
    /// are safe precisely because every fan-out entry carries an
    /// idempotency key: a replica that applied the ingest but lost the
    /// acknowledgement dedups the retry.
    pub ingest_retries: u32,
}

impl Default for ReplicaConfig {
    fn default() -> ReplicaConfig {
        ReplicaConfig {
            hedge_budget: None,
            failure_threshold: 3,
            probe_interval: Duration::from_secs(1),
            ingest_retries: 2,
        }
    }
}

/// Point-in-time view of one band's replica group, for `/v1/stats`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Replicas configured.
    pub replicas: usize,
    /// Replicas currently in rotation.
    pub healthy: usize,
    /// Index dispatch tries first.
    pub primary: usize,
    /// Hedges fired so far.
    pub hedges: u64,
    /// Failed dispatches retried on another replica.
    pub failovers: u64,
    /// Replicas ejected by the breaker.
    pub ejections: u64,
    /// Ejected replicas restored by a probe.
    pub restores: u64,
}

/// One replica's breaker state.
struct Replica {
    peer: Arc<dyn PeerTransport>,
    healthy: AtomicBool,
    consecutive_failures: AtomicU32,
}

/// Registry handles + trace sink, attached once by the router.
struct ReplicaObs {
    hub: Arc<ObsHub>,
    band: u32,
    hedges: Arc<Counter>,
    failovers: Arc<Counter>,
    ejections: Arc<Counter>,
    restores: Arc<Counter>,
}

/// The winner-takes-first slot a hedged attempt's two dispatch threads
/// write into.
struct HedgeSlot<T> {
    primary: Option<Result<T, BackendError>>,
    hedge: Option<Result<T, BackendError>>,
}

/// A band's replica group. Construct with [`ReplicaSet::new`] (production
/// clock) or [`ReplicaSet::with_clock`] (tests), then mount it on the
/// router via `ShardRoute::Replicas`.
pub struct ReplicaSet {
    replicas: Vec<Replica>,
    cfg: ReplicaConfig,
    clock: Arc<dyn Clock>,
    primary: AtomicUsize,
    hedges: AtomicU64,
    failovers: AtomicU64,
    ejections: AtomicU64,
    restores: AtomicU64,
    obs: OnceLock<ReplicaObs>,
}

/// The dispatch closure a hedged/failover attempt replays verbatim on
/// whichever replica it lands on.
type Call<T> = Arc<dyn Fn(&dyn PeerTransport) -> Result<T, BackendError> + Send + Sync>;

impl ReplicaSet {
    /// A replica group on the production [`SystemClock`].
    pub fn new(peers: Vec<Arc<dyn PeerTransport>>, cfg: ReplicaConfig) -> Arc<ReplicaSet> {
        ReplicaSet::with_clock(peers, cfg, Arc::new(SystemClock::new()))
    }

    /// A replica group reading its hedge budget and probe cadence through
    /// an injected clock.
    pub fn with_clock(
        peers: Vec<Arc<dyn PeerTransport>>,
        cfg: ReplicaConfig,
        clock: Arc<dyn Clock>,
    ) -> Arc<ReplicaSet> {
        assert!(!peers.is_empty(), "a replica set needs at least one peer");
        let replicas = peers
            .into_iter()
            .map(|peer| Replica {
                peer,
                healthy: AtomicBool::new(true),
                consecutive_failures: AtomicU32::new(0),
            })
            .collect();
        Arc::new(ReplicaSet {
            replicas,
            cfg: ReplicaConfig {
                failure_threshold: cfg.failure_threshold.max(1),
                ingest_retries: cfg.ingest_retries.max(1),
                ..cfg
            },
            clock,
            primary: AtomicUsize::new(0),
            hedges: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            ejections: AtomicU64::new(0),
            restores: AtomicU64::new(0),
            obs: OnceLock::new(),
        })
    }

    /// Replicas configured.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Never empty (asserted at construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Replicas currently in rotation.
    pub fn healthy_len(&self) -> usize {
        self.replicas
            .iter()
            .filter(|r| r.healthy.load(Ordering::SeqCst))
            .count()
    }

    /// Stats label: the member peers' labels, primary first marker aside.
    pub fn label(&self) -> String {
        let members: Vec<String> = self.replicas.iter().map(|r| r.peer.label()).collect();
        format!("replicas[{}]", members.join(", "))
    }

    /// Point-in-time stats snapshot.
    pub fn stats(&self) -> ReplicaStats {
        ReplicaStats {
            replicas: self.replicas.len(),
            healthy: self.healthy_len(),
            primary: self.primary.load(Ordering::SeqCst),
            hedges: self.hedges.load(Ordering::SeqCst),
            failovers: self.failovers.load(Ordering::SeqCst),
            ejections: self.ejections.load(Ordering::SeqCst),
            restores: self.restores.load(Ordering::SeqCst),
        }
    }

    /// Attach counters (shared with the router's pre-registered series)
    /// and the trace sink. One-shot; later calls are ignored.
    pub(crate) fn attach_obs(&self, hub: Arc<ObsHub>, band: u32, kind: &'static str) {
        if self.obs.get().is_some() {
            return;
        }
        let band_label = band.to_string();
        let labels: Vec<(&str, &str)> = vec![("band", &band_label), ("kind", kind)];
        let hedges = hub.metrics.counter(
            "ganc_router_band_hedges_total",
            "Hedged router dispatches, by band",
            &labels,
        );
        let failovers = hub.metrics.counter(
            "ganc_router_band_failovers_total",
            "Dispatches retried on another replica, by band",
            &labels,
        );
        let ejections = hub.metrics.counter(
            "ganc_router_band_ejections_total",
            "Replicas ejected by the consecutive-failure breaker, by band",
            &labels,
        );
        let restores = hub.metrics.counter(
            "ganc_router_band_restores_total",
            "Ejected replicas restored by a health probe, by band",
            &labels,
        );
        let _ = self.obs.set(ReplicaObs {
            hub,
            band,
            hedges,
            failovers,
            ejections,
            restores,
        });
    }

    /// Dispatch order: the rotation ring starting at the primary,
    /// unhealthy replicas skipped. When *every* replica is ejected the
    /// full ring is returned — a last-ditch attempt beats refusing
    /// outright, and when it fails the caller still gets the band error
    /// contract.
    fn rotation(&self) -> Vec<usize> {
        let n = self.replicas.len();
        let start = self.primary.load(Ordering::SeqCst).min(n - 1);
        let ring = (0..n).map(|k| (start + k) % n);
        let healthy: Vec<usize> = ring
            .clone()
            .filter(|&i| self.replicas[i].healthy.load(Ordering::SeqCst))
            .collect();
        if healthy.is_empty() {
            ring.collect()
        } else {
            healthy
        }
    }

    /// First healthy index after `idx` in ring order, if any.
    fn next_healthy_after(&self, idx: usize) -> Option<usize> {
        let n = self.replicas.len();
        (1..n)
            .map(|k| (idx + k) % n)
            .find(|&i| self.replicas[i].healthy.load(Ordering::SeqCst))
    }

    fn record_success(&self, idx: usize) {
        let r = &self.replicas[idx];
        r.consecutive_failures.store(0, Ordering::SeqCst);
        // A last-ditch call through an ejected replica that answers is a
        // restore, same as a probe finding it alive.
        if !r.healthy.swap(true, Ordering::SeqCst) {
            self.note_restore(idx);
        }
    }

    fn record_failure(&self, idx: usize) {
        let r = &self.replicas[idx];
        let failures = r.consecutive_failures.fetch_add(1, Ordering::SeqCst) + 1;
        if failures >= self.cfg.failure_threshold && r.healthy.swap(false, Ordering::SeqCst) {
            self.ejections.fetch_add(1, Ordering::SeqCst);
            if let Some(obs) = self.obs.get() {
                obs.ejections.inc();
                obs.hub.trace.record(
                    obs.hub.now_us(),
                    TraceData::ReplicaEjected {
                        band: obs.band,
                        replica: idx as u32,
                        failures,
                    },
                );
            }
            // Rotate the primary off the ejected replica so the next
            // dispatch starts healthy.
            if self.primary.load(Ordering::SeqCst) == idx {
                if let Some(next) = self.next_healthy_after(idx) {
                    self.primary.store(next, Ordering::SeqCst);
                }
            }
        }
    }

    fn note_restore(&self, idx: usize) {
        self.restores.fetch_add(1, Ordering::SeqCst);
        if let Some(obs) = self.obs.get() {
            obs.restores.inc();
            obs.hub.trace.record(
                obs.hub.now_us(),
                TraceData::ReplicaRestored {
                    band: obs.band,
                    replica: idx as u32,
                },
            );
        }
    }

    fn note_failover(&self, from: usize, to: usize) {
        self.failovers.fetch_add(1, Ordering::SeqCst);
        if let Some(obs) = self.obs.get() {
            obs.failovers.inc();
            obs.hub.trace.record(
                obs.hub.now_us(),
                TraceData::BandFailover {
                    band: obs.band,
                    from: from as u32,
                    to: to as u32,
                },
            );
        }
    }

    fn note_hedge(&self, primary: usize, hedge: usize) {
        self.hedges.fetch_add(1, Ordering::SeqCst);
        if let Some(obs) = self.obs.get() {
            obs.hedges.inc();
            obs.hub.trace.record(
                obs.hub.now_us(),
                TraceData::BandHedge {
                    band: obs.band,
                    primary: primary as u32,
                    hedge: hedge as u32,
                },
            );
        }
    }

    /// One synchronous attempt on `idx`, breaker-accounted.
    fn attempt<T>(&self, idx: usize, call: &Call<T>) -> Result<T, BackendError> {
        let out = call(self.replicas[idx].peer.as_ref());
        match &out {
            Ok(_) => self.record_success(idx),
            Err(_) => self.record_failure(idx),
        }
        out
    }

    /// Fire `call` against `idx` on a detached thread, landing the result
    /// in the hedge slot. Detached on purpose: the straggler must not
    /// block the winner's return; it self-accounts into the breaker when
    /// it eventually finishes.
    fn launch<T: Send + 'static>(
        self: &Arc<Self>,
        idx: usize,
        is_primary: bool,
        call: &Call<T>,
        slot: &Arc<(Mutex<HedgeSlot<T>>, Condvar)>,
    ) {
        let set = Arc::clone(self);
        let call = Arc::clone(call);
        let slot = Arc::clone(slot);
        std::thread::spawn(move || {
            let out = set.attempt(idx, &call);
            let (lock, cv) = &*slot;
            let mut st = lock.lock().unwrap();
            if is_primary {
                st.primary = Some(out);
            } else {
                st.hedge = Some(out);
            }
            cv.notify_all();
        });
    }

    /// One hedged attempt: primary first; when the budget elapses without
    /// an answer the call is re-issued to `hedge` and the first `Ok`
    /// wins. Both attempts are accounted, so a hedged pass consumes two
    /// rotation slots. Waits are condvar waits in [`CLOCK_POLL`] slices
    /// re-reading the injected clock, never a budget-length wall sleep.
    fn hedged_attempt<T: Send + 'static>(
        self: &Arc<Self>,
        primary: usize,
        hedge: usize,
        call: &Call<T>,
    ) -> Result<T, BackendError> {
        let budget = self
            .cfg
            .hedge_budget
            .expect("hedged_attempt requires a budget");
        let slot: Arc<(Mutex<HedgeSlot<T>>, Condvar)> = Arc::new((
            Mutex::new(HedgeSlot {
                primary: None,
                hedge: None,
            }),
            Condvar::new(),
        ));
        // Deadline first, launch second: once the primary's thread is
        // observable (e.g. parked at a test gate) the budget must already
        // be armed, or an injected clock advanced "after dispatch" could
        // land before the deadline was computed and push it out of reach.
        let deadline = self.clock.now() + budget;
        self.launch(primary, true, call, &slot);
        let (lock, cv) = &*slot;
        let mut st = lock.lock().unwrap();
        loop {
            if let Some(out) = st.primary.take() {
                return match out {
                    Ok(v) => Ok(v),
                    Err(_) => {
                        // The primary failed *within* its budget: that is
                        // plain failover, no hedge — retry inline.
                        drop(st);
                        self.note_failover(primary, hedge);
                        self.attempt(hedge, call)
                    }
                };
            }
            let now = self.clock.now();
            if now >= deadline {
                break;
            }
            let wall = (deadline - now).min(CLOCK_POLL);
            st = cv.wait_timeout(st, wall).unwrap().0;
        }
        drop(st);
        // Budget blown: re-issue to the next replica; first answer wins.
        // An error waits for the other attempt; both failing surfaces the
        // primary's error so the outcome is deterministic.
        self.note_hedge(primary, hedge);
        self.launch(hedge, false, call, &slot);
        let mut primary_err: Option<BackendError> = None;
        let mut hedge_err: Option<BackendError> = None;
        let mut st = lock.lock().unwrap();
        loop {
            if let Some(out) = st.primary.take() {
                match out {
                    Ok(v) => return Ok(v),
                    Err(e) => primary_err = Some(e),
                }
            }
            if let Some(out) = st.hedge.take() {
                match out {
                    Ok(v) => return Ok(v),
                    Err(e) => hedge_err = Some(e),
                }
            }
            if let (Some(p), Some(_)) = (&primary_err, &hedge_err) {
                return Err(p.clone());
            }
            st = cv.wait(st).unwrap();
        }
    }

    /// The shared dispatch ladder: hedged first attempt (when configured
    /// and more than one replica is in rotation), then failover down the
    /// rotation until an answer or the ring is exhausted. The *primary's*
    /// error is the one surfaced — deterministic regardless of how many
    /// retries ran.
    fn dispatch<T: Send + 'static>(self: &Arc<Self>, call: Call<T>) -> Result<T, BackendError> {
        let order = self.rotation();
        let hedging = self.cfg.hedge_budget.is_some() && order.len() > 1;
        let mut first_err: Option<BackendError> = None;
        let mut i = 0;
        while i < order.len() {
            let attempt = if hedging && i == 0 {
                // Consumes order[0] and order[1]: both were tried no
                // matter how the hedge resolved.
                let out = self.hedged_attempt(order[0], order[1], &call);
                i += 2;
                out
            } else {
                let out = self.attempt(order[i], &call);
                i += 1;
                out
            };
            match attempt {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if i < order.len() {
                        self.note_failover(order[i - 1], order[i]);
                    }
                    first_err.get_or_insert(e);
                }
            }
        }
        Err(first_err.expect("rotation is never empty"))
    }

    /// Answer one request from whichever replica wins.
    pub fn recommend_traced(
        self: &Arc<Self>,
        user: UserId,
    ) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
        self.dispatch(Arc::new(move |peer: &dyn PeerTransport| {
            peer.recommend_traced(user)
        }))
    }

    /// Answer one band sub-batch from whichever replica wins. The whole
    /// sub-batch is one replica's answer, so it carries exactly one
    /// generation — a hedge cannot mix generations into a batch.
    #[allow(clippy::type_complexity)]
    pub fn recommend_batch_traced(
        self: &Arc<Self>,
        users: &[UserId],
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
        let users: Arc<Vec<UserId>> = Arc::new(users.to_vec());
        self.dispatch(Arc::new(move |peer: &dyn PeerTransport| {
            peer.recommend_batch_traced(&users)
        }))
    }

    /// Answer one override-carrying request from whichever replica wins.
    /// The options ride inside the dispatch closure, so a hedge or
    /// failover replays the *same* θ/exclusions/re-ranker on the next
    /// replica — an override can degrade to an error, never to another
    /// request's defaults.
    pub fn recommend_with_traced(
        self: &Arc<Self>,
        user: UserId,
        opts: &RequestOptions,
    ) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
        let opts = opts.clone();
        self.dispatch(Arc::new(move |peer: &dyn PeerTransport| {
            peer.recommend_with_traced(user, &opts)
        }))
    }

    /// Batch counterpart of [`ReplicaSet::recommend_with_traced`]; the
    /// whole sub-batch is still one replica's answer.
    #[allow(clippy::type_complexity)]
    pub fn recommend_batch_with_traced(
        self: &Arc<Self>,
        users: &[UserId],
        opts: &RequestOptions,
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
        let users: Arc<Vec<UserId>> = Arc::new(users.to_vec());
        let opts = opts.clone();
        self.dispatch(Arc::new(move |peer: &dyn PeerTransport| {
            peer.recommend_batch_with_traced(&users, &opts)
        }))
    }

    /// Fan an ingested interaction to **every** replica (healthy or not —
    /// an ejected replica that misses ingests would serve stale popularity
    /// after restore). Equivalent to [`ReplicaSet::ingest_keyed`] with no
    /// key: each replica still gets [`ReplicaConfig::ingest_retries`]
    /// attempts, but without a key a retry of an applied-but-unacked
    /// ingest can double-apply — which is why the router generates keys
    /// for its fan-out.
    pub fn ingest(&self, user: UserId, item: ItemId, rating: f32) -> Result<(), BackendError> {
        self.ingest_keyed(None, user, item, rating)
    }

    /// Keyed exactly-once fan-out: every replica gets up to
    /// [`ReplicaConfig::ingest_retries`] attempts, one replica's failure
    /// never aborts delivery to the others, and the idempotency key makes
    /// each retry (and any caller-level resend after an `Err`) a no-op on
    /// replicas that already applied it. An `Err` (the first failing
    /// replica's, deterministically) therefore means "at least one replica
    /// is missing this interaction — resend with the same key", not "the
    /// replicas are irrecoverably diverged". No breaker accounting: ingest
    /// delivery is a write-side obligation, not a dispatch health signal.
    pub fn ingest_keyed(
        &self,
        key: Option<&str>,
        user: UserId,
        item: ItemId,
        rating: f32,
    ) -> Result<(), BackendError> {
        let mut first_err: Option<BackendError> = None;
        for r in &self.replicas {
            let mut last: Option<BackendError> = None;
            for _ in 0..self.cfg.ingest_retries {
                match r.peer.ingest_keyed(key, user, item, rating) {
                    Ok(_) => {
                        last = None;
                        break;
                    }
                    // A serve-side rejection (unknown id) is deterministic:
                    // retrying cannot change it.
                    Err(e @ BackendError::Serve(_)) => {
                        last = Some(e);
                        break;
                    }
                    Err(e) => last = Some(e),
                }
            }
            if let Some(e) = last {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// The group's generation: first replica in rotation order that
    /// answers. No breaker accounting — this is a read-side health view,
    /// not a dispatch.
    pub fn generation(&self) -> Result<u64, BackendError> {
        let mut last = None;
        for i in self.rotation() {
            match self.replicas[i].peer.generation() {
                Ok(g) => return Ok(g),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("rotation is never empty"))
    }

    /// One probe pass: ask every *ejected* replica for its generation
    /// (`/v1/healthz` over HTTP) and restore responders, then rotate the
    /// primary to the lowest healthy index — so a recovered original
    /// primary deterministically takes back over. Returns how many
    /// replicas were restored. Tests call this directly; production runs
    /// it on the [`ReplicaSet::spawn_probe`] loop.
    pub fn probe_once(&self) -> usize {
        let mut restored = 0;
        for (idx, r) in self.replicas.iter().enumerate() {
            if !r.healthy.load(Ordering::SeqCst) && r.peer.generation().is_ok() {
                r.consecutive_failures.store(0, Ordering::SeqCst);
                if !r.healthy.swap(true, Ordering::SeqCst) {
                    restored += 1;
                    self.note_restore(idx);
                }
            }
        }
        if let Some(first) =
            (0..self.replicas.len()).find(|&i| self.replicas[i].healthy.load(Ordering::SeqCst))
        {
            self.primary.store(first, Ordering::SeqCst);
        }
        restored
    }

    /// Run [`ReplicaSet::probe_once`] every
    /// [`ReplicaConfig::probe_interval`] on a background thread. The
    /// interval is read through the injected clock in [`CLOCK_POLL`]-ish
    /// wall slices, so a frozen [`ganc_obs::ManualClock`] keeps the loop
    /// provably idle in tests. The handle stops and joins the thread on
    /// drop.
    pub fn spawn_probe(self: &Arc<Self>) -> ProbeHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let set = Arc::clone(self);
        let stop_flag = Arc::clone(&stop);
        let worker = std::thread::spawn(move || {
            let interval = set.cfg.probe_interval;
            let slice = (interval / 10).clamp(CLOCK_POLL, Duration::from_millis(20));
            loop {
                let deadline = set.clock.now() + interval;
                while set.clock.now() < deadline {
                    if stop_flag.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(slice);
                }
                if stop_flag.load(Ordering::SeqCst) {
                    return;
                }
                set.probe_once();
            }
        });
        ProbeHandle {
            stop,
            worker: Some(worker),
        }
    }
}

/// Owns one band's background probe loop; stops and joins it on drop.
pub struct ProbeHandle {
    stop: Arc<AtomicBool>,
    worker: Option<JoinHandle<()>>,
}

impl Drop for ProbeHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}
