//! Blocking HTTP/1.1 client: a keep-alive connection wrapper plus the
//! [`RemoteShard`] typed client a router node uses to dispatch a θ-band to
//! a peer serving a `bundle.shardK.ganc` slice over the same protocol.

use crate::http1::{self, Response};
use crate::transport::IngestEntry;
use crate::BackendError;
use ganc_dataset::{ItemId, UserId};
use ganc_obs::WindowWire;
use ganc_serve::{IngestAck, RequestOptions, ServeError};
use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tinyjson::Value;

/// Reconnect backoff penalty after the first failed dial.
const BACKOFF_FLOOR: Duration = Duration::from_millis(50);
/// Reconnect backoff ceiling (penalty doubles per consecutive failure).
const BACKOFF_CAP: Duration = Duration::from_secs(2);

/// Dial penalty after a failed connect: while `until` is in the future,
/// connect attempts fail immediately instead of re-dialing the dead peer.
struct Backoff {
    delay: Duration,
    until: Instant,
}

/// A keep-alive HTTP/1.1 connection to one server; reconnects lazily after
/// an IO failure or a `Connection: close`.
///
/// Dead peers fail *fast*: dials are bounded by a connect timeout (so an
/// unroutable peer cannot hang a router dispatch thread for the OS's
/// minutes-long default), and consecutive dial failures arm a capped
/// doubling backoff during which further attempts error immediately —
/// which is what lets a replicated band fail over instead of queueing
/// behind a black-holed connect.
pub struct HttpClient {
    addr: String,
    timeout: Duration,
    connect_timeout: Duration,
    backoff: Option<Backoff>,
    conn: Option<BufReader<TcpStream>>,
}

impl HttpClient {
    /// Client for `addr` (e.g. `"127.0.0.1:8080"`); connects on first use.
    pub fn new(addr: impl Into<String>) -> HttpClient {
        HttpClient {
            addr: addr.into(),
            timeout: Duration::from_secs(10),
            connect_timeout: Duration::from_secs(2),
            backoff: None,
            conn: None,
        }
    }

    /// Replace the per-operation read timeout (default 10s).
    pub fn with_timeout(mut self, timeout: Duration) -> HttpClient {
        self.timeout = timeout;
        self
    }

    /// Replace the dial timeout (default 2s).
    pub fn with_connect_timeout(mut self, timeout: Duration) -> HttpClient {
        self.connect_timeout = timeout;
        self
    }

    fn connect(&mut self) -> io::Result<BufReader<TcpStream>> {
        if let Some(b) = &self.backoff {
            if Instant::now() < b.until {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "{}: reconnect backoff armed for {:?} after a failed dial",
                        self.addr, b.delay
                    ),
                ));
            }
        }
        match self.try_connect() {
            Ok(conn) => {
                self.backoff = None;
                Ok(conn)
            }
            Err(e) => {
                let delay = self
                    .backoff
                    .as_ref()
                    .map_or(BACKOFF_FLOOR, |b| (b.delay * 2).min(BACKOFF_CAP));
                self.backoff = Some(Backoff {
                    delay,
                    until: Instant::now() + delay,
                });
                Err(e)
            }
        }
    }

    fn try_connect(&self) -> io::Result<BufReader<TcpStream>> {
        let mut last: Option<io::Error> = None;
        for addr in self.addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, self.connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(self.timeout))?;
                    stream.set_nodelay(true)?;
                    return Ok(BufReader::new(stream));
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{}: address resolved to nothing", self.addr),
            )
        }))
    }

    /// Issue one request on the persistent connection. If a *reused*
    /// connection turns out dead (the server reaped it between requests),
    /// GETs are retried once on a fresh connection; non-idempotent methods
    /// (ingest, refit) are never auto-resent — the server may have applied
    /// the request before the response was lost, and a blind replay would
    /// double-apply it. A POST the caller *knows* is read-only (the batch
    /// recommend) goes through [`HttpClient::request_idempotent`] instead.
    pub fn request(
        &mut self,
        method: &str,
        path_and_query: &str,
        body: Option<&str>,
    ) -> io::Result<Response> {
        self.request_with(method, path_and_query, body, method == "GET")
    }

    /// Like [`HttpClient::request`], but the caller vouches the request is
    /// safe to re-send, so a dead reused connection gets one retry
    /// regardless of method.
    pub fn request_idempotent(
        &mut self,
        method: &str,
        path_and_query: &str,
        body: Option<&str>,
    ) -> io::Result<Response> {
        self.request_full(method, path_and_query, body, true, None)
    }

    /// A request carrying an `Idempotency-Key` header. The key is what
    /// makes a resend safe (the server's dedup window absorbs a replay of
    /// an already-acknowledged request), so keyed requests get the
    /// dead-reused-connection retry that plain POSTs are denied.
    ///
    /// The key is interpolated into the request head, so a key failing
    /// [`ganc_serve::wal::validate_key`] (CR/LF, control bytes, oversized)
    /// would be header injection against the peer — such keys are refused
    /// here with `InvalidInput`, before any IO.
    pub fn request_keyed(
        &mut self,
        method: &str,
        path_and_query: &str,
        body: Option<&str>,
        key: &str,
    ) -> io::Result<Response> {
        ganc_serve::wal::validate_key(key)
            .map_err(|msg| io::Error::new(io::ErrorKind::InvalidInput, msg))?;
        self.request_full(method, path_and_query, body, true, Some(key))
    }

    fn request_with(
        &mut self,
        method: &str,
        path_and_query: &str,
        body: Option<&str>,
        idempotent: bool,
    ) -> io::Result<Response> {
        self.request_full(method, path_and_query, body, idempotent, None)
    }

    fn request_full(
        &mut self,
        method: &str,
        path_and_query: &str,
        body: Option<&str>,
        idempotent: bool,
        key: Option<&str>,
    ) -> io::Result<Response> {
        for attempt in 0..2 {
            let had_conn = self.conn.is_some();
            if self.conn.is_none() {
                self.conn = Some(self.connect()?);
            }
            let conn = self.conn.as_mut().unwrap();
            let result = send_request(conn, method, path_and_query, body, key)
                .and_then(|()| http1::read_response(conn));
            match result {
                Ok(resp) => {
                    if !resp.keep_alive {
                        self.conn = None;
                    }
                    return Ok(resp);
                }
                Err(e) => {
                    self.conn = None;
                    if attempt == 1 || !had_conn || !idempotent {
                        return Err(e);
                    }
                }
            }
        }
        unreachable!("loop returns on success or final error")
    }

    /// One-shot request over a brand-new connection (no keep-alive reuse).
    pub fn request_once(
        addr: &str,
        method: &str,
        path_and_query: &str,
        body: Option<&str>,
    ) -> io::Result<Response> {
        let mut client = HttpClient::new(addr);
        let mut conn = client.connect()?;
        send_request(&mut conn, method, path_and_query, body, None)?;
        http1::read_response(&mut conn)
    }
}

fn send_request(
    conn: &mut BufReader<TcpStream>,
    method: &str,
    path_and_query: &str,
    body: Option<&str>,
    key: Option<&str>,
) -> io::Result<()> {
    let body = body.unwrap_or("");
    // Backstop behind `request_keyed`'s ingress check: nothing that can
    // break header framing is ever written into the head.
    if let Some(k) = key {
        ganc_serve::wal::validate_key(k)
            .map_err(|msg| io::Error::new(io::ErrorKind::InvalidInput, msg))?;
    }
    let key_header = key
        .map(|k| format!("Idempotency-Key: {k}\r\n"))
        .unwrap_or_default();
    let head = if body.is_empty() && method == "GET" {
        format!("{method} {path_and_query} HTTP/1.1\r\n{key_header}Connection: keep-alive\r\n\r\n")
    } else {
        format!(
            "{method} {path_and_query} HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{key_header}Connection: keep-alive\r\n\r\n",
            body.len()
        )
    };
    let stream = conn.get_mut();
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Parse a JSON response body, mapping malformed payloads to transport
/// errors.
fn parse_json(resp: &Response) -> Result<Value, BackendError> {
    let text = std::str::from_utf8(&resp.body)
        .map_err(|_| BackendError::Transport("peer sent non-UTF-8 body".to_string()))?;
    tinyjson::from_str(text)
        .map_err(|e| BackendError::Transport(format!("peer sent invalid JSON: {e}")))
}

/// Map a non-200 JSON error body to the structured error it encodes.
/// Error bodies carry machine-readable fields (`unknown_user` /
/// `unknown_item`) precisely so this mapping never parses prose.
fn error_from_body(resp: &Response) -> BackendError {
    if let Ok(v) = parse_json(resp) {
        if let Some(u) = v["unknown_user"].as_u64() {
            return BackendError::Serve(ServeError::UnknownUser(UserId(u as u32)));
        }
        if let Some(i) = v["unknown_item"].as_u64() {
            return BackendError::Serve(ServeError::UnknownItem(ItemId(i as u32)));
        }
        if let Some(msg) = v["error"].as_str() {
            return BackendError::Transport(format!("peer error {}: {msg}", resp.status));
        }
    }
    BackendError::Transport(format!("peer error {}", resp.status))
}

/// Per-request overrides as the query-string suffix the server parses:
/// `?theta=…&exclude=1,2,3&rerank=pra`, empty for default options. θ uses
/// Rust's shortest-round-trip float formatting, so the peer's
/// `parse::<f64>()` recovers the exact bits and the served list is
/// byte-identical to an in-process override at that θ.
fn override_query(opts: &RequestOptions) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some(t) = opts.theta {
        parts.push(format!("theta={t}"));
    }
    if !opts.exclude.is_empty() {
        let ids: Vec<String> = opts.exclude.iter().map(|i| i.to_string()).collect();
        parts.push(format!("exclude={}", ids.join(",")));
    }
    if let Some(m) = opts.rerank {
        parts.push(format!("rerank={}", m.as_str()));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("?{}", parts.join("&"))
    }
}

fn items_from(v: &Value) -> Result<Vec<ItemId>, BackendError> {
    v.as_array()
        .ok_or_else(|| BackendError::Transport("missing items array".to_string()))?
        .iter()
        .map(|item| {
            item.as_u64()
                .map(|i| ItemId(i as u32))
                .ok_or_else(|| BackendError::Transport("non-integer item id".to_string()))
        })
        .collect()
}

/// Typed client for a peer node serving one θ-band slice (or any other
/// ganc-http server): the transport that turns PR 3's per-node
/// `bundle.shardK.ganc` artifacts into a working multi-node deployment.
pub struct RemoteShard {
    client: Mutex<HttpClient>,
    addr: String,
}

impl RemoteShard {
    /// Client for the peer at `addr`; verifies liveness with one
    /// `GET /v1/healthz` round-trip.
    pub fn connect(addr: impl Into<String>) -> Result<RemoteShard, BackendError> {
        let addr = addr.into();
        RemoteShard::connect_with(HttpClient::new(addr.clone()), addr)
    }

    /// Like [`RemoteShard::connect`], but over a caller-configured client
    /// — e.g. tightened read/connect timeouts for a replicated band where
    /// a hung peer should fail over fast.
    pub fn connect_with(
        client: HttpClient,
        addr: impl Into<String>,
    ) -> Result<RemoteShard, BackendError> {
        let shard = RemoteShard {
            client: Mutex::new(client),
            addr: addr.into(),
        };
        shard.generation()?;
        Ok(shard)
    }

    /// The peer's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn call(&self, method: &str, path: &str, body: Option<&str>) -> Result<Response, BackendError> {
        self.client
            .lock()
            .unwrap()
            .request(method, path, body)
            .map_err(|e| BackendError::Transport(format!("{}: {e}", self.addr)))
    }

    /// For read-only calls that happen to be POSTs: retry-safe on a
    /// reaped keep-alive connection.
    fn call_idempotent(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, BackendError> {
        self.client
            .lock()
            .unwrap()
            .request_idempotent(method, path, body)
            .map_err(|e| BackendError::Transport(format!("{}: {e}", self.addr)))
    }

    /// `GET /v1/recommend/{user}` on the peer.
    pub fn recommend_traced(&self, user: UserId) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
        self.recommend_at(&format!("/v1/recommend/{}", user.0))
    }

    /// `GET /v1/recommend/{user}?theta=…&exclude=…&rerank=…` on the peer:
    /// the wire form of a per-request override. Default options collapse to
    /// the plain recommend path byte-for-byte.
    pub fn recommend_with_traced(
        &self,
        user: UserId,
        opts: &RequestOptions,
    ) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
        self.recommend_at(&format!("/v1/recommend/{}{}", user.0, override_query(opts)))
    }

    fn recommend_at(&self, path: &str) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
        let resp = self.call("GET", path, None)?;
        if resp.status != 200 {
            return Err(error_from_body(&resp));
        }
        let v = parse_json(&resp)?;
        let generation = v["generation"]
            .as_u64()
            .ok_or_else(|| BackendError::Transport("missing generation".to_string()))?;
        Ok((Arc::new(items_from(&v["items"])?), generation))
    }

    /// `POST /v1/recommend:batch` on the peer. Per-user errors come back
    /// in-slot; the whole batch shares one generation.
    #[allow(clippy::type_complexity)]
    pub fn recommend_batch_traced(
        &self,
        users: &[UserId],
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
        self.recommend_batch_with_traced(users, &RequestOptions::default())
    }

    /// `POST /v1/recommend:batch` with optional override body fields
    /// (`theta`, `exclude`, `rerank` — present only when set, so a default
    /// options set sends the historical `{"users":[...]}` body unchanged).
    #[allow(clippy::type_complexity)]
    pub fn recommend_batch_with_traced(
        &self,
        users: &[UserId],
        opts: &RequestOptions,
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
        let ids = Value::Array(users.iter().map(|u| Value::from(u.0)).collect());
        let mut payload = tinyjson::obj! { "users" => ids };
        if let Some(t) = opts.theta {
            payload.insert("theta", Value::from(t));
        }
        if !opts.exclude.is_empty() {
            payload.insert(
                "exclude",
                Value::Array(opts.exclude.iter().map(|&i| Value::from(i)).collect()),
            );
        }
        if let Some(m) = opts.rerank {
            payload.insert("rerank", Value::from(m.as_str().to_string()));
        }
        let body = tinyjson::to_string(&payload);
        // Read-only despite being a POST: safe to retry on a dead reused
        // connection, so an idle deployment doesn't 502 its first batch.
        let resp = self.call_idempotent("POST", "/v1/recommend:batch", Some(&body))?;
        if resp.status != 200 {
            return Err(error_from_body(&resp));
        }
        let v = parse_json(&resp)?;
        let generation = v["generation"]
            .as_u64()
            .ok_or_else(|| BackendError::Transport("missing generation".to_string()))?;
        let results = v["results"]
            .as_array()
            .ok_or_else(|| BackendError::Transport("missing results".to_string()))?;
        if results.len() != users.len() {
            return Err(BackendError::Transport(format!(
                "peer answered {} slots for {} users",
                results.len(),
                users.len()
            )));
        }
        let mut out = Vec::with_capacity(results.len());
        for slot in results {
            if let Some(u) = slot["unknown_user"].as_u64() {
                out.push(Err(ServeError::UnknownUser(UserId(u as u32))));
            } else {
                out.push(Ok(Arc::new(items_from(&slot["items"])?)));
            }
        }
        Ok((out, generation))
    }

    /// `POST /v1/ingest` on the peer.
    pub fn ingest(&self, user: UserId, item: ItemId, rating: f32) -> Result<(), BackendError> {
        self.ingest_keyed(None, user, item, rating).map(|_| ())
    }

    /// `POST /v1/ingest` with an optional `Idempotency-Key` header. Keyed
    /// ingests ride the retry-safe request path — the key is exactly what
    /// makes a resend of a possibly-applied ingest a no-op; unkeyed ones
    /// keep the never-auto-resent rule.
    pub fn ingest_keyed(
        &self,
        key: Option<&str>,
        user: UserId,
        item: ItemId,
        rating: f32,
    ) -> Result<IngestAck, BackendError> {
        let body = tinyjson::to_string(&tinyjson::obj! {
            "user" => user.0,
            "item" => item.0,
            "rating" => rating as f64,
        });
        let resp = {
            let mut client = self.client.lock().unwrap();
            let result = match key {
                Some(k) => client.request_keyed("POST", "/v1/ingest", Some(&body), k),
                None => client.request("POST", "/v1/ingest", Some(&body)),
            };
            result.map_err(|e| BackendError::Transport(format!("{}: {e}", self.addr)))?
        };
        if resp.status != 200 {
            return Err(error_from_body(&resp));
        }
        let v = parse_json(&resp)?;
        Ok(match v["deduplicated"].as_bool() {
            Some(true) => IngestAck::Deduplicated,
            _ => IngestAck::Applied,
        })
    }

    /// `POST /v1/ingest:batch` on the peer: one wire call, per-slot
    /// results (a rejected entry does not fail its companions).
    #[allow(clippy::type_complexity)]
    pub fn ingest_batch(
        &self,
        entries: &[IngestEntry],
    ) -> Result<Vec<Result<IngestAck, ServeError>>, BackendError> {
        let rows = Value::Array(
            entries
                .iter()
                .map(|e| {
                    let mut row = tinyjson::obj! {
                        "user" => e.user.0,
                        "item" => e.item.0,
                        "rating" => e.rating as f64,
                    };
                    if let Some(k) = &e.key {
                        row.insert("key", Value::from(k.clone()));
                    }
                    row
                })
                .collect(),
        );
        let body = tinyjson::to_string(&tinyjson::obj! { "entries" => rows });
        // Retry-safe as a whole: every entry that already landed on the
        // peer dedups by its key, so a resend after a torn connection
        // cannot double-apply (unkeyed entries are the caller's risk and
        // the router always generates keys for fan-out).
        let resp = self.call_idempotent("POST", "/v1/ingest:batch", Some(&body))?;
        if resp.status != 200 {
            return Err(error_from_body(&resp));
        }
        let v = parse_json(&resp)?;
        let results = v["results"]
            .as_array()
            .ok_or_else(|| BackendError::Transport("missing results".to_string()))?;
        if results.len() != entries.len() {
            return Err(BackendError::Transport(format!(
                "peer answered {} slots for {} entries",
                results.len(),
                entries.len()
            )));
        }
        let mut out = Vec::with_capacity(results.len());
        for slot in results {
            if let Some(u) = slot["unknown_user"].as_u64() {
                out.push(Err(ServeError::UnknownUser(UserId(u as u32))));
            } else if let Some(i) = slot["unknown_item"].as_u64() {
                out.push(Err(ServeError::UnknownItem(ItemId(i as u32))));
            } else if slot["durability"].as_bool() == Some(true) {
                out.push(Err(ServeError::Durability));
            } else if slot["status"].as_str() == Some("deduplicated") {
                out.push(Ok(IngestAck::Deduplicated));
            } else {
                out.push(Ok(IngestAck::Applied));
            }
        }
        Ok(out)
    }

    /// The peer's current bundle generation (`GET /v1/healthz`).
    pub fn generation(&self) -> Result<u64, BackendError> {
        let resp = self.call("GET", "/v1/healthz", None)?;
        if resp.status != 200 {
            return Err(error_from_body(&resp));
        }
        parse_json(&resp)?["generation"]
            .as_u64()
            .ok_or_else(|| BackendError::Transport("missing generation".to_string()))
    }

    /// The peer's rolling window summary (`GET /v1/window`), or `None`
    /// when the peer's front exposes no window (`{"window":null}`).
    pub fn window_wire(&self) -> Result<Option<WindowWire>, BackendError> {
        let resp = self.call("GET", "/v1/window", None)?;
        if resp.status != 200 {
            return Err(error_from_body(&resp));
        }
        let v = parse_json(&resp)?;
        let w = &v["window"];
        if w.is_null() {
            return Ok(None);
        }
        let field = |name: &str| -> Result<u64, BackendError> {
            w[name]
                .as_u64()
                .ok_or_else(|| BackendError::Transport(format!("window missing {name}")))
        };
        let distinct = w["distinct"]
            .as_array()
            .ok_or_else(|| BackendError::Transport("window missing distinct".to_string()))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .map(|i| i as u32)
                    .ok_or_else(|| BackendError::Transport("non-integer distinct id".to_string()))
            })
            .collect::<Result<Vec<u32>, BackendError>>()?;
        Ok(Some(WindowWire {
            n_items: field("n_items")? as usize,
            lists: field("lists")?,
            items: field("items")?,
            novelty_microbits: field("novelty_microbits")?,
            tail_hits: field("tail_hits")?,
            distinct,
        }))
    }
}

/// A `RemoteShard` *is* the production peer transport; the router only
/// ever sees the trait, so injection doubles ([`crate::testing`]) and the
/// coalescing wrapper ([`crate::CoalescedShard`]) slot in without the
/// router changing.
impl crate::transport::PeerTransport for RemoteShard {
    fn label(&self) -> String {
        self.addr.clone()
    }

    fn recommend_traced(&self, user: UserId) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
        RemoteShard::recommend_traced(self, user)
    }

    fn recommend_batch_traced(
        &self,
        users: &[UserId],
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
        RemoteShard::recommend_batch_traced(self, users)
    }

    fn recommend_with_traced(
        &self,
        user: UserId,
        opts: &RequestOptions,
    ) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
        RemoteShard::recommend_with_traced(self, user, opts)
    }

    fn recommend_batch_with_traced(
        &self,
        users: &[UserId],
        opts: &RequestOptions,
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
        RemoteShard::recommend_batch_with_traced(self, users, opts)
    }

    fn ingest(&self, user: UserId, item: ItemId, rating: f32) -> Result<(), BackendError> {
        RemoteShard::ingest(self, user, item, rating)
    }

    fn ingest_keyed(
        &self,
        key: Option<&str>,
        user: UserId,
        item: ItemId,
        rating: f32,
    ) -> Result<IngestAck, BackendError> {
        RemoteShard::ingest_keyed(self, key, user, item, rating)
    }

    fn ingest_batch(
        &self,
        entries: &[IngestEntry],
    ) -> Result<Vec<Result<IngestAck, ServeError>>, BackendError> {
        RemoteShard::ingest_batch(self, entries)
    }

    fn generation(&self) -> Result<u64, BackendError> {
        RemoteShard::generation(self)
    }

    fn window_wire(&self) -> Result<Option<WindowWire>, BackendError> {
        RemoteShard::window_wire(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bind an ephemeral port, then drop the listener: dialing it is
    /// refused immediately, so these tests never wait on a real timeout.
    fn dead_addr() -> String {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        addr
    }

    #[test]
    fn failed_dial_arms_capped_doubling_backoff_and_fails_fast() {
        let mut client =
            HttpClient::new(dead_addr()).with_connect_timeout(Duration::from_millis(200));
        let first = client.connect().unwrap_err();
        assert!(
            !first.to_string().contains("backoff"),
            "first dial must be a real attempt: {first}"
        );
        // Inside the penalty window the retry fails without touching the
        // network at all.
        let second = client.connect().unwrap_err();
        assert_eq!(second.kind(), io::ErrorKind::TimedOut);
        assert!(second.to_string().contains("backoff"), "{second}");
        let mut delay = client.backoff.as_ref().unwrap().delay;
        assert_eq!(delay, BACKOFF_FLOOR);
        for _ in 0..10 {
            // Expire the window so the next call really dials (and fails).
            client.backoff.as_mut().unwrap().until = Instant::now() - Duration::from_millis(1);
            client.connect().unwrap_err();
            let next = client.backoff.as_ref().unwrap().delay;
            assert_eq!(next, (delay * 2).min(BACKOFF_CAP));
            delay = next;
        }
        assert_eq!(delay, BACKOFF_CAP);
    }

    #[test]
    fn request_keyed_refuses_injection_keys_before_dialing() {
        // A CR/LF in the idempotency key would splice an attacker-chosen
        // header into the request head. Refusal must happen before any
        // network IO — no connection, no backoff state.
        let mut client = HttpClient::new(dead_addr());
        for bad in [
            "evil\r\nX-Smuggled: 1",
            "nul\0key",
            "with space",
            &"x".repeat(200),
            "",
        ] {
            let err = client
                .request_keyed("POST", "/v1/ingest", Some("{}"), bad)
                .expect_err("injection key accepted");
            assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "{bad:?}");
        }
        assert!(client.conn.is_none(), "refusal must precede dialing");
        assert!(client.backoff.is_none(), "no dial, no backoff penalty");
    }

    #[test]
    fn successful_dial_resets_the_backoff() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let mut client = HttpClient::new(addr);
        client.backoff = Some(Backoff {
            delay: BACKOFF_CAP,
            until: Instant::now() - Duration::from_millis(1),
        });
        client.connect().unwrap();
        assert!(client.backoff.is_none(), "a live peer clears the penalty");
    }
}
