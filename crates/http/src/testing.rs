//! Deterministic fault/latency-injection doubles for [`PeerTransport`].
//!
//! Real sockets make adversarial timing flaky: a "slow peer" built from
//! `sleep` proves nothing on a loaded CI box, and a killed TCP connection
//! races the reader. These doubles inject the same adversities as pure
//! synchronization — a call is "slow" because it *provably waits for other
//! calls to complete first* (condition variables, not clocks), "flaky"
//! because a counter says the next k calls fail, "reordered" because
//! arrivals are released LIFO. No sleeps, no sockets, same
//! [`PeerTransport`] seam production uses, so `tests/router_fanout.rs` and
//! `tests/remote_coalescing.rs` can pin byte-equivalence under timings a
//! real network only produces by accident.
//!
//! Composition: every double wraps an `Arc<dyn PeerTransport>` — usually a
//! [`crate::Frontend`] loopback at the bottom, possibly other doubles in
//! between (`SlowPeer(LedgerPeer(Frontend))` is the canonical fan-out
//! harness).

use crate::transport::{IngestEntry, PeerTransport};
use crate::BackendError;
use ganc_dataset::{ItemId, UserId};
use ganc_obs::WindowWire;
use ganc_serve::{IngestAck, RequestOptions, ServeError};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

type SingleAnswer = Result<(Arc<Vec<ItemId>>, u64), BackendError>;
type BatchAnswer = Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError>;
type IngestBatchAnswer = Result<Vec<Result<IngestAck, ServeError>>, BackendError>;

/// A shared completion counter the ordering doubles coordinate through:
/// peers [`bump`](Ledger::bump) it when they answer, a [`SlowPeer`] holds
/// its answer until the count reaches a target. "This band answered last"
/// becomes a provable happens-after instead of a sleep.
#[derive(Default)]
pub struct Ledger {
    completed: Mutex<u64>,
    cv: Condvar,
}

impl Ledger {
    /// A ledger at zero.
    pub fn new() -> Arc<Ledger> {
        Arc::new(Ledger::default())
    }

    /// Completions recorded so far.
    pub fn completed(&self) -> u64 {
        *self.completed.lock().unwrap()
    }

    /// Record one completion and wake waiters.
    pub fn bump(&self) {
        *self.completed.lock().unwrap() += 1;
        self.cv.notify_all();
    }

    /// Block until at least `target` completions were recorded.
    pub fn wait_until(&self, target: u64) {
        let mut completed = self.completed.lock().unwrap();
        while *completed < target {
            completed = self.cv.wait(completed).unwrap();
        }
    }
}

/// Bumps a [`Ledger`] after every answered read call — the "everyone else
/// finished" signal a [`SlowPeer`] waits on.
pub struct LedgerPeer {
    inner: Arc<dyn PeerTransport>,
    ledger: Arc<Ledger>,
}

impl LedgerPeer {
    /// Wrap `inner`, bumping `ledger` per answered read.
    pub fn new(inner: Arc<dyn PeerTransport>, ledger: Arc<Ledger>) -> LedgerPeer {
        LedgerPeer { inner, ledger }
    }
}

impl PeerTransport for LedgerPeer {
    fn label(&self) -> String {
        format!("ledger({})", self.inner.label())
    }

    fn recommend_traced(&self, user: UserId) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
        let answer = self.inner.recommend_traced(user);
        self.ledger.bump();
        answer
    }

    fn recommend_batch_traced(&self, users: &[UserId]) -> BatchAnswer {
        let answer = self.inner.recommend_batch_traced(users);
        self.ledger.bump();
        answer
    }

    fn recommend_with_traced(&self, user: UserId, opts: &RequestOptions) -> SingleAnswer {
        let answer = self.inner.recommend_with_traced(user, opts);
        self.ledger.bump();
        answer
    }

    fn recommend_batch_with_traced(&self, users: &[UserId], opts: &RequestOptions) -> BatchAnswer {
        let answer = self.inner.recommend_batch_with_traced(users, opts);
        self.ledger.bump();
        answer
    }

    fn ingest(&self, user: UserId, item: ItemId, rating: f32) -> Result<(), BackendError> {
        self.inner.ingest(user, item, rating)
    }

    fn ingest_keyed(
        &self,
        key: Option<&str>,
        user: UserId,
        item: ItemId,
        rating: f32,
    ) -> Result<IngestAck, BackendError> {
        self.inner.ingest_keyed(key, user, item, rating)
    }

    fn ingest_batch(&self, entries: &[IngestEntry]) -> IngestBatchAnswer {
        self.inner.ingest_batch(entries)
    }

    fn generation(&self) -> Result<u64, BackendError> {
        self.inner.generation()
    }

    fn window_wire(&self) -> Result<Option<WindowWire>, BackendError> {
        self.inner.window_wire()
    }
}

/// A peer whose reads are *provably last*: each call first waits for the
/// shared [`Ledger`] to reach a target (set per scenario with
/// [`SlowPeer::delay_until`]), i.e. for that many other peers to have
/// answered. Target 0 disarms the delay.
///
/// Deadlock discipline: only meaningful under dispatch strategies that
/// run other peers concurrently (the parallel fan-out); a sequential
/// dispatcher visiting the slow band first would wait forever, which is
/// precisely the scheduling hazard the double exists to surface — disarm
/// it when driving the sequential reference.
pub struct SlowPeer {
    inner: Arc<dyn PeerTransport>,
    ledger: Arc<Ledger>,
    wait_until: AtomicU64,
}

impl SlowPeer {
    /// Wrap `inner`; disarmed until [`SlowPeer::delay_until`].
    pub fn new(inner: Arc<dyn PeerTransport>, ledger: Arc<Ledger>) -> Arc<SlowPeer> {
        Arc::new(SlowPeer {
            inner,
            ledger,
            wait_until: AtomicU64::new(0),
        })
    }

    /// Delay every subsequent read until the ledger shows `target`
    /// completions; 0 disarms.
    pub fn delay_until(&self, target: u64) {
        self.wait_until.store(target, Ordering::SeqCst);
    }

    fn stall(&self) {
        let target = self.wait_until.load(Ordering::SeqCst);
        if target > 0 {
            self.ledger.wait_until(target);
        }
    }
}

impl PeerTransport for SlowPeer {
    fn label(&self) -> String {
        format!("slow({})", self.inner.label())
    }

    fn recommend_traced(&self, user: UserId) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
        self.stall();
        self.inner.recommend_traced(user)
    }

    fn recommend_batch_traced(&self, users: &[UserId]) -> BatchAnswer {
        self.stall();
        self.inner.recommend_batch_traced(users)
    }

    fn recommend_with_traced(&self, user: UserId, opts: &RequestOptions) -> SingleAnswer {
        self.stall();
        self.inner.recommend_with_traced(user, opts)
    }

    fn recommend_batch_with_traced(&self, users: &[UserId], opts: &RequestOptions) -> BatchAnswer {
        self.stall();
        self.inner.recommend_batch_with_traced(users, opts)
    }

    fn ingest(&self, user: UserId, item: ItemId, rating: f32) -> Result<(), BackendError> {
        self.inner.ingest(user, item, rating)
    }

    fn ingest_keyed(
        &self,
        key: Option<&str>,
        user: UserId,
        item: ItemId,
        rating: f32,
    ) -> Result<IngestAck, BackendError> {
        self.inner.ingest_keyed(key, user, item, rating)
    }

    fn ingest_batch(&self, entries: &[IngestEntry]) -> IngestBatchAnswer {
        self.inner.ingest_batch(entries)
    }

    fn generation(&self) -> Result<u64, BackendError> {
        self.inner.generation()
    }

    fn window_wire(&self) -> Result<Option<WindowWire>, BackendError> {
        self.inner.window_wire()
    }
}

/// A peer whose next `k` reads fail with an injected transport error (then
/// it heals) — the unreachable-shard scenario, minus the socket. Writes
/// have their own two knobs, covering both halves of the exactly-once
/// contract: [`FlakyPeer::fail_ingests`] drops the write *before* the
/// inner peer sees it (lost request), [`FlakyPeer::fail_ingest_acks`]
/// applies the write and *then* reports failure (lost ack — the retry that
/// would double-apply without idempotency keys).
pub struct FlakyPeer {
    inner: Arc<dyn PeerTransport>,
    fail_next: AtomicU32,
    fail_ingests: AtomicU32,
    fail_ingest_acks: AtomicU32,
}

impl FlakyPeer {
    /// Wrap `inner`; healthy until a `fail_*` knob arms.
    pub fn new(inner: Arc<dyn PeerTransport>) -> Arc<FlakyPeer> {
        Arc::new(FlakyPeer {
            inner,
            fail_next: AtomicU32::new(0),
            fail_ingests: AtomicU32::new(0),
            fail_ingest_acks: AtomicU32::new(0),
        })
    }

    /// Make the next `k` reads fail.
    pub fn fail_next(&self, k: u32) {
        self.fail_next.store(k, Ordering::SeqCst);
    }

    /// Make the next `k` ingest calls fail *before* reaching the inner
    /// peer — the interaction is lost, a retry must deliver it.
    pub fn fail_ingests(&self, k: u32) {
        self.fail_ingests.store(k, Ordering::SeqCst);
    }

    /// Make the next `k` ingest calls apply on the inner peer and *then*
    /// fail — the applied-but-unacked case a retry would double-apply
    /// without key dedup downstream.
    pub fn fail_ingest_acks(&self, k: u32) {
        self.fail_ingest_acks.store(k, Ordering::SeqCst);
    }

    fn tripped(counter: &AtomicU32) -> bool {
        counter
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
    }

    fn injected(&self) -> BackendError {
        BackendError::Transport(format!("injected failure on {}", self.inner.label()))
    }

    fn trip(&self) -> Result<(), BackendError> {
        if FlakyPeer::tripped(&self.fail_next) {
            Err(self.injected())
        } else {
            Ok(())
        }
    }
}

impl PeerTransport for FlakyPeer {
    fn label(&self) -> String {
        format!("flaky({})", self.inner.label())
    }

    fn recommend_traced(&self, user: UserId) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
        self.trip()?;
        self.inner.recommend_traced(user)
    }

    fn recommend_batch_traced(&self, users: &[UserId]) -> BatchAnswer {
        self.trip()?;
        self.inner.recommend_batch_traced(users)
    }

    fn recommend_with_traced(&self, user: UserId, opts: &RequestOptions) -> SingleAnswer {
        self.trip()?;
        self.inner.recommend_with_traced(user, opts)
    }

    fn recommend_batch_with_traced(&self, users: &[UserId], opts: &RequestOptions) -> BatchAnswer {
        self.trip()?;
        self.inner.recommend_batch_with_traced(users, opts)
    }

    fn ingest(&self, user: UserId, item: ItemId, rating: f32) -> Result<(), BackendError> {
        self.ingest_keyed(None, user, item, rating).map(|_| ())
    }

    fn ingest_keyed(
        &self,
        key: Option<&str>,
        user: UserId,
        item: ItemId,
        rating: f32,
    ) -> Result<IngestAck, BackendError> {
        if FlakyPeer::tripped(&self.fail_ingests) {
            return Err(self.injected());
        }
        let ack = self.inner.ingest_keyed(key, user, item, rating)?;
        if FlakyPeer::tripped(&self.fail_ingest_acks) {
            return Err(self.injected());
        }
        Ok(ack)
    }

    fn ingest_batch(&self, entries: &[IngestEntry]) -> IngestBatchAnswer {
        if FlakyPeer::tripped(&self.fail_ingests) {
            return Err(self.injected());
        }
        let acks = self.inner.ingest_batch(entries)?;
        if FlakyPeer::tripped(&self.fail_ingest_acks) {
            return Err(self.injected());
        }
        Ok(acks)
    }

    fn generation(&self) -> Result<u64, BackendError> {
        self.inner.generation()
    }

    fn window_wire(&self) -> Result<Option<WindowWire>, BackendError> {
        self.inner.window_wire()
    }
}

#[derive(Default)]
struct Reorder {
    /// Calls this round must collect before any is released; 0 = disarmed.
    armed: usize,
    arrived: usize,
    released: usize,
}

/// The shared rendezvous of a reordering round: `armed` concurrent calls
/// (possibly spread over several [`ReorderingPeer`]s, one per θ-band)
/// collect here, then run **serially in reverse arrival order** — the
/// adversarial completion schedule for anything that assumes responses
/// come back in dispatch order.
///
/// Arm with the exact number of concurrent calls the scenario will make
/// ([`ReorderGate::arm`]); fewer arrivals than armed would block forever
/// (the gate is a barrier, not a timeout).
#[derive(Default)]
pub struct ReorderGate {
    state: Mutex<Reorder>,
    cv: Condvar,
}

impl ReorderGate {
    /// A disarmed gate.
    pub fn new() -> Arc<ReorderGate> {
        Arc::new(ReorderGate::default())
    }

    /// The next `expected` concurrent reads rendezvous and release LIFO.
    pub fn arm(&self, expected: usize) {
        let mut state = self.state.lock().unwrap();
        *state = Reorder {
            armed: expected,
            arrived: 0,
            released: 0,
        };
    }

    /// Returns once it is this call's turn (or immediately when disarmed).
    fn rendezvous(&self) {
        let mut state = self.state.lock().unwrap();
        if state.armed == 0 {
            return;
        }
        let ticket = state.arrived;
        state.arrived += 1;
        self.cv.notify_all();
        // Release order is reversed: the LAST arrival (ticket armed-1)
        // goes first, so `released` counts up while tickets count down.
        while !(state.arrived == state.armed && state.released == state.armed - 1 - ticket) {
            state = self.cv.wait(state).unwrap();
        }
    }

    fn done(&self) {
        let mut state = self.state.lock().unwrap();
        if state.armed == 0 {
            return;
        }
        state.released += 1;
        if state.released == state.armed {
            state.armed = 0; // round over; disarm for whatever follows
        }
        self.cv.notify_all();
    }
}

/// A peer whose reads pass through a shared [`ReorderGate`]: wrap every
/// band's route in one of these over the same gate and an armed round
/// completes the bands in reverse dispatch-arrival order.
pub struct ReorderingPeer {
    inner: Arc<dyn PeerTransport>,
    gate: Arc<ReorderGate>,
}

impl ReorderingPeer {
    /// Wrap `inner` behind `gate`.
    pub fn new(inner: Arc<dyn PeerTransport>, gate: Arc<ReorderGate>) -> ReorderingPeer {
        ReorderingPeer { inner, gate }
    }
}

impl PeerTransport for ReorderingPeer {
    fn label(&self) -> String {
        format!("reorder({})", self.inner.label())
    }

    fn recommend_traced(&self, user: UserId) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
        self.gate.rendezvous();
        let answer = self.inner.recommend_traced(user);
        self.gate.done();
        answer
    }

    fn recommend_batch_traced(&self, users: &[UserId]) -> BatchAnswer {
        self.gate.rendezvous();
        let answer = self.inner.recommend_batch_traced(users);
        self.gate.done();
        answer
    }

    fn recommend_with_traced(&self, user: UserId, opts: &RequestOptions) -> SingleAnswer {
        self.gate.rendezvous();
        let answer = self.inner.recommend_with_traced(user, opts);
        self.gate.done();
        answer
    }

    fn recommend_batch_with_traced(&self, users: &[UserId], opts: &RequestOptions) -> BatchAnswer {
        self.gate.rendezvous();
        let answer = self.inner.recommend_batch_with_traced(users, opts);
        self.gate.done();
        answer
    }

    fn ingest(&self, user: UserId, item: ItemId, rating: f32) -> Result<(), BackendError> {
        self.inner.ingest(user, item, rating)
    }

    fn ingest_keyed(
        &self,
        key: Option<&str>,
        user: UserId,
        item: ItemId,
        rating: f32,
    ) -> Result<IngestAck, BackendError> {
        self.inner.ingest_keyed(key, user, item, rating)
    }

    fn ingest_batch(&self, entries: &[IngestEntry]) -> IngestBatchAnswer {
        self.inner.ingest_batch(entries)
    }

    fn generation(&self) -> Result<u64, BackendError> {
        self.inner.generation()
    }

    fn window_wire(&self) -> Result<Option<WindowWire>, BackendError> {
        self.inner.window_wire()
    }
}

/// One recorded wire-level batch call: who was asked, and the generation
/// the whole batch came back from (None on failure).
#[derive(Debug, Clone)]
pub struct RecordedBatch {
    /// The users of the coalesced/dispatched batch, in call order.
    pub users: Vec<UserId>,
    /// The single generation the batch reported, if it succeeded.
    pub generation: Option<u64>,
}

/// Records every read call — the witness that coalescing really merged
/// singles into batches, and that every merged batch reported exactly one
/// generation.
pub struct RecordingPeer {
    inner: Arc<dyn PeerTransport>,
    batches: Mutex<Vec<RecordedBatch>>,
    singles: AtomicU64,
    ingest_batches: Mutex<Vec<Vec<IngestEntry>>>,
    ingest_singles: AtomicU64,
}

impl RecordingPeer {
    /// Wrap `inner` and start recording.
    pub fn new(inner: Arc<dyn PeerTransport>) -> Arc<RecordingPeer> {
        Arc::new(RecordingPeer {
            inner,
            batches: Mutex::new(Vec::new()),
            singles: AtomicU64::new(0),
            ingest_batches: Mutex::new(Vec::new()),
            ingest_singles: AtomicU64::new(0),
        })
    }

    /// Every batch call so far, in completion order.
    pub fn batches(&self) -> Vec<RecordedBatch> {
        self.batches.lock().unwrap().clone()
    }

    /// Single (non-batch) read calls so far.
    pub fn singles(&self) -> u64 {
        self.singles.load(Ordering::SeqCst)
    }

    /// Every ingest batch call so far — the witness that ingest
    /// coalescing really merged singles into wire batches.
    pub fn ingest_batches(&self) -> Vec<Vec<IngestEntry>> {
        self.ingest_batches.lock().unwrap().clone()
    }

    /// Single (non-batch) ingest calls so far, keyed or not.
    pub fn ingest_singles(&self) -> u64 {
        self.ingest_singles.load(Ordering::SeqCst)
    }
}

impl PeerTransport for RecordingPeer {
    fn label(&self) -> String {
        format!("recording({})", self.inner.label())
    }

    fn recommend_traced(&self, user: UserId) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
        self.singles.fetch_add(1, Ordering::SeqCst);
        self.inner.recommend_traced(user)
    }

    fn recommend_batch_traced(&self, users: &[UserId]) -> BatchAnswer {
        let answer = self.inner.recommend_batch_traced(users);
        self.batches.lock().unwrap().push(RecordedBatch {
            users: users.to_vec(),
            generation: answer.as_ref().ok().map(|&(_, g)| g),
        });
        answer
    }

    fn recommend_with_traced(&self, user: UserId, opts: &RequestOptions) -> SingleAnswer {
        self.singles.fetch_add(1, Ordering::SeqCst);
        self.inner.recommend_with_traced(user, opts)
    }

    fn recommend_batch_with_traced(&self, users: &[UserId], opts: &RequestOptions) -> BatchAnswer {
        let answer = self.inner.recommend_batch_with_traced(users, opts);
        self.batches.lock().unwrap().push(RecordedBatch {
            users: users.to_vec(),
            generation: answer.as_ref().ok().map(|&(_, g)| g),
        });
        answer
    }

    fn ingest(&self, user: UserId, item: ItemId, rating: f32) -> Result<(), BackendError> {
        self.ingest_keyed(None, user, item, rating).map(|_| ())
    }

    fn ingest_keyed(
        &self,
        key: Option<&str>,
        user: UserId,
        item: ItemId,
        rating: f32,
    ) -> Result<IngestAck, BackendError> {
        self.ingest_singles.fetch_add(1, Ordering::SeqCst);
        self.inner.ingest_keyed(key, user, item, rating)
    }

    fn ingest_batch(&self, entries: &[IngestEntry]) -> IngestBatchAnswer {
        self.ingest_batches.lock().unwrap().push(entries.to_vec());
        self.inner.ingest_batch(entries)
    }

    fn generation(&self) -> Result<u64, BackendError> {
        self.inner.generation()
    }

    fn window_wire(&self) -> Result<Option<WindowWire>, BackendError> {
        self.inner.window_wire()
    }
}

struct Gate {
    open: bool,
    arrivals: usize,
}

/// A peer whose reads block at a gate until the test opens it — the
/// controlled-congestion double: park the wire, pile up concurrent
/// callers behind it, observe what coalesces when it lifts.
pub struct GatedPeer {
    inner: Arc<dyn PeerTransport>,
    state: Mutex<Gate>,
    cv: Condvar,
}

impl GatedPeer {
    /// Wrap `inner` with the gate **closed**.
    pub fn new(inner: Arc<dyn PeerTransport>) -> Arc<GatedPeer> {
        Arc::new(GatedPeer {
            inner,
            state: Mutex::new(Gate {
                open: false,
                arrivals: 0,
            }),
            cv: Condvar::new(),
        })
    }

    /// Let all parked and future reads through.
    pub fn open(&self) {
        self.state.lock().unwrap().open = true;
        self.cv.notify_all();
    }

    /// Close the gate again: future reads park until the next
    /// [`GatedPeer::open`]. Lets one harness replay park-then-release
    /// scenarios (e.g. a replica-set primary that stalls per dispatch).
    pub fn close(&self) {
        self.state.lock().unwrap().open = false;
    }

    /// Block until `n` reads have reached the gate (parked or passed).
    pub fn wait_arrivals(&self, n: usize) {
        let mut state = self.state.lock().unwrap();
        while state.arrivals < n {
            state = self.cv.wait(state).unwrap();
        }
    }

    fn pass(&self) {
        let mut state = self.state.lock().unwrap();
        state.arrivals += 1;
        self.cv.notify_all();
        while !state.open {
            state = self.cv.wait(state).unwrap();
        }
    }
}

impl PeerTransport for GatedPeer {
    fn label(&self) -> String {
        format!("gated({})", self.inner.label())
    }

    fn recommend_traced(&self, user: UserId) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
        self.pass();
        self.inner.recommend_traced(user)
    }

    fn recommend_batch_traced(&self, users: &[UserId]) -> BatchAnswer {
        self.pass();
        self.inner.recommend_batch_traced(users)
    }

    fn recommend_with_traced(&self, user: UserId, opts: &RequestOptions) -> SingleAnswer {
        self.pass();
        self.inner.recommend_with_traced(user, opts)
    }

    fn recommend_batch_with_traced(&self, users: &[UserId], opts: &RequestOptions) -> BatchAnswer {
        self.pass();
        self.inner.recommend_batch_with_traced(users, opts)
    }

    fn ingest(&self, user: UserId, item: ItemId, rating: f32) -> Result<(), BackendError> {
        self.inner.ingest(user, item, rating)
    }

    fn ingest_keyed(
        &self,
        key: Option<&str>,
        user: UserId,
        item: ItemId,
        rating: f32,
    ) -> Result<IngestAck, BackendError> {
        self.inner.ingest_keyed(key, user, item, rating)
    }

    fn ingest_batch(&self, entries: &[IngestEntry]) -> IngestBatchAnswer {
        self.inner.ingest_batch(entries)
    }

    fn generation(&self) -> Result<u64, BackendError> {
        self.inner.generation()
    }

    fn window_wire(&self) -> Result<Option<WindowWire>, BackendError> {
        self.inner.window_wire()
    }
}
