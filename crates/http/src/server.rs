//! The HTTP server: a fixed worker pool over `std::net::TcpListener`
//! fronting a serving backend.
//!
//! ## Endpoints
//!
//! | method | path | body | answers |
//! |--------|------|------|---------|
//! | GET  | `/v1/recommend/{user}?n=K` | — | `{"user":u,"generation":g,"items":[...]}` (top-K prefix of the bundle's top-N) |
//! | POST | `/v1/recommend:batch` | `{"users":[...]}` | `{"generation":g,"results":[...]}` — one generation for the whole batch |
//! | POST | `/v1/ingest` | `{"user":u,"item":i,"rating":r,"key"?}` | `{"ok":true}` (keyed: + `"deduplicated"`) |
//! | POST | `/v1/ingest:batch` | `{"entries":[{"user","item","rating","key"?},...]}` | `{"results":[...]}` per entry |
//! | GET  | `/v1/healthz` | — | `{"ok":true,"generation":g}` |
//! | GET  | `/v1/stats` | — | generation, cache hit rate, shard map |
//! | POST | `/admin/refit` | — | runs one refit pass and hot-swaps |
//!
//! Batches route through the backend's `recommend_batch_traced`, so a batch
//! is always served from exactly one bundle generation even while
//! `/admin/refit` swaps underneath it. Error responses are always JSON with
//! an `"error"` key; unknown ids additionally carry `unknown_user` /
//! `unknown_item` so a [`crate::RemoteShard`] can reconstruct the typed
//! error without parsing prose.
//!
//! ## Connection state machine
//!
//! Framing violations (torn heads, bad `Content-Length`, oversized bodies)
//! answer once and close — the stream cannot be re-synchronized.
//! Well-framed but invalid requests (bad JSON, unknown route, unknown ids)
//! answer 400/404 and keep the connection, so a client burst survives its
//! own mistakes. `tests/http_protocol.rs` fuzzes exactly this contract.

use crate::http1::{self, Limits, ReadOutcome, Request, StatusCode, WaitOutcome};
use crate::router::RouterNode;
use crate::BackendError;
use ganc_dataset::{ItemId, UserId};
use ganc_obs::{Histogram, ObsHub, TraceData, TraceEvent, WindowStats};
use ganc_serve::refit::{RefitController, RefitOutcome, Refitter};
use ganc_serve::{CadenceConfig, FitConfig, ServeError, ServingEngine, ShardedEngine};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use tinyjson::{obj, Value};

/// Server tuning knobs.
#[derive(Clone)]
pub struct ServerConfig {
    /// Worker threads (each owns one connection at a time).
    pub workers: usize,
    /// Framing limits (oversized heads → 400, oversized bodies → 413).
    pub limits: Limits,
    /// Requests served per connection before the server closes it.
    pub keep_alive_requests: u32,
    /// Per-read socket timeout; an idle keep-alive connection is reclaimed
    /// after this long. Note this bounds each *read*, not a connection's
    /// total hold time: a peer trickling one byte per timeout window can
    /// pin a worker indefinitely (slow-loris). The server is built for
    /// trusted networks (loopback, an internal shard mesh) where that
    /// trade — blocking std IO, no timer wheel — is the right simplicity;
    /// don't expose it to untrusted clients without a reverse proxy in
    /// front.
    pub read_timeout: Duration,
    /// Observability hub every request records into (metrics, trace ring,
    /// request-stage timing). `None` creates a fresh wall-clock hub at
    /// bind time; tests inject a `ManualClock` hub here to make timing and
    /// window expiry deterministic.
    pub obs: Option<Arc<ObsHub>>,
    /// Width of the rolling beyond-accuracy window `/v1/stats` and the
    /// `ganc_window_*` gauges report over.
    pub stats_window: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            // Thread-per-connection with keep-alive: a persistent client
            // pins its worker, so the pool must track expected concurrent
            // connections, not cores — the floor of 8 keeps small hosts
            // (including 1-CPU CI runners) from starving a handful of
            // keep-alive clients.
            workers: std::thread::available_parallelism().map_or(8, |p| p.get().clamp(8, 16)),
            limits: Limits::default(),
            keep_alive_requests: 100_000,
            read_timeout: Duration::from_secs(5),
            obs: None,
            stats_window: Duration::from_secs(300),
        }
    }
}

/// The engine a server fronts: single-node, in-process sharded, or a
/// multi-node router.
#[derive(Clone)]
pub enum Frontend {
    /// One [`ServingEngine`] over one bundle (or one θ-band slice — this is
    /// what a shard node runs).
    Single(Arc<ServingEngine>),
    /// An in-process [`ShardedEngine`] (router + all bands in one process).
    Sharded(Arc<ShardedEngine>),
    /// A [`RouterNode`] dispatching bands to local slices and remote peers.
    Router(Arc<RouterNode>),
}

impl Frontend {
    fn recommend_traced(&self, user: UserId) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
        match self {
            Frontend::Single(e) => e.recommend_traced(user).map_err(BackendError::Serve),
            Frontend::Sharded(e) => e.recommend_traced(user).map_err(BackendError::Serve),
            Frontend::Router(r) => r.recommend_traced(user),
        }
    }

    #[allow(clippy::type_complexity)]
    fn recommend_batch_traced(
        &self,
        users: &[UserId],
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
        match self {
            Frontend::Single(e) => Ok(e.recommend_batch_traced(users)),
            Frontend::Sharded(e) => Ok(e.recommend_batch_traced(users)),
            Frontend::Router(r) => r.recommend_batch_traced(users),
        }
    }

    fn ingest(&self, user: UserId, item: ItemId, rating: f32) -> Result<(), BackendError> {
        match self {
            Frontend::Single(e) => e.ingest(user, item, rating).map_err(BackendError::Serve),
            Frontend::Sharded(e) => e.ingest(user, item, rating).map_err(BackendError::Serve),
            Frontend::Router(r) => r.ingest(user, item, rating),
        }
    }

    /// Keyed ingest: the sharded engine dedups through its WAL window
    /// (when a durable log is attached), the router fans the key out to
    /// every route. A single engine has no durable log — the key is
    /// accepted but not remembered, so exactly-once there relies on the
    /// upstream (router or replica set) dedup.
    fn ingest_keyed(
        &self,
        key: Option<&str>,
        user: UserId,
        item: ItemId,
        rating: f32,
    ) -> Result<ganc_serve::IngestAck, BackendError> {
        match self {
            Frontend::Single(e) => e
                .ingest(user, item, rating)
                .map(|()| ganc_serve::IngestAck::Applied)
                .map_err(BackendError::Serve),
            Frontend::Sharded(e) => e
                .ingest_keyed(key, user, item, rating)
                .map_err(BackendError::Serve),
            Frontend::Router(r) => r.ingest_keyed(key, user, item, rating),
        }
    }

    fn generation(&self) -> Result<u64, BackendError> {
        match self {
            Frontend::Single(e) => Ok(e.generation()),
            Frontend::Sharded(e) => Ok(e.generation()),
            Frontend::Router(r) => r.generation(),
        }
    }
}

/// Any in-process frontend can stand in as a peer: the loopback building
/// block the deterministic injection doubles in [`crate::testing`] wrap,
/// so fan-out and coalescing are provable without sockets.
impl crate::transport::PeerTransport for Frontend {
    fn label(&self) -> String {
        match self {
            Frontend::Single(_) => "in-process:single".to_string(),
            Frontend::Sharded(_) => "in-process:sharded".to_string(),
            Frontend::Router(_) => "in-process:router".to_string(),
        }
    }

    fn recommend_traced(&self, user: UserId) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
        Frontend::recommend_traced(self, user)
    }

    fn recommend_batch_traced(
        &self,
        users: &[UserId],
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
        Frontend::recommend_batch_traced(self, users)
    }

    fn ingest(&self, user: UserId, item: ItemId, rating: f32) -> Result<(), BackendError> {
        Frontend::ingest(self, user, item, rating)
    }

    fn ingest_keyed(
        &self,
        key: Option<&str>,
        user: UserId,
        item: ItemId,
        rating: f32,
    ) -> Result<ganc_serve::IngestAck, BackendError> {
        Frontend::ingest_keyed(self, key, user, item, rating)
    }

    fn generation(&self) -> Result<u64, BackendError> {
        Frontend::generation(self)
    }
}

/// Refit support for `POST /admin/refit`: the fitter and fit config one
/// pass runs with (the same pair a [`ganc_serve::RefitController`] is
/// spawned with).
#[derive(Clone)]
pub struct RefitHook {
    /// Refits the base model and θ from accumulated interactions.
    pub fitter: Arc<Refitter>,
    /// Bundle fit configuration for the refit.
    pub cfg: FitConfig,
    /// When set, the server spawns a background
    /// [`RefitController::spawn_adaptive`] with this cadence at bind time
    /// (sharded fronts only) — refits then happen on their own when enough
    /// interactions accumulate, instead of only on `POST /admin/refit`.
    /// The controller's liveness and refit count surface in `/v1/healthz`.
    pub cadence: Option<CadenceConfig>,
}

/// A running HTTP server; dropping it stops the acceptor and joins every
/// worker.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `frontend`. `refit` enables `POST /admin/refit` (sharded fronts
    /// only — the refit path needs the ingest log the sharded engine
    /// keeps).
    pub fn bind(
        frontend: Frontend,
        refit: Option<RefitHook>,
        cfg: ServerConfig,
        addr: &str,
    ) -> io::Result<HttpServer> {
        let hub = cfg.obs.clone().unwrap_or_else(ObsHub::new);
        match &frontend {
            Frontend::Single(e) => e.attach_obs(Arc::clone(&hub), None, cfg.stats_window),
            Frontend::Sharded(e) => e.attach_obs(Arc::clone(&hub), cfg.stats_window),
            Frontend::Router(r) => r.attach_obs(Arc::clone(&hub), cfg.stats_window),
        }
        let controller = match &refit {
            Some(hook) if hook.cadence.is_some() => {
                let Frontend::Sharded(engine) = &frontend else {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "adaptive refit cadence requires a sharded engine front",
                    ));
                };
                Some(RefitController::spawn_adaptive(
                    Arc::clone(engine),
                    Arc::clone(&hook.fitter),
                    hook.cfg,
                    hook.cadence.unwrap(),
                    Arc::clone(hub.clock()),
                ))
            }
            _ => None,
        };
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
        let rx = Arc::new(Mutex::new(rx));
        let http = HttpObs::new(&hub);
        // Replicated router bands get their background health-probe loops
        // here: probes restore ejected replicas and rotate primaries for
        // the server's whole lifetime (handles stop + join on App drop).
        let probes = match &frontend {
            Frontend::Router(r) => r.spawn_probes(),
            _ => Vec::new(),
        };
        let app = Arc::new(App {
            frontend,
            refit,
            cfg: cfg.clone(),
            hub,
            http,
            controller,
            _probes: probes,
        });

        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let app = Arc::clone(&app);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || loop {
                    let stream = match rx.lock().unwrap().recv() {
                        Ok(stream) => stream,
                        Err(_) => return, // acceptor gone, queue drained
                    };
                    // A handler panic must not take the worker down with it
                    // (the fuzz suite's "never crash" property); the
                    // connection is simply dropped.
                    let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        app.handle_connection(stream, &stop);
                    }));
                })
            })
            .collect();

        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                }
                // tx drops here; workers exit once the queue drains.
            })
        };

        Ok(HttpServer {
            addr,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake the acceptor, and join all threads.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection. A wildcard
        // bind address (0.0.0.0 / ::) is not connectable on every
        // platform, so aim the wake-up at the loopback of the same family
        // instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Request-stage timing handles, resolved once at bind.
struct HttpObs {
    parse_us: Arc<Histogram>,
    dispatch_us: Arc<Histogram>,
    write_us: Arc<Histogram>,
}

impl HttpObs {
    fn new(hub: &ObsHub) -> HttpObs {
        let stage = |name| {
            hub.metrics.histogram(
                "ganc_http_stage_us",
                "HTTP request stage latency (microseconds)",
                &[("stage", name)],
            )
        };
        HttpObs {
            parse_us: stage("parse"),
            dispatch_us: stage("dispatch"),
            write_us: stage("write"),
        }
    }
}

/// How a routed request answers: JSON for the API, plain text for the
/// Prometheus exposition endpoint.
enum Reply {
    Json(u16, Value),
    Text(u16, String),
}

struct App {
    frontend: Frontend,
    refit: Option<RefitHook>,
    cfg: ServerConfig,
    hub: Arc<ObsHub>,
    http: HttpObs,
    /// Background adaptive-refit controller, when `RefitHook::cadence` was
    /// set. Held for the server's lifetime; dropping the last `App` clone
    /// joins its worker.
    controller: Option<RefitController>,
    /// Background health-probe loops, one per replicated router band.
    /// Held for the server's lifetime; dropping the last `App` clone stops
    /// and joins them.
    _probes: Vec<crate::replica::ProbeHandle>,
}

impl App {
    fn handle_connection(&self, stream: TcpStream, stop: &AtomicBool) {
        let _ = stream.set_read_timeout(Some(self.cfg.read_timeout));
        let _ = stream.set_nodelay(true);
        let mut reader = BufReader::new(stream);
        let mut served = 0u32;
        loop {
            // Block for the next request's first bytes *before* starting
            // the parse timer: keep-alive idle is client think-time, and
            // folding it into the parse stage would swamp the histogram.
            if let WaitOutcome::Disconnected = http1::wait_for_data(&mut reader) {
                return;
            }
            let t_parse = self.hub.now_us();
            match http1::read_request(&mut reader, self.cfg.limits) {
                ReadOutcome::Disconnected => return,
                ReadOutcome::Fatal { status, message } => {
                    self.count_request("malformed", status);
                    let body = tinyjson::to_string(&obj! { "error" => message });
                    let _ = http1::write_response(reader.get_mut(), status, body.as_bytes(), false);
                    // Drain (bounded) what the peer already sent before
                    // closing: dropping a socket with unread bytes makes the
                    // OS send RST, which can discard the error response
                    // before the client reads it — a 413'd client deserves
                    // to see its 413. Bounded in bytes here and per read by
                    // the socket timeout (a trickling peer can stretch it —
                    // see the `read_timeout` trust-model note).
                    let _ = std::io::copy(
                        &mut std::io::Read::take(&mut reader, 1024 * 1024),
                        &mut std::io::sink(),
                    );
                    return;
                }
                ReadOutcome::Request(req) => {
                    let t_dispatch = self.hub.now_us();
                    served += 1;
                    let (reply, endpoint) = self.route(&req);
                    let (status, content_type, body) = match reply {
                        Reply::Json(status, value) => {
                            (status, "application/json", tinyjson::to_string(&value))
                        }
                        Reply::Text(status, text) => (status, "text/plain; version=0.0.4", text),
                    };
                    let t_write = self.hub.now_us();
                    let keep_alive = req.keep_alive
                        && served < self.cfg.keep_alive_requests
                        && !stop.load(Ordering::Relaxed);
                    let wrote = http1::write_response_with_type(
                        reader.get_mut(),
                        status,
                        content_type,
                        body.as_bytes(),
                        keep_alive,
                    )
                    .is_ok();
                    let t_done = self.hub.now_us();
                    let (parse_us, dispatch_us, write_us) = (
                        t_dispatch.saturating_sub(t_parse),
                        t_write.saturating_sub(t_dispatch),
                        t_done.saturating_sub(t_write),
                    );
                    self.http.parse_us.observe_us(parse_us);
                    self.http.dispatch_us.observe_us(dispatch_us);
                    self.http.write_us.observe_us(write_us);
                    self.count_request(endpoint, status);
                    self.hub.trace.record(
                        t_done,
                        TraceData::Http {
                            request_id: self.hub.next_request_id(),
                            endpoint,
                            status,
                            parse_us,
                            dispatch_us,
                            write_us,
                        },
                    );
                    if !wrote || !keep_alive {
                        return;
                    }
                }
            }
        }
    }

    /// Bump `ganc_http_requests_total{endpoint,status}`. Get-or-create on
    /// every call: the label space is tiny (endpoints × a handful of
    /// statuses), and the registry lookup is one shared-lock map probe.
    fn count_request(&self, endpoint: &'static str, status: u16) {
        let status = status.to_string();
        self.hub
            .metrics
            .counter(
                "ganc_http_requests_total",
                "HTTP requests answered, by endpoint and status",
                &[("endpoint", endpoint), ("status", &status)],
            )
            .inc();
    }

    /// Dispatch one well-framed request, returning the reply plus the
    /// endpoint label stage metrics and the request counter attribute to.
    /// Everything answers JSON (status contract 200 / 400 / 404 / 413, +
    /// 502 for router upstream failures) except `/v1/metrics`, which
    /// answers Prometheus text exposition.
    fn route(&self, req: &Request) -> (Reply, &'static str) {
        let (reply, endpoint) = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/v1/healthz") => (self.healthz(), "healthz"),
            ("GET", "/v1/stats") => (self.stats(), "stats"),
            ("GET", "/v1/metrics") => {
                return (
                    Reply::Text(StatusCode::OK, self.hub.metrics.render()),
                    "metrics",
                )
            }
            ("GET", "/v1/trace") => (self.trace(), "trace"),
            ("POST", "/v1/recommend:batch") => (self.recommend_batch(&req.body), "recommend_batch"),
            ("POST", "/v1/ingest") => (self.ingest(req), "ingest"),
            ("POST", "/v1/ingest:batch") => (self.ingest_batch(&req.body), "ingest_batch"),
            ("POST", "/admin/refit") => (self.admin_refit(), "admin_refit"),
            ("GET", path) if path.starts_with("/v1/recommend/") => (
                self.recommend(&path["/v1/recommend/".len()..], req.query.as_deref()),
                "recommend",
            ),
            _ => (error(StatusCode::NOT_FOUND, "not found"), "other"),
        };
        let (status, value) = reply;
        (Reply::Json(status, value), endpoint)
    }

    fn healthz(&self) -> (u16, Value) {
        match self.frontend.generation() {
            Ok(g) => {
                let mut body = obj! { "ok" => true, "generation" => g };
                if let Frontend::Sharded(e) = &self.frontend {
                    body.insert("pending_ingests", Value::from(e.pending_ingests()));
                    // WAL footprint, when a durable log is attached: how
                    // many acknowledged-but-uncompacted records a crash
                    // would replay, and their on-disk size.
                    if let Some(w) = e.wal_stats() {
                        body.insert("wal", obj! { "records" => w.records, "bytes" => w.bytes });
                    }
                }
                if let Frontend::Router(r) = &self.frontend {
                    // Degraded = still answering, but some band is below
                    // full replication (a replica was ejected); read from
                    // tracked breaker state, no wire calls.
                    let degraded = r.degraded_bands();
                    body.insert("degraded", Value::from(!degraded.is_empty()));
                    body.insert(
                        "degraded_bands",
                        Value::Array(degraded.into_iter().map(Value::from).collect()),
                    );
                }
                if let Some(controller) = &self.controller {
                    body.insert(
                        "refit",
                        obj! {
                            "alive" => controller.alive(),
                            "refits" => controller.refits(),
                        },
                    );
                }
                (StatusCode::OK, body)
            }
            Err(e) => backend_error(e),
        }
    }

    /// Drain the trace ring into JSON. Draining is deliberate — each event
    /// is delivered exactly once, so a poller sees a stream, not a window.
    fn trace(&self) -> (u16, Value) {
        let dropped = self.hub.trace.dropped();
        let events: Vec<Value> = self
            .hub
            .trace
            .drain()
            .into_iter()
            .map(trace_event_value)
            .collect();
        (
            StatusCode::OK,
            obj! { "events" => Value::Array(events), "dropped" => dropped },
        )
    }

    fn recommend(&self, user_part: &str, query: Option<&str>) -> (u16, Value) {
        let Ok(user) = user_part.parse::<u32>() else {
            return error(StatusCode::BAD_REQUEST, "user id must be an integer");
        };
        let mut take: Option<usize> = None;
        for pair in query.unwrap_or("").split('&').filter(|p| !p.is_empty()) {
            match pair.split_once('=') {
                Some(("n", v)) => match v.parse::<usize>() {
                    Ok(n) => take = Some(n),
                    Err(_) => return error(StatusCode::BAD_REQUEST, "n must be an integer"),
                },
                _ => return error(StatusCode::BAD_REQUEST, "unknown query parameter"),
            }
        }
        match self.frontend.recommend_traced(UserId(user)) {
            Ok((list, generation)) => {
                let shown = take.unwrap_or(list.len()).min(list.len());
                let items = Value::Array(list[..shown].iter().map(|i| Value::from(i.0)).collect());
                (
                    StatusCode::OK,
                    obj! { "user" => user, "generation" => generation, "items" => items },
                )
            }
            Err(e) => backend_error(e),
        }
    }

    fn recommend_batch(&self, body: &[u8]) -> (u16, Value) {
        let users = match parse_body(body).and_then(|v| {
            v["users"]
                .as_array()
                .ok_or("body must be {\"users\":[...]}")?
                .iter()
                .map(|u| {
                    u.as_u64()
                        .filter(|&u| u <= u32::MAX as u64)
                        .map(|u| UserId(u as u32))
                        .ok_or("user ids must be u32 integers")
                })
                .collect::<Result<Vec<_>, _>>()
        }) {
            Ok(users) => users,
            Err(msg) => return error(StatusCode::BAD_REQUEST, msg),
        };
        match self.frontend.recommend_batch_traced(&users) {
            Ok((answers, generation)) => {
                let results: Vec<Value> = users
                    .iter()
                    .zip(answers)
                    .map(|(u, answer)| match answer {
                        Ok(list) => {
                            let items =
                                Value::Array(list.iter().map(|i| Value::from(i.0)).collect());
                            obj! { "user" => u.0, "items" => items }
                        }
                        Err(e) => serve_error_value(&e),
                    })
                    .collect();
                (
                    StatusCode::OK,
                    obj! { "generation" => generation, "results" => Value::Array(results) },
                )
            }
            Err(e) => backend_error(e),
        }
    }

    fn ingest(&self, req: &Request) -> (u16, Value) {
        let parsed = parse_body(&req.body).and_then(|v| {
            let (user, item, rating) = parse_ingest_fields(&v)?;
            // The idempotency key rides in the `Idempotency-Key` header
            // or a body `"key"` field; the header wins when both are set.
            let key = match &req.idempotency_key {
                Some(k) => Some(k.clone()),
                None => match &v["key"] {
                    Value::Null => None,
                    Value::String(s) if !s.is_empty() => Some(s.clone()),
                    _ => return Err("key must be a non-empty string"),
                },
            };
            // Reject malformed keys at ingress (400): a key the WAL
            // decoder would refuse on replay, or one carrying CR/LF /
            // control bytes that could smuggle headers into the router's
            // fan-out requests, must never be acknowledged.
            if let Some(k) = &key {
                ganc_serve::validate_key(k)?;
            }
            Ok((user, item, rating, key))
        });
        let (user, item, rating, key) = match parsed {
            Ok(t) => t,
            Err(msg) => return error(StatusCode::BAD_REQUEST, msg),
        };
        match key {
            // Unkeyed requests keep the historical byte-exact `{"ok":true}`
            // body — the byte-determinism suites pin it.
            None => match self.frontend.ingest(user, item, rating) {
                Ok(()) => (StatusCode::OK, obj! { "ok" => true }),
                Err(e) => backend_error(e),
            },
            Some(key) => match self.frontend.ingest_keyed(Some(&key), user, item, rating) {
                Ok(ack) => (
                    StatusCode::OK,
                    obj! {
                        "ok" => true,
                        "deduplicated" => matches!(ack, ganc_serve::IngestAck::Deduplicated),
                    },
                ),
                Err(e) => backend_error(e),
            },
        }
    }

    /// `POST /v1/ingest:batch` — the coalesced ingest wire call: many
    /// entries, one round-trip, per-entry results so one unknown id never
    /// fails its companions. Serve-level rejections land in their slot;
    /// a transport/band failure (router fronts) fails the whole batch,
    /// mirroring [`crate::PeerTransport::ingest_batch`].
    fn ingest_batch(&self, body: &[u8]) -> (u16, Value) {
        let entries = match parse_body(body).and_then(|v| {
            v["entries"]
                .as_array()
                .ok_or("body must be {\"entries\":[...]}")?
                .iter()
                .map(|entry| {
                    let (user, item, rating) = parse_ingest_fields(entry)?;
                    let key = match &entry["key"] {
                        Value::Null => None,
                        Value::String(s) if !s.is_empty() => Some(s.clone()),
                        _ => return Err("key must be a non-empty string"),
                    };
                    // Same ingress validation as the single-ingest path.
                    if let Some(k) = &key {
                        ganc_serve::validate_key(k)?;
                    }
                    Ok((user, item, rating, key))
                })
                .collect::<Result<Vec<_>, _>>()
        }) {
            Ok(entries) => entries,
            Err(msg) => return error(StatusCode::BAD_REQUEST, msg),
        };
        let mut results = Vec::with_capacity(entries.len());
        for (user, item, rating, key) in &entries {
            match self
                .frontend
                .ingest_keyed(key.as_deref(), *user, *item, *rating)
            {
                Ok(ganc_serve::IngestAck::Applied) => results.push(obj! { "ok" => true }),
                Ok(ganc_serve::IngestAck::Deduplicated) => {
                    results.push(obj! { "ok" => true, "status" => "deduplicated" })
                }
                Err(BackendError::Serve(e)) => results.push(serve_error_value(&e)),
                Err(e) => return backend_error(e),
            }
        }
        (StatusCode::OK, obj! { "results" => Value::Array(results) })
    }

    fn admin_refit(&self) -> (u16, Value) {
        let Some(hook) = &self.refit else {
            return error(StatusCode::BAD_REQUEST, "refit not configured");
        };
        let Frontend::Sharded(engine) = &self.frontend else {
            return error(
                StatusCode::BAD_REQUEST,
                "refit requires a sharded engine front",
            );
        };
        match engine.refit_once(hook.fitter.as_ref(), &hook.cfg) {
            RefitOutcome::Swapped { generation, .. } => (
                StatusCode::OK,
                obj! { "outcome" => "swapped", "generation" => generation },
            ),
            RefitOutcome::Raced => (
                StatusCode::OK,
                obj! { "outcome" => "raced", "generation" => engine.generation() },
            ),
        }
    }

    fn stats(&self) -> (u16, Value) {
        let engine_stats = |stats: ganc_serve::EngineStats| {
            let total = stats.cache_hits + stats.cache_misses;
            let hit_rate = if total == 0 {
                0.0
            } else {
                stats.cache_hits as f64 / total as f64
            };
            obj! {
                "hits" => stats.cache_hits,
                "misses" => stats.cache_misses,
                "hit_rate" => hit_rate,
                "cached" => stats.cached,
            }
        };
        let window_obj = |aggregate: WindowStats, bands: Vec<Value>| {
            obj! {
                "seconds" => self.cfg.stats_window.as_secs_f64(),
                "aggregate" => window_value(aggregate),
                "bands" => Value::Array(bands),
            }
        };
        match &self.frontend {
            Frontend::Single(e) => {
                let s = e.stats();
                let window = e
                    .window_stats()
                    .map(|w| window_obj(w, Vec::new()))
                    .unwrap_or(Value::Null);
                (
                    StatusCode::OK,
                    obj! {
                        "backend" => "single",
                        "generation" => e.generation(),
                        "n" => e.n(),
                        "cache" => engine_stats(s),
                        "ingested" => s.ingested,
                        "shards" => Value::Array(Vec::new()),
                        "window" => window,
                    },
                )
            }
            Frontend::Sharded(e) => {
                let s = e.stats();
                let shards: Vec<Value> = e
                    .shard_info()
                    .into_iter()
                    .map(|i| {
                        obj! {
                            // ±∞ band edges encode as null (JSON has no Inf).
                            "theta_lo" => i.theta_lo,
                            "theta_hi" => i.theta_hi,
                            "users" => i.users,
                            "snapshots" => i.snapshots,
                            "coverage_bytes" => i.coverage_bytes,
                        }
                    })
                    .collect();
                let window = e
                    .window_stats()
                    .map(|(bands, aggregate)| {
                        window_obj(aggregate, bands.into_iter().map(window_value).collect())
                    })
                    .unwrap_or(Value::Null);
                (
                    StatusCode::OK,
                    obj! {
                        "backend" => "sharded",
                        "generation" => e.generation(),
                        "n" => e.n(),
                        "cache" => engine_stats(s),
                        "ingested" => s.ingested,
                        "shards" => Value::Array(shards),
                        "window" => window,
                    },
                )
            }
            Frontend::Router(r) => {
                // Per-band deployment view: band index, route kind
                // (local / remote / coalesced), peer address, the band's
                // *own* generation (null when the peer is unreachable —
                // exactly the band an operator should look at), and the
                // coalescer queue depth where one exists.
                let shards: Vec<Value> = r
                    .routes()
                    .iter()
                    .enumerate()
                    .map(|(band, route)| {
                        let addr = route.addr().map(Value::from).unwrap_or(Value::Null);
                        let generation = route.generation().map(Value::from).unwrap_or(Value::Null);
                        let pending = route.pending().map(Value::from).unwrap_or(Value::Null);
                        // Replica view is uniform across route kinds: a
                        // single-backend band reports as a degenerate
                        // group of one healthy replica with pinned-zero
                        // availability counters.
                        let rs = route.replica_view();
                        obj! {
                            "band" => band,
                            "kind" => route.kind(),
                            "addr" => addr,
                            "generation" => generation,
                            "pending" => pending,
                            "replicas" => obj! {
                                "count" => rs.replicas,
                                "healthy" => rs.healthy,
                                "primary" => rs.primary,
                                "hedges" => rs.hedges,
                                "failovers" => rs.failovers,
                                "ejections" => rs.ejections,
                                "restores" => rs.restores,
                            },
                        }
                    })
                    .collect();
                match r.generation() {
                    Ok(g) => (
                        StatusCode::OK,
                        obj! {
                            "backend" => "router",
                            "generation" => g,
                            "shards" => Value::Array(shards),
                        },
                    ),
                    Err(e) => backend_error(e),
                }
            }
        }
    }
}

/// Rolling-window stats as a JSON object (shared by every backend arm).
fn window_value(w: WindowStats) -> Value {
    obj! {
        "lists" => w.lists,
        "items" => w.items,
        "coverage" => w.coverage,
        "mean_novelty_bits" => w.mean_novelty_bits,
        "long_tail_share" => w.long_tail_share,
    }
}

/// One trace event as JSON: `{seq, at_us, kind, data: {...}}`.
fn trace_event_value(e: TraceEvent) -> Value {
    let opt_u32 = |v: Option<u32>| v.map(Value::from).unwrap_or(Value::Null);
    let kind = e.data.kind();
    let data = match e.data {
        TraceData::Request {
            request_id,
            user,
            generation,
            band,
            cache_hit,
            elapsed_us,
        } => obj! {
            "request_id" => request_id,
            "user" => user,
            "generation" => generation,
            "band" => opt_u32(band),
            "cache_hit" => cache_hit,
            "elapsed_us" => elapsed_us,
        },
        TraceData::Batch {
            users,
            generation,
            band,
            elapsed_us,
        } => obj! {
            "users" => users,
            "generation" => generation,
            "band" => opt_u32(band),
            "elapsed_us" => elapsed_us,
        },
        TraceData::Ingest { user, item, band } => obj! {
            "user" => user,
            "item" => item,
            "band" => opt_u32(band),
        },
        TraceData::BundleSwap { band, generation } => obj! {
            "band" => opt_u32(band),
            "generation" => generation,
        },
        TraceData::RefitStarted {
            generation,
            pending,
        } => obj! {
            "generation" => generation,
            "pending" => pending,
        },
        TraceData::RefitSwapped { generation } => obj! { "generation" => generation },
        TraceData::RefitRaced { generation } => obj! { "generation" => generation },
        TraceData::BandHedge {
            band,
            primary,
            hedge,
        } => obj! {
            "band" => band,
            "primary" => primary,
            "hedge" => hedge,
        },
        TraceData::BandFailover { band, from, to } => obj! {
            "band" => band,
            "from" => from,
            "to" => to,
        },
        TraceData::ReplicaEjected {
            band,
            replica,
            failures,
        } => obj! {
            "band" => band,
            "replica" => replica,
            "failures" => failures,
        },
        TraceData::ReplicaRestored { band, replica } => obj! {
            "band" => band,
            "replica" => replica,
        },
        TraceData::WalReplay {
            records,
            bytes,
            corrupted,
        } => obj! {
            "records" => records,
            "bytes" => bytes,
            "corrupted" => corrupted,
        },
        TraceData::WalTruncate {
            retained,
            generation,
        } => obj! {
            "retained" => retained,
            "generation" => generation,
        },
        TraceData::Http {
            request_id,
            endpoint,
            status,
            parse_us,
            dispatch_us,
            write_us,
        } => obj! {
            "request_id" => request_id,
            "endpoint" => endpoint,
            "status" => u32::from(status),
            "parse_us" => parse_us,
            "dispatch_us" => dispatch_us,
            "write_us" => write_us,
        },
    };
    obj! {
        "seq" => e.seq,
        "at_us" => e.at_us,
        "kind" => kind,
        "data" => data,
    }
}

/// The `{user,item,rating}` triple shared by `/v1/ingest` and each
/// `/v1/ingest:batch` entry.
fn parse_ingest_fields(v: &Value) -> Result<(UserId, ItemId, f32), &'static str> {
    let user = v["user"]
        .as_u64()
        .filter(|&u| u <= u32::MAX as u64)
        .ok_or("user must be a u32 integer")?;
    let item = v["item"]
        .as_u64()
        .filter(|&i| i <= u32::MAX as u64)
        .ok_or("item must be a u32 integer")?;
    let rating = v["rating"].as_f64().ok_or("rating must be a number")?;
    Ok((UserId(user as u32), ItemId(item as u32), rating as f32))
}

fn parse_body(body: &[u8]) -> Result<Value, &'static str> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8")?;
    tinyjson::from_str(text).map_err(|_| "body is not valid JSON")
}

fn error(status: u16, message: &str) -> (u16, Value) {
    (status, obj! { "error" => message })
}

/// Error body for an unknown id, with the machine-readable field a remote
/// client maps back to [`ServeError`].
fn serve_error_value(e: &ServeError) -> Value {
    match e {
        ServeError::UnknownUser(u) => obj! {
            "error" => format!("unknown user {}", u.0),
            "unknown_user" => u.0,
        },
        ServeError::UnknownItem(i) => obj! {
            "error" => format!("unknown item {}", i.0),
            "unknown_item" => i.0,
        },
        ServeError::Durability => obj! {
            "error" => "write-ahead log append failed",
            "durability" => true,
        },
    }
}

fn backend_error(e: BackendError) -> (u16, Value) {
    match e {
        // A durability failure is a node fault (retry-safe), not a bad id.
        BackendError::Serve(ServeError::Durability) => (
            StatusCode::BAD_GATEWAY,
            serve_error_value(&ServeError::Durability),
        ),
        BackendError::Serve(e) => (StatusCode::NOT_FOUND, serve_error_value(&e)),
        BackendError::Transport(msg) => (StatusCode::BAD_GATEWAY, obj! { "error" => msg }),
        // A failed θ-band names itself: "band" is machine-readable so an
        // operator (or a retrying client) knows which shard of the
        // deployment is unhealthy instead of reading it out of prose.
        BackendError::Band { band, message } => (
            StatusCode::BAD_GATEWAY,
            obj! {
                "error" => format!("band {band}: {message}"),
                "band" => band,
            },
        ),
    }
}
