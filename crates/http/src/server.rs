//! The HTTP server: an event-driven front-end over `std::net::TcpListener`
//! fronting a serving backend.
//!
//! ## Endpoints
//!
//! | method | path | body | answers |
//! |--------|------|------|---------|
//! | GET  | `/v1/recommend/{user}?n=K` | — | `{"user":u,"generation":g,"items":[...]}` (top-K prefix of the bundle's top-N) |
//! | POST | `/v1/recommend:batch` | `{"users":[...]}` | `{"generation":g,"results":[...]}` — one generation for the whole batch |
//! | POST | `/v1/ingest` | `{"user":u,"item":i,"rating":r,"key"?}` | `{"ok":true}` (keyed: + `"deduplicated"`) |
//! | POST | `/v1/ingest:batch` | `{"entries":[{"user","item","rating","key"?},...]}` | `{"results":[...]}` per entry |
//! | GET  | `/v1/healthz` | — | `{"ok":true,"generation":g}` |
//! | GET  | `/v1/stats` | — | generation, cache hit rate, shard map |
//! | GET  | `/v1/window` | — | `{"window":{...}}` transportable rolling-window summary |
//! | POST | `/admin/refit` | — | runs one refit pass and hot-swaps |
//!
//! Batches route through the backend's `recommend_batch_traced`, so a batch
//! is always served from exactly one bundle generation even while
//! `/admin/refit` swaps underneath it. Error responses are always JSON with
//! an `"error"` key; unknown ids additionally carry `unknown_user` /
//! `unknown_item` so a [`crate::RemoteShard`] can reconstruct the typed
//! error without parsing prose.
//!
//! ## Architecture: one event loop, a compute-only worker pool
//!
//! A single event-loop thread owns the listener and every connection
//! through a readiness poller ([`polling::Poller`], oneshot delivery). It
//! accepts, reads non-blockingly into per-connection buffers, and frames
//! requests *incrementally*: a cheap gate (head terminator found +
//! `Content-Length` bytes buffered) decides when a request is complete,
//! and only then is the unchanged [`http1::read_request`] parser run over
//! the buffered bytes — framing behaviour and response bytes are identical
//! to the previous blocking implementation, which `tests/http_equivalence.rs`
//! and `tests/http_protocol.rs` pin unmodified.
//!
//! Complete requests are dispatched to a small worker pool that only
//! *computes*: route, serialize, and write the response straight to the
//! socket (safe: oneshot delivery disarmed the fd when its readable event
//! fired, so the loop won't touch it until the worker posts a completion).
//! A worker never blocks on a slow peer — an `EWOULDBLOCK` hands the
//! unwritten tail back to the event loop, which finishes the flush on
//! write readiness. The result is that concurrent connections are bounded
//! by file descriptors, not by `workers`: 10k idle keep-alive connections
//! cost one `HashMap` entry each, while `workers` sizes only the compute
//! concurrency.
//!
//! ## Connection state machine
//!
//! Each connection is `Reading` (buffering a request), `Dispatched` (a
//! worker owns it), `Writing` (the loop is flushing a response tail), or
//! `Draining` (a fatal error was answered; discarding already-sent input
//! so the close doesn't RST the error response away). Framing violations
//! (torn heads, bad `Content-Length`, oversized bodies) answer once and
//! close — the stream cannot be re-synchronized. Well-framed but invalid
//! requests (bad JSON, unknown route, unknown ids) answer 400/404 and keep
//! the connection, so a client burst survives its own mistakes.
//! `tests/http_protocol.rs` fuzzes exactly this contract.
//!
//! ## Timeouts
//!
//! All deadlines read the observability hub's clock, so tests drive them
//! with a `ManualClock` and zero sleeps. `read_timeout` is the *progress*
//! timeout: a connection that neither delivers nor accepts a byte for this
//! long is evicted (idle keep-alive reclaim). `request_deadline` caps a
//! single request's total head+body read time, so a slow-loris peer
//! trickling one byte per progress window is still evicted. Evictions
//! close silently (no response), bump `ganc_http_conn_evicted_total` and
//! leave a `conn_evict` trace event with the reason.

use crate::http1::{self, Limits, ReadOutcome, Request, StatusCode};
use crate::router::RouterNode;
use crate::BackendError;
use ganc_dataset::{ItemId, UserId};
use ganc_obs::{Counter, Gauge, Histogram, ObsHub, TraceData, TraceEvent, WindowStats, WindowWire};
use ganc_serve::refit::{RefitController, RefitOutcome, Refitter};
use ganc_serve::{
    CadenceConfig, FitConfig, RequestOptions, RerankMode, ServeError, ServingEngine, ShardedEngine,
};
use polling::{Event, Poller};
use std::collections::HashMap;
use std::io::{self, Cursor, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tinyjson::{obj, Value};

/// Server tuning knobs.
#[derive(Clone)]
pub struct ServerConfig {
    /// Compute worker threads (handler dispatch + response serialization).
    /// This bounds concurrent *request processing*, not concurrent
    /// connections — idle keep-alive connections are owned by the event
    /// loop and cost no worker.
    pub workers: usize,
    /// Framing limits (oversized heads → 400, oversized bodies → 413).
    pub limits: Limits,
    /// Requests served per connection before the server closes it.
    pub keep_alive_requests: u32,
    /// Progress timeout: a connection that neither delivers nor accepts a
    /// byte for this long is evicted. For an idle keep-alive connection
    /// this is the reclaim timer; mid-request it bounds each stall.
    /// Deadlines read the observability hub's clock (`ManualClock`-driven
    /// in tests).
    pub read_timeout: Duration,
    /// Slow-loris cap: total time one request may spend being read (head +
    /// body, from its first byte to its last). A peer trickling a byte per
    /// `read_timeout` window dodges the progress timeout; it cannot dodge
    /// this one.
    pub request_deadline: Duration,
    /// Concurrent-connection ceiling. Accepts beyond it are closed
    /// immediately (counted + traced as `capacity` evictions) instead of
    /// queueing unboundedly toward fd exhaustion.
    pub max_connections: usize,
    /// Observability hub every request records into (metrics, trace ring,
    /// request-stage timing). `None` creates a fresh wall-clock hub at
    /// bind time; tests inject a `ManualClock` hub here to make timing and
    /// window expiry deterministic.
    pub obs: Option<Arc<ObsHub>>,
    /// Width of the rolling beyond-accuracy window `/v1/stats` and the
    /// `ganc_window_*` gauges report over.
    pub stats_window: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            // Compute-only pool: track cores, not expected connections —
            // connection concurrency is the event loop's job now.
            workers: std::thread::available_parallelism().map_or(4, |p| p.get().clamp(2, 16)),
            limits: Limits::default(),
            keep_alive_requests: 100_000,
            read_timeout: Duration::from_secs(5),
            request_deadline: Duration::from_secs(30),
            max_connections: 16_384,
            obs: None,
            stats_window: Duration::from_secs(300),
        }
    }
}

/// The engine a server fronts: single-node, in-process sharded, or a
/// multi-node router.
#[derive(Clone)]
pub enum Frontend {
    /// One [`ServingEngine`] over one bundle (or one θ-band slice — this is
    /// what a shard node runs).
    Single(Arc<ServingEngine>),
    /// An in-process [`ShardedEngine`] (router + all bands in one process).
    Sharded(Arc<ShardedEngine>),
    /// A [`RouterNode`] dispatching bands to local slices and remote peers.
    Router(Arc<RouterNode>),
}

impl Frontend {
    fn recommend_traced(&self, user: UserId) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
        match self {
            Frontend::Single(e) => e.recommend_traced(user).map_err(BackendError::Serve),
            Frontend::Sharded(e) => e.recommend_traced(user).map_err(BackendError::Serve),
            Frontend::Router(r) => r.recommend_traced(user),
        }
    }

    #[allow(clippy::type_complexity)]
    fn recommend_batch_traced(
        &self,
        users: &[UserId],
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
        match self {
            Frontend::Single(e) => Ok(e.recommend_batch_traced(users)),
            Frontend::Sharded(e) => Ok(e.recommend_batch_traced(users)),
            Frontend::Router(r) => r.recommend_batch_traced(users),
        }
    }

    /// Override-carrying dispatch ([`RequestOptions`]). Default options
    /// delegate to the unmodified default path, so default traffic keeps
    /// its exact code path (cache included).
    fn recommend_with_traced(
        &self,
        user: UserId,
        opts: &RequestOptions,
    ) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
        if opts.is_default() {
            return self.recommend_traced(user);
        }
        match self {
            Frontend::Single(e) => e
                .recommend_with_traced(user, opts)
                .map_err(BackendError::Serve),
            Frontend::Sharded(e) => e
                .recommend_with_traced(user, opts)
                .map_err(BackendError::Serve),
            Frontend::Router(r) => r.recommend_with_traced(user, opts),
        }
    }

    #[allow(clippy::type_complexity)]
    fn recommend_batch_with_traced(
        &self,
        users: &[UserId],
        opts: &RequestOptions,
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
        if opts.is_default() {
            return self.recommend_batch_traced(users);
        }
        match self {
            Frontend::Single(e) => Ok(e.recommend_batch_with_traced(users, opts)),
            Frontend::Sharded(e) => Ok(e.recommend_batch_with_traced(users, opts)),
            Frontend::Router(r) => r.recommend_batch_with_traced(users, opts),
        }
    }

    fn ingest(&self, user: UserId, item: ItemId, rating: f32) -> Result<(), BackendError> {
        match self {
            Frontend::Single(e) => e.ingest(user, item, rating).map_err(BackendError::Serve),
            Frontend::Sharded(e) => e.ingest(user, item, rating).map_err(BackendError::Serve),
            Frontend::Router(r) => r.ingest(user, item, rating),
        }
    }

    /// Keyed ingest: the sharded engine dedups through its WAL window
    /// (when a durable log is attached), the router fans the key out to
    /// every route. A single engine has no durable log — the key is
    /// accepted but not remembered, so exactly-once there relies on the
    /// upstream (router or replica set) dedup.
    fn ingest_keyed(
        &self,
        key: Option<&str>,
        user: UserId,
        item: ItemId,
        rating: f32,
    ) -> Result<ganc_serve::IngestAck, BackendError> {
        match self {
            Frontend::Single(e) => e
                .ingest(user, item, rating)
                .map(|()| ganc_serve::IngestAck::Applied)
                .map_err(BackendError::Serve),
            Frontend::Sharded(e) => e
                .ingest_keyed(key, user, item, rating)
                .map_err(BackendError::Serve),
            Frontend::Router(r) => r.ingest_keyed(key, user, item, rating),
        }
    }

    fn generation(&self) -> Result<u64, BackendError> {
        match self {
            Frontend::Single(e) => Ok(e.generation()),
            Frontend::Sharded(e) => Ok(e.generation()),
            Frontend::Router(r) => r.generation(),
        }
    }

    /// The backend's transportable rolling-window summary, when
    /// observability is attached: a single engine exports its own window,
    /// a sharded engine the exact cross-band fold. Routers answer `None` —
    /// they aggregate *remote* windows for their own stats and re-exporting
    /// that union upstream would double-count it.
    fn window_wire(&self) -> Option<WindowWire> {
        match self {
            Frontend::Single(e) => e.window_wire(),
            Frontend::Sharded(e) => e.window_wire(),
            Frontend::Router(_) => None,
        }
    }
}

/// Any in-process frontend can stand in as a peer: the loopback building
/// block the deterministic injection doubles in [`crate::testing`] wrap,
/// so fan-out and coalescing are provable without sockets.
impl crate::transport::PeerTransport for Frontend {
    fn label(&self) -> String {
        match self {
            Frontend::Single(_) => "in-process:single".to_string(),
            Frontend::Sharded(_) => "in-process:sharded".to_string(),
            Frontend::Router(_) => "in-process:router".to_string(),
        }
    }

    fn recommend_traced(&self, user: UserId) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
        Frontend::recommend_traced(self, user)
    }

    fn recommend_batch_traced(
        &self,
        users: &[UserId],
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
        Frontend::recommend_batch_traced(self, users)
    }

    fn recommend_with_traced(
        &self,
        user: UserId,
        opts: &RequestOptions,
    ) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
        Frontend::recommend_with_traced(self, user, opts)
    }

    fn recommend_batch_with_traced(
        &self,
        users: &[UserId],
        opts: &RequestOptions,
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
        Frontend::recommend_batch_with_traced(self, users, opts)
    }

    fn ingest(&self, user: UserId, item: ItemId, rating: f32) -> Result<(), BackendError> {
        Frontend::ingest(self, user, item, rating)
    }

    fn ingest_keyed(
        &self,
        key: Option<&str>,
        user: UserId,
        item: ItemId,
        rating: f32,
    ) -> Result<ganc_serve::IngestAck, BackendError> {
        Frontend::ingest_keyed(self, key, user, item, rating)
    }

    fn generation(&self) -> Result<u64, BackendError> {
        Frontend::generation(self)
    }

    fn window_wire(&self) -> Result<Option<WindowWire>, BackendError> {
        Ok(Frontend::window_wire(self))
    }
}

/// Refit support for `POST /admin/refit`: the fitter and fit config one
/// pass runs with (the same pair a [`ganc_serve::RefitController`] is
/// spawned with).
#[derive(Clone)]
pub struct RefitHook {
    /// Refits the base model and θ from accumulated interactions.
    pub fitter: Arc<Refitter>,
    /// Bundle fit configuration for the refit.
    pub cfg: FitConfig,
    /// When set, the server spawns a background
    /// [`RefitController::spawn_adaptive`] with this cadence at bind time
    /// (sharded fronts only) — refits then happen on their own when enough
    /// interactions accumulate, instead of only on `POST /admin/refit`.
    /// The controller's liveness and refit count surface in `/v1/healthz`.
    pub cadence: Option<CadenceConfig>,
}

/// A running HTTP server; dropping it drains in-flight requests, stops the
/// event loop, and joins every worker.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    poller: Arc<Poller>,
    event_loop: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `frontend`. `refit` enables `POST /admin/refit` (sharded fronts
    /// only — the refit path needs the ingest log the sharded engine
    /// keeps).
    pub fn bind(
        frontend: Frontend,
        refit: Option<RefitHook>,
        cfg: ServerConfig,
        addr: &str,
    ) -> io::Result<HttpServer> {
        let hub = cfg.obs.clone().unwrap_or_else(ObsHub::new);
        match &frontend {
            Frontend::Single(e) => e.attach_obs(Arc::clone(&hub), None, cfg.stats_window),
            Frontend::Sharded(e) => e.attach_obs(Arc::clone(&hub), cfg.stats_window),
            Frontend::Router(r) => r.attach_obs(Arc::clone(&hub), cfg.stats_window),
        }
        let controller = match &refit {
            Some(hook) if hook.cadence.is_some() => {
                let Frontend::Sharded(engine) = &frontend else {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "adaptive refit cadence requires a sharded engine front",
                    ));
                };
                Some(RefitController::spawn_adaptive(
                    Arc::clone(engine),
                    Arc::clone(&hook.fitter),
                    hook.cfg,
                    hook.cadence.unwrap(),
                    Arc::clone(hub.clock()),
                ))
            }
            _ => None,
        };
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let poller = Arc::new(Poller::new()?);
        poller.add(&listener, Event::readable(LISTENER_KEY))?;
        let (tx, rx): (Sender<Job>, Receiver<Job>) = channel();
        let rx = Arc::new(Mutex::new(rx));
        let completions = Arc::new(Mutex::new(Vec::new()));
        let http = HttpObs::new(&hub);
        // Replicated router bands get their background health-probe loops
        // here: probes restore ejected replicas and rotate primaries for
        // the server's whole lifetime (handles stop + join on App drop).
        let probes = match &frontend {
            Frontend::Router(r) => r.spawn_probes(),
            _ => Vec::new(),
        };
        let app = Arc::new(App {
            frontend,
            refit,
            cfg: cfg.clone(),
            hub,
            http,
            controller,
            _probes: probes,
        });

        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let app = Arc::clone(&app);
                let stop = Arc::clone(&stop);
                let completions = Arc::clone(&completions);
                let poller = Arc::clone(&poller);
                std::thread::spawn(move || loop {
                    let job = match rx.lock().unwrap().recv() {
                        Ok(job) => job,
                        Err(_) => return, // event loop gone, queue drained
                    };
                    let key = job.key;
                    // A handler panic must not take the worker down with it
                    // (the fuzz suite's "never crash" property); the
                    // connection is simply dropped.
                    let done =
                        std::panic::catch_unwind(AssertUnwindSafe(|| app.respond(&job, &stop)));
                    let done = done.unwrap_or(Completion::Failed { key });
                    completions.lock().unwrap().push(done);
                    let _ = poller.notify();
                })
            })
            .collect();

        let event_loop = {
            let stop = Arc::clone(&stop);
            let poller = Arc::clone(&poller);
            std::thread::spawn(move || {
                EventLoop::new(app, listener, poller, tx, completions, stop).run();
            })
        };

        Ok(HttpServer {
            addr,
            stop,
            poller,
            event_loop: Some(event_loop),
            workers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful drain: stop accepting, close idle connections, let
    /// in-flight requests finish (bounded by a wall-clock cap), then join
    /// the event loop and all workers.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.poller.notify();
        if let Some(event_loop) = self.event_loop.take() {
            let _ = event_loop.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Poller key reserved for the listener; connection keys start above it.
const LISTENER_KEY: usize = 0;
/// Bytes of already-sent input drained after a fatal-framing response, so
/// closing the socket doesn't RST the response away before the client
/// reads it (a 413'd client deserves to see its 413).
const FATAL_DRAIN_BYTES: usize = 1024 * 1024;
/// Per-`read(2)` scratch size on the event loop.
const READ_CHUNK: usize = 16 * 1024;
/// Wall-clock cap on the graceful shutdown drain. Real time, not hub
/// time — a `ManualClock` never advances during shutdown.
const DRAIN_CAP: Duration = Duration::from_secs(5);
/// Poll tick while connections exist: deadline checks observe a
/// `ManualClock` advance within one tick without any socket activity.
const POLL_TICK: Duration = Duration::from_millis(10);

/// What the event loop does once a response flush completes.
enum AfterWrite {
    /// Keep-alive: look for the next (possibly pipelined) request.
    Advance,
    /// Response said `Connection: close`.
    Close,
    /// A fatal-framing response: drain already-sent input, then close.
    Drain,
}

/// Per-connection state. `Dispatched` means a worker owns the socket (its
/// fd is disarmed by oneshot delivery); every other state is owned by the
/// event loop.
enum ConnState {
    Reading,
    Dispatched,
    Writing {
        buf: Vec<u8>,
        pos: usize,
        then: AfterWrite,
    },
    Draining {
        budget: usize,
    },
}

impl ConnState {
    fn tag(&self) -> usize {
        match self {
            ConnState::Reading => 0,
            ConnState::Dispatched => 1,
            ConnState::Writing { .. } => 2,
            ConnState::Draining { .. } => 3,
        }
    }
}

/// Gauge labels, indexed by [`ConnState::tag`].
const STATE_LABELS: [&str; 4] = ["reading", "dispatched", "writing", "draining"];

struct Conn {
    stream: Arc<TcpStream>,
    /// Buffered unparsed input.
    buf: Vec<u8>,
    /// Peer half-closed its write side; whatever is buffered is the whole
    /// request stream.
    eof: bool,
    state: ConnState,
    served: u32,
    /// Hub-clock μs of the last byte moved in either direction.
    last_progress_us: u64,
    /// Hub-clock μs the currently-buffering request's first byte arrived
    /// (`None` between requests) — the slow-loris deadline anchor.
    request_start_us: Option<u64>,
}

/// One complete request handed to the compute pool.
struct Job {
    key: usize,
    stream: Arc<TcpStream>,
    req: Request,
    /// Request ordinal on this connection (keep-alive budget).
    served: u32,
    parse_us: u64,
}

/// What a worker posts back to the event loop.
enum Completion {
    Done {
        key: usize,
        keep_alive: bool,
        /// Response tail the worker could not write without blocking; the
        /// event loop flushes it on write readiness. Empty = fully sent.
        unwritten: Vec<u8>,
    },
    Failed {
        key: usize,
    },
}

/// What the incremental framing gate decided about a connection's buffer.
enum Gate {
    /// Not enough bytes yet to hold one complete request.
    NeedMore,
    /// One complete request, consuming this many buffered bytes.
    Request(Box<Request>, usize, u64),
    /// Framing violation: answer once, then drain + close.
    Fatal { status: u16, message: &'static str },
    /// Clean end of stream between requests.
    Closed,
}

struct EventLoop {
    app: Arc<App>,
    listener: TcpListener,
    poller: Arc<Poller>,
    conns: HashMap<usize, Conn>,
    next_key: usize,
    jobs: Sender<Job>,
    completions: Arc<Mutex<Vec<Completion>>>,
    stop: Arc<AtomicBool>,
    gauges: [Arc<Gauge>; 4],
    accepted: Arc<Counter>,
}

impl EventLoop {
    fn new(
        app: Arc<App>,
        listener: TcpListener,
        poller: Arc<Poller>,
        jobs: Sender<Job>,
        completions: Arc<Mutex<Vec<Completion>>>,
        stop: Arc<AtomicBool>,
    ) -> EventLoop {
        let gauge = |state| {
            app.hub.metrics.gauge(
                "ganc_http_connections",
                "Open HTTP connections by state-machine state",
                &[("state", state)],
            )
        };
        let gauges = [
            gauge(STATE_LABELS[0]),
            gauge(STATE_LABELS[1]),
            gauge(STATE_LABELS[2]),
            gauge(STATE_LABELS[3]),
        ];
        let accepted = app.hub.metrics.counter(
            "ganc_http_conn_accepted_total",
            "Connections accepted by the event loop",
            &[],
        );
        EventLoop {
            app,
            listener,
            poller,
            conns: HashMap::new(),
            next_key: LISTENER_KEY,
            jobs,
            completions,
            stop,
            gauges,
            accepted,
        }
    }

    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut draining = false;
        let mut drain_deadline = Instant::now();
        loop {
            if !draining && self.stop.load(Ordering::Relaxed) {
                draining = true;
                drain_deadline = Instant::now() + DRAIN_CAP;
                let _ = self.poller.delete(&self.listener);
            }
            if draining {
                // Evict everything without an in-flight response
                // (Dispatched finishes its handler, Writing finishes its
                // flush); repeat each tick because completions re-enter
                // Reading.
                let idle: Vec<usize> = self
                    .conns
                    .iter()
                    .filter(|(_, c)| {
                        matches!(c.state, ConnState::Reading | ConnState::Draining { .. })
                    })
                    .map(|(&k, _)| k)
                    .collect();
                for key in idle {
                    self.close(key, Some("shutdown"));
                }
                if self.conns.is_empty() || Instant::now() >= drain_deadline {
                    let rest: Vec<usize> = self.conns.keys().copied().collect();
                    for key in rest {
                        self.close(key, Some("shutdown"));
                    }
                    self.publish_gauges();
                    return;
                }
            }
            let timeout = if draining {
                Some(Duration::from_millis(2))
            } else if self.conns.is_empty() {
                None // woken by accept or notify
            } else {
                Some(POLL_TICK)
            };
            events.clear();
            let _ = self.poller.wait(&mut events, timeout);
            // Completions first: they re-arm interest (or free the key)
            // before this batch's readiness events are interpreted.
            let done: Vec<Completion> = std::mem::take(&mut *self.completions.lock().unwrap());
            for completion in done {
                self.complete(completion);
            }
            for ev in events.iter().copied() {
                if ev.key == LISTENER_KEY {
                    if !draining {
                        self.accept_ready();
                    }
                } else {
                    self.conn_ready(ev);
                }
            }
            self.sweep_deadlines();
            self.publish_gauges();
        }
    }

    fn alloc_key(&mut self) -> usize {
        loop {
            self.next_key = self.next_key.wrapping_add(1);
            let k = self.next_key;
            if k != LISTENER_KEY && k != usize::MAX && !self.conns.contains_key(&k) {
                return k;
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let key = self.alloc_key();
                    if self.conns.len() >= self.app.cfg.max_connections {
                        // Immediate close beats an unbounded queue marching
                        // toward fd exhaustion; the reject is observable.
                        self.evicted(key, "capacity");
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if self.poller.add(&stream, Event::readable(key)).is_err() {
                        continue;
                    }
                    let now = self.app.hub.now_us();
                    self.conns.insert(
                        key,
                        Conn {
                            stream: Arc::new(stream),
                            buf: Vec::new(),
                            eof: false,
                            state: ConnState::Reading,
                            served: 0,
                            last_progress_us: now,
                            request_start_us: None,
                        },
                    );
                    self.accepted.inc();
                    self.app.hub.trace.record(
                        now,
                        TraceData::ConnAccept {
                            conn: key as u64,
                            open: self.conns.len() as u64,
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept errors (EMFILE, aborted handshake):
                // keep serving what's open.
                Err(_) => break,
            }
        }
        let _ = self
            .poller
            .modify(&self.listener, Event::readable(LISTENER_KEY));
    }

    fn conn_ready(&mut self, ev: Event) {
        // Stale events are possible (the conn closed earlier this batch).
        let Some(conn) = self.conns.get(&ev.key) else {
            return;
        };
        // Error/hangup conditions arrive as readable+writable; the state
        // decides which direction this connection actually works in.
        match conn.state {
            ConnState::Reading => self.read_ready(ev.key),
            ConnState::Writing { .. } => self.write_ready(ev.key),
            ConnState::Draining { .. } => self.drain_ready(ev.key),
            // Oneshot delivery disarmed the fd at dispatch; nothing to do.
            ConnState::Dispatched => {}
        }
    }

    fn read_ready(&mut self, key: usize) {
        let now = self.app.hub.now_us();
        let mut scratch = [0u8; READ_CHUNK];
        let mut progressed = false;
        loop {
            let Some(conn) = self.conns.get_mut(&key) else {
                return;
            };
            match (&*conn.stream).read(&mut scratch) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    if conn.buf.is_empty() && conn.request_start_us.is_none() {
                        conn.request_start_us = Some(now);
                    }
                    conn.buf.extend_from_slice(&scratch[..n]);
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(key, None);
                    return;
                }
            }
        }
        if progressed {
            if let Some(conn) = self.conns.get_mut(&key) {
                conn.last_progress_us = now;
            }
        }
        self.advance(key);
    }

    /// Run the framing gate over a connection's buffer: dispatch a complete
    /// request, answer a framing violation, re-arm for more bytes, or
    /// close a finished stream. Entered from read readiness and from a
    /// keep-alive completion (pipelined requests parse from the buffer
    /// without touching the socket).
    fn advance(&mut self, key: usize) {
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        conn.state = ConnState::Reading;
        let gate = try_frame(&conn.buf, self.app.cfg.limits, conn.eof, &self.app.hub);
        match gate {
            Gate::Closed => self.close(key, None),
            Gate::NeedMore => {
                if conn.eof {
                    // Half-closed with a partial request: the parser over
                    // the final bytes yields the right fatal answer, and
                    // `try_frame` only reports NeedMore at eof for an
                    // empty buffer (handled as Closed).
                    self.close(key, None);
                    return;
                }
                let _ = self.poller.modify(&*conn.stream, Event::readable(key));
            }
            Gate::Request(req, consumed, parse_us) => {
                conn.buf.drain(..consumed);
                let now = self.app.hub.now_us();
                conn.request_start_us = if conn.buf.is_empty() { None } else { Some(now) };
                conn.served += 1;
                conn.state = ConnState::Dispatched;
                let job = Job {
                    key,
                    stream: Arc::clone(&conn.stream),
                    req: *req,
                    served: conn.served,
                    parse_us,
                };
                // The fd is disarmed (oneshot), so the worker owns the
                // socket until its completion comes back.
                if self.jobs.send(job).is_err() {
                    self.close(key, None);
                }
            }
            Gate::Fatal { status, message } => {
                self.app.count_request("malformed", status);
                let body = tinyjson::to_string(&obj! { "error" => message });
                let mut bytes = Vec::new();
                let _ = http1::write_response(&mut bytes, status, body.as_bytes(), false);
                conn.buf.clear();
                conn.request_start_us = None;
                self.start_write(key, bytes, 0, AfterWrite::Drain);
            }
        }
    }

    /// Write as much of `bytes[pos..]` as the socket takes; park the rest
    /// in `Writing` state armed for write readiness.
    fn start_write(&mut self, key: usize, bytes: Vec<u8>, pos: usize, then: AfterWrite) {
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        let mut pos = pos;
        loop {
            if pos == bytes.len() {
                break;
            }
            match (&*conn.stream).write(&bytes[pos..]) {
                Ok(0) => {
                    self.close(key, None);
                    return;
                }
                Ok(n) => pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    conn.state = ConnState::Writing {
                        buf: bytes,
                        pos,
                        then,
                    };
                    let _ = self.poller.modify(&*conn.stream, Event::writable(key));
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(key, None);
                    return;
                }
            }
        }
        self.finish_write(key, then);
    }

    fn write_ready(&mut self, key: usize) {
        let now = self.app.hub.now_us();
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        conn.last_progress_us = now;
        let state = std::mem::replace(&mut conn.state, ConnState::Reading);
        let ConnState::Writing { buf, pos, then } = state else {
            conn.state = state;
            return;
        };
        self.start_write(key, buf, pos, then);
    }

    fn finish_write(&mut self, key: usize, then: AfterWrite) {
        match then {
            AfterWrite::Advance => self.advance(key),
            AfterWrite::Close => self.close(key, None),
            AfterWrite::Drain => {
                let Some(conn) = self.conns.get_mut(&key) else {
                    return;
                };
                if conn.eof {
                    // Nothing more can arrive; the response is flushed.
                    self.close(key, None);
                    return;
                }
                conn.state = ConnState::Draining {
                    budget: FATAL_DRAIN_BYTES,
                };
                let _ = self.poller.modify(&*conn.stream, Event::readable(key));
            }
        }
    }

    fn drain_ready(&mut self, key: usize) {
        let now = self.app.hub.now_us();
        let mut scratch = [0u8; READ_CHUNK];
        loop {
            let Some(conn) = self.conns.get_mut(&key) else {
                return;
            };
            let ConnState::Draining { budget } = &mut conn.state else {
                return;
            };
            match (&*conn.stream).read(&mut scratch) {
                Ok(0) => {
                    self.close(key, None);
                    return;
                }
                Ok(n) => {
                    conn.last_progress_us = now;
                    if *budget <= n {
                        self.close(key, None);
                        return;
                    }
                    *budget -= n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    let _ = self.poller.modify(&*conn.stream, Event::readable(key));
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(key, None);
                    return;
                }
            }
        }
    }

    fn complete(&mut self, completion: Completion) {
        match completion {
            Completion::Failed { key } => self.close(key, None),
            Completion::Done {
                key,
                keep_alive,
                unwritten,
            } => {
                let now = self.app.hub.now_us();
                let Some(conn) = self.conns.get_mut(&key) else {
                    return;
                };
                conn.last_progress_us = now;
                let then = if keep_alive {
                    AfterWrite::Advance
                } else {
                    AfterWrite::Close
                };
                if unwritten.is_empty() {
                    self.finish_write(key, then);
                } else {
                    // The worker stopped at EWOULDBLOCK; don't re-attempt
                    // inline, wait for write readiness.
                    conn.state = ConnState::Writing {
                        buf: unwritten,
                        pos: 0,
                        then,
                    };
                    let _ = self.poller.modify(&*conn.stream, Event::writable(key));
                }
            }
        }
    }

    /// Evict connections that stopped making progress (`read_timeout`) or
    /// whose in-flight request exceeded its total read deadline
    /// (`request_deadline`, the slow-loris cap). Dispatched connections
    /// are exempt — a worker owns them.
    fn sweep_deadlines(&mut self) {
        if self.conns.is_empty() {
            return;
        }
        let now = self.app.hub.now_us();
        let idle_us = self.app.cfg.read_timeout.as_micros() as u64;
        let deadline_us = self.app.cfg.request_deadline.as_micros() as u64;
        let mut evict: Vec<(usize, &'static str)> = Vec::new();
        for (&key, conn) in &self.conns {
            if matches!(conn.state, ConnState::Dispatched) {
                continue;
            }
            let mid_request =
                conn.request_start_us.is_some() || !matches!(conn.state, ConnState::Reading);
            if conn
                .request_start_us
                .is_some_and(|t0| now.saturating_sub(t0) >= deadline_us)
            {
                evict.push((key, "deadline"));
            } else if now.saturating_sub(conn.last_progress_us) >= idle_us {
                evict.push((key, if mid_request { "deadline" } else { "idle" }));
            }
        }
        for (key, reason) in evict {
            self.close(key, Some(reason));
        }
    }

    fn close(&mut self, key: usize, evict_reason: Option<&'static str>) {
        if let Some(conn) = self.conns.remove(&key) {
            let _ = self.poller.delete(&*conn.stream);
            if let Some(reason) = evict_reason {
                self.evicted(key, reason);
            }
        }
    }

    fn evicted(&self, key: usize, reason: &'static str) {
        self.app
            .hub
            .metrics
            .counter(
                "ganc_http_conn_evicted_total",
                "Connections evicted by the event loop, by reason",
                &[("reason", reason)],
            )
            .inc();
        self.app.hub.trace.record(
            self.app.hub.now_us(),
            TraceData::ConnEvict {
                conn: key as u64,
                reason,
            },
        );
    }

    fn publish_gauges(&self) {
        let mut counts = [0u64; 4];
        for conn in self.conns.values() {
            counts[conn.state.tag()] += 1;
        }
        for (gauge, count) in self.gauges.iter().zip(counts) {
            gauge.set(count as f64);
        }
    }
}

/// The incremental framing gate: decide — without consuming anything —
/// whether `buf` holds one complete request, then run the unchanged
/// [`http1::read_request`] parser over it. The gate mirrors the parser's
/// `Content-Length` rules exactly; on any disagreement-shaped input
/// (malformed/duplicate/oversized lengths, transfer-encoding) it parses
/// immediately and lets the parser produce its canonical fatal answer.
fn try_frame(buf: &[u8], limits: Limits, eof: bool, hub: &ObsHub) -> Gate {
    if buf.is_empty() {
        return if eof { Gate::Closed } else { Gate::NeedMore };
    }
    if !eof {
        match head_end(buf) {
            None => {
                if buf.len() <= limits.max_head_bytes {
                    return Gate::NeedMore;
                }
                // Oversized head: parse now for the canonical 400.
            }
            Some(end) => {
                let hint = body_hint(&buf[..end], limits);
                if let Some(body_len) = hint {
                    if buf.len() < end + body_len {
                        return Gate::NeedMore;
                    }
                }
                // `None` hint: the head already violates framing — parse
                // now, the parser answers before ever reading a body byte.
            }
        }
    }
    let t0 = hub.now_us();
    let mut cursor = Cursor::new(buf);
    let outcome = http1::read_request(&mut cursor, limits);
    let parse_us = hub.now_us().saturating_sub(t0);
    match outcome {
        ReadOutcome::Request(req) => {
            Gate::Request(Box::new(req), cursor.position() as usize, parse_us)
        }
        ReadOutcome::Fatal { status, message } => Gate::Fatal { status, message },
        ReadOutcome::Disconnected => Gate::Closed,
    }
}

/// Byte offset just past the head terminator (the empty line), if the
/// buffer holds a complete head. Lines end in `\n` with an optional `\r`,
/// matching the parser's `read_line`.
fn head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        match buf[i] {
            b'\n' => {
                // A line just ended; an immediately following empty line
                // terminates the head.
                if buf.get(i + 1) == Some(&b'\n') {
                    return Some(i + 2);
                }
                if buf.get(i + 1) == Some(&b'\r') && buf.get(i + 2) == Some(&b'\n') {
                    return Some(i + 3);
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    None
}

/// How many body bytes the head declares, mirroring the parser's
/// `Content-Length` rules. `Some(n)` = a well-formed declaration within
/// limits (0 when absent); `None` = the head already violates framing
/// (malformed/duplicate/oversized length, transfer-encoding) and should be
/// parsed immediately for its canonical fatal answer.
fn body_hint(head: &[u8], limits: Limits) -> Option<usize> {
    let mut declared: Option<usize> = None;
    for line in head.split(|&b| b == b'\n') {
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        let Some(colon) = line.iter().position(|&b| b == b':') else {
            continue;
        };
        let name = &line[..colon];
        if name.eq_ignore_ascii_case(b"transfer-encoding") {
            return None;
        }
        if !name.eq_ignore_ascii_case(b"content-length") {
            continue;
        }
        let value = std::str::from_utf8(&line[colon + 1..]).ok()?.trim();
        if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let len = value.parse::<u64>().ok()?;
        if len > limits.max_body_bytes as u64 || declared.replace(len as usize).is_some() {
            return None;
        }
    }
    Some(declared.unwrap_or(0))
}

/// Request-stage timing handles, resolved once at bind.
struct HttpObs {
    parse_us: Arc<Histogram>,
    dispatch_us: Arc<Histogram>,
    write_us: Arc<Histogram>,
}

impl HttpObs {
    fn new(hub: &ObsHub) -> HttpObs {
        let stage = |name| {
            hub.metrics.histogram(
                "ganc_http_stage_us",
                "HTTP request stage latency (microseconds)",
                &[("stage", name)],
            )
        };
        HttpObs {
            parse_us: stage("parse"),
            dispatch_us: stage("dispatch"),
            write_us: stage("write"),
        }
    }
}

/// How a routed request answers: JSON for the API, plain text for the
/// Prometheus exposition endpoint.
enum Reply {
    Json(u16, Value),
    Text(u16, String),
}

struct App {
    frontend: Frontend,
    refit: Option<RefitHook>,
    cfg: ServerConfig,
    hub: Arc<ObsHub>,
    http: HttpObs,
    /// Background adaptive-refit controller, when `RefitHook::cadence` was
    /// set. Held for the server's lifetime; dropping the last `App` clone
    /// joins its worker.
    controller: Option<RefitController>,
    /// Background health-probe loops, one per replicated router band.
    /// Held for the server's lifetime; dropping the last `App` clone stops
    /// and joins them.
    _probes: Vec<crate::replica::ProbeHandle>,
}

impl App {
    /// Serve one dispatched request on a worker thread: route, serialize,
    /// and write the response straight to the (non-blocking) socket. The
    /// fd is disarmed while the worker owns it, so this write never races
    /// the event loop; an `EWOULDBLOCK` tail rides back on the completion
    /// for the loop to flush.
    fn respond(&self, job: &Job, stop: &AtomicBool) -> Completion {
        let t_dispatch = self.hub.now_us();
        let (reply, endpoint) = self.route(&job.req);
        let (status, content_type, body) = match reply {
            Reply::Json(status, value) => (status, "application/json", tinyjson::to_string(&value)),
            Reply::Text(status, text) => (status, "text/plain; version=0.0.4", text),
        };
        let t_write = self.hub.now_us();
        let keep_alive = job.req.keep_alive
            && job.served < self.cfg.keep_alive_requests
            && !stop.load(Ordering::Relaxed);
        let mut bytes = Vec::with_capacity(body.len() + 128);
        let _ = http1::write_response_with_type(
            &mut bytes,
            status,
            content_type,
            body.as_bytes(),
            keep_alive,
        );
        let mut pos = 0;
        let mut failed = false;
        while pos < bytes.len() {
            match (&*job.stream).write(&bytes[pos..]) {
                Ok(0) => {
                    failed = true;
                    break;
                }
                Ok(n) => pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        let t_done = self.hub.now_us();
        let (dispatch_us, write_us) = (
            t_write.saturating_sub(t_dispatch),
            t_done.saturating_sub(t_write),
        );
        self.http.parse_us.observe_us(job.parse_us);
        self.http.dispatch_us.observe_us(dispatch_us);
        self.http.write_us.observe_us(write_us);
        self.count_request(endpoint, status);
        self.hub.trace.record(
            t_done,
            TraceData::Http {
                request_id: self.hub.next_request_id(),
                endpoint,
                status,
                parse_us: job.parse_us,
                dispatch_us,
                write_us,
            },
        );
        if failed {
            Completion::Failed { key: job.key }
        } else {
            Completion::Done {
                key: job.key,
                keep_alive,
                unwritten: bytes[pos..].to_vec(),
            }
        }
    }

    /// Bump `ganc_http_requests_total{endpoint,status}`. Get-or-create on
    /// every call: the label space is tiny (endpoints × a handful of
    /// statuses), and the registry lookup is one shared-lock map probe.
    fn count_request(&self, endpoint: &'static str, status: u16) {
        let status = status.to_string();
        self.hub
            .metrics
            .counter(
                "ganc_http_requests_total",
                "HTTP requests answered, by endpoint and status",
                &[("endpoint", endpoint), ("status", &status)],
            )
            .inc();
    }

    /// Dispatch one well-framed request, returning the reply plus the
    /// endpoint label stage metrics and the request counter attribute to.
    /// Everything answers JSON (status contract 200 / 400 / 404 / 413, +
    /// 502 for router upstream failures) except `/v1/metrics`, which
    /// answers Prometheus text exposition.
    fn route(&self, req: &Request) -> (Reply, &'static str) {
        let (reply, endpoint) = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/v1/healthz") => (self.healthz(), "healthz"),
            ("GET", "/v1/stats") => (self.stats(), "stats"),
            ("GET", "/v1/metrics") => {
                return (
                    Reply::Text(StatusCode::OK, self.hub.metrics.render()),
                    "metrics",
                )
            }
            ("GET", "/v1/trace") => (self.trace(), "trace"),
            ("GET", "/v1/window") => (self.window(), "window"),
            ("POST", "/v1/recommend:batch") => (self.recommend_batch(&req.body), "recommend_batch"),
            ("POST", "/v1/ingest") => (self.ingest(req), "ingest"),
            ("POST", "/v1/ingest:batch") => (self.ingest_batch(&req.body), "ingest_batch"),
            ("POST", "/admin/refit") => (self.admin_refit(), "admin_refit"),
            ("GET", path) if path.starts_with("/v1/recommend/") => (
                self.recommend(&path["/v1/recommend/".len()..], req.query.as_deref()),
                "recommend",
            ),
            _ => (error(StatusCode::NOT_FOUND, "not found"), "other"),
        };
        let (status, value) = reply;
        (Reply::Json(status, value), endpoint)
    }

    fn healthz(&self) -> (u16, Value) {
        match self.frontend.generation() {
            Ok(g) => {
                let mut body = obj! { "ok" => true, "generation" => g };
                if let Frontend::Sharded(e) = &self.frontend {
                    body.insert("pending_ingests", Value::from(e.pending_ingests()));
                    // WAL footprint, when a durable log is attached: how
                    // many acknowledged-but-uncompacted records a crash
                    // would replay, their on-disk size, and the dedup
                    // window's retention contract — keys beyond `window`
                    // distinct successors are forgotten (`evictions`
                    // counts them), after which a resend re-applies.
                    if let Some(w) = e.wal_stats() {
                        body.insert("wal", obj! { "records" => w.records, "bytes" => w.bytes });
                        body.insert(
                            "dedup",
                            obj! {
                                "window" => w.dedup_window,
                                "len" => w.dedup_keys,
                                "evictions" => w.dedup_evictions,
                            },
                        );
                    }
                }
                if let Frontend::Router(r) = &self.frontend {
                    // Degraded = still answering, but some band is below
                    // full replication (a replica was ejected); read from
                    // tracked breaker state, no wire calls.
                    let degraded = r.degraded_bands();
                    body.insert("degraded", Value::from(!degraded.is_empty()));
                    body.insert(
                        "degraded_bands",
                        Value::Array(degraded.into_iter().map(Value::from).collect()),
                    );
                    // The fan-out dedup window's retention contract (same
                    // shape as the WAL one): an evicted key only loses its
                    // resend short-circuit — WAL-backed routes still dedup
                    // durably.
                    let (window, len, evictions) = r.dedup_stats();
                    body.insert(
                        "dedup",
                        obj! {
                            "window" => window,
                            "len" => len,
                            "evictions" => evictions,
                        },
                    );
                }
                if let Some(controller) = &self.controller {
                    body.insert(
                        "refit",
                        obj! {
                            "alive" => controller.alive(),
                            "refits" => controller.refits(),
                        },
                    );
                }
                (StatusCode::OK, body)
            }
            Err(e) => backend_error(e),
        }
    }

    /// Drain the trace ring into JSON. Draining is deliberate — each event
    /// is delivered exactly once, so a poller sees a stream, not a window.
    fn trace(&self) -> (u16, Value) {
        let dropped = self.hub.trace.dropped();
        let events: Vec<Value> = self
            .hub
            .trace
            .drain()
            .into_iter()
            .map(trace_event_value)
            .collect();
        (
            StatusCode::OK,
            obj! { "events" => Value::Array(events), "dropped" => dropped },
        )
    }

    /// `GET /v1/window` — the node's transportable rolling-window summary,
    /// the wire call a router's stats fold makes against each remote band.
    /// `{"window":null}` when observability is not attached (or the node
    /// is itself a router).
    fn window(&self) -> (u16, Value) {
        let window = match self.frontend.window_wire() {
            Some(w) => {
                let distinct = Value::Array(w.distinct.iter().map(|&i| Value::from(i)).collect());
                obj! {
                    "n_items" => w.n_items,
                    "lists" => w.lists,
                    "items" => w.items,
                    "novelty_microbits" => w.novelty_microbits,
                    "tail_hits" => w.tail_hits,
                    "distinct" => distinct,
                }
            }
            None => Value::Null,
        };
        (StatusCode::OK, obj! { "window" => window })
    }

    /// Bump `ganc_request_overrides_total{kind}` for every per-request
    /// control present and leave a `request_overrides` trace event when
    /// any engine-level override is set. Called only when at least one
    /// control was parsed, so default traffic pays nothing.
    fn note_overrides(&self, n: bool, opts: &RequestOptions) {
        let bump = |kind: &str| {
            self.hub
                .metrics
                .counter(
                    "ganc_request_overrides_total",
                    "Per-request trade-off controls accepted, by kind",
                    &[("kind", kind)],
                )
                .inc();
        };
        if n {
            bump("n");
        }
        if opts.theta.is_some() {
            bump("theta");
        }
        if !opts.exclude.is_empty() {
            bump("exclude");
        }
        if opts.rerank.is_some() {
            bump("rerank");
        }
        // `?n=` is presentation-only truncation — it never reaches an
        // engine, so it counts above but doesn't trace as an override.
        if !opts.is_default() {
            self.hub.trace.record(
                self.hub.now_us(),
                TraceData::RequestOverrides {
                    request_id: self.hub.next_request_id(),
                    theta: opts.theta.is_some(),
                    exclude: opts.exclude.len() as u32,
                    rerank: opts.rerank.map_or("", |m| m.as_str()),
                },
            );
        }
    }

    fn recommend(&self, user_part: &str, query: Option<&str>) -> (u16, Value) {
        let Ok(user) = user_part.parse::<u32>() else {
            return error(StatusCode::BAD_REQUEST, "user id must be an integer");
        };
        let mut take: Option<usize> = None;
        let mut opts = RequestOptions::default();
        for pair in query.unwrap_or("").split('&').filter(|p| !p.is_empty()) {
            match pair.split_once('=') {
                Some(("n", v)) => match v.parse::<usize>() {
                    Ok(n) => take = Some(n),
                    Err(_) => return error(StatusCode::BAD_REQUEST, "n must be an integer"),
                },
                Some(("theta", v)) => match v.parse::<f64>() {
                    Ok(t) if t.is_finite() && (0.0..=1.0).contains(&t) => opts.theta = Some(t),
                    _ => return error(StatusCode::BAD_REQUEST, "theta must be a number in [0, 1]"),
                },
                Some(("exclude", v)) => match parse_exclude_csv(v) {
                    Ok(ids) => opts.set_exclude(ids),
                    Err(msg) => return error(StatusCode::BAD_REQUEST, msg),
                },
                Some(("rerank", v)) => match RerankMode::parse(v) {
                    Some(m) => opts.rerank = Some(m),
                    None => {
                        return error(
                            StatusCode::BAD_REQUEST,
                            "rerank must be one of pra, rbt, 5d",
                        )
                    }
                },
                _ => return error(StatusCode::BAD_REQUEST, "unknown query parameter"),
            }
        }
        if take.is_some() || !opts.is_default() {
            self.note_overrides(take.is_some(), &opts);
        }
        match self.frontend.recommend_with_traced(UserId(user), &opts) {
            Ok((list, generation)) => {
                let shown = take.unwrap_or(list.len()).min(list.len());
                let items = Value::Array(list[..shown].iter().map(|i| Value::from(i.0)).collect());
                (
                    StatusCode::OK,
                    obj! { "user" => user, "generation" => generation, "items" => items },
                )
            }
            Err(e) => backend_error(e),
        }
    }

    fn recommend_batch(&self, body: &[u8]) -> (u16, Value) {
        let (users, opts) = match parse_body(body).and_then(|v| {
            let users = v["users"]
                .as_array()
                .ok_or("body must be {\"users\":[...]}")?
                .iter()
                .map(|u| {
                    u.as_u64()
                        .filter(|&u| u <= u32::MAX as u64)
                        .map(|u| UserId(u as u32))
                        .ok_or("user ids must be u32 integers")
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok((users, parse_batch_opts(&v)?))
        }) {
            Ok(t) => t,
            Err(msg) => return error(StatusCode::BAD_REQUEST, msg),
        };
        if !opts.is_default() {
            self.note_overrides(false, &opts);
        }
        match self.frontend.recommend_batch_with_traced(&users, &opts) {
            Ok((answers, generation)) => {
                let results: Vec<Value> = users
                    .iter()
                    .zip(answers)
                    .map(|(u, answer)| match answer {
                        Ok(list) => {
                            let items =
                                Value::Array(list.iter().map(|i| Value::from(i.0)).collect());
                            obj! { "user" => u.0, "items" => items }
                        }
                        Err(e) => serve_error_value(&e),
                    })
                    .collect();
                (
                    StatusCode::OK,
                    obj! { "generation" => generation, "results" => Value::Array(results) },
                )
            }
            Err(e) => backend_error(e),
        }
    }

    fn ingest(&self, req: &Request) -> (u16, Value) {
        let parsed = parse_body(&req.body).and_then(|v| {
            let (user, item, rating) = parse_ingest_fields(&v)?;
            // The idempotency key rides in the `Idempotency-Key` header
            // or a body `"key"` field; the header wins when both are set.
            let key = match &req.idempotency_key {
                Some(k) => Some(k.clone()),
                None => match &v["key"] {
                    Value::Null => None,
                    Value::String(s) if !s.is_empty() => Some(s.clone()),
                    _ => return Err("key must be a non-empty string"),
                },
            };
            // Reject malformed keys at ingress (400): a key the WAL
            // decoder would refuse on replay, or one carrying CR/LF /
            // control bytes that could smuggle headers into the router's
            // fan-out requests, must never be acknowledged.
            if let Some(k) = &key {
                ganc_serve::validate_key(k)?;
            }
            Ok((user, item, rating, key))
        });
        let (user, item, rating, key) = match parsed {
            Ok(t) => t,
            Err(msg) => return error(StatusCode::BAD_REQUEST, msg),
        };
        match key {
            // Unkeyed requests keep the historical byte-exact `{"ok":true}`
            // body — the byte-determinism suites pin it.
            None => match self.frontend.ingest(user, item, rating) {
                Ok(()) => (StatusCode::OK, obj! { "ok" => true }),
                Err(e) => backend_error(e),
            },
            Some(key) => match self.frontend.ingest_keyed(Some(&key), user, item, rating) {
                Ok(ack) => (
                    StatusCode::OK,
                    obj! {
                        "ok" => true,
                        "deduplicated" => matches!(ack, ganc_serve::IngestAck::Deduplicated),
                    },
                ),
                Err(e) => backend_error(e),
            },
        }
    }

    /// `POST /v1/ingest:batch` — the coalesced ingest wire call: many
    /// entries, one round-trip, per-entry results so one unknown id never
    /// fails its companions. Serve-level rejections land in their slot;
    /// a transport/band failure (router fronts) fails the whole batch,
    /// mirroring [`crate::PeerTransport::ingest_batch`].
    fn ingest_batch(&self, body: &[u8]) -> (u16, Value) {
        let entries = match parse_body(body).and_then(|v| {
            v["entries"]
                .as_array()
                .ok_or("body must be {\"entries\":[...]}")?
                .iter()
                .map(|entry| {
                    let (user, item, rating) = parse_ingest_fields(entry)?;
                    let key = match &entry["key"] {
                        Value::Null => None,
                        Value::String(s) if !s.is_empty() => Some(s.clone()),
                        _ => return Err("key must be a non-empty string"),
                    };
                    // Same ingress validation as the single-ingest path.
                    if let Some(k) = &key {
                        ganc_serve::validate_key(k)?;
                    }
                    Ok((user, item, rating, key))
                })
                .collect::<Result<Vec<_>, _>>()
        }) {
            Ok(entries) => entries,
            Err(msg) => return error(StatusCode::BAD_REQUEST, msg),
        };
        let mut results = Vec::with_capacity(entries.len());
        for (user, item, rating, key) in &entries {
            match self
                .frontend
                .ingest_keyed(key.as_deref(), *user, *item, *rating)
            {
                Ok(ganc_serve::IngestAck::Applied) => results.push(obj! { "ok" => true }),
                Ok(ganc_serve::IngestAck::Deduplicated) => {
                    results.push(obj! { "ok" => true, "status" => "deduplicated" })
                }
                Err(BackendError::Serve(e)) => results.push(serve_error_value(&e)),
                Err(e) => return backend_error(e),
            }
        }
        (StatusCode::OK, obj! { "results" => Value::Array(results) })
    }

    fn admin_refit(&self) -> (u16, Value) {
        let Some(hook) = &self.refit else {
            return error(StatusCode::BAD_REQUEST, "refit not configured");
        };
        let Frontend::Sharded(engine) = &self.frontend else {
            return error(
                StatusCode::BAD_REQUEST,
                "refit requires a sharded engine front",
            );
        };
        match engine.refit_once(hook.fitter.as_ref(), &hook.cfg) {
            RefitOutcome::Swapped { generation, .. } => (
                StatusCode::OK,
                obj! { "outcome" => "swapped", "generation" => generation },
            ),
            RefitOutcome::Raced => (
                StatusCode::OK,
                obj! { "outcome" => "raced", "generation" => engine.generation() },
            ),
        }
    }

    fn stats(&self) -> (u16, Value) {
        let engine_stats = |stats: ganc_serve::EngineStats| {
            let total = stats.cache_hits + stats.cache_misses;
            let hit_rate = if total == 0 {
                0.0
            } else {
                stats.cache_hits as f64 / total as f64
            };
            obj! {
                "hits" => stats.cache_hits,
                "misses" => stats.cache_misses,
                "hit_rate" => hit_rate,
                "cached" => stats.cached,
            }
        };
        let window_obj = |aggregate: WindowStats, bands: Vec<Value>| {
            obj! {
                "seconds" => self.cfg.stats_window.as_secs_f64(),
                "aggregate" => window_value(aggregate),
                "bands" => Value::Array(bands),
            }
        };
        match &self.frontend {
            Frontend::Single(e) => {
                let s = e.stats();
                let window = e
                    .window_stats()
                    .map(|w| window_obj(w, Vec::new()))
                    .unwrap_or(Value::Null);
                (
                    StatusCode::OK,
                    obj! {
                        "backend" => "single",
                        "generation" => e.generation(),
                        "n" => e.n(),
                        "cache" => engine_stats(s),
                        "ingested" => s.ingested,
                        "shards" => Value::Array(Vec::new()),
                        "window" => window,
                    },
                )
            }
            Frontend::Sharded(e) => {
                let s = e.stats();
                let shards: Vec<Value> = e
                    .shard_info()
                    .into_iter()
                    .map(|i| {
                        obj! {
                            // ±∞ band edges encode as null (JSON has no Inf).
                            "theta_lo" => i.theta_lo,
                            "theta_hi" => i.theta_hi,
                            "users" => i.users,
                            "snapshots" => i.snapshots,
                            "coverage_bytes" => i.coverage_bytes,
                        }
                    })
                    .collect();
                let window = e
                    .window_stats()
                    .map(|(bands, aggregate)| {
                        window_obj(aggregate, bands.into_iter().map(window_value).collect())
                    })
                    .unwrap_or(Value::Null);
                (
                    StatusCode::OK,
                    obj! {
                        "backend" => "sharded",
                        "generation" => e.generation(),
                        "n" => e.n(),
                        "cache" => engine_stats(s),
                        "ingested" => s.ingested,
                        "shards" => Value::Array(shards),
                        "window" => window,
                    },
                )
            }
            Frontend::Router(r) => {
                // Per-band deployment view: band index, route kind
                // (local / remote / coalesced), peer address, the band's
                // *own* generation (null when the peer is unreachable —
                // exactly the band an operator should look at), and the
                // coalescer queue depth where one exists.
                let shards: Vec<Value> = r
                    .routes()
                    .iter()
                    .enumerate()
                    .map(|(band, route)| {
                        let addr = route.addr().map(Value::from).unwrap_or(Value::Null);
                        let generation = route.generation().map(Value::from).unwrap_or(Value::Null);
                        let pending = route.pending().map(Value::from).unwrap_or(Value::Null);
                        // Replica view is uniform across route kinds: a
                        // single-backend band reports as a degenerate
                        // group of one healthy replica with pinned-zero
                        // availability counters.
                        let rs = route.replica_view();
                        obj! {
                            "band" => band,
                            "kind" => route.kind(),
                            "addr" => addr,
                            "generation" => generation,
                            "pending" => pending,
                            "replicas" => obj! {
                                "count" => rs.replicas,
                                "healthy" => rs.healthy,
                                "primary" => rs.primary,
                                "hedges" => rs.hedges,
                                "failovers" => rs.failovers,
                                "ejections" => rs.ejections,
                                "restores" => rs.restores,
                            },
                        }
                    })
                    .collect();
                // Rolling windows across the deployment: local bands fold
                // in-process, remote bands over the wire (`GET
                // /v1/window`), the aggregate is the exact union. A band
                // that can't report (unreachable peer, replica group)
                // holds null without hiding the others.
                let (bands, aggregate) = r.window_stats();
                let window = aggregate
                    .map(|agg| {
                        window_obj(
                            agg,
                            bands
                                .into_iter()
                                .map(|b| b.map(window_value).unwrap_or(Value::Null))
                                .collect(),
                        )
                    })
                    .unwrap_or(Value::Null);
                match r.generation() {
                    Ok(g) => (
                        StatusCode::OK,
                        obj! {
                            "backend" => "router",
                            "generation" => g,
                            "shards" => Value::Array(shards),
                            "window" => window,
                        },
                    ),
                    Err(e) => backend_error(e),
                }
            }
        }
    }
}

/// Rolling-window stats as a JSON object (shared by every backend arm).
fn window_value(w: WindowStats) -> Value {
    obj! {
        "lists" => w.lists,
        "items" => w.items,
        "coverage" => w.coverage,
        "mean_novelty_bits" => w.mean_novelty_bits,
        "long_tail_share" => w.long_tail_share,
    }
}

/// One trace event as JSON: `{seq, at_us, kind, data: {...}}`.
fn trace_event_value(e: TraceEvent) -> Value {
    let opt_u32 = |v: Option<u32>| v.map(Value::from).unwrap_or(Value::Null);
    let kind = e.data.kind();
    let data = match e.data {
        TraceData::Request {
            request_id,
            user,
            generation,
            band,
            cache_hit,
            elapsed_us,
        } => obj! {
            "request_id" => request_id,
            "user" => user,
            "generation" => generation,
            "band" => opt_u32(band),
            "cache_hit" => cache_hit,
            "elapsed_us" => elapsed_us,
        },
        TraceData::Batch {
            users,
            generation,
            band,
            elapsed_us,
        } => obj! {
            "users" => users,
            "generation" => generation,
            "band" => opt_u32(band),
            "elapsed_us" => elapsed_us,
        },
        TraceData::Ingest { user, item, band } => obj! {
            "user" => user,
            "item" => item,
            "band" => opt_u32(band),
        },
        TraceData::BundleSwap { band, generation } => obj! {
            "band" => opt_u32(band),
            "generation" => generation,
        },
        TraceData::RefitStarted {
            generation,
            pending,
        } => obj! {
            "generation" => generation,
            "pending" => pending,
        },
        TraceData::RefitSwapped { generation } => obj! { "generation" => generation },
        TraceData::RefitRaced { generation } => obj! { "generation" => generation },
        TraceData::BandHedge {
            band,
            primary,
            hedge,
        } => obj! {
            "band" => band,
            "primary" => primary,
            "hedge" => hedge,
        },
        TraceData::BandFailover { band, from, to } => obj! {
            "band" => band,
            "from" => from,
            "to" => to,
        },
        TraceData::ReplicaEjected {
            band,
            replica,
            failures,
        } => obj! {
            "band" => band,
            "replica" => replica,
            "failures" => failures,
        },
        TraceData::ReplicaRestored { band, replica } => obj! {
            "band" => band,
            "replica" => replica,
        },
        TraceData::WalReplay {
            records,
            bytes,
            corrupted,
        } => obj! {
            "records" => records,
            "bytes" => bytes,
            "corrupted" => corrupted,
        },
        TraceData::WalTruncate {
            retained,
            generation,
        } => obj! {
            "retained" => retained,
            "generation" => generation,
        },
        TraceData::ConnAccept { conn, open } => obj! {
            "conn" => conn,
            "open" => open,
        },
        TraceData::ConnEvict { conn, reason } => obj! {
            "conn" => conn,
            "reason" => reason,
        },
        TraceData::RequestOverrides {
            request_id,
            theta,
            exclude,
            rerank,
        } => obj! {
            "request_id" => request_id,
            "theta" => theta,
            "exclude" => exclude,
            "rerank" => rerank,
        },
        TraceData::Http {
            request_id,
            endpoint,
            status,
            parse_us,
            dispatch_us,
            write_us,
        } => obj! {
            "request_id" => request_id,
            "endpoint" => endpoint,
            "status" => u32::from(status),
            "parse_us" => parse_us,
            "dispatch_us" => dispatch_us,
            "write_us" => write_us,
        },
    };
    obj! {
        "seq" => e.seq,
        "at_us" => e.at_us,
        "kind" => kind,
        "data" => data,
    }
}

/// The `{user,item,rating}` triple shared by `/v1/ingest` and each
/// `/v1/ingest:batch` entry.
/// Parse `exclude=1,2,3` — comma-separated item ids. Empty segments are
/// tolerated, so `exclude=` means "none".
fn parse_exclude_csv(v: &str) -> Result<Vec<u32>, &'static str> {
    v.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse::<u32>()
                .map_err(|_| "exclude must be a comma-separated list of u32 item ids")
        })
        .collect()
}

/// Per-request overrides from a `recommend:batch` body. All fields are
/// optional; an absent field leaves its default (the historical body with
/// only `"users"` parses to default options and takes the unchanged
/// default path).
fn parse_batch_opts(v: &Value) -> Result<RequestOptions, &'static str> {
    let mut opts = RequestOptions::default();
    if !matches!(&v["theta"], Value::Null) {
        let t = v["theta"]
            .as_f64()
            .filter(|t| t.is_finite() && (0.0..=1.0).contains(t))
            .ok_or("theta must be a number in [0, 1]")?;
        opts.theta = Some(t);
    }
    if !matches!(&v["exclude"], Value::Null) {
        let ids = v["exclude"]
            .as_array()
            .ok_or("exclude must be an array of u32 item ids")?
            .iter()
            .map(|i| {
                i.as_u64()
                    .filter(|&i| i <= u32::MAX as u64)
                    .map(|i| i as u32)
                    .ok_or("exclude must be an array of u32 item ids")
            })
            .collect::<Result<Vec<_>, _>>()?;
        opts.set_exclude(ids);
    }
    if !matches!(&v["rerank"], Value::Null) {
        let s = v["rerank"]
            .as_str()
            .and_then(RerankMode::parse)
            .ok_or("rerank must be one of pra, rbt, 5d")?;
        opts.rerank = Some(s);
    }
    Ok(opts)
}

fn parse_ingest_fields(v: &Value) -> Result<(UserId, ItemId, f32), &'static str> {
    let user = v["user"]
        .as_u64()
        .filter(|&u| u <= u32::MAX as u64)
        .ok_or("user must be a u32 integer")?;
    let item = v["item"]
        .as_u64()
        .filter(|&i| i <= u32::MAX as u64)
        .ok_or("item must be a u32 integer")?;
    let rating = v["rating"].as_f64().ok_or("rating must be a number")?;
    Ok((UserId(user as u32), ItemId(item as u32), rating as f32))
}

fn parse_body(body: &[u8]) -> Result<Value, &'static str> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8")?;
    tinyjson::from_str(text).map_err(|_| "body is not valid JSON")
}

fn error(status: u16, message: &str) -> (u16, Value) {
    (status, obj! { "error" => message })
}

/// Error body for an unknown id, with the machine-readable field a remote
/// client maps back to [`ServeError`].
fn serve_error_value(e: &ServeError) -> Value {
    match e {
        ServeError::UnknownUser(u) => obj! {
            "error" => format!("unknown user {}", u.0),
            "unknown_user" => u.0,
        },
        ServeError::UnknownItem(i) => obj! {
            "error" => format!("unknown item {}", i.0),
            "unknown_item" => i.0,
        },
        ServeError::Durability => obj! {
            "error" => "write-ahead log append failed",
            "durability" => true,
        },
    }
}

fn backend_error(e: BackendError) -> (u16, Value) {
    match e {
        // A durability failure is a node fault (retry-safe), not a bad id.
        BackendError::Serve(ServeError::Durability) => (
            StatusCode::BAD_GATEWAY,
            serve_error_value(&ServeError::Durability),
        ),
        BackendError::Serve(e) => (StatusCode::NOT_FOUND, serve_error_value(&e)),
        BackendError::Transport(msg) => (StatusCode::BAD_GATEWAY, obj! { "error" => msg }),
        // A failed θ-band names itself: "band" is machine-readable so an
        // operator (or a retrying client) knows which shard of the
        // deployment is unhealthy instead of reading it out of prose.
        BackendError::Band { band, message } => (
            StatusCode::BAD_GATEWAY,
            obj! {
                "error" => format!("band {band}: {message}"),
                "band" => band,
            },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_finds_the_empty_line_in_both_newline_dialects() {
        assert_eq!(head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(18));
        assert_eq!(head_end(b"GET / HTTP/1.1\n\n"), Some(16));
        assert_eq!(head_end(b"GET / HTTP/1.1\r\n\nbody"), Some(17));
        assert_eq!(head_end(b"GET / HTTP/1.1\r\nHost: x\r\n"), None);
        assert_eq!(head_end(b""), None);
    }

    #[test]
    fn body_hint_mirrors_parser_content_length_rules() {
        let limits = Limits {
            max_head_bytes: 1024,
            max_body_bytes: 100,
        };
        let head = |s: &str| s.as_bytes().to_vec();
        assert_eq!(body_hint(&head("GET / HTTP/1.1\r\n"), limits), Some(0));
        assert_eq!(
            body_hint(&head("POST / HTTP/1.1\r\nContent-Length: 42\r\n"), limits),
            Some(42)
        );
        // Parser-fatal shapes parse immediately (None): oversized,
        // malformed, duplicated, signed, transfer-encoded.
        assert_eq!(
            body_hint(&head("POST / HTTP/1.1\r\nContent-Length: 101\r\n"), limits),
            None
        );
        assert_eq!(
            body_hint(&head("POST / HTTP/1.1\r\nContent-Length: nope\r\n"), limits),
            None
        );
        assert_eq!(
            body_hint(&head("POST / HTTP/1.1\r\nContent-Length: +4\r\n"), limits),
            None
        );
        assert_eq!(
            body_hint(
                &head("POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n"),
                limits
            ),
            None
        );
        assert_eq!(
            body_hint(
                &head("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"),
                limits
            ),
            None
        );
        // Case-insensitive names, like the parser.
        assert_eq!(
            body_hint(&head("POST / HTTP/1.1\r\ncontent-LENGTH: 7\r\n"), limits),
            Some(7)
        );
    }
}
