//! The peer-transport abstraction a [`crate::RouterNode`] dispatches
//! remote θ-bands through, plus the micro-batching wrapper that coalesces
//! concurrent singles to one peer into one wire call.
//!
//! [`PeerTransport`] is the seam that makes the router's concurrency
//! testable: production wires [`crate::RemoteShard`] (real HTTP) into it,
//! while the deterministic fault/latency doubles in [`crate::testing`]
//! implement the same trait to inject slow, flaky, or reordered peers
//! without real sockets or sleeps — `tests/router_fanout.rs` and
//! `tests/remote_coalescing.rs` prove the parallel fan-out and the
//! coalescer byte-equivalent to their naive counterparts under that
//! adversarial timing.

use crate::BackendError;
use ganc_dataset::{ItemId, UserId};
use ganc_obs::WindowWire;
use ganc_serve::{BatchConfig, BatchSource, Coalescer, IngestAck, RequestOptions, ServeError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One ingest in a coalesced fan-out batch: the interaction plus the
/// idempotency key that makes retrying it safe.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestEntry {
    /// Idempotency key, when the originating request carried (or the
    /// router generated) one.
    pub key: Option<String>,
    /// User the rating came from.
    pub user: UserId,
    /// Item rated.
    pub item: ItemId,
    /// Rating value.
    pub rating: f32,
}

/// A peer node serving one θ-band slice, reachable by whatever transport:
/// real HTTP ([`crate::RemoteShard`]), an in-process engine, or an
/// injection double wrapping either.
pub trait PeerTransport: Send + Sync {
    /// Where this peer lives, for stats and error labels (an address for
    /// real peers, a description for doubles).
    fn label(&self) -> String;

    /// Answer one user's request with the peer's generation.
    fn recommend_traced(&self, user: UserId) -> Result<(Arc<Vec<ItemId>>, u64), BackendError>;

    /// Answer a batch in-slot; the whole batch shares one generation.
    #[allow(clippy::type_complexity)]
    fn recommend_batch_traced(
        &self,
        users: &[UserId],
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError>;

    /// Answer one user's request under per-request overrides (θ, an
    /// exclusion list, an online re-ranker). The default delegates default
    /// options to [`PeerTransport::recommend_traced`] — override-aware
    /// transports ([`crate::RemoteShard`], the loopback [`crate::Frontend`],
    /// the injection doubles) forward non-default options; anything else
    /// refuses them rather than silently serving the unmodified list.
    fn recommend_with_traced(
        &self,
        user: UserId,
        opts: &RequestOptions,
    ) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
        if opts.is_default() {
            return self.recommend_traced(user);
        }
        Err(BackendError::Transport(format!(
            "{}: transport does not support per-request overrides",
            self.label()
        )))
    }

    /// Batch counterpart of [`PeerTransport::recommend_with_traced`]: one
    /// options set applies to every user of the batch.
    #[allow(clippy::type_complexity)]
    fn recommend_batch_with_traced(
        &self,
        users: &[UserId],
        opts: &RequestOptions,
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
        if opts.is_default() {
            return self.recommend_batch_traced(users);
        }
        Err(BackendError::Transport(format!(
            "{}: transport does not support per-request overrides",
            self.label()
        )))
    }

    /// Apply one observed interaction on the peer.
    fn ingest(&self, user: UserId, item: ItemId, rating: f32) -> Result<(), BackendError>;

    /// Apply one interaction with an optional idempotency key. The default
    /// drops the key (a transport without a durable backend has no dedup
    /// window to honor it) and reports [`IngestAck::Applied`]; key-aware
    /// transports ([`crate::RemoteShard`]) forward it on the wire.
    fn ingest_keyed(
        &self,
        key: Option<&str>,
        user: UserId,
        item: ItemId,
        rating: f32,
    ) -> Result<IngestAck, BackendError> {
        let _ = key;
        self.ingest(user, item, rating).map(|()| IngestAck::Applied)
    }

    /// Apply a batch of keyed interactions in one call, answering
    /// per-slot: one rejected entry (unknown id) must not fail its
    /// coalesced companions. The default loops [`PeerTransport::ingest_keyed`];
    /// wire transports override with one `POST /v1/ingest:batch` round-trip.
    #[allow(clippy::type_complexity)]
    fn ingest_batch(
        &self,
        entries: &[IngestEntry],
    ) -> Result<Vec<Result<IngestAck, ServeError>>, BackendError> {
        let mut out = Vec::with_capacity(entries.len());
        for e in entries {
            match self.ingest_keyed(e.key.as_deref(), e.user, e.item, e.rating) {
                Ok(ack) => out.push(Ok(ack)),
                Err(BackendError::Serve(se)) => out.push(Err(se)),
                // A transport failure poisons the whole batch — nothing
                // after it is known to have reached the peer.
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// The peer's current bundle generation.
    fn generation(&self) -> Result<u64, BackendError>;

    /// Short kind label for stats (`"remote"` unless a wrapper overrides).
    fn kind(&self) -> &'static str {
        "remote"
    }

    /// Queue depth for coalescing wrappers; `None` when the transport
    /// holds no queue.
    fn pending_depth(&self) -> Option<usize> {
        None
    }

    /// The peer's rolling beyond-accuracy window as a transportable
    /// summary, so a router can fold remote bands into its aggregate
    /// `/v1/stats` view. `Ok(None)` means the peer exposes no window
    /// (the default for transports without one); wire transports
    /// ([`crate::RemoteShard`]) fetch it over `GET /v1/window`, and
    /// wrappers forward to their inner peer.
    fn window_wire(&self) -> Result<Option<WindowWire>, BackendError> {
        Ok(None)
    }
}

/// Adapter: a shared peer is a [`BatchSource`], so the generic serve-side
/// [`Coalescer`] can drive it.
struct PeerSource(Arc<dyn PeerTransport>);

impl BatchSource for PeerSource {
    type Error = BackendError;

    fn batch(
        &self,
        users: &[UserId],
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
        self.0.recommend_batch_traced(users)
    }
}

/// Micro-batching for the ingest direction: concurrent single ingests to
/// one peer merge into one [`PeerTransport::ingest_batch`] wire call.
///
/// Same worker shape, linger policy, and flush-on-shutdown contract as the
/// serve-side [`Coalescer`], but for writes the safety argument is
/// different: batching writes is only sound because every entry carries
/// (or can carry) an idempotency key — a caller that retries after a
/// whole-batch transport failure re-sends entries that may already have
/// landed, and the peer's dedup window is what makes that a no-op.
struct IngestCoalescer {
    tx: Mutex<Option<mpsc::Sender<PendingIngest>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
    accepted: Arc<AtomicUsize>,
    answered: Arc<AtomicUsize>,
}

struct PendingIngest {
    entry: IngestEntry,
    reply: mpsc::Sender<Result<IngestAck, BackendError>>,
}

impl IngestCoalescer {
    fn spawn(peer: Arc<dyn PeerTransport>, cfg: BatchConfig) -> IngestCoalescer {
        let (tx, rx) = mpsc::channel::<PendingIngest>();
        let max_batch = cfg.max_batch.max(1);
        let max_wait = cfg.max_wait;
        let accepted = Arc::new(AtomicUsize::new(0));
        let answered = Arc::new(AtomicUsize::new(0));
        let worker = {
            let answered = Arc::clone(&answered);
            std::thread::spawn(move || {
                while let Ok(first) = rx.recv() {
                    let mut batch = vec![first];
                    let deadline = Instant::now() + max_wait;
                    // Backlog first (free), then linger for stragglers.
                    while batch.len() < max_batch {
                        match rx.try_recv() {
                            Ok(req) => batch.push(req),
                            Err(_) => break,
                        }
                    }
                    while batch.len() < max_batch {
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        match rx.recv_timeout(deadline - now) {
                            Ok(req) => batch.push(req),
                            Err(_) => break,
                        }
                    }
                    let entries: Vec<IngestEntry> = batch.iter().map(|r| r.entry.clone()).collect();
                    match peer.ingest_batch(&entries) {
                        Ok(slots) => {
                            assert_eq!(
                                slots.len(),
                                batch.len(),
                                "ingest_batch contract violation: {} slots for {} entries",
                                slots.len(),
                                batch.len()
                            );
                            for (req, slot) in batch.iter().zip(slots) {
                                let _ = req.reply.send(slot.map_err(BackendError::Serve));
                            }
                        }
                        Err(e) => {
                            for req in &batch {
                                let _ = req.reply.send(Err(e.clone()));
                            }
                        }
                    }
                    answered.fetch_add(batch.len(), Ordering::Release);
                }
            })
        };
        IngestCoalescer {
            tx: Mutex::new(Some(tx)),
            worker: Mutex::new(Some(worker)),
            accepted,
            answered,
        }
    }

    fn submit(&self, entry: IngestEntry) -> Result<IngestAck, BackendError> {
        // Racing shutdown or a dead worker fails this one request — never
        // the serving thread. The caller sees a transport error exactly
        // as if the peer went away, and a retry under the same key is
        // safe (that is the idempotency contract).
        let Some(tx) = self.tx.lock().unwrap().as_ref().cloned() else {
            return Err(BackendError::Transport(
                "ingest coalescer shut down".to_string(),
            ));
        };
        let (reply_tx, reply_rx) = mpsc::channel();
        if tx
            .send(PendingIngest {
                entry,
                reply: reply_tx,
            })
            .is_err()
        {
            return Err(BackendError::Transport(
                "ingest batch worker died".to_string(),
            ));
        }
        self.accepted.fetch_add(1, Ordering::Release);
        drop(tx);
        reply_rx.recv().unwrap_or_else(|_| {
            // Count the orphaned request as answered so pending() drains.
            self.answered.fetch_add(1, Ordering::Release);
            Err(BackendError::Transport(
                "ingest batch worker died before answering".to_string(),
            ))
        })
    }

    fn pending(&self) -> usize {
        let answered = self.answered.load(Ordering::Acquire);
        self.accepted
            .load(Ordering::Acquire)
            .saturating_sub(answered)
    }

    fn shutdown(&self) {
        // Drop the sender first: the worker drains the queue (flushing
        // accepted ingests) and exits; then join it.
        self.tx.lock().unwrap().take();
        if let Some(worker) = self.worker.lock().unwrap().take() {
            let _ = worker.join();
        }
    }
}

impl Drop for IngestCoalescer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A coalescing wrapper around a peer: concurrent *single* requests merge
/// into one `POST /v1/recommend:batch` wire call, and concurrent single
/// ingests merge into one `POST /v1/ingest:batch` (both bounded by the
/// linger window and batch cap in [`BatchConfig`]), so a router under
/// concurrent load pays one round-trip per batch instead of one per
/// request in either direction.
///
/// Single-generation guarantee: every caller coalesced into one batch is
/// answered from that batch's one generation — the peer's batch endpoint
/// serves a whole batch from exactly one bundle generation, and the
/// coalescer never splits one logical flush across wire calls. Recommend
/// batches pass straight through to the inner peer (already batched).
/// Coalescing ingests is safe precisely because of the idempotency-key
/// contract: a batch that fails in transit can be retried entry-by-entry
/// and the peer's dedup window absorbs any entry that already landed.
pub struct CoalescedShard {
    inner: Arc<dyn PeerTransport>,
    coalescer: Coalescer<PeerSource>,
    ingests: IngestCoalescer,
}

impl CoalescedShard {
    /// Wrap `inner`, coalescing its single-request and single-ingest
    /// traffic under `cfg`.
    pub fn new(inner: Arc<dyn PeerTransport>, cfg: BatchConfig) -> CoalescedShard {
        CoalescedShard {
            coalescer: Coalescer::spawn(PeerSource(Arc::clone(&inner)), cfg),
            ingests: IngestCoalescer::spawn(Arc::clone(&inner), cfg),
            inner,
        }
    }

    /// Requests and ingests accepted by the coalescers but not yet
    /// answered.
    pub fn pending(&self) -> usize {
        self.coalescer.pending() + self.ingests.pending()
    }

    /// Close both queues, flush accepted work, and join the workers (see
    /// [`Coalescer::shutdown`]). Also runs on drop.
    pub fn shutdown(&self) {
        self.coalescer.shutdown();
        self.ingests.shutdown();
    }
}

impl PeerTransport for CoalescedShard {
    fn label(&self) -> String {
        self.inner.label()
    }

    fn recommend_traced(&self, user: UserId) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
        match self.coalescer.request_traced(user)? {
            (Ok(list), generation) => Ok((list, generation)),
            (Err(e), _) => Err(BackendError::Serve(e)),
        }
    }

    fn recommend_batch_traced(
        &self,
        users: &[UserId],
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
        self.inner.recommend_batch_traced(users)
    }

    /// Override singles bypass the coalescer straight to the inner peer:
    /// the coalescer merges callers into one default-path batch, and a
    /// request carrying its own θ/exclusions/re-ranker folded into that
    /// batch would be answered with someone else's list. Default options
    /// take the coalesced path unchanged.
    fn recommend_with_traced(
        &self,
        user: UserId,
        opts: &RequestOptions,
    ) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
        if opts.is_default() {
            return PeerTransport::recommend_traced(self, user);
        }
        self.inner.recommend_with_traced(user, opts)
    }

    fn recommend_batch_with_traced(
        &self,
        users: &[UserId],
        opts: &RequestOptions,
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
        // Batches never coalesce; straight through either way.
        if opts.is_default() {
            return self.inner.recommend_batch_traced(users);
        }
        self.inner.recommend_batch_with_traced(users, opts)
    }

    fn ingest(&self, user: UserId, item: ItemId, rating: f32) -> Result<(), BackendError> {
        self.ingest_keyed(None, user, item, rating).map(|_| ())
    }

    fn ingest_keyed(
        &self,
        key: Option<&str>,
        user: UserId,
        item: ItemId,
        rating: f32,
    ) -> Result<IngestAck, BackendError> {
        self.ingests.submit(IngestEntry {
            key: key.map(str::to_string),
            user,
            item,
            rating,
        })
    }

    fn ingest_batch(
        &self,
        entries: &[IngestEntry],
    ) -> Result<Vec<Result<IngestAck, ServeError>>, BackendError> {
        // Already a batch: straight through, one wire call.
        self.inner.ingest_batch(entries)
    }

    fn generation(&self) -> Result<u64, BackendError> {
        self.inner.generation()
    }

    fn kind(&self) -> &'static str {
        "coalesced"
    }

    fn pending_depth(&self) -> Option<usize> {
        Some(self.pending())
    }

    fn window_wire(&self) -> Result<Option<WindowWire>, BackendError> {
        self.inner.window_wire()
    }
}
