//! The peer-transport abstraction a [`crate::RouterNode`] dispatches
//! remote θ-bands through, plus the micro-batching wrapper that coalesces
//! concurrent singles to one peer into one wire call.
//!
//! [`PeerTransport`] is the seam that makes the router's concurrency
//! testable: production wires [`crate::RemoteShard`] (real HTTP) into it,
//! while the deterministic fault/latency doubles in [`crate::testing`]
//! implement the same trait to inject slow, flaky, or reordered peers
//! without real sockets or sleeps — `tests/router_fanout.rs` and
//! `tests/remote_coalescing.rs` prove the parallel fan-out and the
//! coalescer byte-equivalent to their naive counterparts under that
//! adversarial timing.

use crate::BackendError;
use ganc_dataset::{ItemId, UserId};
use ganc_serve::{BatchConfig, BatchSource, Coalescer, ServeError};
use std::sync::Arc;

/// A peer node serving one θ-band slice, reachable by whatever transport:
/// real HTTP ([`crate::RemoteShard`]), an in-process engine, or an
/// injection double wrapping either.
pub trait PeerTransport: Send + Sync {
    /// Where this peer lives, for stats and error labels (an address for
    /// real peers, a description for doubles).
    fn label(&self) -> String;

    /// Answer one user's request with the peer's generation.
    fn recommend_traced(&self, user: UserId) -> Result<(Arc<Vec<ItemId>>, u64), BackendError>;

    /// Answer a batch in-slot; the whole batch shares one generation.
    #[allow(clippy::type_complexity)]
    fn recommend_batch_traced(
        &self,
        users: &[UserId],
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError>;

    /// Apply one observed interaction on the peer.
    fn ingest(&self, user: UserId, item: ItemId, rating: f32) -> Result<(), BackendError>;

    /// The peer's current bundle generation.
    fn generation(&self) -> Result<u64, BackendError>;

    /// Short kind label for stats (`"remote"` unless a wrapper overrides).
    fn kind(&self) -> &'static str {
        "remote"
    }

    /// Queue depth for coalescing wrappers; `None` when the transport
    /// holds no queue.
    fn pending_depth(&self) -> Option<usize> {
        None
    }
}

/// Adapter: a shared peer is a [`BatchSource`], so the generic serve-side
/// [`Coalescer`] can drive it.
struct PeerSource(Arc<dyn PeerTransport>);

impl BatchSource for PeerSource {
    type Error = BackendError;

    fn batch(
        &self,
        users: &[UserId],
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
        self.0.recommend_batch_traced(users)
    }
}

/// A coalescing wrapper around a peer: concurrent *single* requests merge
/// into one `POST /v1/recommend:batch` wire call (bounded by the linger
/// window and batch cap in [`BatchConfig`]), so a router under concurrent
/// load pays one round-trip per batch instead of one per request.
///
/// Single-generation guarantee: every caller coalesced into one batch is
/// answered from that batch's one generation — the peer's batch endpoint
/// serves a whole batch from exactly one bundle generation, and the
/// coalescer never splits one logical flush across wire calls. Batches and
/// ingests pass straight through to the inner peer (they are already
/// batched, or must not be reordered).
pub struct CoalescedShard {
    inner: Arc<dyn PeerTransport>,
    coalescer: Coalescer<PeerSource>,
}

impl CoalescedShard {
    /// Wrap `inner`, coalescing its single-request traffic under `cfg`.
    pub fn new(inner: Arc<dyn PeerTransport>, cfg: BatchConfig) -> CoalescedShard {
        CoalescedShard {
            coalescer: Coalescer::spawn(PeerSource(Arc::clone(&inner)), cfg),
            inner,
        }
    }

    /// Requests accepted by the coalescer but not yet answered.
    pub fn pending(&self) -> usize {
        self.coalescer.pending()
    }

    /// Close the queue, flush accepted requests, and join the worker (see
    /// [`Coalescer::shutdown`]). Also runs on drop.
    pub fn shutdown(&self) {
        self.coalescer.shutdown();
    }
}

impl PeerTransport for CoalescedShard {
    fn label(&self) -> String {
        self.inner.label()
    }

    fn recommend_traced(&self, user: UserId) -> Result<(Arc<Vec<ItemId>>, u64), BackendError> {
        match self.coalescer.request_traced(user)? {
            (Ok(list), generation) => Ok((list, generation)),
            (Err(e), _) => Err(BackendError::Serve(e)),
        }
    }

    fn recommend_batch_traced(
        &self,
        users: &[UserId],
    ) -> Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError> {
        self.inner.recommend_batch_traced(users)
    }

    fn ingest(&self, user: UserId, item: ItemId, rating: f32) -> Result<(), BackendError> {
        self.inner.ingest(user, item, rating)
    }

    fn generation(&self) -> Result<u64, BackendError> {
        self.inner.generation()
    }

    fn kind(&self) -> &'static str {
        "coalesced"
    }

    fn pending_depth(&self) -> Option<usize> {
        Some(self.pending())
    }
}
