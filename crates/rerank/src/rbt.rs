//! RBT — Ranking-Based Techniques (Adomavicius & Kwon, TKDE 2012; §IV-A).
//!
//! RBT re-ranks the output of a rating-prediction model: every candidate
//! whose predicted rating clears the threshold `T_R` is considered "good
//! enough" and re-ranked by an accuracy-agnostic criterion; candidates below
//! the threshold keep their prediction order and fill any remaining slots.
//! `T_R` (∈ `[T_H, T_max]`) controls the accuracy/diversity trade-off: at
//! `T_R = T_max` RBT degenerates to the standard ranking.
//!
//! The two criteria evaluated in the paper:
//!
//! * **Pop** — ascending train popularity (push the obscure items first);
//! * **Avg** — descending item average rating (push well-liked items
//!   regardless of popularity).
//!
//! Paper configuration: `T_max = 5`, `T_R = 4.5`, `T_H ∈ {0, 1}` (the
//! minimum number of above-threshold candidates required before re-ranking
//! kicks in).

use crate::Reranker;
use ganc_dataset::{Interactions, ItemId, UserId};

/// The re-ranking criterion applied to above-threshold candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RbtCriterion {
    /// Ascending item popularity (`Pop`).
    Popularity,
    /// Descending item average rating (`Avg`).
    AverageRating,
}

impl RbtCriterion {
    fn label(&self) -> &'static str {
        match self {
            RbtCriterion::Popularity => "Pop",
            RbtCriterion::AverageRating => "Avg",
        }
    }
}

/// A configured RBT re-ranker.
#[derive(Debug, Clone)]
pub struct Rbt {
    criterion: RbtCriterion,
    /// Ranking threshold `T_R` on the predicted-rating scale.
    tr: f64,
    /// Minimum above-threshold candidates required to re-rank (`T_H`).
    th: usize,
    base_name: String,
    popularity: Vec<u32>,
    item_means: Vec<f64>,
}

impl Rbt {
    /// Build from the train set with the paper's parameters
    /// (`T_R = 4.5`, `T_H = 1`).
    pub fn new(train: &Interactions, criterion: RbtCriterion, base_name: &str) -> Rbt {
        Rbt::with_params(train, criterion, base_name, 4.5, 1)
    }

    /// Build with explicit `T_R` and `T_H`.
    pub fn with_params(
        train: &Interactions,
        criterion: RbtCriterion,
        base_name: &str,
        tr: f64,
        th: usize,
    ) -> Rbt {
        Rbt {
            criterion,
            tr,
            th,
            base_name: base_name.to_string(),
            popularity: train.item_popularity(),
            item_means: train.item_means(0.0),
        }
    }

    /// The configured threshold `T_R`.
    pub fn tr(&self) -> f64 {
        self.tr
    }
}

impl Reranker for Rbt {
    fn name(&self) -> String {
        format!("RBT({}, {})", self.base_name, self.criterion.label())
    }

    fn rerank(
        &self,
        _user: UserId,
        base_scores: &[f64],
        candidates: &[u32],
        n: usize,
    ) -> Vec<ItemId> {
        let mut head: Vec<u32> = Vec::new();
        let mut tail: Vec<u32> = Vec::new();
        for &i in candidates {
            if base_scores[i as usize] >= self.tr {
                head.push(i);
            } else {
                tail.push(i);
            }
        }
        if head.len() < self.th {
            // Not enough confident candidates: fall back to pure prediction
            // order over everything.
            tail.append(&mut head);
        }
        match self.criterion {
            RbtCriterion::Popularity => head.sort_by(|&a, &b| {
                self.popularity[a as usize]
                    .cmp(&self.popularity[b as usize])
                    .then(a.cmp(&b))
            }),
            RbtCriterion::AverageRating => head.sort_by(|&a, &b| {
                self.item_means[b as usize]
                    .total_cmp(&self.item_means[a as usize])
                    .then(a.cmp(&b))
            }),
        }
        // Below-threshold items keep the standard prediction order.
        tail.sort_by(|&a, &b| {
            base_scores[b as usize]
                .total_cmp(&base_scores[a as usize])
                .then(a.cmp(&b))
        });
        head.into_iter().chain(tail).take(n).map(ItemId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganc_dataset::{DatasetBuilder, RatingScale};

    /// popularity: item0=4, item1=2, item2=1, item3=1;
    /// means: item0=2.0, item1=5.0, item2=4.0, item3=3.0
    fn train() -> Interactions {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        for u in 0..4u32 {
            b.push(UserId(u), ItemId(0), 2.0).unwrap();
        }
        b.push(UserId(0), ItemId(1), 5.0).unwrap();
        b.push(UserId(1), ItemId(1), 5.0).unwrap();
        b.push(UserId(0), ItemId(2), 4.0).unwrap();
        b.push(UserId(1), ItemId(3), 3.0).unwrap();
        b.build().unwrap().interactions()
    }

    #[test]
    fn pop_criterion_prefers_unpopular_above_threshold() {
        let rbt = Rbt::with_params(&train(), RbtCriterion::Popularity, "X", 4.0, 0);
        // predictions: items 0..3 = [4.5, 4.2, 4.8, 3.0] → head {0,1,2}
        let scores = vec![4.5, 4.2, 4.8, 3.0];
        let list = rbt.rerank(UserId(0), &scores, &[0, 1, 2, 3], 4);
        // head sorted by ascending popularity: 2 (pop1), 1 (pop2), 0 (pop4)
        assert_eq!(list, vec![ItemId(2), ItemId(1), ItemId(0), ItemId(3)]);
    }

    #[test]
    fn avg_criterion_prefers_well_rated() {
        let rbt = Rbt::with_params(&train(), RbtCriterion::AverageRating, "X", 4.0, 0);
        let scores = vec![4.5, 4.2, 4.8, 3.0];
        let list = rbt.rerank(UserId(0), &scores, &[0, 1, 2, 3], 3);
        // head {0,1,2} sorted by descending mean: 1 (5.0), 2 (4.0), 0 (2.0)
        assert_eq!(list, vec![ItemId(1), ItemId(2), ItemId(0)]);
    }

    #[test]
    fn below_threshold_fills_by_prediction() {
        let rbt = Rbt::with_params(&train(), RbtCriterion::Popularity, "X", 4.9, 0);
        let scores = vec![4.5, 4.2, 4.8, 3.0];
        // nothing clears 4.9 → pure prediction order
        let list = rbt.rerank(UserId(0), &scores, &[0, 1, 2, 3], 4);
        assert_eq!(list, vec![ItemId(2), ItemId(0), ItemId(1), ItemId(3)]);
    }

    #[test]
    fn th_gate_disables_reranking_for_thin_heads() {
        // Only one candidate clears TR but TH=2 → fall back to prediction
        // order.
        let rbt = Rbt::with_params(&train(), RbtCriterion::Popularity, "X", 4.6, 2);
        let scores = vec![4.5, 4.2, 4.8, 3.0];
        let list = rbt.rerank(UserId(0), &scores, &[0, 1, 2, 3], 2);
        assert_eq!(list, vec![ItemId(2), ItemId(0)]);
    }

    #[test]
    fn tr_equal_tmax_degenerates_to_standard_ranking() {
        let rbt = Rbt::with_params(&train(), RbtCriterion::Popularity, "X", 5.01, 0);
        let scores = vec![4.5, 4.2, 4.8, 3.0];
        let list = rbt.rerank(UserId(0), &scores, &[0, 1, 2, 3], 4);
        assert_eq!(list, vec![ItemId(2), ItemId(0), ItemId(1), ItemId(3)]);
    }

    #[test]
    fn name_is_paper_template() {
        let rbt = Rbt::new(&train(), RbtCriterion::Popularity, "RSVD");
        assert_eq!(Reranker::name(&rbt), "RBT(RSVD, Pop)");
        let rbt = Rbt::new(&train(), RbtCriterion::AverageRating, "RSVD");
        assert_eq!(Reranker::name(&rbt), "RBT(RSVD, Avg)");
    }

    #[test]
    fn respects_candidate_restriction() {
        let rbt = Rbt::with_params(&train(), RbtCriterion::Popularity, "X", 4.0, 0);
        let scores = vec![4.5, 4.2, 4.8, 3.0];
        let list = rbt.rerank(UserId(0), &scores, &[1, 3], 5);
        assert_eq!(list, vec![ItemId(1), ItemId(3)]);
    }
}
