//! # ganc-rerank
//!
//! The competing re-ranking frameworks the paper evaluates against
//! (§IV-A, Table IV):
//!
//! * [`rbt::Rbt`] — Ranking-Based Techniques (Adomavicius & Kwon, TKDE'12):
//!   items predicted above a rating threshold `T_R` are re-ranked by an
//!   alternative criterion (item popularity or average rating).
//! * [`five_d::FiveD`] — resource-allocation re-ranking (Ho et al.,
//!   WSDM'14): a 5-criterion score (accuracy, balance, coverage, quality,
//!   long-tail quantity) with optional accuracy filtering (A) and
//!   rank-by-rankings aggregation (RR).
//! * [`pra::Pra`] — Personalized Ranking Adaptation (Jugovac et al., 2017):
//!   greedy swap-based adaptation of the head of the list toward each
//!   user's popularity tendency.
//!
//! All three implement [`Reranker`], which consumes the **raw score buffer
//! of a base recommender** for one user and emits the re-ranked top-N list;
//! [`rerank_all`] drives any re-ranker over the whole population in
//! parallel.

pub mod five_d;
pub mod pra;
pub mod rbt;

use ganc_dataset::{Interactions, ItemId, UserId};
use ganc_recommender::topn::{train_item_mask, unseen_train_candidates};
use ganc_recommender::Recommender;

/// A post-processor of base-recommender scores for a single user.
pub trait Reranker: Send + Sync {
    /// Name for experiment tables, e.g. `"RBT(RSVD, Pop)"`.
    fn name(&self) -> String;

    /// Produce the top-`n` list for `user`.
    ///
    /// `base_scores` holds the base model's raw score for every item
    /// (predicted ratings for rating models); `candidates` are the item ids
    /// eligible under the evaluation protocol, in ascending order.
    fn rerank(
        &self,
        user: UserId,
        base_scores: &[f64],
        candidates: &[u32],
        n: usize,
    ) -> Vec<ItemId>;
}

/// Run a re-ranker over every user, computing base scores per user and
/// parallelizing over user chunks. Candidates follow the paper's
/// all-unrated-items protocol.
pub fn rerank_all(
    reranker: &dyn Reranker,
    base: &dyn Recommender,
    train: &Interactions,
    n: usize,
    threads: usize,
) -> Vec<Vec<ItemId>> {
    let n_users = train.n_users() as usize;
    let n_items = train.n_items() as usize;
    let in_train = train_item_mask(train);
    let mut lists: Vec<Vec<ItemId>> = vec![Vec::new(); n_users];
    let threads = threads.max(1).min(n_users.max(1));
    let chunk = n_users.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, out_chunk) in lists.chunks_mut(chunk).enumerate() {
            let in_train = &in_train;
            scope.spawn(move || {
                let mut scores = vec![0.0f64; n_items];
                let mut cands: Vec<u32> = Vec::with_capacity(n_items);
                let base_user = t * chunk;
                for (off, slot) in out_chunk.iter_mut().enumerate() {
                    let u = UserId((base_user + off) as u32);
                    base.score_items(u, &mut scores);
                    cands.clear();
                    cands.extend(unseen_train_candidates(train, in_train, u));
                    *slot = reranker.rerank(u, &scores, &cands, n);
                }
            });
        }
    });
    lists
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganc_dataset::{DatasetBuilder, RatingScale};
    use ganc_recommender::pop::MostPopular;

    struct Reverse;
    impl Reranker for Reverse {
        fn name(&self) -> String {
            "reverse".into()
        }
        fn rerank(
            &self,
            _user: UserId,
            base_scores: &[f64],
            candidates: &[u32],
            n: usize,
        ) -> Vec<ItemId> {
            // lowest base score first — a trivial inversion
            let mut c: Vec<u32> = candidates.to_vec();
            c.sort_by(|&a, &b| {
                base_scores[a as usize]
                    .total_cmp(&base_scores[b as usize])
                    .then(a.cmp(&b))
            });
            c.into_iter().take(n).map(ItemId).collect()
        }
    }

    #[test]
    fn driver_feeds_candidates_and_scores() {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        for u in 0..4u32 {
            b.push(UserId(u), ItemId(0), 4.0).unwrap();
        }
        for u in 0..2u32 {
            b.push(UserId(u), ItemId(1), 4.0).unwrap();
        }
        b.push(UserId(0), ItemId(2), 4.0).unwrap();
        let m = b.build().unwrap().interactions();
        let pop = MostPopular::fit(&m);
        let lists = rerank_all(&Reverse, &pop, &m, 2, 2);
        // user 3 candidates {1,2}; reverse of popularity → item 2 first.
        assert_eq!(lists[3], vec![ItemId(2), ItemId(1)]);
        // user 0 saw everything → empty.
        assert!(lists[0].is_empty());
    }

    #[test]
    fn driver_is_thread_count_invariant() {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        for u in 0..9u32 {
            for i in 0..6u32 {
                if (u + i) % 3 != 0 {
                    b.push(UserId(u), ItemId(i), 3.0).unwrap();
                }
            }
        }
        let m = b.build().unwrap().interactions();
        let pop = MostPopular::fit(&m);
        let a = rerank_all(&Reverse, &pop, &m, 3, 1);
        let b2 = rerank_all(&Reverse, &pop, &m, 3, 5);
        assert_eq!(a, b2);
    }
}
