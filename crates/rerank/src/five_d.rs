//! 5D resource-allocation re-ranking (Ho, Chiang & Hsu, WSDM 2014; §IV-A).
//!
//! Reconstructed from the paper's summary (the original is not openly
//! redistributable; substitution documented in DESIGN.md §2):
//!
//! 1. **Resource allocation.** Items seed resource proportional to their
//!    per-rater rating mass; a heat-conduction pass (degree-normalized on
//!    both the user and the item side of the bipartite graph) spreads it.
//!    The surviving per-item mass is the item's community "worth": tail
//!    items beloved by low-activity users collect the most — the
//!    long-tail-advocacy behaviour Ho et al. engineer with their
//!    allocation phases.
//! 2. **5D scoring.** Each user–item pair gets five criterion scores:
//!    *accuracy* (normalized base prediction), *balance* (closeness of the
//!    item's popularity to the user's historical mean popularity),
//!    *coverage* (inverse popularity), *quality* (damped mean rating), and
//!    *quantity* (long-tail membership), each weighted `q = 1`.
//! 3. **Aggregation.** Either a direct weighted sum, or **RR**
//!    (rank-by-rankings): per-criterion ranks among the candidates are
//!    summed — a Borda-style aggregation that is scale-free.
//! 4. **A** (accuracy filtering): restrict candidates to the top `k = 3·N`
//!    by base prediction before scoring.
//!
//! The variant grid matches the paper: `5D(RSVD)` (plain sum, no filter)
//! and `5D(RSVD, A, RR)`.

use crate::Reranker;
use ganc_dataset::stats::LongTail;
use ganc_dataset::{Interactions, ItemId, UserId};

/// Configured 5D re-ranker.
#[derive(Debug, Clone)]
pub struct FiveD {
    base_name: String,
    accuracy_filter: bool,
    rank_by_rankings: bool,
    /// Per-item resource mass from the two-phase allocation, min–max
    /// normalized.
    resource: Vec<f64>,
    /// Train popularity per item.
    popularity: Vec<u32>,
    /// Damped item means normalized to [0, 1].
    quality: Vec<f64>,
    /// Long-tail membership.
    long_tail: Vec<bool>,
}

impl FiveD {
    /// Build the plain variant `5D(base)`.
    pub fn new(train: &Interactions, base_name: &str) -> FiveD {
        FiveD::with_options(train, base_name, false, false)
    }

    /// Build with explicit A (accuracy filter) and RR (rank-by-rankings)
    /// options.
    pub fn with_options(
        train: &Interactions,
        base_name: &str,
        accuracy_filter: bool,
        rank_by_rankings: bool,
    ) -> FiveD {
        let n_items = train.n_items() as usize;
        let popularity = train.item_popularity();
        // Two-phase resource allocation with heat-conduction (HeatS-style)
        // degree normalization on both sides of the bipartite graph: every
        // item starts with resource proportional to its rating mass *per
        // rater*; users average the per-exposure resource of their items;
        // items average their raters' heat. Double degree-normalization is
        // the classic long-tail-promoting kernel — tail items loved by
        // low-activity users end up with the highest worth.
        let initial: Vec<f64> = (0..n_items)
            .map(|i| {
                let (_, vals) = train.item_col(ItemId(i as u32));
                if vals.is_empty() {
                    return 0.0;
                }
                let mean: f64 = vals.iter().map(|&v| v as f64).sum::<f64>() / vals.len() as f64;
                mean / (vals.len() as f64)
            })
            .collect();
        let user_heat: Vec<f64> = (0..train.n_users())
            .map(|u| {
                let (items, _) = train.user_row(UserId(u));
                if items.is_empty() {
                    return 0.0;
                }
                let s: f64 = items.iter().map(|&i| initial[i as usize]).sum();
                s / items.len() as f64
            })
            .collect();
        let mut second: Vec<f64> = (0..n_items)
            .map(|i| {
                let (users, _) = train.item_col(ItemId(i as u32));
                if users.is_empty() {
                    return 0.0;
                }
                let s: f64 = users.iter().map(|&u| user_heat[u as usize]).sum();
                s / users.len() as f64
            })
            .collect();
        ganc_dataset::stats::min_max_normalize(&mut second);
        // Quality: damped mean rating, normalized.
        let mu = train.global_mean();
        let mut quality: Vec<f64> = (0..train.n_items())
            .map(|i| {
                let (_, vals) = train.item_col(ItemId(i));
                let sum: f64 = vals.iter().map(|&v| v as f64).sum();
                (sum + 3.0 * mu) / (vals.len() as f64 + 3.0)
            })
            .collect();
        ganc_dataset::stats::min_max_normalize(&mut quality);
        let lt = LongTail::pareto(train);
        FiveD {
            base_name: base_name.to_string(),
            accuracy_filter,
            rank_by_rankings,
            resource: second,
            popularity,
            quality,
            long_tail: lt.mask().to_vec(),
        }
    }

    /// The five criterion scores for a candidate, each in `[0, 1]`:
    /// accuracy, balance (allocation worth), coverage, quality, quantity.
    fn criteria(&self, _user: UserId, item: u32, acc_norm: f64) -> [f64; 5] {
        let coverage = 1.0 / (self.popularity[item as usize] as f64 + 1.0).sqrt();
        let quality = self.quality[item as usize];
        let quantity = if self.long_tail[item as usize] {
            1.0
        } else {
            0.0
        };
        // "Balance" carries Ho et al.'s relative-preference mass: the
        // per-exposure resource worth of the item.
        [
            acc_norm,
            self.resource[item as usize],
            coverage,
            quality,
            quantity,
        ]
    }
}

impl Reranker for FiveD {
    fn name(&self) -> String {
        match (self.accuracy_filter, self.rank_by_rankings) {
            (false, false) => format!("5D({})", self.base_name),
            (true, true) => format!("5D({}, A, RR)", self.base_name),
            (true, false) => format!("5D({}, A)", self.base_name),
            (false, true) => format!("5D({}, RR)", self.base_name),
        }
    }

    fn rerank(
        &self,
        user: UserId,
        base_scores: &[f64],
        candidates: &[u32],
        n: usize,
    ) -> Vec<ItemId> {
        if candidates.is_empty() || n == 0 {
            return Vec::new();
        }
        // Optional accuracy filter: keep the top 3·N by base prediction.
        let mut pool: Vec<u32> = candidates.to_vec();
        if self.accuracy_filter {
            let k = (3 * n).min(pool.len());
            pool.sort_by(|&a, &b| {
                base_scores[b as usize]
                    .total_cmp(&base_scores[a as usize])
                    .then(a.cmp(&b))
            });
            pool.truncate(k);
        }
        // Normalize base predictions over the pool for the accuracy
        // criterion.
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &i in &pool {
            lo = lo.min(base_scores[i as usize]);
            hi = hi.max(base_scores[i as usize]);
        }
        let span = (hi - lo).max(1e-12);
        let crits: Vec<[f64; 5]> = pool
            .iter()
            .map(|&i| {
                let acc = (base_scores[i as usize] - lo) / span;
                self.criteria(user, i, acc)
            })
            .collect();
        let agg: Vec<f64> = if self.rank_by_rankings {
            // Borda: sum of per-criterion ranks (higher value → better
            // rank → larger Borda score).
            let m = pool.len();
            let mut borda = vec![0.0f64; m];
            let mut order: Vec<usize> = (0..m).collect();
            #[allow(clippy::needless_range_loop)] // criterion indexes a fixed-size per-item array
            for criterion in 0..5usize {
                order.sort_by(|&a, &b| crits[a][criterion].total_cmp(&crits[b][criterion]));
                for (rank, &idx) in order.iter().enumerate() {
                    borda[idx] += rank as f64;
                }
            }
            borda
        } else {
            crits.iter().map(|c| c.iter().sum()).collect()
        };
        let mut order: Vec<usize> = (0..pool.len()).collect();
        order.sort_by(|&a, &b| agg[b].total_cmp(&agg[a]).then(pool[a].cmp(&pool[b])));
        order
            .into_iter()
            .take(n)
            .map(|idx| ItemId(pool[idx]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganc_dataset::{DatasetBuilder, RatingScale};

    /// Strong head item 0 (12 raters), tail items 1..=3.
    fn train() -> Interactions {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        for u in 0..12u32 {
            b.push(UserId(u), ItemId(0), 4.0).unwrap();
        }
        b.push(UserId(0), ItemId(1), 5.0).unwrap();
        b.push(UserId(1), ItemId(2), 3.0).unwrap();
        b.push(UserId(2), ItemId(3), 4.0).unwrap();
        b.build().unwrap().interactions()
    }

    #[test]
    fn promotes_long_tail_over_head() {
        let fd = FiveD::new(&train(), "X");
        // Base model loves the head item.
        let scores = vec![5.0, 3.5, 3.5, 3.5];
        let list = fd.rerank(UserId(5), &scores, &[0, 1, 2, 3], 2);
        // The tail criteria (coverage + quantity) must outvote accuracy.
        assert!(
            list.iter().all(|i| i.0 != 0),
            "head item survived 5D re-ranking: {list:?}"
        );
    }

    #[test]
    fn accuracy_filter_limits_pool() {
        let fd = FiveD::with_options(&train(), "X", true, false);
        // With N=1 the filter keeps the top 3 by prediction; item 3 (lowest
        // prediction) can never appear.
        let scores = vec![5.0, 4.0, 3.9, 0.1];
        let list = fd.rerank(UserId(5), &scores, &[0, 1, 2, 3], 1);
        assert_ne!(list[0], ItemId(3));
    }

    #[test]
    fn rank_by_rankings_is_scale_free() {
        // Multiplying one criterion's scale must not change RR output;
        // verify by comparing against a run where base scores are scaled.
        let fd = FiveD::with_options(&train(), "X", false, true);
        let a = fd.rerank(UserId(5), &[5.0, 3.5, 3.4, 3.3], &[0, 1, 2, 3], 4);
        let b = fd.rerank(UserId(5), &[50.0, 35.0, 34.0, 33.0], &[0, 1, 2, 3], 4);
        assert_eq!(a, b);
    }

    #[test]
    fn names_follow_paper_templates() {
        let t = train();
        assert_eq!(Reranker::name(&FiveD::new(&t, "RSVD")), "5D(RSVD)");
        assert_eq!(
            Reranker::name(&FiveD::with_options(&t, "RSVD", true, true)),
            "5D(RSVD, A, RR)"
        );
    }

    #[test]
    fn empty_candidates_yield_empty_list() {
        let fd = FiveD::new(&train(), "X");
        assert!(fd.rerank(UserId(0), &[1.0; 4], &[], 5).is_empty());
        assert!(fd.rerank(UserId(0), &[1.0; 4], &[1, 2], 0).is_empty());
    }

    #[test]
    fn resource_mass_is_normalized() {
        let fd = FiveD::new(&train(), "X");
        assert!(fd.resource.iter().all(|&r| (0.0..=1.0).contains(&r)));
    }

    #[test]
    fn worth_prefers_concentrated_devotion() {
        let fd = FiveD::new(&train(), "X");
        // Item 1 is a tail item rated 5.0 by its single rater; the head
        // item spreads its mass over 12 raters → lower per-exposure worth.
        let head = fd.criteria(UserId(5), 0, 0.5)[1];
        let tail = fd.criteria(UserId(5), 1, 0.5)[1];
        assert!(tail > head, "tail worth {tail} vs head worth {head}");
    }
}
