//! PRA — Personalized Ranking Adaptation (Jugovac, Jannach & Lerche, 2017;
//! §IV-A).
//!
//! PRA is the other *generic* re-ranking framework the paper compares
//! against. Its novelty-based variant:
//!
//! 1. estimates each user's **popularity tendency** with the
//!    mean-and-deviation heuristic over a sample `S_u` of at most 10 rated
//!    items — the target is the mean normalized popularity, with the sample
//!    standard deviation as the acceptable band;
//! 2. starts from the base model's top-N and an **exchangeable set** `X_u`
//!    of the next `|X_u| ∈ {10, 20}` ranked items;
//! 3. hill-climbs with the **optimal swap** strategy: at each step evaluate
//!    every (list item ↔ candidate) exchange and apply the one that brings
//!    the list's mean popularity closest to the target, for at most
//!    `maxSteps = 20` steps or until the list enters the tolerance band.
//!
//! Unlike GANC, PRA derives user tendencies from item popularity statistics
//! alone (no interest signal, no other users' preferences) — the contrast
//! §II of the paper draws.

use crate::Reranker;
use ganc_dataset::{Interactions, ItemId, UserId};

/// Configured PRA re-ranker.
#[derive(Debug, Clone)]
pub struct Pra {
    base_name: String,
    /// Exchangeable-set size `|X_u|`.
    exchangeable: usize,
    /// Maximum swap steps.
    max_steps: usize,
    /// Normalized item popularity (`f_i^R / max f^R`).
    pop_norm: Vec<f64>,
    /// Per-user popularity target (mean of sample).
    target: Vec<f64>,
    /// Per-user tolerance (std-dev of sample, floored).
    deviation: Vec<f64>,
}

impl Pra {
    /// Build with the paper's defaults (`S_u = min(|I_u|, 10)`,
    /// `maxSteps = 20`).
    pub fn new(train: &Interactions, base_name: &str, exchangeable: usize) -> Pra {
        let popularity = train.item_popularity();
        let max_pop = popularity.iter().copied().max().unwrap_or(1).max(1) as f64;
        let pop_norm: Vec<f64> = popularity.iter().map(|&p| p as f64 / max_pop).collect();
        let mut target = Vec::with_capacity(train.n_users() as usize);
        let mut deviation = Vec::with_capacity(train.n_users() as usize);
        for u in 0..train.n_users() {
            let (items, _) = train.user_row(UserId(u));
            if items.is_empty() {
                target.push(0.5);
                deviation.push(0.25);
                continue;
            }
            // Sample S_u: the paper caps at 10 items; without timestamps we
            // take the 10 *least popular* rated items — the strongest
            // novelty-tendency signal available from popularity statistics.
            let mut pops: Vec<f64> = items.iter().map(|&i| pop_norm[i as usize]).collect();
            pops.sort_by(f64::total_cmp);
            pops.truncate(10.min(pops.len()).max(1));
            let mean = pops.iter().sum::<f64>() / pops.len() as f64;
            let var = pops.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / pops.len() as f64;
            target.push(mean);
            deviation.push(var.sqrt().max(0.02));
        }
        Pra {
            base_name: base_name.to_string(),
            exchangeable,
            max_steps: 20,
            pop_norm,
            target,
            deviation,
        }
    }

    /// The tendency target of one user (test hook).
    pub fn target_of(&self, u: UserId) -> f64 {
        self.target[u.idx()]
    }
}

impl Reranker for Pra {
    fn name(&self) -> String {
        format!("PRA({}, {})", self.base_name, self.exchangeable)
    }

    fn rerank(
        &self,
        user: UserId,
        base_scores: &[f64],
        candidates: &[u32],
        n: usize,
    ) -> Vec<ItemId> {
        if candidates.is_empty() || n == 0 {
            return Vec::new();
        }
        // Base ranking: prediction-descending.
        let mut ranked: Vec<u32> = candidates.to_vec();
        ranked.sort_by(|&a, &b| {
            base_scores[b as usize]
                .total_cmp(&base_scores[a as usize])
                .then(a.cmp(&b))
        });
        let list_len = n.min(ranked.len());
        let mut list: Vec<u32> = ranked[..list_len].to_vec();
        let mut pool: Vec<u32> = ranked[list_len..]
            .iter()
            .copied()
            .take(self.exchangeable)
            .collect();
        if pool.is_empty() {
            return list.into_iter().map(ItemId).collect();
        }
        let target = self.target[user.idx()];
        let dev = self.deviation[user.idx()];
        let mut mean_pop =
            list.iter().map(|&i| self.pop_norm[i as usize]).sum::<f64>() / list_len as f64;
        for _ in 0..self.max_steps {
            if (mean_pop - target).abs() <= dev {
                break; // inside the tendency band
            }
            // Optimal swap: best (list position, pool position) pair.
            let mut best: Option<(usize, usize, f64)> = None;
            let current_gap = (mean_pop - target).abs();
            for (lp, &li) in list.iter().enumerate() {
                for (pp, &pi) in pool.iter().enumerate() {
                    let new_mean = mean_pop
                        + (self.pop_norm[pi as usize] - self.pop_norm[li as usize])
                            / list_len as f64;
                    let gap = (new_mean - target).abs();
                    if gap + 1e-15 < best.map_or(current_gap, |(_, _, g)| g) {
                        best = Some((lp, pp, gap));
                    }
                }
            }
            match best {
                Some((lp, pp, _)) => {
                    std::mem::swap(&mut list[lp], &mut pool[pp]);
                    mean_pop = list.iter().map(|&i| self.pop_norm[i as usize]).sum::<f64>()
                        / list_len as f64;
                }
                None => break, // no improving swap
            }
        }
        list.into_iter().map(ItemId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganc_dataset::{DatasetBuilder, RatingScale};

    /// Popularities: item0=9, item1=6, item2=2, item3=1, item4=1.
    /// User 9 rates only the tail item 4.
    fn train() -> Interactions {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        for u in 0..9u32 {
            b.push(UserId(u), ItemId(0), 4.0).unwrap();
        }
        for u in 0..6u32 {
            b.push(UserId(u), ItemId(1), 4.0).unwrap();
        }
        for u in 0..2u32 {
            b.push(UserId(u), ItemId(2), 4.0).unwrap();
        }
        b.push(UserId(8), ItemId(3), 4.0).unwrap();
        b.push(UserId(9), ItemId(4), 4.0).unwrap();
        b.build().unwrap().interactions()
    }

    #[test]
    fn tail_user_gets_tail_swaps() {
        let m = train();
        let pra = Pra::new(&m, "X", 10);
        // user 9 rated only tail item 4 → target ≈ 1/9, tight deviation.
        // Base ranking favors popular items; PRA must swap tail items in.
        let scores = vec![5.0, 4.5, 4.0, 3.5, 3.4];
        let list = pra.rerank(UserId(9), &scores, &[0, 1, 2, 3], 2);
        let mean_pop_base = (1.0 + 6.0 / 9.0) / 2.0; // items 0,1
        let mean_pop_new: f64 = list.iter().map(|i| pra.pop_norm[i.idx()]).sum::<f64>() / 2.0;
        assert!(
            mean_pop_new < mean_pop_base,
            "PRA should lower mean popularity: {mean_pop_new} vs {mean_pop_base}"
        );
    }

    #[test]
    fn head_user_keeps_popular_list() {
        let m = train();
        let pra = Pra::new(&m, "X", 10);
        // user 3 rated only items {0, 1} (popular) → high target; the base
        // list is already popular → no (or popularity-preserving) swaps.
        let scores = vec![5.0, 4.5, 4.0, 3.5, 3.4];
        let list = pra.rerank(UserId(3), &scores, &[0, 1, 2, 3, 4], 2);
        assert_eq!(list, vec![ItemId(0), ItemId(1)]);
    }

    #[test]
    fn respects_exchangeable_budget() {
        let m = train();
        // With an empty exchangeable set the base list is returned as-is.
        let pra = Pra::new(&m, "X", 0);
        let scores = vec![5.0, 4.5, 4.0, 3.5, 3.4];
        let list = pra.rerank(UserId(9), &scores, &[0, 1, 2, 3, 4], 2);
        assert_eq!(list, vec![ItemId(0), ItemId(1)]);
    }

    #[test]
    fn list_is_duplicate_free_and_sized() {
        let m = train();
        let pra = Pra::new(&m, "X", 20);
        let scores = vec![5.0, 4.5, 4.0, 3.5, 3.4];
        let list = pra.rerank(UserId(9), &scores, &[0, 1, 2, 3, 4], 3);
        assert_eq!(list.len(), 3);
        let mut ids: Vec<u32> = list.iter().map(|i| i.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn name_is_paper_template() {
        let m = train();
        assert_eq!(Reranker::name(&Pra::new(&m, "RSVD", 10)), "PRA(RSVD, 10)");
        assert_eq!(Reranker::name(&Pra::new(&m, "RSVD", 20)), "PRA(RSVD, 20)");
    }

    #[test]
    fn target_reflects_rated_popularity() {
        let m = train();
        let pra = Pra::new(&m, "X", 10);
        // user 3 rated popular items only; user 9 rated a tail item.
        assert!(pra.target_of(UserId(3)) > pra.target_of(UserId(9)));
    }

    #[test]
    fn empty_candidates_yield_empty() {
        let m = train();
        let pra = Pra::new(&m, "X", 10);
        assert!(pra.rerank(UserId(0), &[1.0; 5], &[], 3).is_empty());
    }
}
