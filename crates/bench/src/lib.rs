//! Criterion benchmark crate (bench targets live in `benches/`).
