//! Criterion benchmark crate (bench targets live in `benches/`).
//!
//! The helpers every bench shares — the latency-percentile reducer feeding
//! the `BENCH_*.json` artifacts and the `GANC_BENCH_FAST` switch — live
//! here once so the CI perf guards never read numbers produced by
//! diverged copies.

/// Latency distribution summary emitted into the `BENCH_*.json` artifacts.
pub struct LatencyStats {
    /// Arithmetic mean, microseconds.
    pub mean_us: f64,
    /// Median, microseconds.
    pub p50_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// Number of samples the distribution was built from.
    pub requests: usize,
}

/// Reduce raw nanosecond samples to the artifact's summary statistics
/// (nearest-rank percentiles on the sorted samples).
pub fn latency_stats(mut samples_ns: Vec<f64>) -> LatencyStats {
    samples_ns.sort_by(f64::total_cmp);
    let rank = |p: f64| {
        let idx = ((p / 100.0) * (samples_ns.len() as f64 - 1.0)).round() as usize;
        samples_ns[idx.min(samples_ns.len() - 1)] / 1_000.0
    };
    LatencyStats {
        mean_us: samples_ns.iter().sum::<f64>() / samples_ns.len() as f64 / 1_000.0,
        p50_us: rank(50.0),
        p99_us: rank(99.0),
        requests: samples_ns.len(),
    }
}

/// Whether `GANC_BENCH_FAST` asks for the milliseconds-long CI smoke run
/// instead of full measurement.
pub fn fast_mode() -> bool {
    std::env::var_os("GANC_BENCH_FAST").is_some_and(|v| v != "0")
}
