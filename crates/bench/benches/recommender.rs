//! Benchmarks for the base-recommender substrate (Table V / model-zoo
//! costs): RSVD SGD training, randomized PureSVD, RankMF, and parallel
//! top-N list generation.

use criterion::{criterion_group, criterion_main, Criterion};
use ganc_dataset::synth::DatasetProfile;
use ganc_recommender::pop::MostPopular;
use ganc_recommender::psvd::Psvd;
use ganc_recommender::rankmf::{RankMf, RankMfConfig};
use ganc_recommender::rsvd::{Rsvd, RsvdConfig};
use ganc_recommender::topn::generate_topn_lists;
use std::hint::black_box;

fn bench_recommender(c: &mut Criterion) {
    let data = DatasetProfile::medium().generate(4);
    let split = data.split_per_user(0.5, 5).unwrap();
    let train = &split.train;

    let mut g = c.benchmark_group("recommender");
    g.sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(5));

    g.bench_function("table5/rsvd_train_g16_e5", |b| {
        b.iter(|| {
            black_box(Rsvd::train(
                train,
                RsvdConfig {
                    factors: 16,
                    epochs: 5,
                    ..RsvdConfig::default()
                },
            ))
        })
    });
    g.bench_function("psvd_train_k16", |b| {
        b.iter(|| black_box(Psvd::train(train, 16, 1)))
    });
    g.bench_function("rankmf_train_g16_e3", |b| {
        b.iter(|| {
            black_box(RankMf::train(
                train,
                RankMfConfig {
                    factors: 16,
                    epochs: 3,
                    ..RankMfConfig::default()
                },
            ))
        })
    });

    let pop = MostPopular::fit(train);
    let psvd = Psvd::train(train, 16, 1);
    g.bench_function("topn/pop_all_users", |b| {
        b.iter(|| black_box(generate_topn_lists(&pop, train, 5, 4)))
    });
    g.bench_function("topn/psvd16_all_users", |b| {
        b.iter(|| black_box(generate_topn_lists(&psvd, train, 5, 4)))
    });
    g.finish();
}

criterion_group!(benches, bench_recommender);
criterion_main!(benches);
