//! Instrumentation-overhead benchmark for the PR 6 observability layer.
//!
//! Two identical `ServingEngine`s are fit from the same medium-sim bundle
//! bytes: one bare, one with the full `ObsHub` attached (per-request
//! histograms, counters, and the rolling beyond-accuracy window). Cold
//! requests alternate engine-by-engine inside ONE loop so both see the
//! same thermal / frequency / cache conditions, then the paired p50s give
//! the overhead ratio CI guards at ≤ 1.15×. Also measures cached-path
//! overhead and the cost of a full Prometheus `render()` scrape.
//!
//! Writes `BENCH_obs.json` (override with `GANC_BENCH_OUT`).

use criterion::{criterion_group, criterion_main, Criterion};
use ganc_bench::{fast_mode, latency_stats, LatencyStats};
use ganc_dataset::synth::DatasetProfile;
use ganc_dataset::UserId;
use ganc_obs::ObsHub;
use ganc_preference::GeneralizedConfig;
use ganc_recommender::pop::MostPopular;
use ganc_serve::{EngineConfig, FitConfig, FittedModel, ModelBundle, SaveLoad, ServingEngine};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn stats_json(s: &LatencyStats) -> String {
    format!(
        "{{\"mean_us\": {:.3}, \"p50_us\": {:.3}, \"p99_us\": {:.3}, \"requests\": {}}}",
        s.mean_us, s.p50_us, s.p99_us, s.requests
    )
}

fn bench_obs(c: &mut Criterion) {
    // Same profile/seed/split as BENCH_query.json so the baseline column
    // is directly comparable across the two artifacts.
    let split = DatasetProfile::medium()
        .generate(18)
        .split_per_user(0.5, 4)
        .unwrap();
    let train = split.train;
    let n_users = train.n_users();
    let theta = GeneralizedConfig::default().estimate(&train);
    let pop = MostPopular::fit(&train);
    let cfg = FitConfig {
        sample_size: 500,
        ..FitConfig::new(10)
    };
    let bundle = ModelBundle::fit(FittedModel::Pop(pop), theta, train, &cfg);
    let bytes = bundle.to_bytes().expect("bundle encode");

    let bare = ServingEngine::new(
        ModelBundle::from_bytes(&bytes).unwrap(),
        EngineConfig::default(),
    );
    let instrumented = ServingEngine::new(
        ModelBundle::from_bytes(&bytes).unwrap(),
        EngineConfig::default(),
    );
    let hub = ObsHub::new();
    instrumented.attach_obs(hub.clone(), None, Duration::from_secs(300));

    // The overhead guard needs tight p50s even in smoke mode, so the cold
    // sample count does not shrink as far as the other benches' fast paths.
    let cold_requests = if fast_mode() { 1_500 } else { 5_000 };
    let cached_requests = if fast_mode() { 2_000 } else { 20_000 };

    // Untimed warmup so CPU frequency ramp and first-touch page faults do
    // not land inside the measured window and skew the paired ratio.
    for k in 0..200u32 {
        let u = UserId((k * 193) % n_users);
        bare.flush_cache();
        black_box(bare.recommend(u).unwrap());
        instrumented.flush_cache();
        black_box(instrumented.recommend(u).unwrap());
    }

    // ---- cold path, interleaved ----
    let mut bare_cold_ns = Vec::with_capacity(cold_requests);
    let mut inst_cold_ns = Vec::with_capacity(cold_requests);
    for k in 0..cold_requests {
        let u = UserId((k as u32 * 193) % n_users);
        // Alternate which engine goes first: the second run of a pair gets
        // the user's rows and the shared code path warm, so a fixed order
        // would systematically favor one side.
        let (first, second): (&ServingEngine, &ServingEngine) = if k % 2 == 0 {
            (&bare, &instrumented)
        } else {
            (&instrumented, &bare)
        };
        first.flush_cache();
        let start = Instant::now();
        black_box(first.recommend(u).unwrap());
        let first_ns = start.elapsed().as_nanos() as f64;

        second.flush_cache();
        let start = Instant::now();
        black_box(second.recommend(u).unwrap());
        let second_ns = start.elapsed().as_nanos() as f64;

        let (b, i) = if k % 2 == 0 {
            (first_ns, second_ns)
        } else {
            (second_ns, first_ns)
        };
        bare_cold_ns.push(b);
        inst_cold_ns.push(i);
    }
    let bare_cold = latency_stats(bare_cold_ns);
    let inst_cold = latency_stats(inst_cold_ns);

    // ---- cached path, interleaved ----
    bare.recommend(UserId(0)).unwrap();
    instrumented.recommend(UserId(0)).unwrap();
    let mut bare_hot_ns = Vec::with_capacity(cached_requests);
    let mut inst_hot_ns = Vec::with_capacity(cached_requests);
    for _ in 0..cached_requests {
        let start = Instant::now();
        black_box(bare.recommend(UserId(0)).unwrap());
        bare_hot_ns.push(start.elapsed().as_nanos() as f64);

        let start = Instant::now();
        black_box(instrumented.recommend(UserId(0)).unwrap());
        inst_hot_ns.push(start.elapsed().as_nanos() as f64);
    }
    let bare_hot = latency_stats(bare_hot_ns);
    let inst_hot = latency_stats(inst_hot_ns);

    // ---- scrape cost: a full Prometheus render of the populated registry ----
    let render_iters = if fast_mode() { 200 } else { 2_000 };
    let mut render_ns = Vec::with_capacity(render_iters);
    let mut render_bytes = 0usize;
    for _ in 0..render_iters {
        let start = Instant::now();
        let text = black_box(hub.metrics.render());
        render_ns.push(start.elapsed().as_nanos() as f64);
        render_bytes = text.len();
    }
    let render = latency_stats(render_ns);

    let overhead_cold_p50 = inst_cold.p50_us / bare_cold.p50_us.max(1e-9);
    let overhead_cached_p50 = inst_hot.p50_us / bare_hot.p50_us.max(1e-9);

    // ---- criterion-style measurement for the console ----
    let mut g = c.benchmark_group("obs");
    g.sample_size(if fast_mode() { 10 } else { 60 })
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let mut k = 0u32;
    g.bench_function("instrumented_cold_request_medium", |b| {
        b.iter(|| {
            k = k.wrapping_add(193);
            instrumented.flush_cache();
            black_box(instrumented.recommend(UserId(k % n_users)).unwrap())
        })
    });
    g.finish();

    // ---- JSON artifact ----
    let out_path = std::env::var("GANC_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_obs.json", env!("CARGO_MANIFEST_DIR")));
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"obs\",\n",
            "  \"medium\": {{\n",
            "    \"bare_cold\": {bc},\n",
            "    \"instrumented_cold\": {ic},\n",
            "    \"overhead_ratio_cold_p50\": {oc:.4},\n",
            "    \"bare_cached\": {bh},\n",
            "    \"instrumented_cached\": {ih},\n",
            "    \"overhead_ratio_cached_p50\": {oh:.4},\n",
            "    \"metrics_render\": {mr},\n",
            "    \"metrics_render_bytes\": {mb}\n",
            "  }}\n",
            "}}\n"
        ),
        bc = stats_json(&bare_cold),
        ic = stats_json(&inst_cold),
        oc = overhead_cold_p50,
        bh = stats_json(&bare_hot),
        ih = stats_json(&inst_hot),
        oh = overhead_cached_p50,
        mr = stats_json(&render),
        mb = render_bytes,
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
    print!("{json}");
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
