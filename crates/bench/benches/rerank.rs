//! Benchmarks of the Table IV pipeline: re-ranking a trained RSVD with
//! every baseline framework plus GANC over the whole user population.

use criterion::{criterion_group, criterion_main, Criterion};
use ganc_core::{CoverageKind, GancBuilder};
use ganc_dataset::synth::DatasetProfile;
use ganc_preference::GeneralizedConfig;
use ganc_recommender::rsvd::{Rsvd, RsvdConfig};
use ganc_rerank::five_d::FiveD;
use ganc_rerank::pra::Pra;
use ganc_rerank::rbt::{Rbt, RbtCriterion};
use ganc_rerank::{rerank_all, Reranker};
use std::hint::black_box;

fn bench_rerank(c: &mut Criterion) {
    let data = DatasetProfile::medium().generate(10);
    let split = data.split_per_user(0.5, 11).unwrap();
    let train = &split.train;
    let rsvd = Rsvd::train(
        train,
        RsvdConfig {
            factors: 16,
            epochs: 8,
            ..RsvdConfig::default()
        },
    );
    let theta = GeneralizedConfig::default().estimate(train);

    let mut g = c.benchmark_group("table4");
    g.sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(5));

    let rerankers: Vec<(&str, Box<dyn Reranker>)> = vec![
        (
            "rbt_pop",
            Box::new(Rbt::new(train, RbtCriterion::Popularity, "RSVD")),
        ),
        (
            "rbt_avg",
            Box::new(Rbt::new(train, RbtCriterion::AverageRating, "RSVD")),
        ),
        ("five_d", Box::new(FiveD::new(train, "RSVD"))),
        (
            "five_d_a_rr",
            Box::new(FiveD::with_options(train, "RSVD", true, true)),
        ),
        ("pra_10", Box::new(Pra::new(train, "RSVD", 10))),
        ("pra_20", Box::new(Pra::new(train, "RSVD", 20))),
    ];
    for (label, rr) in &rerankers {
        g.bench_function(format!("rerank_all/{label}"), |b| {
            b.iter(|| black_box(rerank_all(rr.as_ref(), &rsvd, train, 5, 4)))
        });
    }
    g.bench_function("rerank_all/ganc_dyn", |b| {
        b.iter(|| {
            black_box(
                GancBuilder::new(5)
                    .coverage(CoverageKind::Dynamic)
                    .sample_size(200)
                    .threads(4)
                    .build_topn(&rsvd, &theta, train, 3),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_rerank);
criterion_main!(benches);
