//! Benchmarks of the GANC framework itself (the Figure 5 / Figure 6
//! kernel): building a full top-N collection under each coverage
//! recommender, plus the θ-ablation the paper's Figure 5 sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use ganc_core::{CoverageKind, GancBuilder};
use ganc_dataset::synth::DatasetProfile;
use ganc_preference::simple::theta_constant;
use ganc_preference::GeneralizedConfig;
use ganc_recommender::pop::MostPopular;
use std::hint::black_box;

fn bench_ganc(c: &mut Criterion) {
    let data = DatasetProfile::medium().generate(6);
    let split = data.split_per_user(0.5, 7).unwrap();
    let train = &split.train;
    let pop = MostPopular::fit(train);
    let theta_g = GeneralizedConfig::default().estimate(train);
    let theta_c = theta_constant(train.n_users(), 0.5);

    let mut g = c.benchmark_group("ganc");
    g.sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(5));

    for kind in [
        CoverageKind::Random,
        CoverageKind::Static,
        CoverageKind::Dynamic,
    ] {
        g.bench_function(format!("fig6/coverage_{}", kind.label()), |b| {
            b.iter(|| {
                black_box(
                    GancBuilder::new(5)
                        .coverage(kind)
                        .sample_size(200)
                        .threads(4)
                        .build_topn(&pop, &theta_g, train, 3),
                )
            })
        });
    }

    // θ ablation (Figure 5): learned θ^G vs the constant control.
    g.bench_function("fig5/theta_generalized", |b| {
        b.iter(|| {
            black_box(
                GancBuilder::new(5)
                    .sample_size(200)
                    .threads(4)
                    .build_topn(&pop, &theta_g, train, 3),
            )
        })
    });
    g.bench_function("fig5/theta_constant", |b| {
        b.iter(|| {
            black_box(
                GancBuilder::new(5)
                    .sample_size(200)
                    .threads(4)
                    .build_topn(&pop, &theta_c, train, 3),
            )
        })
    });

    // List-size scaling (Figure 5's x-axis).
    for n in [5usize, 20] {
        g.bench_function(format!("fig5/list_size_N{n}"), |b| {
            b.iter(|| {
                black_box(
                    GancBuilder::new(n)
                        .sample_size(200)
                        .threads(4)
                        .build_topn(&pop, &theta_g, train, 3),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ganc);
criterion_main!(benches);
