//! HTTP front-end benchmarks over loopback: keep-alive vs cold-connect
//! request latency, transport overhead on cache hits, and batched
//! throughput through `POST /v1/recommend:batch`.
//!
//! Writes `BENCH_http.json` (override with `GANC_BENCH_OUT`). CI compares
//! the keep-alive cold p50 against the in-process cold p50 from
//! `BENCH_query.json` measured in the same run and fails beyond 10× — the
//! transport may cost a socket round-trip and a JSON encode, but never an
//! order of magnitude.

use criterion::{criterion_group, criterion_main, Criterion};
use ganc_bench::{fast_mode, latency_stats};
use ganc_core::query::{band_bounds, cut_theta_bands};
use ganc_dataset::synth::DatasetProfile;
use ganc_dataset::UserId;
use ganc_http::{
    Frontend, HttpClient, HttpServer, PeerTransport, RemoteShard, ReplicaConfig, RouterNode,
    ServerConfig, ShardRoute,
};
use ganc_preference::GeneralizedConfig;
use ganc_recommender::pop::MostPopular;
use ganc_serve::{EngineConfig, FitConfig, FittedModel, ModelBundle, ServingEngine};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn bench_http(c: &mut Criterion) {
    let data = DatasetProfile::medium().generate(18);
    let split = data.split_per_user(0.5, 4).unwrap();
    let train = split.train;
    let n_users = train.n_users();
    let theta = GeneralizedConfig::default().estimate(&train);
    let pop = MostPopular::fit(&train);
    let cfg = FitConfig {
        sample_size: 500,
        ..FitConfig::new(10)
    };
    let bundle = ModelBundle::fit(FittedModel::Pop(pop), theta, train.clone(), &cfg);
    let engine = Arc::new(ServingEngine::new(bundle.clone(), EngineConfig::default()));
    let server = HttpServer::bind(
        Frontend::Single(Arc::clone(&engine)),
        None,
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let mut client = HttpClient::new(addr.clone());

    // Warm the path (allocator, route table, socket buffers).
    for k in 0..200u32 {
        client
            .request("GET", &format!("/v1/recommend/{}", k % n_users), None)
            .unwrap();
    }

    // ---- keep-alive, cold engine (recompute per request) ----
    let cold_requests = if fast_mode() { 200 } else { 3_000 };
    let mut keepalive_cold_ns = Vec::with_capacity(cold_requests);
    for k in 0..cold_requests {
        let u = (k as u32 * 193) % n_users;
        engine.flush_cache();
        let start = Instant::now();
        let resp = client
            .request("GET", &format!("/v1/recommend/{u}"), None)
            .unwrap();
        keepalive_cold_ns.push(start.elapsed().as_nanos() as f64);
        debug_assert_eq!(resp.status, 200);
        black_box(resp);
    }
    let keepalive_cold = latency_stats(keepalive_cold_ns);

    // ---- keep-alive, cached engine (pure transport + JSON overhead) ----
    let cached_requests = if fast_mode() { 200 } else { 10_000 };
    client.request("GET", "/v1/recommend/1", None).unwrap();
    let mut keepalive_cached_ns = Vec::with_capacity(cached_requests);
    for _ in 0..cached_requests {
        let start = Instant::now();
        black_box(client.request("GET", "/v1/recommend/1", None).unwrap());
        keepalive_cached_ns.push(start.elapsed().as_nanos() as f64);
    }
    let keepalive_cached = latency_stats(keepalive_cached_ns);

    // ---- cold connect (TCP handshake per request) ----
    let connect_requests = if fast_mode() { 100 } else { 1_000 };
    let mut cold_connect_ns = Vec::with_capacity(connect_requests);
    for k in 0..connect_requests {
        let u = (k as u32 * 193) % n_users;
        engine.flush_cache();
        let start = Instant::now();
        let resp =
            HttpClient::request_once(&addr, "GET", &format!("/v1/recommend/{u}"), None).unwrap();
        cold_connect_ns.push(start.elapsed().as_nanos() as f64);
        debug_assert_eq!(resp.status, 200);
        black_box(resp);
    }
    let cold_connect = latency_stats(cold_connect_ns);

    // ---- batched throughput over one keep-alive connection ----
    let ids: Vec<String> = (0..n_users).map(|u| u.to_string()).collect();
    let batch_body = format!("{{\"users\":[{}]}}", ids.join(","));
    let batch_rounds = if fast_mode() { 3 } else { 10 };
    engine.flush_cache();
    let batch_start = Instant::now();
    for _ in 0..batch_rounds {
        engine.flush_cache();
        let resp = client
            .request("POST", "/v1/recommend:batch", Some(&batch_body))
            .unwrap();
        assert_eq!(resp.status, 200);
        black_box(resp);
    }
    let batch_s = batch_start.elapsed().as_secs_f64();
    let batch_rps = (n_users as usize * batch_rounds) as f64 / batch_s;

    // ---- router fan-out: parallel vs sequential 4-band dispatch ----
    // Four peer servers each serve one θ-band slice over loopback; a
    // RouterNode splits a full-population batch across them, dispatched
    // both ways. Raw loopback numbers are informational; the guarded
    // configuration (below) adds a simulated per-hop delay, where the
    // parallel fan-out's win is structural.
    const BANDS: usize = 4;
    let cuts = cut_theta_bands(&bundle.theta, BANDS);
    let mut band_servers = Vec::with_capacity(BANDS);
    let mut band_engines = Vec::with_capacity(BANDS);
    let mut routes = Vec::with_capacity(BANDS);
    for j in 0..BANDS {
        let (lo, hi) = band_bounds(&cuts, j);
        // One worker thread per band engine: on a single bench box all
        // four "nodes" share the same cores, so an unconstrained band
        // engine already saturates the machine and sequential dispatch
        // measures nothing but compute. Serializing each peer's compute
        // models what fan-out actually overlaps in production — four
        // *separate* nodes working concurrently — without oversubscribing
        // the box 4×.
        let band_engine = Arc::new(ServingEngine::new(
            bundle.slice_theta_band(lo, hi),
            EngineConfig {
                threads: 1,
                ..EngineConfig::default()
            },
        ));
        let band_server = HttpServer::bind(
            Frontend::Single(Arc::clone(&band_engine)),
            None,
            ServerConfig::default(),
            "127.0.0.1:0",
        )
        .expect("bind band server");
        let remote = RemoteShard::connect(band_server.local_addr().to_string())
            .expect("band server reachable");
        routes.push(ShardRoute::Remote(
            Arc::new(remote) as Arc<dyn PeerTransport>
        ));
        band_engines.push(band_engine);
        band_servers.push(band_server);
    }
    let router = RouterNode::new(Arc::clone(&bundle.theta), cuts.clone(), routes);
    let router_users: Vec<UserId> = (0..n_users).map(UserId).collect();
    let flush_bands = |engines: &[Arc<ServingEngine>]| {
        for e in engines {
            e.flush_cache();
        }
    };
    let measure = |router: &RouterNode, rounds: usize| {
        // Warm both paths (connections, allocators).
        router
            .recommend_batch_traced_sequential(&router_users)
            .unwrap();
        router.recommend_batch_traced(&router_users).unwrap();
        let (mut seq_s, mut par_s) = (0.0f64, 0.0f64);
        for _ in 0..rounds {
            // Interleaved and cold per round, so machine noise hits both
            // strategies evenly and the bands really compute.
            flush_bands(&band_engines);
            let t = Instant::now();
            black_box(
                router
                    .recommend_batch_traced_sequential(&router_users)
                    .unwrap(),
            );
            seq_s += t.elapsed().as_secs_f64();
            flush_bands(&band_engines);
            let t = Instant::now();
            black_box(router.recommend_batch_traced(&router_users).unwrap());
            par_s += t.elapsed().as_secs_f64();
        }
        let served = (n_users as usize * rounds) as f64;
        (served / seq_s, served / par_s)
    };
    let router_rounds = if fast_mode() { 3 } else { 10 };
    let (loopback_seq_rps, loopback_par_rps) = measure(&router, router_rounds);

    // Loopback has no wire latency to hide — on a small box the bands'
    // compute shares the same cores either way, so loopback numbers only
    // show the dispatch overhead. What the fan-out exists to overlap is
    // the *remote hop*: model it by injecting a fixed per-call delay in
    // front of each peer (a stand-in for real inter-node RTT + queueing),
    // where sequential dispatch pays 4 hops end-to-end and parallel pays
    // one. This is the guarded number: the overlap is a property of the
    // dispatch strategy, not of how many cores the bench box has.
    const SIMULATED_HOP: std::time::Duration = std::time::Duration::from_micros(500);
    struct DelayedPeer(RemoteShard, std::time::Duration);
    impl PeerTransport for DelayedPeer {
        fn label(&self) -> String {
            format!("delayed({})", self.0.addr())
        }
        fn recommend_traced(
            &self,
            user: UserId,
        ) -> Result<(Arc<Vec<ganc_dataset::ItemId>>, u64), ganc_http::BackendError> {
            std::thread::sleep(self.1);
            self.0.recommend_traced(user)
        }
        #[allow(clippy::type_complexity)]
        fn recommend_batch_traced(
            &self,
            users: &[UserId],
        ) -> Result<
            (
                Vec<Result<Arc<Vec<ganc_dataset::ItemId>>, ganc_serve::ServeError>>,
                u64,
            ),
            ganc_http::BackendError,
        > {
            std::thread::sleep(self.1);
            self.0.recommend_batch_traced(users)
        }
        fn ingest(
            &self,
            user: UserId,
            item: ganc_dataset::ItemId,
            rating: f32,
        ) -> Result<(), ganc_http::BackendError> {
            self.0.ingest(user, item, rating)
        }
        fn generation(&self) -> Result<u64, ganc_http::BackendError> {
            self.0.generation()
        }
    }
    let delayed_routes: Vec<ShardRoute> = band_servers
        .iter()
        .map(|s| {
            let remote =
                RemoteShard::connect(s.local_addr().to_string()).expect("band server reachable");
            ShardRoute::Remote(
                Arc::new(DelayedPeer(remote, SIMULATED_HOP)) as Arc<dyn PeerTransport>
            )
        })
        .collect();
    let delayed_router = RouterNode::new(Arc::clone(&bundle.theta), cuts.clone(), delayed_routes);
    let (hop_seq_rps, hop_par_rps) = measure(&delayed_router, router_rounds);

    // ---- replicas: hedged vs unhedged dispatch around a stalled primary ----
    // Each band becomes a two-replica group over the same peer server: the
    // primary stalls far beyond the hedge budget before forwarding, the
    // second replica is the plain fast loopback shard. The hedged router
    // re-issues to the fast replica once the budget elapses; the unhedged
    // router (same topology, no budget) waits out the stall every batch.
    // The stall must dwarf the budget *and* the serve cost: hedging
    // duplicates the straggler's request when it fires, and on this 1-CPU
    // bench box a merely-slow primary (hop comparable to the serve) would
    // correctly show that duplication cost instead of a win. With a
    // stalled primary the straggler is parked off-CPU for the whole
    // measured window, which is exactly the unresponsive-peer scenario
    // hedging exists for. CI guards `byte_identical` and hedged >
    // unhedged, not the magnitude.
    const HEDGE_BUDGET: std::time::Duration = std::time::Duration::from_micros(100);
    const REPLICA_STALL: std::time::Duration = std::time::Duration::from_millis(250);
    let replicated_routes = |hedge_budget: Option<std::time::Duration>| -> Vec<ShardRoute> {
        band_servers
            .iter()
            .map(|s| {
                let slow = RemoteShard::connect(s.local_addr().to_string())
                    .expect("band server reachable");
                let fast = RemoteShard::connect(s.local_addr().to_string())
                    .expect("band server reachable");
                ShardRoute::replicated(
                    vec![
                        Arc::new(DelayedPeer(slow, REPLICA_STALL)) as Arc<dyn PeerTransport>,
                        Arc::new(fast) as Arc<dyn PeerTransport>,
                    ],
                    ReplicaConfig {
                        hedge_budget,
                        ..ReplicaConfig::default()
                    },
                )
            })
            .collect()
    };
    let hedged_router = RouterNode::new(
        Arc::clone(&bundle.theta),
        cuts.clone(),
        replicated_routes(Some(HEDGE_BUDGET)),
    );
    let unhedged_router = RouterNode::new(Arc::clone(&bundle.theta), cuts, replicated_routes(None));
    let (hedged_slots, hedged_gen) = hedged_router.recommend_batch_traced(&router_users).unwrap();
    let (unhedged_slots, unhedged_gen) = unhedged_router
        .recommend_batch_traced(&router_users)
        .unwrap();
    let byte_identical =
        hedged_gen == unhedged_gen && format!("{hedged_slots:?}") == format!("{unhedged_slots:?}");
    let measure_parallel = |router: &RouterNode, rounds: usize| {
        router.recommend_batch_traced(&router_users).unwrap();
        let mut spent = 0.0f64;
        for _ in 0..rounds {
            let t = Instant::now();
            black_box(router.recommend_batch_traced(&router_users).unwrap());
            spent += t.elapsed().as_secs_f64();
        }
        (n_users as usize * rounds) as f64 / spent
    };
    // Few rounds: every unhedged batch pays the full stall by design.
    let replica_rounds = router_rounds.min(4);
    let unhedged_rps = measure_parallel(&unhedged_router, replica_rounds);
    let hedged_rps = measure_parallel(&hedged_router, replica_rounds);
    // Let parked hedge stragglers finish against live servers before
    // tearing the topology down.
    std::thread::sleep(REPLICA_STALL + std::time::Duration::from_millis(100));
    drop(band_servers);

    // ---- criterion console output ----
    let mut g = c.benchmark_group("http");
    g.sample_size(if fast_mode() { 10 } else { 40 })
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(3));
    let mut k = 0u32;
    g.bench_function("keepalive_cold", |b| {
        b.iter(|| {
            k = k.wrapping_add(193);
            engine.flush_cache();
            black_box(
                client
                    .request("GET", &format!("/v1/recommend/{}", k % n_users), None)
                    .unwrap(),
            )
        })
    });
    g.bench_function("keepalive_cached", |b| {
        b.iter(|| black_box(client.request("GET", "/v1/recommend/1", None).unwrap()))
    });
    g.finish();

    // Sanity: responses really are the engine's output.
    let resp = client.request("GET", "/v1/recommend/7", None).unwrap();
    let v = tinyjson::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    let got: Vec<u32> = v["items"]
        .as_array()
        .unwrap()
        .iter()
        .map(|i| i.as_u64().unwrap() as u32)
        .collect();
    let expect: Vec<u32> = engine
        .recommend(UserId(7))
        .unwrap()
        .iter()
        .map(|i| i.0)
        .collect();
    assert_eq!(got, expect, "bench server must serve real engine output");

    // ---- JSON artifact ----
    let out_path = std::env::var("GANC_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_http.json", env!("CARGO_MANIFEST_DIR")));
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"http\",\n",
            "  \"dataset\": {{\"users\": {users}, \"items\": {items}, \"ratings\": {nnz}}},\n",
            "  \"n\": 10,\n",
            "  \"keepalive_cold\": {{\"mean_us\": {kcm:.2}, \"p50_us\": {kc50:.2}, ",
            "\"p99_us\": {kc99:.2}, \"requests\": {kcreq}}},\n",
            "  \"keepalive_cached\": {{\"mean_us\": {khm:.2}, \"p50_us\": {kh50:.2}, ",
            "\"p99_us\": {kh99:.2}, \"requests\": {khreq}}},\n",
            "  \"cold_connect\": {{\"mean_us\": {ccm:.2}, \"p50_us\": {cc50:.2}, ",
            "\"p99_us\": {cc99:.2}, \"requests\": {ccreq}}},\n",
            "  \"batch\": {{\"batch_size\": {bsize}, \"rounds\": {brounds}, ",
            "\"throughput_rps\": {brps:.0}}},\n",
            "  \"router\": {{\"bands\": {rbands}, \"batch_size\": {bsize}, ",
            "\"rounds\": {rrounds}, ",
            "\"loopback\": {{\"parallel_rps\": {lpar:.0}, \"sequential_rps\": {lseq:.0}, ",
            "\"speedup\": {lspeed:.2}}}, ",
            "\"simulated_hop_us\": {hopus}, ",
            "\"remote_hop\": {{\"parallel_rps\": {hpar:.0}, \"sequential_rps\": {hseq:.0}, ",
            "\"speedup\": {hspeed:.2}}}}},\n",
            "  \"replicas\": {{\"bands\": {rbands}, \"replicas_per_band\": 2, ",
            "\"hedge_budget_us\": {hbudget}, \"stalled_primary_us\": {stallus}, ",
            "\"byte_identical\": {bytei}, \"hedged_rps\": {hrps:.0}, ",
            "\"unhedged_rps\": {urps:.0}, \"speedup\": {rspeed:.2}}}\n",
            "}}\n"
        ),
        users = n_users,
        items = train.n_items(),
        nnz = train.nnz(),
        kcm = keepalive_cold.mean_us,
        kc50 = keepalive_cold.p50_us,
        kc99 = keepalive_cold.p99_us,
        kcreq = keepalive_cold.requests,
        khm = keepalive_cached.mean_us,
        kh50 = keepalive_cached.p50_us,
        kh99 = keepalive_cached.p99_us,
        khreq = keepalive_cached.requests,
        ccm = cold_connect.mean_us,
        cc50 = cold_connect.p50_us,
        cc99 = cold_connect.p99_us,
        ccreq = cold_connect.requests,
        bsize = n_users,
        brounds = batch_rounds,
        brps = batch_rps,
        rbands = BANDS,
        rrounds = router_rounds,
        lpar = loopback_par_rps,
        lseq = loopback_seq_rps,
        lspeed = loopback_par_rps / loopback_seq_rps,
        hopus = SIMULATED_HOP.as_micros(),
        hpar = hop_par_rps,
        hseq = hop_seq_rps,
        hspeed = hop_par_rps / hop_seq_rps,
        hbudget = HEDGE_BUDGET.as_micros(),
        stallus = REPLICA_STALL.as_micros(),
        bytei = byte_identical,
        hrps = hedged_rps,
        urps = unhedged_rps,
        rspeed = hedged_rps / unhedged_rps,
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
    print!("{json}");
}

criterion_group!(benches, bench_http);
criterion_main!(benches);
