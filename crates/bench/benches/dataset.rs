//! Benchmarks for the data substrate feeding Table II and Figure 1:
//! synthetic generation, CSR construction, per-user splitting, long-tail
//! extraction, and the activity–popularity curve.

use criterion::{criterion_group, criterion_main, Criterion};
use ganc_dataset::stats::{activity_popularity_curve, LongTail};
use ganc_dataset::synth::DatasetProfile;
use std::hint::black_box;

fn bench_dataset(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataset");
    g.sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));

    g.bench_function("generate/small", |b| {
        b.iter(|| black_box(DatasetProfile::small().generate(1)))
    });
    g.bench_function("generate/medium", |b| {
        b.iter(|| black_box(DatasetProfile::medium().generate(1)))
    });

    let data = DatasetProfile::medium().generate(1);
    g.bench_function("split_per_user/medium", |b| {
        b.iter(|| black_box(data.split_per_user(0.5, 7).unwrap()))
    });

    let split = data.split_per_user(0.5, 7).unwrap();
    g.bench_function("csr_build/medium", |b| {
        b.iter(|| black_box(data.interactions()))
    });
    g.bench_function("table2/long_tail/medium", |b| {
        b.iter(|| black_box(LongTail::pareto(&split.train)))
    });
    g.bench_function("fig1/activity_curve/medium", |b| {
        b.iter(|| black_box(activity_popularity_curve(&split.train, 10)))
    });
    g.finish();
}

criterion_group!(benches, bench_dataset);
criterion_main!(benches);
