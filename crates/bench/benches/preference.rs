//! Benchmarks for the Figure 2 pipeline: the θ estimators (including the
//! alternating minimax optimization of θ^G) and the KDE sampling used by
//! OSLG.

use criterion::{criterion_group, criterion_main, Criterion};
use ganc_dataset::stats::LongTail;
use ganc_dataset::synth::DatasetProfile;
use ganc_preference::kde::{sample_users_by_kde, Kde};
use ganc_preference::simple::{theta_activity, theta_normalized};
use ganc_preference::tfidf::theta_tfidf;
use ganc_preference::GeneralizedConfig;
use std::hint::black_box;

fn bench_preference(c: &mut Criterion) {
    let data = DatasetProfile::medium().generate(2);
    let split = data.split_per_user(0.5, 3).unwrap();
    let train = &split.train;
    let lt = LongTail::pareto(train);

    let mut g = c.benchmark_group("preference");
    g.sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));

    g.bench_function("fig2/theta_activity", |b| {
        b.iter(|| black_box(theta_activity(train)))
    });
    g.bench_function("fig2/theta_normalized", |b| {
        b.iter(|| black_box(theta_normalized(train, &lt)))
    });
    g.bench_function("fig2/theta_tfidf", |b| {
        b.iter(|| black_box(theta_tfidf(train)))
    });
    g.bench_function("fig2/theta_generalized", |b| {
        b.iter(|| black_box(GeneralizedConfig::default().estimate(train)))
    });

    let theta = GeneralizedConfig::default().estimate(train);
    g.bench_function("kde/fit", |b| b.iter(|| black_box(Kde::fit(&theta))));
    g.bench_function("oslg/sample_users_500", |b| {
        b.iter(|| black_box(sample_users_by_kde(&theta, 500, 7)))
    });
    g.finish();
}

criterion_group!(benches, bench_preference);
criterion_main!(benches);
