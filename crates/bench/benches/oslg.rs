//! Benchmarks of the OSLG optimizer (Figures 3–4 kernel) and the ablations
//! DESIGN.md calls out: sample-size scaling (the S sweep), full Locally
//! Greedy vs sampled OSLG, and the increasing-θ ordering vs arbitrary
//! order.

use criterion::{criterion_group, criterion_main, Criterion};
use ganc_core::accuracy::NormalizedScores;
use ganc_core::oslg::{oslg_topn, OslgConfig, UserOrdering};
use ganc_dataset::synth::DatasetProfile;
use ganc_preference::GeneralizedConfig;
use ganc_recommender::pop::MostPopular;
use std::hint::black_box;

fn bench_oslg(c: &mut Criterion) {
    let data = DatasetProfile::medium().generate(8);
    let split = data.split_per_user(0.5, 9).unwrap();
    let train = &split.train;
    let pop = MostPopular::fit(train);
    let arec = NormalizedScores::new(&pop);
    let theta = GeneralizedConfig::default().estimate(train);
    let n_users = train.n_users() as usize;

    let mut g = c.benchmark_group("oslg");
    g.sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(5));

    // Figure 3/4: cost as the sample size S grows.
    for s in [100usize, 300, 500] {
        g.bench_function(format!("fig3/sample_size_S{s}"), |b| {
            b.iter(|| {
                black_box(oslg_topn(
                    &arec,
                    &theta,
                    train,
                    &OslgConfig {
                        sample_size: s.min(n_users),
                        threads: 4,
                        ..OslgConfig::new(5)
                    },
                ))
            })
        });
    }

    // Ablation: full sequential Locally Greedy (S = |U|) vs OSLG.
    g.bench_function("ablation/full_locally_greedy", |b| {
        b.iter(|| {
            black_box(oslg_topn(
                &arec,
                &theta,
                train,
                &OslgConfig {
                    sample_size: n_users,
                    threads: 4,
                    ..OslgConfig::new(5)
                },
            ))
        })
    });

    // Ablation: ordering strategy.
    for (label, ordering) in [
        ("increasing_theta", UserOrdering::IncreasingTheta),
        ("arbitrary", UserOrdering::Arbitrary),
    ] {
        g.bench_function(format!("ablation/ordering_{label}"), |b| {
            b.iter(|| {
                black_box(oslg_topn(
                    &arec,
                    &theta,
                    train,
                    &OslgConfig {
                        sample_size: 200.min(n_users),
                        ordering,
                        threads: 4,
                        ..OslgConfig::new(5)
                    },
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_oslg);
criterion_main!(benches);
