//! Serving-path benchmarks: single-request latency (cold and cached),
//! batched throughput, micro-batcher throughput, and artifact load time.
//!
//! Besides the criterion-style console output, the measured distribution is
//! written as JSON (default `BENCH_serve.json` at the repo root, override
//! with `GANC_BENCH_OUT`) so the perf trajectory is tracked across PRs.

use criterion::{criterion_group, criterion_main, Criterion};
use ganc_bench::{fast_mode, latency_stats, LatencyStats};
use ganc_dataset::synth::DatasetProfile;
use ganc_dataset::{ItemId, UserId};
use ganc_preference::GeneralizedConfig;
use ganc_recommender::pop::MostPopular;
use ganc_serve::{
    BatchConfig, DurableConfig, DurableLog, EngineConfig, FitConfig, FittedModel, MicroBatcher,
    ModelBundle, SaveLoad, ServingEngine, ShardConfig, ShardedEngine, SyncPolicy,
};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn bench_serve(c: &mut Criterion) {
    let data = DatasetProfile::medium().generate(18);
    let split = data.split_per_user(0.5, 4).unwrap();
    let train = split.train;
    let n_users = train.n_users();
    let theta = GeneralizedConfig::default().estimate(&train);
    let pop = MostPopular::fit(&train);
    let cfg = FitConfig {
        sample_size: 500,
        ..FitConfig::new(10)
    };
    let bundle = ModelBundle::fit(FittedModel::Pop(pop), theta, train.clone(), &cfg);
    let bundle_bytes = bundle.to_bytes().unwrap().len();

    // Artifact load time.
    let bytes = bundle.to_bytes().unwrap();
    let load_start = Instant::now();
    let loaded = ModelBundle::from_bytes(&bytes).unwrap();
    let load_us = load_start.elapsed().as_nanos() as f64 / 1_000.0;

    let engine = Arc::new(ServingEngine::new(loaded, EngineConfig::default()));

    // ---- latency distributions (explicit, feeds the JSON artifact) ----
    let cold_requests = if fast_mode() { 200 } else { 3_000 };
    let mut cold_ns = Vec::with_capacity(cold_requests);
    for k in 0..cold_requests {
        let u = UserId((k as u32 * 193) % n_users);
        engine.flush_cache();
        let start = Instant::now();
        black_box(engine.recommend(u).unwrap());
        cold_ns.push(start.elapsed().as_nanos() as f64);
    }
    let cold = latency_stats(cold_ns);

    let cached_requests = if fast_mode() { 200 } else { 20_000 };
    engine.recommend(UserId(0)).unwrap();
    let mut cached_ns = Vec::with_capacity(cached_requests);
    for _ in 0..cached_requests {
        let start = Instant::now();
        black_box(engine.recommend(UserId(0)).unwrap());
        cached_ns.push(start.elapsed().as_nanos() as f64);
    }
    let cached = latency_stats(cached_ns);

    // ---- batched throughput ----
    let users: Vec<UserId> = (0..n_users).map(UserId).collect();
    engine.flush_cache();
    let batch_start = Instant::now();
    let answers = engine.recommend_batch(&users);
    let batch_s = batch_start.elapsed().as_secs_f64();
    assert!(answers.iter().all(|a| a.is_ok()));
    let batch_rps = users.len() as f64 / batch_s;

    // ---- sharded path: θ-band shards, same requests ----
    const SHARDS: usize = 4;
    let sharded = ShardedEngine::new(bundle.clone(), ShardConfig::quantile(SHARDS));
    let shard_info = sharded.shard_info();
    let unsharded_coverage_bytes = bincode::serialize(&bundle.coverage)
        .map(|b| b.len())
        .unwrap_or(0);
    let per_shard_coverage_max = shard_info
        .iter()
        .map(|i| i.coverage_bytes)
        .max()
        .unwrap_or(0);
    let per_shard_snapshots_max = shard_info.iter().map(|i| i.snapshots).max().unwrap_or(0);

    let mut sharded_cold_ns = Vec::with_capacity(cold_requests);
    for k in 0..cold_requests {
        let u = UserId((k as u32 * 193) % n_users);
        sharded.flush_cache();
        let start = Instant::now();
        black_box(sharded.recommend(u).unwrap());
        sharded_cold_ns.push(start.elapsed().as_nanos() as f64);
    }
    let sharded_cold = latency_stats(sharded_cold_ns);

    sharded.flush_cache();
    let sharded_batch_start = Instant::now();
    let sharded_answers = sharded.recommend_batch(&users);
    let sharded_batch_s = sharded_batch_start.elapsed().as_secs_f64();
    assert!(sharded_answers.iter().all(|a| a.is_ok()));
    let sharded_batch_rps = n_users as f64 / sharded_batch_s;

    // ---- micro-batcher throughput under concurrent callers ----
    let mb_requests: u32 = if fast_mode() { 400 } else { 8_000 };
    let batcher = MicroBatcher::spawn(Arc::clone(&engine), BatchConfig::default());
    engine.flush_cache();
    let mb_start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..4u32 {
            let batcher = &batcher;
            scope.spawn(move || {
                for k in 0..mb_requests / 4 {
                    let u = UserId((t * 7919 + k * 31) % n_users);
                    black_box(batcher.request(u).unwrap());
                }
            });
        }
    });
    let mb_rps = mb_requests as f64 / mb_start.elapsed().as_secs_f64();
    drop(batcher);

    // ---- WAL per-append cost under each power-loss sync policy ----
    let wal_appends = if fast_mode() { 200 } else { 2_000 };
    let n_items = train.n_items();
    let wal_cost = |policy: SyncPolicy| -> LatencyStats {
        let path = std::env::temp_dir().join(format!("ganc_bench_wal_{}.bin", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = DurableConfig {
            sync_policy: policy,
            ..DurableConfig::new(&path)
        };
        let (log, _) = DurableLog::open(cfg).unwrap();
        let mut ns = Vec::with_capacity(wal_appends);
        for k in 0..wal_appends as u32 {
            let start = Instant::now();
            log.append(None, 0, UserId(k % n_users), ItemId(k % n_items), 4.0)
                .unwrap();
            ns.push(start.elapsed().as_nanos() as f64);
        }
        let _ = std::fs::remove_file(&path);
        latency_stats(ns)
    };
    let wal_flush = wal_cost(SyncPolicy::Flush);
    let wal_per_append = wal_cost(SyncPolicy::PerAppend);
    let wal_interval = wal_cost(SyncPolicy::Interval(Duration::from_millis(5)));

    // ---- criterion-style measurements for the console ----
    let mut g = c.benchmark_group("serve");
    g.sample_size(if fast_mode() { 10 } else { 60 })
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(3));
    let mut k = 0u32;
    g.bench_function("single_request_cold", |b| {
        b.iter(|| {
            k = k.wrapping_add(193);
            engine.flush_cache();
            black_box(engine.recommend(UserId(k % n_users)).unwrap())
        })
    });
    g.bench_function("single_request_cached", |b| {
        engine.recommend(UserId(1)).unwrap();
        b.iter(|| black_box(engine.recommend(UserId(1)).unwrap()))
    });
    g.bench_function("batch_all_users", |b| {
        b.iter(|| {
            engine.flush_cache();
            black_box(engine.recommend_batch(&users))
        })
    });
    g.finish();

    // ---- JSON artifact ----
    let out_path = std::env::var("GANC_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR")));
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve\",\n",
            "  \"dataset\": {{\"users\": {users}, \"items\": {items}, \"ratings\": {nnz}}},\n",
            "  \"n\": 10,\n",
            "  \"bundle_bytes\": {bundle_bytes},\n",
            "  \"load_us\": {load_us:.1},\n",
            "  \"single_request_cold\": {{\"mean_us\": {cm:.2}, \"p50_us\": {c50:.2}, ",
            "\"p99_us\": {c99:.2}, \"requests\": {creq}}},\n",
            "  \"single_request_cached\": {{\"mean_us\": {hm:.3}, \"p50_us\": {h50:.3}, ",
            "\"p99_us\": {h99:.3}, \"requests\": {hreq}}},\n",
            "  \"batch\": {{\"batch_size\": {bsize}, \"throughput_rps\": {brps:.0}}},\n",
            "  \"micro_batcher\": {{\"concurrent_callers\": 4, \"requests\": {mreq}, ",
            "\"throughput_rps\": {mrps:.0}}},\n",
            "  \"wal\": {{\"appends_per_policy\": {wreq}, ",
            "\"flush\": {{\"mean_us\": {wfm:.2}, \"p50_us\": {wf50:.2}, \"p99_us\": {wf99:.2}}}, ",
            "\"per_append\": {{\"mean_us\": {wpm:.2}, \"p50_us\": {wp50:.2}, ",
            "\"p99_us\": {wp99:.2}}}, ",
            "\"interval_5ms\": {{\"mean_us\": {wim:.2}, \"p50_us\": {wi50:.2}, ",
            "\"p99_us\": {wi99:.2}}}}},\n",
            "  \"sharded\": {{\"shards\": {shards}, ",
            "\"single_request_cold\": {{\"mean_us\": {sm:.2}, \"p50_us\": {s50:.2}, ",
            "\"p99_us\": {s99:.2}, \"requests\": {sreq}}}, ",
            "\"batch_throughput_rps\": {sbrps:.0}, ",
            "\"coverage_bytes_unsharded\": {covfull}, ",
            "\"coverage_bytes_per_shard_max\": {covshard}, ",
            "\"snapshots_per_shard_max\": {snapshard}}}\n",
            "}}\n"
        ),
        users = n_users,
        items = train.n_items(),
        nnz = train.nnz(),
        bundle_bytes = bundle_bytes,
        load_us = load_us,
        cm = cold.mean_us,
        c50 = cold.p50_us,
        c99 = cold.p99_us,
        creq = cold.requests,
        hm = cached.mean_us,
        h50 = cached.p50_us,
        h99 = cached.p99_us,
        hreq = cached.requests,
        bsize = users.len(),
        brps = batch_rps,
        mreq = mb_requests,
        mrps = mb_rps,
        wreq = wal_appends,
        wfm = wal_flush.mean_us,
        wf50 = wal_flush.p50_us,
        wf99 = wal_flush.p99_us,
        wpm = wal_per_append.mean_us,
        wp50 = wal_per_append.p50_us,
        wp99 = wal_per_append.p99_us,
        wim = wal_interval.mean_us,
        wi50 = wal_interval.p50_us,
        wi99 = wal_interval.p99_us,
        shards = SHARDS,
        sm = sharded_cold.mean_us,
        s50 = sharded_cold.p50_us,
        s99 = sharded_cold.p99_us,
        sreq = sharded_cold.requests,
        sbrps = sharded_batch_rps,
        covfull = unsharded_coverage_bytes,
        covshard = per_shard_coverage_max,
        snapshard = per_shard_snapshots_max,
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
    print!("{json}");
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
