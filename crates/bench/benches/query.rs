//! Hot-path benchmarks for the fused GANC query pipeline: cold and cached
//! single-request latency, OSLG seed-phase (fit) wall time, and the
//! delta-encoded snapshot footprint versus the dense v1 layout.
//!
//! Runs the medium-sim profile the serving bench uses (so
//! `BENCH_query.json` is directly comparable with `BENCH_serve.json`'s
//! 13.97µs cold baseline) plus a large-sim profile for catalog scale.
//! Written as JSON (default `BENCH_query.json` at the repo root, override
//! with `GANC_BENCH_OUT`) so the perf trajectory is tracked across PRs.

use criterion::{criterion_group, criterion_main, Criterion};
use ganc_bench::{fast_mode, latency_stats, LatencyStats};
use ganc_dataset::synth::DatasetProfile;
use ganc_dataset::{Interactions, UserId};
use ganc_preference::GeneralizedConfig;
use ganc_recommender::pop::MostPopular;
use ganc_serve::legacy::snapshots_to_v1_payload;
use ganc_serve::{
    CoverageState, EngineConfig, FitConfig, FittedModel, ModelBundle, RequestOptions, SaveLoad,
    ServingEngine,
};
use std::hint::black_box;
use std::time::Instant;

struct ProfileReport {
    users: u32,
    items: u32,
    nnz: usize,
    fit_ms: f64,
    cold: LatencyStats,
    cached: LatencyStats,
    snapshot_bytes_v2: usize,
    snapshot_bytes_v1_dense: usize,
    bundle_bytes: usize,
}

impl ProfileReport {
    fn json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "    \"dataset\": {{\"users\": {users}, \"items\": {items}, ",
                "\"ratings\": {nnz}}},\n",
                "    \"n\": 10,\n",
                "    \"sample_size\": 500,\n",
                "    \"seed_phase_fit_ms\": {fit_ms:.1},\n",
                "    \"single_request_cold\": {{\"mean_us\": {cm:.2}, \"p50_us\": {c50:.2}, ",
                "\"p99_us\": {c99:.2}, \"requests\": {creq}}},\n",
                "    \"single_request_cached\": {{\"mean_us\": {hm:.3}, \"p50_us\": {h50:.3}, ",
                "\"p99_us\": {h99:.3}, \"requests\": {hreq}}},\n",
                "    \"snapshot_bytes_v2\": {sv2},\n",
                "    \"snapshot_bytes_v1_dense\": {sv1},\n",
                "    \"snapshot_compression\": {comp:.1},\n",
                "    \"bundle_bytes\": {bb}\n",
                "  }}"
            ),
            users = self.users,
            items = self.items,
            nnz = self.nnz,
            fit_ms = self.fit_ms,
            cm = self.cold.mean_us,
            c50 = self.cold.p50_us,
            c99 = self.cold.p99_us,
            creq = self.cold.requests,
            hm = self.cached.mean_us,
            h50 = self.cached.p50_us,
            h99 = self.cached.p99_us,
            hreq = self.cached.requests,
            sv2 = self.snapshot_bytes_v2,
            sv1 = self.snapshot_bytes_v1_dense,
            comp = self.snapshot_bytes_v1_dense as f64 / self.snapshot_bytes_v2.max(1) as f64,
            bb = self.bundle_bytes,
        )
    }
}

fn measure_profile(
    train: Interactions,
    cold_requests: usize,
    cached_requests: usize,
) -> (ProfileReport, ServingEngine) {
    let n_users = train.n_users();
    let theta = GeneralizedConfig::default().estimate(&train);
    let pop = MostPopular::fit(&train);
    let cfg = FitConfig {
        sample_size: 500,
        ..FitConfig::new(10)
    };

    let fit_start = Instant::now();
    let bundle = ModelBundle::fit(FittedModel::Pop(pop), theta, train.clone(), &cfg);
    let fit_ms = fit_start.elapsed().as_secs_f64() * 1_000.0;

    let (snapshot_bytes_v2, snapshot_bytes_v1_dense) = match &bundle.coverage {
        CoverageState::Dynamic(snaps) => (
            snaps.to_bytes().expect("snapshot encode").len(),
            snapshots_to_v1_payload(snaps).expect("v1 encode").len() + 6,
        ),
        _ => (0, 0),
    };
    let bundle_bytes = bundle.to_bytes().expect("bundle encode").len();

    let engine = ServingEngine::new(bundle, EngineConfig::default());

    let mut cold_ns = Vec::with_capacity(cold_requests);
    for k in 0..cold_requests {
        let u = UserId((k as u32 * 193) % n_users);
        engine.flush_cache();
        let start = Instant::now();
        black_box(engine.recommend(u).unwrap());
        cold_ns.push(start.elapsed().as_nanos() as f64);
    }
    let cold = latency_stats(cold_ns);

    engine.recommend(UserId(0)).unwrap();
    let mut cached_ns = Vec::with_capacity(cached_requests);
    for _ in 0..cached_requests {
        let start = Instant::now();
        black_box(engine.recommend(UserId(0)).unwrap());
        cached_ns.push(start.elapsed().as_nanos() as f64);
    }
    let cached = latency_stats(cached_ns);

    (
        ProfileReport {
            users: n_users,
            items: train.n_items(),
            nnz: train.nnz(),
            fit_ms,
            cold,
            cached,
            snapshot_bytes_v2,
            snapshot_bytes_v1_dense,
            bundle_bytes,
        },
        engine,
    )
}

fn bench_query(c: &mut Criterion) {
    // Medium: the profile/seed/split BENCH_serve.json's cold baseline was
    // measured on, so the two artifacts compare like for like.
    let medium_split = DatasetProfile::medium()
        .generate(18)
        .split_per_user(0.5, 4)
        .unwrap();
    let cold_requests = if fast_mode() { 200 } else { 3_000 };
    let cached_requests = if fast_mode() { 200 } else { 20_000 };
    let (medium, engine) = measure_profile(medium_split.train, cold_requests, cached_requests);
    let n_users = medium.users;

    // Large: catalog scale (skipped in fast/smoke mode).
    let large = if fast_mode() {
        None
    } else {
        let split = DatasetProfile::large()
            .generate(18)
            .split_per_user(0.5, 4)
            .unwrap();
        Some(measure_profile(split.train, 1_000, 5_000).0)
    };

    // ---- per-request override path (θ override, bypasses the cache) ----
    // Measured beside the default cold path so a regression in the
    // override plumbing (or the default path paying for it) is visible:
    // the default cold p50 above is the CI guard's baseline.
    let opts = RequestOptions {
        theta: Some(0.5),
        ..RequestOptions::default()
    };
    let mut override_ns = Vec::with_capacity(cold_requests);
    for k in 0..cold_requests {
        let u = UserId((k as u32 * 193) % n_users);
        let start = Instant::now();
        black_box(engine.recommend_with_traced(u, &opts).unwrap());
        override_ns.push(start.elapsed().as_nanos() as f64);
    }
    let override_cold = latency_stats(override_ns);

    // ---- criterion-style measurements for the console ----
    let mut g = c.benchmark_group("query");
    g.sample_size(if fast_mode() { 10 } else { 60 })
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(3));
    let mut k = 0u32;
    g.bench_function("fused_cold_request_medium", |b| {
        b.iter(|| {
            k = k.wrapping_add(193);
            engine.flush_cache();
            black_box(engine.recommend(UserId(k % n_users)).unwrap())
        })
    });
    g.finish();

    // ---- JSON artifact ----
    let out_path = std::env::var("GANC_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_query.json", env!("CARGO_MANIFEST_DIR")));
    let large_json = large.as_ref().map_or("null".to_string(), |l| l.json());
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"query\",\n  \"medium\": {},\n",
            "  \"override_theta_cold\": {{\"mean_us\": {om:.2}, \"p50_us\": {o50:.2}, ",
            "\"p99_us\": {o99:.2}, \"requests\": {oreq}}},\n",
            "  \"large\": {}\n}}\n"
        ),
        medium.json(),
        large_json,
        om = override_cold.mean_us,
        o50 = override_cold.p50_us,
        o99 = override_cold.p99_us,
        oreq = override_cold.requests,
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
    print!("{json}");
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
