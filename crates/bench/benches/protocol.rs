//! Benchmarks of the Appendix C (Figures 7–8) pipeline: top-N generation
//! under both test ranking protocols and the full metric evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use ganc_dataset::synth::DatasetProfile;
use ganc_eval::fig7_8::topn_under_protocol;
use ganc_metrics::{evaluate_topn, EvalContext, RankingProtocol, TopN};
use ganc_recommender::pop::MostPopular;
use ganc_recommender::topn::generate_topn_lists;
use std::hint::black_box;

fn bench_protocol(c: &mut Criterion) {
    let data = DatasetProfile::medium().generate(12);
    let split = data.split_per_user(0.5, 13).unwrap();
    let train = &split.train;
    let test = &split.test;
    let pop = MostPopular::fit(train);
    let ctx = EvalContext::new(train, test);

    let mut g = c.benchmark_group("fig7_8");
    g.sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(4));

    for (label, protocol) in [
        ("all_unrated", RankingProtocol::AllUnrated),
        ("rated_test_items", RankingProtocol::RatedTestItems),
    ] {
        g.bench_function(format!("topn_under/{label}"), |b| {
            b.iter(|| black_box(topn_under_protocol(&pop, train, test, protocol, 5, 4)))
        });
    }

    let topn = TopN::new(5, generate_topn_lists(&pop, train, 5, 4));
    g.bench_function("evaluate_all_metrics", |b| {
        b.iter(|| black_box(evaluate_topn(&topn, &ctx)))
    });
    g.finish();
}

criterion_group!(benches, bench_protocol);
criterion_main!(benches);
