//! Rolling beyond-accuracy windows over served top-N lists.
//!
//! The paper's offline trade-off metrics — catalog coverage@N, mean
//! novelty (−log₂ observation probability), long-tail share — become
//! live sliding-window signals here. Each served list contributes its
//! item set at a clock-seam timestamp; entries expire exactly when
//! `now ≥ at + window`. All aggregates (item frequencies, distinct
//! count, novelty sum, tail hits) are maintained incrementally, so
//! `observe` and `stats` are O(list length + expired work) — amortized
//! O(1) per served item — never a rescan of the window.
//!
//! Novelty is pre-quantized per item to integer **micro-bits**
//! (`round(−log₂ p × 1e6)`), so the running sum subtracts exactly on
//! expiry and a from-scratch recompute matches bit-for-bit — no float
//! drift over long uptimes.

use std::collections::VecDeque;
use std::time::Duration;

/// Per-item catalog facts frozen at fit time: novelty in micro-bits and
/// long-tail membership. Built once per bundle generation from the
/// already-loaded popularity counts; serving only indexes into it.
#[derive(Debug, Clone)]
pub struct CatalogProfile {
    novelty_microbits: Vec<u64>,
    tail: Vec<bool>,
}

/// Quantize a self-information value to integer micro-bits.
fn microbits(p: f64) -> u64 {
    (-(p.log2()) * 1e6).round() as u64
}

impl CatalogProfile {
    /// Build from pre-computed per-item novelty and tail membership.
    pub fn new(novelty_microbits: Vec<u64>, tail: Vec<bool>) -> CatalogProfile {
        assert_eq!(novelty_microbits.len(), tail.len());
        CatalogProfile {
            novelty_microbits,
            tail,
        }
    }

    /// Build from raw popularity counts using the same observation
    /// probability convention as `ganc_metrics::novelty`: `p = f / |U|`,
    /// floored at `1 / (|U| + 1)` for never-observed items.
    pub fn from_popularity(popularity: &[u32], n_users: u32, tail: Vec<bool>) -> CatalogProfile {
        assert_eq!(popularity.len(), tail.len());
        let users = n_users.max(1) as f64;
        let floor = 1.0 / (n_users as f64 + 1.0);
        let novelty_microbits = popularity
            .iter()
            .map(|&f| {
                let p = if f == 0 { floor } else { f as f64 / users };
                microbits(p.min(1.0))
            })
            .collect();
        CatalogProfile {
            novelty_microbits,
            tail,
        }
    }

    /// Catalog size.
    pub fn n_items(&self) -> usize {
        self.tail.len()
    }

    /// Novelty of `item` in micro-bits (−log₂ p × 1e6, rounded).
    pub fn novelty_microbits(&self, item: u32) -> u64 {
        self.novelty_microbits[item as usize]
    }

    /// Is `item` in the long tail?
    pub fn is_tail(&self, item: u32) -> bool {
        self.tail[item as usize]
    }
}

/// Snapshot of one window's (or fold's) rolling metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Served lists currently inside the window.
    pub lists: u64,
    /// Served items (with multiplicity) inside the window.
    pub items: u64,
    /// Distinct served items ÷ catalog size.
    pub coverage: f64,
    /// Mean −log₂ observation probability over served items, in bits.
    pub mean_novelty_bits: f64,
    /// Fraction of served items that are long-tail.
    pub long_tail_share: f64,
}

impl WindowStats {
    /// The all-zero snapshot of an empty window.
    pub fn empty() -> WindowStats {
        WindowStats {
            lists: 0,
            items: 0,
            coverage: 0.0,
            mean_novelty_bits: 0.0,
            long_tail_share: 0.0,
        }
    }
}

fn finalize(
    lists: u64,
    items: u64,
    distinct: usize,
    n_items: usize,
    novelty_microbits: u64,
    tail_hits: u64,
) -> WindowStats {
    WindowStats {
        lists,
        items,
        coverage: if n_items == 0 {
            0.0
        } else {
            distinct as f64 / n_items as f64
        },
        mean_novelty_bits: if items == 0 {
            0.0
        } else {
            novelty_microbits as f64 / 1e6 / items as f64
        },
        long_tail_share: if items == 0 {
            0.0
        } else {
            tail_hits as f64 / items as f64
        },
    }
}

#[derive(Debug)]
struct Entry {
    at_us: u64,
    items: Vec<u32>,
    novelty_microbits: u64,
    tail_hits: u64,
}

/// Sliding-window accumulator over served top-N lists.
///
/// Not internally synchronized: callers wrap it in a `Mutex` (the
/// serving engines do) or own it exclusively.
#[derive(Debug)]
pub struct RollingWindow {
    window_us: u64,
    n_items: usize,
    entries: VecDeque<Entry>,
    /// Per-item live frequency inside the window.
    freq: Vec<u32>,
    distinct: usize,
    novelty_microbits: u64,
    tail_hits: u64,
    items: u64,
}

impl RollingWindow {
    /// A window of duration `window` over a catalog of `n_items` items.
    pub fn new(window: Duration, n_items: usize) -> RollingWindow {
        RollingWindow {
            window_us: (window.as_micros() as u64).max(1),
            n_items,
            entries: VecDeque::new(),
            freq: vec![0; n_items],
            distinct: 0,
            novelty_microbits: 0,
            tail_hits: 0,
            items: 0,
        }
    }

    /// The window span in microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// Drop every entry with `at + window <= now` — an entry recorded at
    /// `t` is live for `now ∈ [t, t + window)` and expires exactly at
    /// the boundary.
    fn expire(&mut self, now_us: u64) {
        while let Some(front) = self.entries.front() {
            if front.at_us.saturating_add(self.window_us) > now_us {
                break;
            }
            let entry = self.entries.pop_front().unwrap();
            for &item in &entry.items {
                let f = &mut self.freq[item as usize];
                *f -= 1;
                if *f == 0 {
                    self.distinct -= 1;
                }
            }
            self.novelty_microbits -= entry.novelty_microbits;
            self.tail_hits -= entry.tail_hits;
            self.items -= entry.items.len() as u64;
        }
    }

    /// Record one served top-N list at time `at_us`.
    ///
    /// Timestamps must be non-decreasing (they come from one monotonic
    /// clock seam per engine).
    pub fn observe(&mut self, at_us: u64, list: &[u32], catalog: &CatalogProfile) {
        debug_assert_eq!(catalog.n_items(), self.n_items);
        self.expire(at_us);
        let mut novelty = 0u64;
        let mut tail = 0u64;
        for &item in list {
            let f = &mut self.freq[item as usize];
            if *f == 0 {
                self.distinct += 1;
            }
            *f += 1;
            novelty += catalog.novelty_microbits(item);
            tail += catalog.is_tail(item) as u64;
        }
        self.novelty_microbits += novelty;
        self.tail_hits += tail;
        self.items += list.len() as u64;
        self.entries.push_back(Entry {
            at_us,
            items: list.to_vec(),
            novelty_microbits: novelty,
            tail_hits: tail,
        });
    }

    /// Current window metrics as of `now_us` (expires stale entries
    /// first, then reads the running aggregates — no rescan).
    pub fn stats(&mut self, now_us: u64) -> WindowStats {
        self.expire(now_us);
        finalize(
            self.entries.len() as u64,
            self.items,
            self.distinct,
            self.n_items,
            self.novelty_microbits,
            self.tail_hits,
        )
    }

    /// Expire, merge this window's live state into `fold`, and return
    /// this window's own stats.
    pub fn fold_into(&mut self, now_us: u64, fold: &mut WindowFold) -> WindowStats {
        let stats = self.stats(now_us);
        fold.absorb(
            &self.freq,
            self.entries.len() as u64,
            self.items,
            self.novelty_microbits,
            self.tail_hits,
        );
        stats
    }

    /// Expire, then export the live state as a [`WindowWire`] summary.
    pub fn wire(&mut self, now_us: u64) -> WindowWire {
        self.expire(now_us);
        WindowWire {
            n_items: self.n_items,
            lists: self.entries.len() as u64,
            items: self.items,
            novelty_microbits: self.novelty_microbits,
            tail_hits: self.tail_hits,
            distinct: (0..self.n_items as u32)
                .filter(|&i| self.freq[i as usize] > 0)
                .collect(),
        }
    }
}

/// A window's live state in transportable form: the four running sums
/// plus the **distinct served item ids** instead of the dense frequency
/// vector. Because [`WindowFold`] only uses frequencies to count
/// distinct items, folding a wire summary reproduces the union coverage
/// *exactly* — multiplicity is already summarized in `items`,
/// `novelty_microbits`, and `tail_hits`. This is what a remote θ-band
/// ships to a router so multi-node deployments keep aggregate windows.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowWire {
    /// Catalog size the window was built over.
    pub n_items: usize,
    /// Served lists currently inside the window.
    pub lists: u64,
    /// Served items (with multiplicity) inside the window.
    pub items: u64,
    /// Sum of per-item novelty micro-bits over served items.
    pub novelty_microbits: u64,
    /// Long-tail served items (with multiplicity).
    pub tail_hits: u64,
    /// Item ids served at least once inside the window, ascending.
    pub distinct: Vec<u32>,
}

impl WindowWire {
    /// This summary's own metrics (identical to the stats of the window
    /// it was taken from).
    pub fn stats(&self) -> WindowStats {
        finalize(
            self.lists,
            self.items,
            self.distinct.len(),
            self.n_items,
            self.novelty_microbits,
            self.tail_hits,
        )
    }
}

/// Cross-window union: aggregates several [`RollingWindow`]s (one per
/// shard/band) into one catalog-level view. Coverage is computed over
/// the **union** of served items, so it is not simply the mean of the
/// per-band coverages.
#[derive(Debug)]
pub struct WindowFold {
    n_items: usize,
    freq: Vec<u64>,
    lists: u64,
    items: u64,
    novelty_microbits: u64,
    tail_hits: u64,
}

impl WindowFold {
    /// An empty fold over a catalog of `n_items` items.
    pub fn new(n_items: usize) -> WindowFold {
        WindowFold {
            n_items,
            freq: vec![0; n_items],
            lists: 0,
            items: 0,
            novelty_microbits: 0,
            tail_hits: 0,
        }
    }

    fn absorb(
        &mut self,
        freq: &[u32],
        lists: u64,
        items: u64,
        novelty_microbits: u64,
        tail_hits: u64,
    ) {
        debug_assert_eq!(freq.len(), self.n_items);
        for (acc, &f) in self.freq.iter_mut().zip(freq) {
            *acc += f as u64;
        }
        self.lists += lists;
        self.items += items;
        self.novelty_microbits += novelty_microbits;
        self.tail_hits += tail_hits;
    }

    /// Merge a transportable window summary. Distinct ids mark their
    /// frequency slot (multiplicity is already folded into the sums), so
    /// union coverage stays exact across local windows and wire
    /// summaries mixed in one fold.
    pub fn absorb_wire(&mut self, wire: &WindowWire) {
        debug_assert_eq!(wire.n_items, self.n_items);
        for &item in &wire.distinct {
            if let Some(f) = self.freq.get_mut(item as usize) {
                *f += 1;
            }
        }
        self.lists += wire.lists;
        self.items += wire.items;
        self.novelty_microbits += wire.novelty_microbits;
        self.tail_hits += wire.tail_hits;
    }

    /// Export everything absorbed so far as one [`WindowWire`] summary —
    /// how a sharded node answers a router's window fetch with a single
    /// cross-band aggregate.
    pub fn wire(&self) -> WindowWire {
        WindowWire {
            n_items: self.n_items,
            lists: self.lists,
            items: self.items,
            novelty_microbits: self.novelty_microbits,
            tail_hits: self.tail_hits,
            distinct: (0..self.n_items as u32)
                .filter(|&i| self.freq[i as usize] > 0)
                .collect(),
        }
    }

    /// Aggregate metrics over everything absorbed so far.
    pub fn stats(&self) -> WindowStats {
        let distinct = self.freq.iter().filter(|&&f| f > 0).count();
        finalize(
            self.lists,
            self.items,
            distinct,
            self.n_items,
            self.novelty_microbits,
            self.tail_hits,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> CatalogProfile {
        // 4 items, popularity [4, 2, 1, 0] over 4 users.
        CatalogProfile::from_popularity(&[4, 2, 1, 0], 4, vec![false, false, true, true])
    }

    #[test]
    fn observe_accumulates_and_expires_at_exact_boundary() {
        let cat = catalog();
        let mut w = RollingWindow::new(Duration::from_micros(100), 4);
        w.observe(0, &[0, 2], &cat);
        w.observe(50, &[1], &cat);
        let s = w.stats(99);
        assert_eq!(s.lists, 2);
        assert_eq!(s.items, 3);
        assert_eq!(s.coverage, 3.0 / 4.0);
        // At exactly t=100 the first entry expires (live iff now < at+window).
        let s = w.stats(100);
        assert_eq!(s.lists, 1);
        assert_eq!(s.items, 1);
        assert_eq!(s.coverage, 1.0 / 4.0);
        // p(item 1) = 2/4 -> 1 bit of self-information.
        assert!((s.mean_novelty_bits - 1.0).abs() < 1e-9);
        assert_eq!(s.long_tail_share, 0.0);
        let s = w.stats(150);
        assert_eq!(s.lists, 0);
        assert_eq!(s, WindowStats::empty());
    }

    #[test]
    fn novelty_uses_the_metrics_crate_convention() {
        let cat = catalog();
        // p(0)=1 -> 0 bits; p(3) floored at 1/5 -> log2(5) bits.
        assert_eq!(cat.novelty_microbits(0), 0);
        let expect = (5.0f64.log2() * 1e6).round() as u64;
        assert_eq!(cat.novelty_microbits(3), expect);
    }

    #[test]
    fn wire_summary_folds_identically_to_the_dense_window() {
        let cat = catalog();
        let mut a = RollingWindow::new(Duration::from_micros(100), 4);
        let mut b = RollingWindow::new(Duration::from_micros(100), 4);
        a.observe(0, &[0, 1, 1], &cat);
        b.observe(5, &[1, 2], &cat);

        // Dense reference fold.
        let mut dense = WindowFold::new(4);
        a.fold_into(10, &mut dense);
        b.fold_into(10, &mut dense);

        // Wire-summary fold: one window local, one over the wire.
        let mut wired = WindowFold::new(4);
        a.fold_into(10, &mut wired);
        let wire = b.wire(10);
        assert_eq!(wire.stats(), b.stats(10), "wire stats match the source");
        wired.absorb_wire(&wire);

        assert_eq!(dense.stats(), wired.stats());
        // A fold re-exported as a wire summary keeps the same stats.
        assert_eq!(wired.wire().stats(), wired.stats());
        // Expiry is honored before export.
        assert_eq!(b.wire(200).lists, 0);
    }

    #[test]
    fn fold_unions_coverage_across_windows() {
        let cat = catalog();
        let mut a = RollingWindow::new(Duration::from_micros(100), 4);
        let mut b = RollingWindow::new(Duration::from_micros(100), 4);
        a.observe(0, &[0, 1], &cat);
        b.observe(0, &[1, 2], &cat);
        let mut fold = WindowFold::new(4);
        let sa = a.fold_into(10, &mut fold);
        let sb = b.fold_into(10, &mut fold);
        assert_eq!(sa.coverage, 0.5);
        assert_eq!(sb.coverage, 0.5);
        let s = fold.stats();
        // Union is {0,1,2}: 3/4, not the mean of the per-window halves.
        assert_eq!(s.coverage, 3.0 / 4.0);
        assert_eq!(s.items, 4);
        assert_eq!(s.lists, 2);
        assert_eq!(s.long_tail_share, 1.0 / 4.0);
    }
}
