//! Lock-free metric primitives and a registry that renders them in
//! Prometheus text exposition format (version 0.0.4).
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s of plain
//! atomics: the hot path touches one or two `Relaxed` atomic ops and no
//! locks. The registry's `RwLock` is only taken when a handle is first
//! created or when `/v1/metrics` renders — never per-request once the
//! handles are cached by the instrumented component.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating-point value (stored as f64 bits).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Overwrite the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of finite histogram buckets (upper bounds `1, 2, 4, …, 2^24` µs).
pub const HISTOGRAM_BUCKETS: usize = 25;

/// The finite bucket upper bounds in microseconds: powers of two from
/// 1 µs to 2^24 µs (≈ 16.8 s). Anything slower lands in `+Inf`.
pub fn bucket_bounds_us() -> [u64; HISTOGRAM_BUCKETS] {
    let mut bounds = [0u64; HISTOGRAM_BUCKETS];
    for (i, b) in bounds.iter_mut().enumerate() {
        *b = 1u64 << i;
    }
    bounds
}

/// Fixed-bucket log₂-spaced latency histogram over microseconds.
///
/// An observation costs two `Relaxed` `fetch_add`s (bucket + sum); the
/// bucket index is a leading-zeros computation, no search.
#[derive(Debug)]
pub struct Histogram {
    /// `counts[i]` for i < `HISTOGRAM_BUCKETS` is the count of
    /// observations with `prev_bound < v <= 2^i` µs; the last slot is
    /// the `+Inf` overflow bucket.
    counts: [AtomicU64; HISTOGRAM_BUCKETS + 1],
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one latency observation, in microseconds.
    pub fn observe_us(&self, us: u64) {
        let idx = if us <= 1 {
            0
        } else {
            // ceil(log2(us)): the smallest i with 2^i >= us.
            let ceil_log2 = (64 - (us - 1).leading_zeros()) as usize;
            ceil_log2.min(HISTOGRAM_BUCKETS)
        };
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`].
    pub fn observe(&self, d: std::time::Duration) {
        self.observe_us(d.as_micros() as u64);
    }

    /// Per-bucket (non-cumulative) counts; the final entry is `+Inf`.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn prom(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    help: &'static str,
    kind: MetricKind,
    /// Keyed by the rendered (sorted) label set, e.g. `{band="0"}`; the
    /// BTreeMap makes exposition order deterministic.
    series: BTreeMap<String, Series>,
}

/// Central metric store: names + label sets → shared atomic handles.
#[derive(Default)]
pub struct MetricsRegistry {
    families: RwLock<BTreeMap<String, Family>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .enumerate()
            .all(|(i, b)| b == b'_' || b.is_ascii_alphabetic() || (i > 0 && b.is_ascii_digit()))
}

/// Escape a label value per the exposition format.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a label set as `{a="x",b="y"}` with keys sorted; empty set
/// renders as the empty string.
fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    let mut out = String::from("{");
    for (i, (k, v)) in sorted.iter().enumerate() {
        assert!(valid_name(k), "invalid label name {k:?}");
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label(v));
        out.push('"');
    }
    out.push('}');
    out
}

/// Merge an extra label (`le` for histogram buckets) into a rendered
/// label set.
fn with_extra_label(rendered: &str, key: &str, value: &str) -> String {
    if rendered.is_empty() {
        format!("{{{key}=\"{value}\"}}")
    } else {
        let body = &rendered[1..rendered.len() - 1];
        format!("{{{body},{key}=\"{value}\"}}")
    }
}

fn format_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn series<T, F, G>(
        &self,
        name: &str,
        help: &'static str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: F,
        cast: G,
    ) -> Arc<T>
    where
        F: FnOnce() -> Series,
        G: Fn(&Series) -> Option<Arc<T>>,
    {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let key = label_key(labels);
        let mut families = self.families.write().unwrap();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help,
            kind,
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric {name} already registered with kind {:?}",
            family.kind
        );
        let series = family.series.entry(key).or_insert_with(make);
        cast(series).expect("kind checked above")
    }

    /// Get or create the counter `name` with `labels`.
    pub fn counter(&self, name: &str, help: &'static str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.series(
            name,
            help,
            MetricKind::Counter,
            labels,
            || Series::Counter(Arc::new(Counter::default())),
            |s| match s {
                Series::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Get or create the gauge `name` with `labels`.
    pub fn gauge(&self, name: &str, help: &'static str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.series(
            name,
            help,
            MetricKind::Gauge,
            labels,
            || Series::Gauge(Arc::new(Gauge::default())),
            |s| match s {
                Series::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Get or create the histogram `name` with `labels`.
    pub fn histogram(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        self.series(
            name,
            help,
            MetricKind::Histogram,
            labels,
            || Series::Histogram(Arc::new(Histogram::default())),
            |s| match s {
                Series::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Render every registered metric in Prometheus text exposition
    /// format. Family and series order is deterministic (sorted).
    pub fn render(&self) -> String {
        let bounds = bucket_bounds_us();
        let families = self.families.read().unwrap();
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.prom()));
            for (labels, series) in family.series.iter() {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&format!("{name}{labels} {}\n", c.get()));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&format!("{name}{labels} {}\n", format_value(g.get())));
                    }
                    Series::Histogram(h) => {
                        let counts = h.bucket_counts();
                        let mut cumulative = 0u64;
                        for (i, n) in counts.iter().enumerate() {
                            cumulative += n;
                            let le = if i < HISTOGRAM_BUCKETS {
                                bounds[i].to_string()
                            } else {
                                "+Inf".to_string()
                            };
                            let lbl = with_extra_label(labels, "le", &le);
                            out.push_str(&format!("{name}_bucket{lbl} {cumulative}\n"));
                        }
                        out.push_str(&format!("{name}_sum{labels} {}\n", h.sum_us()));
                        out.push_str(&format!("{name}_count{labels} {cumulative}\n"));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("ganc_test_total", "help", &[("band", "0")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name+labels returns the same underlying atomic.
        let c2 = reg.counter("ganc_test_total", "help", &[("band", "0")]);
        c2.inc();
        assert_eq!(c.get(), 6);
        let g = reg.gauge("ganc_test_gauge", "help", &[]);
        g.set(0.25);
        assert_eq!(g.get(), 0.25);
    }

    #[test]
    fn histogram_buckets_are_ceil_log2() {
        let h = Histogram::default();
        // 1 µs -> bucket 0 (le=1); 2 -> 1 (le=2); 3 -> 2 (le=4); 16 -> 4.
        for us in [0, 1, 2, 3, 16, 17] {
            h.observe_us(us);
        }
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 2); // 0 and 1
        assert_eq!(counts[1], 1); // 2
        assert_eq!(counts[2], 1); // 3
        assert_eq!(counts[4], 1); // 16
        assert_eq!(counts[5], 1); // 17
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum_us(), 39);
        // Far beyond the last finite bound lands in +Inf.
        h.observe_us(u64::MAX / 2);
        assert_eq!(h.bucket_counts()[HISTOGRAM_BUCKETS], 1);
    }

    #[test]
    fn render_is_sorted_and_cumulative() {
        let reg = MetricsRegistry::new();
        reg.counter("ganc_b_total", "second", &[("x", "1")]).inc();
        reg.counter("ganc_a_total", "first", &[]).add(2);
        let h = reg.histogram("ganc_lat_us", "latency", &[("band", "0")]);
        h.observe_us(3);
        h.observe_us(100);
        let text = reg.render();
        let a = text.find("ganc_a_total").unwrap();
        let b = text.find("ganc_b_total").unwrap();
        assert!(a < b, "families must render sorted");
        assert!(text.contains("# TYPE ganc_lat_us histogram"));
        assert!(text.contains("ganc_lat_us_bucket{band=\"0\",le=\"4\"} 1"));
        assert!(text.contains("ganc_lat_us_bucket{band=\"0\",le=\"128\"} 2"));
        assert!(text.contains("ganc_lat_us_bucket{band=\"0\",le=\"+Inf\"} 2"));
        assert!(text.contains("ganc_lat_us_sum{band=\"0\"} 103"));
        assert!(text.contains("ganc_lat_us_count{band=\"0\"} 2"));
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("ganc_esc_total", "h", &[("p", "a\"b\\c\nd")])
            .inc();
        let text = reg.render();
        assert!(text.contains("p=\"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("ganc_dup", "h", &[]);
        reg.gauge("ganc_dup", "h", &[]);
    }
}
