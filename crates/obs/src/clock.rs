//! The injectable time source every metric, trace event, and rolling
//! window reads through.
//!
//! Moved here from `ganc_serve::refit` (which re-exports these types for
//! compatibility) so the whole observability layer shares one seam: under
//! a [`ManualClock`] every timestamp, window expiry, and cadence decision
//! is deterministic, which turns "the window must NOT have expired yet"
//! from a probabilistic assertion into a provable one.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A monotonic time source. Injectable so time-dependent behavior is
/// deterministic under test: a [`ManualClock`] only moves when the test
/// advances it.
pub trait Clock: Send + Sync + 'static {
    /// Monotonic elapsed time since the clock's origin.
    fn now(&self) -> Duration;
}

/// The production clock: wall progress since construction.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is "now".
    #[allow(clippy::new_without_default)]
    pub fn new() -> SystemClock {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// A test clock that advances only when told to.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: Mutex<Duration>,
}

impl ManualClock {
    /// A clock frozen at zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Move the clock forward by `by`.
    pub fn advance(&self, by: Duration) {
        *self.now.lock().unwrap() += by;
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        *self.now.lock().unwrap()
    }
}

impl<C: Clock> Clock for Arc<C> {
    fn now(&self) -> Duration {
        C::now(self)
    }
}

// `dyn Clock` is unsized, so this does not overlap the blanket `Arc<C>`
// impl above; it lets an `Arc<dyn Clock>` (how `ObsHub` stores its clock)
// feed generic consumers like `RefitController::spawn_adaptive`.
impl Clock for Arc<dyn Clock> {
    fn now(&self) -> Duration {
        self.as_ref().now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_on_advance() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_millis(250));
        c.advance(Duration::from_millis(250));
        assert_eq!(c.now(), Duration::from_millis(500));
    }

    #[test]
    fn system_clock_is_monotone() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn arc_dyn_clock_reads_through() {
        let manual = Arc::new(ManualClock::new());
        let as_dyn: Arc<dyn Clock> = Arc::clone(&manual) as Arc<dyn Clock>;
        manual.advance(Duration::from_secs(3));
        fn read(c: &impl Clock) -> Duration {
            c.now()
        }
        assert_eq!(read(&as_dyn), Duration::from_secs(3));
    }
}
