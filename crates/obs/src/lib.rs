//! # ganc-obs — zero-dependency observability for the GANC serving stack
//!
//! Three pillars, all reading time through one injectable [`Clock`] seam
//! so every signal is deterministic under [`ManualClock`]:
//!
//! 1. **Metrics** ([`metrics`]): lock-free atomic counters, gauges, and
//!    log₂-spaced-µs latency histograms in a [`MetricsRegistry`] that
//!    renders Prometheus text exposition format for `GET /v1/metrics`.
//! 2. **Tracing** ([`trace`]): a bounded drop-oldest ring of structured
//!    [`TraceData`] events — request outcomes, cache hits, ingest,
//!    refit/hot-swap lifecycle — drained by `GET /v1/trace`.
//! 3. **Rolling beyond-accuracy windows** ([`window`]): sliding-window
//!    catalog coverage@N, mean novelty (−log₂ popularity), and long-tail
//!    share over served top-N lists, O(1)-amortized per served item,
//!    surfaced through `/v1/stats`.
//!
//! [`ObsHub`] bundles the three with a shared clock and a request-id
//! source; serving components hold cheap `Arc` handles into it.

pub mod clock;
pub mod metrics;
pub mod trace;
pub mod window;

pub use clock::{Clock, ManualClock, SystemClock};
pub use metrics::{
    bucket_bounds_us, Counter, Gauge, Histogram, MetricsRegistry, HISTOGRAM_BUCKETS,
};
pub use trace::{TraceData, TraceEvent, TraceRing, DEFAULT_TRACE_CAPACITY};
pub use window::{CatalogProfile, RollingWindow, WindowFold, WindowStats, WindowWire};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One process-wide observability hub: metric registry + trace ring +
/// the clock they stamp time with, plus a request-id source.
pub struct ObsHub {
    /// The metric store rendered at `/v1/metrics`.
    pub metrics: MetricsRegistry,
    /// The event ring drained at `/v1/trace`.
    pub trace: TraceRing,
    clock: Arc<dyn Clock>,
    request_ids: AtomicU64,
}

impl ObsHub {
    /// A hub on the production [`SystemClock`].
    pub fn new() -> Arc<ObsHub> {
        ObsHub::with_clock(Arc::new(SystemClock::new()))
    }

    /// A hub on an injected clock (tests pass a [`ManualClock`]).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Arc<ObsHub> {
        Arc::new(ObsHub {
            metrics: MetricsRegistry::new(),
            trace: TraceRing::new(),
            clock,
            request_ids: AtomicU64::new(0),
        })
    }

    /// The shared clock seam.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Current time in microseconds since the clock origin.
    pub fn now_us(&self) -> u64 {
        self.clock.now().as_micros() as u64
    }

    /// Next unique request id (1-based).
    pub fn next_request_id(&self) -> u64 {
        self.request_ids.fetch_add(1, Ordering::Relaxed) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn hub_stamps_time_from_the_injected_clock() {
        let clock = Arc::new(ManualClock::new());
        let hub = ObsHub::with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        assert_eq!(hub.now_us(), 0);
        clock.advance(Duration::from_millis(2));
        assert_eq!(hub.now_us(), 2000);
        hub.trace
            .record(hub.now_us(), TraceData::RefitSwapped { generation: 1 });
        assert_eq!(hub.trace.snapshot()[0].at_us, 2000);
    }

    #[test]
    fn request_ids_are_unique_and_one_based() {
        let hub = ObsHub::new();
        assert_eq!(hub.next_request_id(), 1);
        assert_eq!(hub.next_request_id(), 2);
    }
}
