//! Structured trace events in a bounded ring buffer.
//!
//! Components record [`TraceData`] variants (request outcomes, ingest,
//! refit/hot-swap lifecycle) stamped with a sequence number and a
//! clock-seam timestamp; `/v1/trace` drains the ring. When the ring is
//! full the **oldest** events are dropped and counted, so a stalled
//! reader can always see the most recent activity plus an honest
//! `dropped` figure.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default ring capacity.
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

/// What happened, structurally.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceData {
    /// One single-user recommend.
    Request {
        /// Hub-assigned request id (0 when the caller has none).
        request_id: u64,
        /// The user asked about.
        user: u32,
        /// Bundle generation that served it.
        generation: u64,
        /// θ-band index, when served by a banded engine.
        band: Option<u32>,
        /// Served from the run-list cache?
        cache_hit: bool,
        /// End-to-end engine time.
        elapsed_us: u64,
    },
    /// One batch recommend against an engine or band.
    Batch {
        /// Number of users in the batch.
        users: u32,
        /// Bundle generation that served it.
        generation: u64,
        /// θ-band index, when served by a banded engine.
        band: Option<u32>,
        /// End-to-end engine time.
        elapsed_us: u64,
    },
    /// One accepted ingest event.
    Ingest {
        /// User the rating came from.
        user: u32,
        /// Item rated.
        item: u32,
        /// θ-band index, when applied by a banded engine.
        band: Option<u32>,
    },
    /// A bundle hot-swap completed on an engine.
    BundleSwap {
        /// θ-band index, when the engine is banded.
        band: Option<u32>,
        /// Generation now being served.
        generation: u64,
    },
    /// A refit pass started from a snapshot.
    RefitStarted {
        /// Generation the snapshot was taken at.
        generation: u64,
        /// Ingest events pending at snapshot time.
        pending: u64,
    },
    /// A refit pass installed its bundle.
    RefitSwapped {
        /// Generation now being served.
        generation: u64,
    },
    /// A refit pass lost the install race and was discarded.
    RefitRaced {
        /// Generation the stale snapshot was taken at.
        generation: u64,
    },
    /// A band's primary dispatch blew its latency budget and the
    /// sub-request was re-issued to another replica (first answer wins).
    BandHedge {
        /// θ-band index.
        band: u32,
        /// Replica index the straggling dispatch went to.
        primary: u32,
        /// Replica index the hedge was re-issued to.
        hedge: u32,
    },
    /// A band's dispatch failed on one replica and was retried on the
    /// next healthy one before surfacing to the caller.
    BandFailover {
        /// θ-band index.
        band: u32,
        /// Replica index that failed.
        from: u32,
        /// Replica index retried next.
        to: u32,
    },
    /// A replica crossed its consecutive-failure threshold and was
    /// ejected from dispatch rotation.
    ReplicaEjected {
        /// θ-band index.
        band: u32,
        /// Replica index ejected.
        replica: u32,
        /// Consecutive failures at ejection time.
        failures: u32,
    },
    /// A health probe found an ejected replica answering again and
    /// restored it to rotation.
    ReplicaRestored {
        /// θ-band index.
        band: u32,
        /// Replica index restored.
        replica: u32,
    },
    /// A node's write-ahead log was replayed on startup.
    WalReplay {
        /// Records recovered (valid prefix).
        records: u64,
        /// Bytes of the valid prefix replayed.
        bytes: u64,
        /// Replay stopped early at a torn or corrupt record.
        corrupted: bool,
    },
    /// A node's write-ahead log was compacted after a refit persisted.
    WalTruncate {
        /// Records retained (racing ingests + dedup-key stubs).
        retained: u64,
        /// Shard-set generation whose install triggered the truncation.
        generation: u64,
    },
    /// The event-driven HTTP front accepted a connection.
    ConnAccept {
        /// Server-assigned connection id.
        conn: u64,
        /// Connections open after the accept.
        open: u64,
    },
    /// The event-driven HTTP front forcibly closed a connection it was
    /// still tracking (the peer had not closed it first).
    ConnEvict {
        /// Server-assigned connection id.
        conn: u64,
        /// Why: `idle`, `deadline`, `capacity`, or `shutdown`.
        reason: &'static str,
    },
    /// One HTTP recommend request carrying per-request overrides (θ, an
    /// exclusion list, an online re-ranker, or a combination).
    RequestOverrides {
        /// Hub-assigned request id.
        request_id: u64,
        /// A `?theta=` override was present.
        theta: bool,
        /// Number of `exclude=` item ids (0 when absent).
        exclude: u32,
        /// The `rerank=` mode token, or `""` when absent.
        rerank: &'static str,
    },
    /// One HTTP request, with per-stage timing.
    Http {
        /// Hub-assigned request id.
        request_id: u64,
        /// Normalized endpoint label (e.g. `/v1/recommend`).
        endpoint: &'static str,
        /// Response status code.
        status: u16,
        /// Time parsing the request head + body.
        parse_us: u64,
        /// Time in routing + backend dispatch.
        dispatch_us: u64,
        /// Time encoding + writing the response.
        write_us: u64,
    },
}

impl TraceData {
    /// Stable discriminant label, used in JSON output and assertions.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceData::Request { .. } => "request",
            TraceData::Batch { .. } => "batch",
            TraceData::Ingest { .. } => "ingest",
            TraceData::BundleSwap { .. } => "bundle_swap",
            TraceData::RefitStarted { .. } => "refit_started",
            TraceData::RefitSwapped { .. } => "refit_swapped",
            TraceData::RefitRaced { .. } => "refit_raced",
            TraceData::BandHedge { .. } => "band_hedge",
            TraceData::BandFailover { .. } => "band_failover",
            TraceData::ReplicaEjected { .. } => "replica_ejected",
            TraceData::ReplicaRestored { .. } => "replica_restored",
            TraceData::WalReplay { .. } => "wal_replay",
            TraceData::WalTruncate { .. } => "wal_truncate",
            TraceData::ConnAccept { .. } => "conn_accept",
            TraceData::ConnEvict { .. } => "conn_evict",
            TraceData::RequestOverrides { .. } => "request_overrides",
            TraceData::Http { .. } => "http",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Monotone sequence number (gaps reveal drops).
    pub seq: u64,
    /// Clock-seam timestamp, microseconds since clock origin.
    pub at_us: u64,
    /// The event itself.
    pub data: TraceData,
}

/// Bounded drop-oldest event ring.
#[derive(Debug)]
pub struct TraceRing {
    events: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
}

impl Default for TraceRing {
    fn default() -> TraceRing {
        TraceRing::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceRing {
    /// A ring holding [`DEFAULT_TRACE_CAPACITY`] events.
    pub fn new() -> TraceRing {
        TraceRing::default()
    }

    /// A ring holding at most `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> TraceRing {
        TraceRing {
            events: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Append one event stamped `at_us`, evicting the oldest if full.
    pub fn record(&self, at_us: u64, data: TraceData) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut events = self.events.lock().unwrap();
        if events.len() == self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(TraceEvent { seq, at_us, data });
    }

    /// Remove and return all buffered events, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap().drain(..).collect()
    }

    /// Copy the buffered events without consuming them.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap().iter().cloned().collect()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events evicted without being drained.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_and_counts() {
        let ring = TraceRing::with_capacity(2);
        for i in 0..3 {
            ring.record(i * 10, TraceData::RefitSwapped { generation: i });
        }
        assert_eq!(ring.dropped(), 1);
        let events = ring.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 1);
        assert_eq!(events[1].seq, 2);
        assert_eq!(events[1].at_us, 20);
        assert!(ring.is_empty());
        // Draining does not reset the dropped count.
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn snapshot_leaves_events_in_place() {
        let ring = TraceRing::new();
        ring.record(
            5,
            TraceData::Ingest {
                user: 1,
                item: 2,
                band: Some(0),
            },
        );
        assert_eq!(ring.snapshot().len(), 1);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.snapshot()[0].data.kind(), "ingest");
    }
}
