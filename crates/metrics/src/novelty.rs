//! Popularity-based novelty measures beyond Table III.
//!
//! The paper quantifies novelty through LTAccuracy; the wider
//! beyond-accuracy literature it cites (Castells, Hurley & Vargas,
//! Recommender Systems Handbook ch. 26) standardizes two popularity-based
//! measures that downstream users of this library will expect:
//!
//! * **Mean self-information** (MSI, a.k.a. surprisal): the average
//!   `−log₂ p(i)` of recommended items, where `p(i)` is the fraction of
//!   users who rated `i` in train. Recommending items nobody has seen is
//!   maximally "surprising".
//! * **Expected popularity complement** (EPC): the average `1 − p(i)` —
//!   a bounded [0, 1] novelty score that moves linearly with popularity.

use crate::topn::TopN;
use ganc_dataset::Interactions;

/// Per-item observation probability `p(i) = |U_i^R| / |U|`, the basis of
/// both measures. Items never rated get the floor `1 / (|U| + 1)`.
pub fn observation_probability(train: &Interactions) -> Vec<f64> {
    let n_users = train.n_users() as f64;
    train
        .item_popularity()
        .iter()
        .map(|&f| {
            if f == 0 {
                1.0 / (n_users + 1.0)
            } else {
                f as f64 / n_users
            }
        })
        .collect()
}

/// Mean self-information of the recommended items, in bits:
/// `MSI = (1/Σ|P_u|) Σ_u Σ_{i∈P_u} −log₂ p(i)`.
/// Returns 0 for empty collections.
pub fn mean_self_information(topn: &TopN, p_obs: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for list in topn.lists() {
        for item in list {
            sum += -(p_obs[item.idx()].log2());
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Expected popularity complement:
/// `EPC = (1/Σ|P_u|) Σ_u Σ_{i∈P_u} (1 − p(i))`, in `[0, 1]`.
pub fn expected_popularity_complement(topn: &TopN, p_obs: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for list in topn.lists() {
        for item in list {
            sum += 1.0 - p_obs[item.idx()].min(1.0);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganc_dataset::{DatasetBuilder, ItemId, RatingScale, UserId};

    /// 4 users; item 0 rated by all, item 1 by one, item 2 by none.
    fn train() -> Interactions {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        for u in 0..4u32 {
            b.push(UserId(u), ItemId(0), 4.0).unwrap();
        }
        b.push(UserId(0), ItemId(1), 4.0).unwrap();
        let d = b.build().unwrap();
        Interactions::from_ratings(4, 3, d.ratings())
    }

    #[test]
    fn observation_probability_matches_popularity() {
        let p = observation_probability(&train());
        assert!((p[0] - 1.0).abs() < 1e-12);
        assert!((p[1] - 0.25).abs() < 1e-12);
        assert!((p[2] - 0.2).abs() < 1e-12); // floor 1/(4+1)
    }

    #[test]
    fn msi_rewards_rare_items() {
        let tr = train();
        let p = observation_probability(&tr);
        let popular = TopN::new(1, vec![vec![ItemId(0)], vec![], vec![], vec![]]);
        let rare = TopN::new(1, vec![vec![ItemId(1)], vec![], vec![], vec![]]);
        assert_eq!(mean_self_information(&popular, &p), 0.0); // −log₂ 1 = 0
        assert!((mean_self_information(&rare, &p) - 2.0).abs() < 1e-12); // −log₂ ¼
    }

    #[test]
    fn epc_is_bounded_and_monotone() {
        let tr = train();
        let p = observation_probability(&tr);
        let popular = TopN::new(1, vec![vec![ItemId(0)], vec![], vec![], vec![]]);
        let rare = TopN::new(1, vec![vec![ItemId(1)], vec![], vec![], vec![]]);
        let e_pop = expected_popularity_complement(&popular, &p);
        let e_rare = expected_popularity_complement(&rare, &p);
        assert_eq!(e_pop, 0.0);
        assert!((e_rare - 0.75).abs() < 1e-12);
        assert!(e_rare > e_pop);
    }

    #[test]
    fn empty_collection_scores_zero() {
        let tr = train();
        let p = observation_probability(&tr);
        let empty = TopN::empty(5, 4);
        assert_eq!(mean_self_information(&empty, &p), 0.0);
        assert_eq!(expected_popularity_complement(&empty, &p), 0.0);
    }

    #[test]
    fn mixed_lists_average_over_items() {
        let tr = train();
        let p = observation_probability(&tr);
        let mixed = TopN::new(2, vec![vec![ItemId(0), ItemId(1)], vec![], vec![], vec![]]);
        // (0 + 2.0) / 2 items
        assert!((mean_self_information(&mixed, &p) - 1.0).abs() < 1e-12);
    }
}
