//! # ganc-metrics
//!
//! The paper's full evaluation suite (Table III):
//!
//! * **Local ranking accuracy** — Precision@N, Recall@N, F-measure@N
//!   ([`accuracy`]), plus NDCG@N for completeness.
//! * **Long-tail promotion** — LTAccuracy@N and Stratified Recall@N with
//!   β = 0.5 ([`longtail`]).
//! * **Coverage** — Coverage@N and the Gini coefficient of the
//!   recommendation-frequency distribution ([`coverage`]).
//! * **Rating-prediction error** — RMSE / MAE ([`rating`]), used by the
//!   Appendix A hyper-parameter study (Table V).
//! * **Popularity-based novelty** — mean self-information and expected
//!   popularity complement ([`novelty`]; library extension beyond
//!   Table III).
//! * **Test ranking protocols** ([`protocol`]) — "all unrated items" vs
//!   "rated test-items" (§IV-A and Appendix C), which Figures 7–8 show can
//!   swing measured accuracy by an order of magnitude.
//!
//! All metrics consume a [`TopN`] collection (one recommendation list per
//! user) and the train/test [`ganc_dataset::Interactions`], so they are
//! independent of whichever model produced the lists.

pub mod accuracy;
pub mod coverage;
pub mod longtail;
pub mod novelty;
pub mod protocol;
pub mod rating;
pub mod report;
pub mod topn;

pub use protocol::RankingProtocol;
pub use report::{evaluate_topn, EvalContext, TopNMetrics};
pub use topn::TopN;
