//! Rating-prediction error metrics (RMSE / MAE), used by the Appendix A
//! hyper-parameter study (Table V) and RSVD validation.

use ganc_dataset::{Interactions, ItemId, UserId};

/// Root mean squared error of a predictor over a held-out interaction set.
pub fn rmse<F: FnMut(UserId, ItemId) -> f64>(held_out: &Interactions, mut predict: F) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for (u, i, r) in held_out.iter() {
        let e = predict(u, i) - r as f64;
        sum += e * e;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        (sum / count as f64).sqrt()
    }
}

/// Mean absolute error of a predictor over a held-out interaction set.
pub fn mae<F: FnMut(UserId, ItemId) -> f64>(held_out: &Interactions, mut predict: F) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for (u, i, r) in held_out.iter() {
        sum += (predict(u, i) - r as f64).abs();
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganc_dataset::{DatasetBuilder, RatingScale};

    fn held_out() -> Interactions {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        b.push(UserId(0), ItemId(0), 4.0).unwrap();
        b.push(UserId(0), ItemId(1), 2.0).unwrap();
        b.push(UserId(1), ItemId(0), 5.0).unwrap();
        b.build().unwrap().interactions()
    }

    #[test]
    fn perfect_predictor_scores_zero() {
        let h = held_out();
        let href = &h;
        assert_eq!(rmse(href, |u, i| href.get(u, i).unwrap() as f64), 0.0);
        assert_eq!(mae(href, |u, i| href.get(u, i).unwrap() as f64), 0.0);
    }

    #[test]
    fn constant_predictor_hand_computed() {
        let h = held_out();
        // predict 3.0: errors 1, -1, 2 → rmse = sqrt(6/3) = sqrt(2), mae = 4/3
        let r = rmse(&h, |_, _| 3.0);
        let m = mae(&h, |_, _| 3.0);
        assert!((r - 2.0f64.sqrt()).abs() < 1e-12);
        assert!((m - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_set_scores_zero() {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        b.push(UserId(0), ItemId(0), 4.0).unwrap();
        let d = b.build().unwrap();
        let split = d.split_per_user(1.0, 1).unwrap();
        assert_eq!(rmse(&split.test, |_, _| 3.0), 0.0);
        assert_eq!(mae(&split.test, |_, _| 3.0), 0.0);
    }

    #[test]
    fn rmse_penalizes_outliers_more() {
        let h = held_out();
        // Biased predictor with one large error.
        let f = |u: UserId, i: ItemId| {
            if u.0 == 1 {
                1.0
            } else {
                h.get(u, i).unwrap() as f64
            }
        };
        assert!(rmse(&h, f) > mae(&h, f));
    }
}
