//! Test ranking protocols (§IV-A, Appendix C).
//!
//! The protocol decides **which items are ranked** when building a user's
//! top-N set:
//!
//! * [`RankingProtocol::AllUnrated`] — rank every train item the user has
//!   not rated, `I^R \ I_u^R`. This is the paper's main protocol: it mirrors
//!   the production setting where the system must pick N items from the
//!   whole catalog.
//! * [`RankingProtocol::RatedTestItems`] — rank only the user's observed
//!   test items `I_u^T`. Appendix C shows this inflates accuracy badly
//!   (random guessing reaches F ≈ 0.25 on ML-1M) and rewards
//!   popularity-biased models; it exists here to reproduce Figures 7–8.

use ganc_dataset::{Interactions, UserId};

/// Which candidate items are ranked for each user at test time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankingProtocol {
    /// Rank all train items unseen by the user (`I^R \ I_u^R`).
    AllUnrated,
    /// Rank only the user's observed test items (`I_u^T`).
    RatedTestItems,
}

impl RankingProtocol {
    /// Collect the candidate item ids for `u` under this protocol.
    ///
    /// `in_train` must be the precomputed mask of items with at least one
    /// train rating (`I^R`), reused across users; pass
    /// [`train_item_mask`]'s output.
    pub fn candidates(
        &self,
        train: &Interactions,
        test: &Interactions,
        in_train: &[bool],
        u: UserId,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        match self {
            RankingProtocol::AllUnrated => {
                let (seen, _) = train.user_row(u);
                let mut seen_iter = seen.iter().copied().peekable();
                for i in 0..train.n_items() {
                    // `seen` is sorted, so march both sequences together.
                    if seen_iter.peek() == Some(&i) {
                        seen_iter.next();
                        continue;
                    }
                    if in_train[i as usize] {
                        out.push(i);
                    }
                }
            }
            RankingProtocol::RatedTestItems => {
                let (items, _) = test.user_row(u);
                out.extend_from_slice(items);
            }
        }
    }

    /// Short display name used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            RankingProtocol::AllUnrated => "all-unrated",
            RankingProtocol::RatedTestItems => "rated-test-items",
        }
    }
}

/// Mask of items that appear in the train set (`I^R`), indexed by item id.
pub fn train_item_mask(train: &Interactions) -> Vec<bool> {
    train.item_popularity().iter().map(|&f| f > 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganc_dataset::{DatasetBuilder, ItemId, RatingScale};

    fn fixture() -> (Interactions, Interactions) {
        // items 0..=3; item 3 never rated in train.
        let mut tr = DatasetBuilder::new("t", RatingScale::stars_1_5());
        tr.push(UserId(0), ItemId(0), 4.0).unwrap();
        tr.push(UserId(0), ItemId(1), 4.0).unwrap();
        tr.push(UserId(1), ItemId(2), 4.0).unwrap();
        tr.push(UserId(1), ItemId(3), 1.0).unwrap();
        let mut te = DatasetBuilder::new("t", RatingScale::stars_1_5());
        te.push(UserId(0), ItemId(2), 5.0).unwrap();
        te.push(UserId(1), ItemId(0), 3.0).unwrap();
        let train = tr.build().unwrap().interactions();
        let test = {
            // widen id space to match train
            let d = te.build().unwrap();
            let ratings: Vec<_> = d.ratings().to_vec();
            Interactions::from_ratings(train.n_users(), train.n_items(), &ratings)
        };
        (train, test)
    }

    #[test]
    fn all_unrated_excludes_seen_and_untrained() {
        let (train, test) = fixture();
        let mask = train_item_mask(&train);
        let mut out = Vec::new();
        RankingProtocol::AllUnrated.candidates(&train, &test, &mask, UserId(0), &mut out);
        // user0 saw {0,1}; item 3 IS in train (user1 rated it) → candidates {2,3}
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn all_unrated_full_catalog_when_nothing_seen() {
        let (train, test) = fixture();
        let mask = train_item_mask(&train);
        let mut out = Vec::new();
        // user id space includes a user with no train ratings? Add user 2 via
        // widened interactions: both users rated, so test user 1's view:
        RankingProtocol::AllUnrated.candidates(&train, &test, &mask, UserId(1), &mut out);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn rated_test_items_returns_test_row() {
        let (train, test) = fixture();
        let mask = train_item_mask(&train);
        let mut out = Vec::new();
        RankingProtocol::RatedTestItems.candidates(&train, &test, &mask, UserId(0), &mut out);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn mask_marks_only_trained_items() {
        let (train, _) = fixture();
        assert_eq!(train_item_mask(&train), vec![true, true, true, true]);
        // Remove item 3 by building a train set without it.
        let mut tr = DatasetBuilder::new("t", RatingScale::stars_1_5());
        tr.push(UserId(0), ItemId(0), 4.0).unwrap();
        tr.push(UserId(1), ItemId(2), 4.0).unwrap();
        let d = tr.build().unwrap();
        let m = Interactions::from_ratings(2, 4, d.ratings());
        assert_eq!(train_item_mask(&m), vec![true, false, true, false]);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(RankingProtocol::AllUnrated.label(), "all-unrated");
        assert_eq!(RankingProtocol::RatedTestItems.label(), "rated-test-items");
    }
}
