//! One-call evaluation bundling every Table III metric — the shape of a
//! Table IV row.

use crate::accuracy::{self, RelevanceSets};
use crate::coverage;
use crate::longtail;
use crate::topn::TopN;
use ganc_dataset::stats::LongTail;
use ganc_dataset::Interactions;

/// Everything the evaluator needs besides the lists themselves, precomputed
/// once per dataset and shared across all evaluated models.
#[derive(Debug)]
pub struct EvalContext {
    /// Relevant test sets `I_u^{T+}`.
    pub relevance: RelevanceSets,
    /// Train popularity `f^R` (for stratified recall).
    pub train_popularity: Vec<u32>,
    /// The Pareto long-tail set `L`.
    pub long_tail: LongTail,
    /// Catalog size `|I|`.
    pub n_items: u32,
    /// Stratified-recall exponent β (0.5 in the paper).
    pub beta: f64,
}

impl EvalContext {
    /// Build the context from a split with the paper's defaults
    /// (relevance threshold 4 on the 1–5 scale, β = 0.5, Pareto 80/20).
    pub fn new(train: &Interactions, test: &Interactions) -> EvalContext {
        EvalContext::with_threshold(train, test, 4.0, 0.5)
    }

    /// Build with an explicit relevance threshold and β.
    pub fn with_threshold(
        train: &Interactions,
        test: &Interactions,
        relevance_threshold: f32,
        beta: f64,
    ) -> EvalContext {
        EvalContext {
            relevance: RelevanceSets::from_test(test, relevance_threshold),
            train_popularity: train.item_popularity(),
            long_tail: LongTail::pareto(train),
            n_items: train.n_items(),
            beta,
        }
    }
}

/// A full metric row: the five Table IV columns plus the components the
/// figures plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopNMetrics {
    /// Precision@N.
    pub precision: f64,
    /// Recall@N.
    pub recall: f64,
    /// F-measure@N (Table III formula `PR/(P+R)`).
    pub f_measure: f64,
    /// Stratified Recall@N (β from the context).
    pub strat_recall: f64,
    /// LTAccuracy@N.
    pub lt_accuracy: f64,
    /// Coverage@N.
    pub coverage: f64,
    /// Gini@N.
    pub gini: f64,
    /// NDCG@N (not in Table IV; reported by ranking baselines).
    pub ndcg: f64,
}

/// Evaluate a top-N collection on every metric at once.
pub fn evaluate_topn(topn: &TopN, ctx: &EvalContext) -> TopNMetrics {
    let precision = accuracy::precision(topn, &ctx.relevance);
    let recall = accuracy::recall(topn, &ctx.relevance);
    TopNMetrics {
        precision,
        recall,
        f_measure: accuracy::combine_f(precision, recall),
        strat_recall: longtail::stratified_recall(
            topn,
            &ctx.relevance,
            &ctx.train_popularity,
            ctx.beta,
        ),
        lt_accuracy: longtail::lt_accuracy(topn, &ctx.long_tail),
        coverage: coverage::coverage(topn, ctx.n_items),
        gini: coverage::gini(topn, ctx.n_items),
        ndcg: accuracy::ndcg(topn, &ctx.relevance),
    }
}

impl TopNMetrics {
    /// The Table IV column order: (F, S, L, C, G).
    pub fn table4_columns(&self) -> [f64; 5] {
        [
            self.f_measure,
            self.strat_recall,
            self.lt_accuracy,
            self.coverage,
            self.gini,
        ]
    }

    /// Whether a higher value is better for Table IV column `idx`
    /// (Gini is the only lower-is-better column).
    pub fn higher_is_better(idx: usize) -> bool {
        idx != 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganc_dataset::{DatasetBuilder, ItemId, RatingScale, UserId};

    fn fixture() -> (Interactions, Interactions) {
        let mut tr = DatasetBuilder::new("t", RatingScale::stars_1_5());
        for u in 0..6u32 {
            tr.push(UserId(u), ItemId(0), 4.0).unwrap();
        }
        tr.push(UserId(0), ItemId(1), 4.0).unwrap();
        tr.push(UserId(1), ItemId(2), 4.0).unwrap();
        let mut te = DatasetBuilder::new("t", RatingScale::stars_1_5());
        te.push(UserId(0), ItemId(2), 5.0).unwrap();
        te.push(UserId(1), ItemId(1), 5.0).unwrap();
        te.push(UserId(2), ItemId(1), 2.0).unwrap();
        let train = tr.build().unwrap().interactions();
        let test = {
            let d = te.build().unwrap();
            Interactions::from_ratings(train.n_users(), train.n_items(), d.ratings())
        };
        (train, test)
    }

    #[test]
    fn evaluate_is_internally_consistent() {
        let (train, test) = fixture();
        let ctx = EvalContext::new(&train, &test);
        let topn = TopN::new(
            2,
            vec![
                vec![ItemId(2), ItemId(1)],
                vec![ItemId(1), ItemId(0)],
                vec![ItemId(0), ItemId(1)],
                vec![ItemId(0)],
                vec![ItemId(0)],
                vec![ItemId(0)],
            ],
        );
        let m = evaluate_topn(&topn, &ctx);
        assert!((m.f_measure - accuracy::combine_f(m.precision, m.recall)).abs() < 1e-15);
        assert!(m.precision > 0.0 && m.precision <= 1.0);
        assert!(m.recall > 0.0 && m.recall <= 1.0);
        assert!(m.coverage > 0.0 && m.coverage <= 1.0);
        assert!((0.0..=1.0).contains(&m.gini));
        assert!((0.0..=1.0).contains(&m.strat_recall));
        assert!((0.0..=1.0).contains(&m.lt_accuracy));
    }

    #[test]
    fn table4_columns_order_and_direction() {
        let cols_higher: Vec<bool> = (0..5).map(TopNMetrics::higher_is_better).collect();
        assert_eq!(cols_higher, vec![true, true, true, true, false]);
    }

    #[test]
    fn perfect_hits_beat_misses_everywhere_but_gini() {
        let (train, test) = fixture();
        let ctx = EvalContext::new(&train, &test);
        let hits = TopN::new(
            1,
            vec![
                vec![ItemId(2)],
                vec![ItemId(1)],
                vec![],
                vec![],
                vec![],
                vec![],
            ],
        );
        let misses = TopN::new(
            1,
            vec![
                vec![ItemId(1)],
                vec![ItemId(2)],
                vec![],
                vec![],
                vec![],
                vec![],
            ],
        );
        let mh = evaluate_topn(&hits, &ctx);
        let mm = evaluate_topn(&misses, &ctx);
        assert!(mh.precision > mm.precision);
        assert!(mh.strat_recall > mm.strat_recall);
        // coverage identical: both recommend 2 distinct items
        assert_eq!(mh.coverage, mm.coverage);
    }
}
