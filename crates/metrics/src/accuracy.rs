//! Local ranking accuracy: Precision@N, Recall@N, F-measure@N (Table III)
//! and NDCG@N.
//!
//! Relevance follows the paper: a test item is relevant for `u` when the
//! user rated it highly, `I_u^{T+} = { i ∈ I_u^T : r_ui ≥ 4 }` on the 1–5
//! scale (§IV-A). The threshold is a parameter so other scales can map it.

use crate::topn::TopN;
use ganc_dataset::{Interactions, UserId};

/// Precomputed per-user relevant test sets `I_u^{T+}` (sorted item ids).
#[derive(Debug, Clone)]
pub struct RelevanceSets {
    per_user: Vec<Vec<u32>>,
}

impl RelevanceSets {
    /// Extract relevant test items (`r_ui ≥ threshold`) for every user.
    pub fn from_test(test: &Interactions, threshold: f32) -> RelevanceSets {
        let per_user = (0..test.n_users())
            .map(|u| {
                let (items, vals) = test.user_row(UserId(u));
                items
                    .iter()
                    .zip(vals)
                    .filter(|&(_, &v)| v >= threshold)
                    .map(|(&i, _)| i)
                    .collect()
            })
            .collect();
        RelevanceSets { per_user }
    }

    /// Relevant items of `u`, sorted ascending.
    #[inline]
    pub fn of(&self, u: UserId) -> &[u32] {
        &self.per_user[u.idx()]
    }

    /// Number of users with at least one relevant test item.
    pub fn users_with_relevant(&self) -> usize {
        self.per_user.iter().filter(|v| !v.is_empty()).count()
    }

    /// Number of hits: `|I_u^{T+} ∩ P_u|`.
    pub fn hits(&self, u: UserId, list: &[ganc_dataset::ItemId]) -> usize {
        let rel = self.of(u);
        list.iter()
            .filter(|i| rel.binary_search(&i.0).is_ok())
            .count()
    }
}

/// Precision@N `= 1/(N·|U|) Σ_u |I_u^{T+} ∩ P_u|` (Table III).
pub fn precision(topn: &TopN, rel: &RelevanceSets) -> f64 {
    let users = topn.n_users();
    if users == 0 || topn.n() == 0 {
        return 0.0;
    }
    let hits: usize = (0..users)
        .map(|u| rel.hits(UserId(u as u32), topn.list(UserId(u as u32))))
        .sum();
    hits as f64 / (topn.n() * users) as f64
}

/// Recall@N `= 1/|U| Σ_u |I_u^{T+} ∩ P_u| / |I_u^{T+}|` (Table III).
/// Users with an empty relevant set contribute 0, per the formula's
/// averaging over all of `U`.
pub fn recall(topn: &TopN, rel: &RelevanceSets) -> f64 {
    let users = topn.n_users();
    if users == 0 {
        return 0.0;
    }
    let sum: f64 = (0..users)
        .map(|u| {
            let uid = UserId(u as u32);
            let r = rel.of(uid);
            if r.is_empty() {
                0.0
            } else {
                rel.hits(uid, topn.list(uid)) as f64 / r.len() as f64
            }
        })
        .sum();
    sum / users as f64
}

/// F-measure@N as printed in Table III: `P·R / (P + R)`.
///
/// Note: the paper describes F as the "harmonic mean" but the Table III
/// formula omits the factor 2; we reproduce the printed formula exactly so
/// values are comparable with the paper's tables. (The conventional F1 is
/// exactly twice this.)
pub fn f_measure(topn: &TopN, rel: &RelevanceSets) -> f64 {
    let p = precision(topn, rel);
    let r = recall(topn, rel);
    combine_f(p, r)
}

/// Combine an already-computed precision and recall with the Table III
/// formula.
#[inline]
pub fn combine_f(p: f64, r: f64) -> f64 {
    if p + r <= 0.0 {
        0.0
    } else {
        p * r / (p + r)
    }
}

/// NDCG@N with binary gains over the relevant sets — not part of Table III
/// but reported by CoFiRank-style ranking baselines (§IV-A).
pub fn ndcg(topn: &TopN, rel: &RelevanceSets) -> f64 {
    let users = topn.n_users();
    if users == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for u in 0..users {
        let uid = UserId(u as u32);
        let r = rel.of(uid);
        if r.is_empty() {
            continue;
        }
        let mut dcg = 0.0;
        for (pos, item) in topn.list(uid).iter().enumerate() {
            if r.binary_search(&item.0).is_ok() {
                dcg += 1.0 / ((pos + 2) as f64).log2();
            }
        }
        let ideal: f64 = (0..r.len().min(topn.n()))
            .map(|pos| 1.0 / ((pos + 2) as f64).log2())
            .sum();
        if ideal > 0.0 {
            total += dcg / ideal;
        }
    }
    total / users as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganc_dataset::{DatasetBuilder, ItemId, RatingScale};

    /// Two users; user 0 has relevant test items {1, 2}; user 1 has {3}.
    fn test_set() -> Interactions {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        b.push(UserId(0), ItemId(1), 5.0).unwrap();
        b.push(UserId(0), ItemId(2), 4.0).unwrap();
        b.push(UserId(0), ItemId(3), 2.0).unwrap(); // not relevant
        b.push(UserId(1), ItemId(3), 4.0).unwrap();
        b.build().unwrap().interactions()
    }

    #[test]
    fn relevance_extraction_honors_threshold() {
        let rel = RelevanceSets::from_test(&test_set(), 4.0);
        assert_eq!(rel.of(UserId(0)), &[1, 2]);
        assert_eq!(rel.of(UserId(1)), &[3]);
        assert_eq!(rel.users_with_relevant(), 2);
    }

    #[test]
    fn precision_hand_computed() {
        let rel = RelevanceSets::from_test(&test_set(), 4.0);
        // user0 hits 1 of 2 slots; user1 hits 1 of 2 slots → 2/(2·2) = 0.5
        let topn = TopN::new(
            2,
            vec![vec![ItemId(1), ItemId(9)], vec![ItemId(3), ItemId(8)]],
        );
        assert!((precision(&topn, &rel) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recall_hand_computed() {
        let rel = RelevanceSets::from_test(&test_set(), 4.0);
        // user0 recalls 1/2, user1 recalls 1/1 → (0.5 + 1.0)/2 = 0.75
        let topn = TopN::new(
            2,
            vec![vec![ItemId(1), ItemId(9)], vec![ItemId(3), ItemId(8)]],
        );
        assert!((recall(&topn, &rel) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn f_measure_is_paper_formula() {
        // P=0.5, R=0.75 → PR/(P+R) = 0.375/1.25 = 0.3
        let rel = RelevanceSets::from_test(&test_set(), 4.0);
        let topn = TopN::new(
            2,
            vec![vec![ItemId(1), ItemId(9)], vec![ItemId(3), ItemId(8)]],
        );
        assert!((f_measure(&topn, &rel) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_lists_score_zero() {
        let rel = RelevanceSets::from_test(&test_set(), 4.0);
        let topn = TopN::empty(5, 2);
        assert_eq!(precision(&topn, &rel), 0.0);
        assert_eq!(recall(&topn, &rel), 0.0);
        assert_eq!(f_measure(&topn, &rel), 0.0);
        assert_eq!(ndcg(&topn, &rel), 0.0);
    }

    #[test]
    fn perfect_lists_max_out() {
        let rel = RelevanceSets::from_test(&test_set(), 4.0);
        let topn = TopN::new(2, vec![vec![ItemId(1), ItemId(2)], vec![ItemId(3)]]);
        // user0: 2 hits / 2; user1: 1 hit out of N=2 slots.
        assert!((precision(&topn, &rel) - 0.75).abs() < 1e-12);
        assert!((recall(&topn, &rel) - 1.0).abs() < 1e-12);
        assert!((ndcg(&topn, &rel) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_rewards_early_hits() {
        let rel = RelevanceSets::from_test(&test_set(), 4.0);
        let early = TopN::new(2, vec![vec![ItemId(1), ItemId(9)], vec![]]);
        let late = TopN::new(2, vec![vec![ItemId(9), ItemId(1)], vec![]]);
        assert!(ndcg(&early, &rel) > ndcg(&late, &rel));
    }

    #[test]
    fn combine_f_handles_zero() {
        assert_eq!(combine_f(0.0, 0.0), 0.0);
        assert!((combine_f(0.5, 0.5) - 0.25).abs() < 1e-12);
    }
}
