//! The `TopN` collection: one recommendation list per user (the paper's
//! `P = {P_u}`).

use ganc_dataset::{Interactions, ItemId, UserId};

/// A top-N recommendation collection `P = {P_u}_{u∈U}` (§II-A).
///
/// Lists may be shorter than `n` when a user's candidate pool is exhausted
/// (tiny catalogs, rated-test-items protocol); metrics handle that uniformly
/// by still dividing by `N·|U|` where Table III prescribes it.
#[derive(Debug, Clone)]
pub struct TopN {
    n: usize,
    lists: Vec<Vec<ItemId>>,
}

impl TopN {
    /// Wrap per-user lists produced by a recommender.
    pub fn new(n: usize, lists: Vec<Vec<ItemId>>) -> TopN {
        TopN { n, lists }
    }

    /// An empty collection for `n_users` users.
    pub fn empty(n: usize, n_users: usize) -> TopN {
        TopN {
            n,
            lists: vec![Vec::new(); n_users],
        }
    }

    /// The target list length `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of users.
    #[inline]
    pub fn n_users(&self) -> usize {
        self.lists.len()
    }

    /// Per-user lists.
    #[inline]
    pub fn lists(&self) -> &[Vec<ItemId>] {
        &self.lists
    }

    /// The list assigned to one user.
    #[inline]
    pub fn list(&self, u: UserId) -> &[ItemId] {
        &self.lists[u.idx()]
    }

    /// Replace one user's list (used by sequential optimizers).
    pub fn set_list(&mut self, u: UserId, list: Vec<ItemId>) {
        self.lists[u.idx()] = list;
    }

    /// Recommendation frequency of every item across the collection — the
    /// `f` vector of the Gini computation (Table III).
    pub fn recommendation_frequency(&self, n_items: u32) -> Vec<u32> {
        let mut freq = vec![0u32; n_items as usize];
        for list in &self.lists {
            for item in list {
                freq[item.idx()] += 1;
            }
        }
        freq
    }

    /// Validate the top-N contract against a train set: no duplicates, no
    /// items the user has already rated, at most `n` entries. Returns the
    /// first violation as a message (tests assert `None`).
    pub fn contract_violation(&self, train: &Interactions) -> Option<String> {
        for (u, list) in self.lists.iter().enumerate() {
            if list.len() > self.n {
                return Some(format!(
                    "user {u}: list length {} > N={}",
                    list.len(),
                    self.n
                ));
            }
            let mut sorted: Vec<u32> = list.iter().map(|i| i.0).collect();
            sorted.sort_unstable();
            if sorted.windows(2).any(|w| w[0] == w[1]) {
                return Some(format!("user {u}: duplicate item in list"));
            }
            for item in list {
                if train.contains(UserId(u as u32), *item) {
                    return Some(format!("user {u}: item {} already rated in train", item.0));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganc_dataset::{DatasetBuilder, RatingScale};

    fn train() -> Interactions {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        b.push(UserId(0), ItemId(0), 5.0).unwrap();
        b.push(UserId(1), ItemId(1), 3.0).unwrap();
        b.push(UserId(1), ItemId(2), 3.0).unwrap();
        b.build().unwrap().interactions()
    }

    #[test]
    fn frequency_counts_across_users() {
        let t = TopN::new(
            2,
            vec![vec![ItemId(1), ItemId(2)], vec![ItemId(0), ItemId(2)]],
        );
        assert_eq!(t.recommendation_frequency(3), vec![1, 1, 2]);
    }

    #[test]
    fn contract_accepts_valid_lists() {
        let t = TopN::new(2, vec![vec![ItemId(1), ItemId(2)], vec![ItemId(0)]]);
        assert_eq!(t.contract_violation(&train()), None);
    }

    #[test]
    fn contract_rejects_seen_items() {
        let t = TopN::new(2, vec![vec![ItemId(0)], vec![]]);
        let msg = t.contract_violation(&train()).unwrap();
        assert!(msg.contains("already rated"));
    }

    #[test]
    fn contract_rejects_duplicates() {
        let t = TopN::new(3, vec![vec![ItemId(1), ItemId(1)], vec![]]);
        let msg = t.contract_violation(&train()).unwrap();
        assert!(msg.contains("duplicate"));
    }

    #[test]
    fn contract_rejects_overlong_lists() {
        let t = TopN::new(1, vec![vec![ItemId(1), ItemId(2)], vec![]]);
        let msg = t.contract_violation(&train()).unwrap();
        assert!(msg.contains("length"));
    }

    #[test]
    fn set_list_replaces() {
        let mut t = TopN::empty(2, 2);
        t.set_list(UserId(1), vec![ItemId(2)]);
        assert_eq!(t.list(UserId(1)), &[ItemId(2)]);
        assert!(t.list(UserId(0)).is_empty());
    }
}
