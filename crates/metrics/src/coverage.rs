//! Item-space coverage metrics: Coverage@N and the Gini coefficient
//! (Table III).

use crate::topn::TopN;

/// Coverage@N `= |∪_u P_u| / |I|` — the fraction of the catalog that appears
/// in at least one recommendation list (Table III). 1.0 means every item was
/// recommended to someone.
pub fn coverage(topn: &TopN, n_items: u32) -> f64 {
    if n_items == 0 {
        return 0.0;
    }
    let freq = topn.recommendation_frequency(n_items);
    let distinct = freq.iter().filter(|&&f| f > 0).count();
    distinct as f64 / n_items as f64
}

/// Gini@N over the recommendation-frequency distribution (Table III,
/// Lorenz/Gini [39]):
///
/// ```text
/// G = (1/|I|) · (|I| + 1 − 2 · Σ_j (|I|+1−j)·f[j] / Σ_j f[j])
/// ```
///
/// where `f` is sorted non-decreasing and `j` is 1-based. 0 means perfectly
/// equal exposure; values near 1 mean a few items dominate. Returns 0 when
/// nothing was recommended.
pub fn gini(topn: &TopN, n_items: u32) -> f64 {
    let mut freq = topn.recommendation_frequency(n_items);
    gini_of_frequencies(&mut freq)
}

/// Gini of an arbitrary frequency vector (consumed: sorted in place).
pub fn gini_of_frequencies(freq: &mut [u32]) -> f64 {
    let n = freq.len();
    if n == 0 {
        return 0.0;
    }
    freq.sort_unstable();
    let total: u64 = freq.iter().map(|&f| f as u64).sum();
    if total == 0 {
        return 0.0;
    }
    let weighted: f64 = freq
        .iter()
        .enumerate()
        .map(|(j0, &f)| (n - j0) as f64 * f as f64) // |I|+1−j with j = j0+1
        .sum();
    (n as f64 + 1.0 - 2.0 * weighted / total as f64) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganc_dataset::ItemId;

    #[test]
    fn coverage_counts_distinct() {
        let topn = TopN::new(
            2,
            vec![vec![ItemId(0), ItemId(1)], vec![ItemId(1), ItemId(2)]],
        );
        // 3 distinct of 4 items
        assert!((coverage(&topn, 4) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn coverage_empty_is_zero() {
        let topn = TopN::empty(5, 3);
        assert_eq!(coverage(&topn, 10), 0.0);
        assert_eq!(coverage(&topn, 0), 0.0);
    }

    #[test]
    fn gini_uniform_is_zero() {
        let mut freq = vec![3u32; 50];
        assert!(gini_of_frequencies(&mut freq).abs() < 1e-12);
    }

    #[test]
    fn gini_concentrated_tends_to_one() {
        let mut freq = vec![0u32; 1000];
        freq[0] = 5000;
        let g = gini_of_frequencies(&mut freq);
        assert!(g > 0.99, "gini {g}");
    }

    #[test]
    fn gini_hand_computed_small_case() {
        // f = [0, 1, 3]: sorted, n=3, total=4,
        // weighted = 3·0 + 2·1 + 1·3 = 5 → G = (4 − 2·5/4)/3 = 0.5
        let mut freq = vec![0u32, 1, 3];
        assert!((gini_of_frequencies(&mut freq) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gini_is_scale_invariant() {
        let mut a = vec![1u32, 2, 3, 4];
        let mut b = vec![10u32, 20, 30, 40];
        assert!((gini_of_frequencies(&mut a) - gini_of_frequencies(&mut b)).abs() < 1e-12);
    }

    #[test]
    fn gini_monotone_in_concentration() {
        let mut flat = vec![2u32, 2, 2, 2];
        let mut tilted = vec![1u32, 1, 2, 4];
        let mut extreme = vec![0u32, 0, 0, 8];
        let g0 = gini_of_frequencies(&mut flat);
        let g1 = gini_of_frequencies(&mut tilted);
        let g2 = gini_of_frequencies(&mut extreme);
        assert!(g0 < g1 && g1 < g2, "{g0} {g1} {g2}");
    }

    #[test]
    fn gini_via_topn_matches_direct() {
        let topn = TopN::new(
            2,
            vec![vec![ItemId(0), ItemId(1)], vec![ItemId(0), ItemId(2)]],
        );
        let direct = {
            let mut f = topn.recommendation_frequency(4);
            gini_of_frequencies(&mut f)
        };
        assert!((gini(&topn, 4) - direct).abs() < 1e-15);
    }
}
