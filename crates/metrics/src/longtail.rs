//! Long-tail promotion metrics: LTAccuracy@N and Stratified Recall@N
//! (Table III).

use crate::accuracy::RelevanceSets;
use crate::topn::TopN;
use ganc_dataset::stats::LongTail;
use ganc_dataset::UserId;

/// LTAccuracy@N `= 1/(N·|U|) Σ_u |L ∩ P_u|` — the proportion of
/// recommended items that are long-tail, i.e. unlikely to be already known
/// (Table III; originally from the resource-allocation paper [20]).
pub fn lt_accuracy(topn: &TopN, long_tail: &LongTail) -> f64 {
    let users = topn.n_users();
    if users == 0 || topn.n() == 0 {
        return 0.0;
    }
    let hits: usize = topn
        .lists()
        .iter()
        .map(|list| list.iter().filter(|&&i| long_tail.contains(i)).count())
        .sum();
    hits as f64 / (topn.n() * users) as f64
}

/// Stratified Recall@N (Steck [36], Table III):
///
/// ```text
///              Σ_u Σ_{i ∈ I_u^{T+} ∩ P_u} (1/f_i^R)^β
/// StratRecall = -------------------------------------
///              Σ_u Σ_{i ∈ I_u^{T+}}       (1/f_i^R)^β
/// ```
///
/// with β = 0.5 in the paper. Items that never appear in train would divide
/// by zero; they are weighted as if `f_i^R = 1`, the natural continuity
/// choice (their tail weight is maximal either way).
pub fn stratified_recall(
    topn: &TopN,
    rel: &RelevanceSets,
    train_popularity: &[u32],
    beta: f64,
) -> f64 {
    let weight = |item: u32| -> f64 {
        let f = train_popularity[item as usize].max(1) as f64;
        (1.0 / f).powf(beta)
    };
    let mut numer = 0.0;
    let mut denom = 0.0;
    for u in 0..topn.n_users() {
        let uid = UserId(u as u32);
        let relevant = rel.of(uid);
        if relevant.is_empty() {
            continue;
        }
        for &i in relevant {
            denom += weight(i);
        }
        for item in topn.list(uid) {
            if relevant.binary_search(&item.0).is_ok() {
                numer += weight(item.0);
            }
        }
    }
    if denom <= 0.0 {
        0.0
    } else {
        numer / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganc_dataset::{DatasetBuilder, Interactions, ItemId, RatingScale};

    /// Item 0 very popular (8 ratings), items 1..=2 rare.
    fn train() -> Interactions {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        for u in 0..8u32 {
            b.push(UserId(u), ItemId(0), 4.0).unwrap();
        }
        b.push(UserId(0), ItemId(1), 4.0).unwrap();
        b.push(UserId(1), ItemId(2), 4.0).unwrap();
        b.build().unwrap().interactions()
    }

    fn test_set() -> Interactions {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        b.push(UserId(0), ItemId(2), 5.0).unwrap(); // rare, relevant
        b.push(UserId(1), ItemId(0), 5.0).unwrap(); // popular, relevant
        b.build().unwrap().interactions()
    }

    #[test]
    fn lt_accuracy_counts_tail_fraction() {
        let lt = LongTail::pareto(&train());
        // user0 recommends one tail + one head; user1 two head items (0 is
        // head; 1,2 are tail in this skew).
        let topn = TopN::new(
            2,
            vec![vec![ItemId(1), ItemId(0)], vec![ItemId(0), ItemId(0)]],
        );
        // tail hits: item1 (1) + none = 1 → 1/(2·2) = 0.25
        assert!((lt_accuracy(&topn, &lt) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn strat_recall_weights_rare_hits_higher() {
        let tr = train();
        let rel = RelevanceSets::from_test(&test_set(), 4.0);
        let pop = tr.item_popularity();
        // Hitting only the rare relevant item (user 0).
        let rare_hit = TopN::new(1, vec![vec![ItemId(2)], vec![]]);
        // Hitting only the popular relevant item (user 1).
        let pop_hit = TopN::new(1, vec![vec![], vec![ItemId(0)]]);
        let s_rare = stratified_recall(&rare_hit, &rel, &pop, 0.5);
        let s_pop = stratified_recall(&pop_hit, &rel, &pop, 0.5);
        assert!(
            s_rare > s_pop,
            "rare hit {s_rare} should outweigh popular hit {s_pop}"
        );
    }

    #[test]
    fn strat_recall_hits_everything_is_one() {
        let tr = train();
        let rel = RelevanceSets::from_test(&test_set(), 4.0);
        let pop = tr.item_popularity();
        let all = TopN::new(1, vec![vec![ItemId(2)], vec![ItemId(0)]]);
        assert!((stratified_recall(&all, &rel, &pop, 0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strat_recall_beta_zero_is_plain_hit_ratio() {
        let tr = train();
        let rel = RelevanceSets::from_test(&test_set(), 4.0);
        let pop = tr.item_popularity();
        let one_hit = TopN::new(1, vec![vec![ItemId(2)], vec![ItemId(9)]]);
        // β=0 → every item weighs 1 → 1 hit / 2 relevant items.
        assert!((stratified_recall(&one_hit, &rel, &pop, 0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_everything_is_zero() {
        let tr = train();
        let pop = tr.item_popularity();
        let rel = RelevanceSets::from_test(&tr, 99.0); // nothing relevant
        let topn = TopN::empty(3, tr.n_users() as usize);
        assert_eq!(stratified_recall(&topn, &rel, &pop, 0.5), 0.0);
        let lt = LongTail::pareto(&tr);
        assert_eq!(lt_accuracy(&topn, &lt), 0.0);
    }
}
