//! Typed errors for dataset construction, parsing and splitting.

use std::fmt;

/// Errors produced while building, loading or splitting datasets.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A rating fell outside the declared [`crate::RatingScale`].
    RatingOutOfScale {
        /// Offending rating value.
        value: f32,
        /// Inclusive scale minimum.
        min: f32,
        /// Inclusive scale maximum.
        max: f32,
    },
    /// The dataset contains no ratings.
    Empty,
    /// A split ratio `κ` outside `(0, 1]`.
    InvalidSplitRatio(f64),
    /// A line of an input file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// Underlying I/O failure (message-only so the error stays `Clone`).
    Io(String),
    /// A generator or builder was configured inconsistently.
    InvalidConfig(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::RatingOutOfScale { value, min, max } => {
                write!(f, "rating {value} outside scale [{min}, {max}]")
            }
            DataError::Empty => write!(f, "dataset contains no ratings"),
            DataError::InvalidSplitRatio(k) => {
                write!(f, "split ratio κ={k} must lie in (0, 1]")
            }
            DataError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            DataError::Io(msg) => write!(f, "i/o error: {msg}"),
            DataError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DataError::RatingOutOfScale {
            value: 9.0,
            min: 1.0,
            max: 5.0,
        };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("[1, 5]"));
        assert!(DataError::InvalidSplitRatio(0.0)
            .to_string()
            .contains("κ=0"));
        let p = DataError::Parse {
            line: 12,
            message: "bad field".into(),
        };
        assert!(p.to_string().contains("line 12"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: DataError = io.into();
        assert!(matches!(e, DataError::Io(_)));
    }
}
