//! Immutable CSR interaction matrices with user-major and item-major views.
//!
//! Every algorithm in the workspace reads interaction data through this type:
//! `row(u)` gives `I_u^R` (the items rated by `u`) and `col(i)` gives `U_i^R`
//! (the users who rated `i`) — the two index sets the paper's notation
//! revolves around (§II-A). Both views are materialized once at construction
//! so hot loops never search or hash.

use crate::dataset::Rating;
use crate::{ItemId, UserId};

/// One compressed-sparse orientation: `ptr` has `n_rows + 1` offsets into the
/// parallel `idx`/`val` arrays.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
struct Csr {
    ptr: Box<[u32]>,
    idx: Box<[u32]>,
    val: Box<[f32]>,
}

impl Csr {
    fn from_triplets(n_rows: u32, rows: &[u32], cols: &[u32], vals: &[f32]) -> Csr {
        debug_assert_eq!(rows.len(), cols.len());
        debug_assert_eq!(rows.len(), vals.len());
        let nnz = rows.len();
        let mut counts = vec![0u32; n_rows as usize + 1];
        for &r in rows {
            counts[r as usize + 1] += 1;
        }
        for k in 1..counts.len() {
            counts[k] += counts[k - 1];
        }
        let ptr: Box<[u32]> = counts.clone().into_boxed_slice();
        let mut idx = vec![0u32; nnz].into_boxed_slice();
        let mut val = vec![0f32; nnz].into_boxed_slice();
        let mut cursor = counts;
        for k in 0..nnz {
            let r = rows[k] as usize;
            let at = cursor[r] as usize;
            idx[at] = cols[k];
            val[at] = vals[k];
            cursor[r] += 1;
        }
        // Sort each row by column id for binary-searchable lookups. Rows are
        // typically short, so insertion locality dominates; a per-row sort of
        // index/value pairs is cheap and happens once.
        let mut csr = Csr { ptr, idx, val };
        csr.sort_rows();
        csr
    }

    fn sort_rows(&mut self) {
        let n_rows = self.ptr.len() - 1;
        let mut scratch: Vec<(u32, f32)> = Vec::new();
        for r in 0..n_rows {
            let lo = self.ptr[r] as usize;
            let hi = self.ptr[r + 1] as usize;
            if hi - lo <= 1 {
                continue;
            }
            let row_sorted = self.idx[lo..hi].windows(2).all(|w| w[0] <= w[1]);
            if row_sorted {
                continue;
            }
            scratch.clear();
            scratch.extend(
                self.idx[lo..hi]
                    .iter()
                    .copied()
                    .zip(self.val[lo..hi].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for (k, &(c, v)) in scratch.iter().enumerate() {
                self.idx[lo + k] = c;
                self.val[lo + k] = v;
            }
        }
    }

    #[inline]
    fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let lo = self.ptr[r] as usize;
        let hi = self.ptr[r + 1] as usize;
        (&self.idx[lo..hi], &self.val[lo..hi])
    }

    #[inline]
    fn row_len(&self, r: usize) -> usize {
        (self.ptr[r + 1] - self.ptr[r]) as usize
    }
}

/// Immutable user×item interaction matrix with both orientations.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Interactions {
    n_users: u32,
    n_items: u32,
    by_user: Csr,
    by_item: Csr,
}

impl Interactions {
    /// Build from `(user, item, rating)` triplets. Duplicates must have been
    /// resolved upstream ([`crate::DatasetBuilder`] does this).
    pub fn from_ratings(n_users: u32, n_items: u32, ratings: &[Rating]) -> Interactions {
        let users: Vec<u32> = ratings.iter().map(|r| r.user.0).collect();
        let items: Vec<u32> = ratings.iter().map(|r| r.item.0).collect();
        let vals: Vec<f32> = ratings.iter().map(|r| r.value).collect();
        let by_user = Csr::from_triplets(n_users, &users, &items, &vals);
        let by_item = Csr::from_triplets(n_items, &items, &users, &vals);
        Interactions {
            n_users,
            n_items,
            by_user,
            by_item,
        }
    }

    /// Number of users `|U|` in the id space (including users with no rows).
    #[inline]
    pub fn n_users(&self) -> u32 {
        self.n_users
    }

    /// Number of items `|I|` in the id space (including unrated items).
    #[inline]
    pub fn n_items(&self) -> u32 {
        self.n_items
    }

    /// Number of stored ratings.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.by_user.idx.len()
    }

    /// Items rated by `u` with their ratings — `I_u^R` (sorted by item id).
    #[inline]
    pub fn user_row(&self, u: UserId) -> (&[u32], &[f32]) {
        self.by_user.row(u.idx())
    }

    /// Users who rated `i` with their ratings — `U_i^R` (sorted by user id).
    #[inline]
    pub fn item_col(&self, i: ItemId) -> (&[u32], &[f32]) {
        self.by_item.row(i.idx())
    }

    /// `|I_u^R|`: the user's activity.
    #[inline]
    pub fn user_degree(&self, u: UserId) -> usize {
        self.by_user.row_len(u.idx())
    }

    /// `|U_i^R|`: the item's popularity `f_i^R`.
    #[inline]
    pub fn item_degree(&self, i: ItemId) -> usize {
        self.by_item.row_len(i.idx())
    }

    /// Look up a single rating, if present (binary search in the user's row).
    pub fn get(&self, u: UserId, i: ItemId) -> Option<f32> {
        let (items, vals) = self.user_row(u);
        items.binary_search(&i.0).ok().map(|k| vals[k])
    }

    /// Whether user `u` has rated item `i`.
    #[inline]
    pub fn contains(&self, u: UserId, i: ItemId) -> bool {
        self.get(u, i).is_some()
    }

    /// Iterate all `(user, item, rating)` triplets in user-major order.
    pub fn iter(&self) -> impl Iterator<Item = (UserId, ItemId, f32)> + '_ {
        (0..self.n_users).flat_map(move |u| {
            let (items, vals) = self.by_user.row(u as usize);
            items
                .iter()
                .zip(vals.iter())
                .map(move |(&i, &v)| (UserId(u), ItemId(i), v))
        })
    }

    /// Mean rating over all stored interactions (the global mean `μ`).
    pub fn global_mean(&self) -> f64 {
        if self.nnz() == 0 {
            return 0.0;
        }
        let sum: f64 = self.by_user.val.iter().map(|&v| v as f64).sum();
        sum / self.nnz() as f64
    }

    /// Per-item mean rating, `NaN`-free: items with no ratings get `fallback`.
    pub fn item_means(&self, fallback: f64) -> Vec<f64> {
        (0..self.n_items)
            .map(|i| {
                let (_, vals) = self.by_item.row(i as usize);
                if vals.is_empty() {
                    fallback
                } else {
                    vals.iter().map(|&v| v as f64).sum::<f64>() / vals.len() as f64
                }
            })
            .collect()
    }

    /// Per-item popularity vector `f^R` (Table III / §II-A).
    pub fn item_popularity(&self) -> Vec<u32> {
        (0..self.n_items)
            .map(|i| self.by_item.row_len(i as usize) as u32)
            .collect()
    }

    /// Per-user activity vector `|I_u^R|`.
    pub fn user_activity(&self) -> Vec<u32> {
        (0..self.n_users)
            .map(|u| self.by_user.row_len(u as usize) as u32)
            .collect()
    }

    /// Mark the items of `u` in a reusable bitmap-like buffer (`true` =
    /// seen). Callers keep one buffer per thread to avoid reallocating.
    pub fn mark_seen(&self, u: UserId, seen: &mut [bool]) {
        debug_assert_eq!(seen.len(), self.n_items as usize);
        let (items, _) = self.user_row(u);
        for &i in items {
            seen[i as usize] = true;
        }
    }

    /// Clear the marks set by [`Interactions::mark_seen`].
    pub fn clear_seen(&self, u: UserId, seen: &mut [bool]) {
        let (items, _) = self.user_row(u);
        for &i in items {
            seen[i as usize] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetBuilder, RatingScale};

    fn sample() -> Interactions {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        for &(u, i, r) in &[
            (0u32, 0u32, 5.0f32),
            (0, 2, 3.0),
            (1, 0, 4.0),
            (2, 1, 2.0),
            (2, 0, 1.0),
        ] {
            b.push(UserId(u), ItemId(i), r).unwrap();
        }
        b.build().unwrap().interactions()
    }

    #[test]
    fn rows_and_cols_agree() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        let (items, vals) = m.user_row(UserId(0));
        assert_eq!(items, &[0, 2]);
        assert_eq!(vals, &[5.0, 3.0]);
        let (users, vals) = m.item_col(ItemId(0));
        assert_eq!(users, &[0, 1, 2]);
        assert_eq!(vals, &[5.0, 4.0, 1.0]);
    }

    #[test]
    fn degrees_match() {
        let m = sample();
        assert_eq!(m.user_degree(UserId(2)), 2);
        assert_eq!(m.item_degree(ItemId(0)), 3);
        assert_eq!(m.item_degree(ItemId(1)), 1);
        assert_eq!(m.item_popularity(), vec![3, 1, 1]);
        assert_eq!(m.user_activity(), vec![2, 1, 2]);
    }

    #[test]
    fn get_and_contains() {
        let m = sample();
        assert_eq!(m.get(UserId(0), ItemId(2)), Some(3.0));
        assert_eq!(m.get(UserId(0), ItemId(1)), None);
        assert!(m.contains(UserId(1), ItemId(0)));
        assert!(!m.contains(UserId(1), ItemId(2)));
    }

    #[test]
    fn iter_yields_all_triplets_sorted() {
        let m = sample();
        let got: Vec<(u32, u32)> = m.iter().map(|(u, i, _)| (u.0, i.0)).collect();
        assert_eq!(got, vec![(0, 0), (0, 2), (1, 0), (2, 0), (2, 1)]);
    }

    #[test]
    fn global_and_item_means() {
        let m = sample();
        assert!((m.global_mean() - 3.0).abs() < 1e-9);
        let means = m.item_means(0.0);
        assert!((means[0] - 10.0 / 3.0).abs() < 1e-9);
        assert_eq!(means[1], 2.0);
        assert_eq!(means[2], 3.0);
    }

    #[test]
    fn mark_and_clear_seen_round_trip() {
        let m = sample();
        let mut seen = vec![false; m.n_items() as usize];
        m.mark_seen(UserId(0), &mut seen);
        assert_eq!(seen, vec![true, false, true]);
        m.clear_seen(UserId(0), &mut seen);
        assert_eq!(seen, vec![false, false, false]);
    }

    #[test]
    fn empty_rows_are_empty() {
        // User id space can exceed the users that actually appear.
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        b.push(UserId(3), ItemId(1), 2.0).unwrap();
        let m = b.build().unwrap().interactions();
        assert_eq!(m.n_users(), 4);
        assert_eq!(m.user_degree(UserId(0)), 0);
        let (items, _) = m.user_row(UserId(1));
        assert!(items.is_empty());
    }
}
