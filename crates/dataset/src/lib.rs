//! # ganc-dataset
//!
//! Data substrate for the GANC reproduction: rating triplets, compressed
//! sparse interaction matrices, per-user train/test splitting, popularity
//! statistics (including the Pareto 80/20 long-tail set of the paper), text
//! loaders for the MovieLens family of formats, and — because the original
//! evaluation datasets are not redistributable — synthetic generators
//! calibrated to the five datasets of Table II of the paper.
//!
//! The central types are:
//!
//! * [`Dataset`] — an owned collection of `(user, item, rating)` triplets
//!   with dense `u32` id spaces and a [`RatingScale`].
//! * [`Interactions`] — an immutable CSR matrix over those triplets with both
//!   user-major and item-major views; this is what every algorithm consumes.
//! * [`TrainTest`] — the per-user ratio split (`κ` in the paper, §IV-A).
//! * [`stats::LongTail`] — the Pareto 80/20 long-tail item set `L` (§II-A).
//! * [`synth::DatasetProfile`] — calibrated synthetic generators standing in
//!   for ML-100K/1M/10M, MT-200K and Netflix.
//!
//! ```
//! use ganc_dataset::synth::DatasetProfile;
//!
//! let data = DatasetProfile::tiny().generate(42);
//! let split = data.split_per_user(0.5, 7).unwrap();
//! assert_eq!(split.train.n_users(), data.n_users());
//! ```

pub mod dataset;
pub mod error;
pub mod interactions;
pub mod io;
pub mod sampling;
pub mod split;
pub mod stats;
pub mod synth;

pub use dataset::{Dataset, DatasetBuilder, Rating, RatingScale};
pub use error::DataError;
pub use interactions::Interactions;
pub use split::TrainTest;

/// Dense user identifier: an index into `0..n_users`.
///
/// All per-user state in the workspace is stored in flat vectors indexed by
/// this id, so lookups never touch a hash map on a hot path.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct UserId(pub u32);

/// Dense item identifier: an index into `0..n_items`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct ItemId(pub u32);

impl UserId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl ItemId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl std::fmt::Display for ItemId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "i{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_thin_wrappers() {
        assert_eq!(std::mem::size_of::<UserId>(), 4);
        assert_eq!(std::mem::size_of::<ItemId>(), 4);
        assert_eq!(UserId(7).idx(), 7);
        assert_eq!(ItemId(9).idx(), 9);
    }

    #[test]
    fn ids_display() {
        assert_eq!(UserId(3).to_string(), "u3");
        assert_eq!(ItemId(4).to_string(), "i4");
    }
}
