//! Loaders for the MovieLens family of rating file formats.
//!
//! If you have the real corpora on disk the experiment binaries can run on
//! them instead of the synthetic stand-ins:
//!
//! * `u.data` style — tab-separated `user item rating timestamp` (ML-100K)
//! * `ratings.dat` style — `user::item::rating::timestamp` (ML-1M / ML-10M)
//! * CSV — `userId,movieId,rating,timestamp` with optional header (ML-20M+,
//!   MovieTweetings exports)
//!
//! External ids are arbitrary, so loaders re-map them to dense `u32` spaces
//! and return the mapping alongside the dataset.

use crate::dataset::{Dataset, DatasetBuilder, RatingScale};
use crate::error::DataError;
use crate::{ItemId, UserId};
use std::collections::HashMap;
use std::io::BufRead;
use std::path::Path;

/// Dense re-mapping of external ids produced by a loader.
#[derive(Debug, Default, Clone)]
pub struct IdMaps {
    /// External user id (as written in the file) → dense [`UserId`].
    pub users: HashMap<u64, UserId>,
    /// External item id → dense [`ItemId`].
    pub items: HashMap<u64, ItemId>,
}

impl IdMaps {
    fn user(&mut self, ext: u64) -> UserId {
        let next = self.users.len() as u32;
        *self.users.entry(ext).or_insert(UserId(next))
    }

    fn item(&mut self, ext: u64) -> ItemId {
        let next = self.items.len() as u32;
        *self.items.entry(ext).or_insert(ItemId(next))
    }
}

/// Field separator of a ratings file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Separator {
    /// Tab-separated (`u.data`).
    Tab,
    /// `::`-separated (`ratings.dat`).
    DoubleColon,
    /// Comma-separated with optional `userId,...` header.
    Comma,
}

impl Separator {
    fn split<'a>(&self, line: &'a str) -> Vec<&'a str> {
        match self {
            Separator::Tab => line.split('\t').collect(),
            Separator::DoubleColon => line.split("::").collect(),
            Separator::Comma => line.split(',').collect(),
        }
    }
}

/// Parse ratings from any `BufRead`, using the given separator and scale.
///
/// Lines that are empty or start with `#` are skipped; a leading header line
/// is skipped for [`Separator::Comma`] when its first field is not numeric.
pub fn read_ratings<R: BufRead>(
    reader: R,
    sep: Separator,
    scale: RatingScale,
    name: &str,
) -> Result<(Dataset, IdMaps), DataError> {
    let mut maps = IdMaps::default();
    let mut builder = DatasetBuilder::new(name, scale).without_validation();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields = sep.split(trimmed);
        if fields.len() < 3 {
            return Err(DataError::Parse {
                line: lineno + 1,
                message: format!("expected ≥3 fields, found {}", fields.len()),
            });
        }
        let user: u64 = match fields[0].trim().parse() {
            Ok(u) => u,
            Err(_) if lineno == 0 && sep == Separator::Comma => continue, // header
            Err(e) => {
                return Err(DataError::Parse {
                    line: lineno + 1,
                    message: format!("bad user id {:?}: {e}", fields[0]),
                })
            }
        };
        let item: u64 = fields[1].trim().parse().map_err(|e| DataError::Parse {
            line: lineno + 1,
            message: format!("bad item id {:?}: {e}", fields[1]),
        })?;
        let rating: f32 = fields[2].trim().parse().map_err(|e| DataError::Parse {
            line: lineno + 1,
            message: format!("bad rating {:?}: {e}", fields[2]),
        })?;
        let u = maps.user(user);
        let i = maps.item(item);
        builder.push(u, i, rating)?;
    }
    let dataset = builder.build()?;
    Ok((dataset, maps))
}

/// Load a ratings file from disk, inferring the separator from the
/// extension/content conventions: `.csv` → comma, `.dat` → `::`, else tab.
pub fn load_path(path: &Path, scale: RatingScale) -> Result<(Dataset, IdMaps), DataError> {
    let sep = match path.extension().and_then(|e| e.to_str()) {
        Some("csv") => Separator::Comma,
        Some("dat") => Separator::DoubleColon,
        _ => Separator::Tab,
    };
    let file = std::fs::File::open(path)?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("dataset");
    read_ratings(std::io::BufReader::new(file), sep, scale, name)
}

/// Filter a dataset to users with at least `tau` ratings (the paper applies
/// τ=5 to MT-200K), compacting the user id space.
pub fn filter_min_ratings(data: &Dataset, tau: u32) -> Result<Dataset, DataError> {
    let m = data.interactions();
    let mut remap: Vec<Option<u32>> = vec![None; data.n_users() as usize];
    let mut next = 0u32;
    for u in 0..data.n_users() {
        if m.user_degree(UserId(u)) >= tau as usize {
            remap[u as usize] = Some(next);
            next += 1;
        }
    }
    let mut b = DatasetBuilder::new(data.name(), data.scale())
        .without_validation()
        .with_capacity(data.n_ratings());
    for r in data.ratings() {
        if let Some(new_u) = remap[r.user.idx()] {
            b.push(UserId(new_u), r.item, r.value)?;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_tab_separated() {
        let text = "1\t10\t4.0\t881250949\n1\t20\t3.0\t881250950\n2\t10\t5.0\t881250951\n";
        let (d, maps) = read_ratings(
            Cursor::new(text),
            Separator::Tab,
            RatingScale::stars_1_5(),
            "t",
        )
        .unwrap();
        assert_eq!(d.n_ratings(), 3);
        assert_eq!(d.n_users(), 2);
        assert_eq!(d.n_items(), 2);
        assert_eq!(maps.users[&1], UserId(0));
        assert_eq!(maps.items[&20], ItemId(1));
    }

    #[test]
    fn parses_double_colon() {
        let text = "1::1193::5::978300760\n1::661::3::978302109\n";
        let (d, _) = read_ratings(
            Cursor::new(text),
            Separator::DoubleColon,
            RatingScale::stars_1_5(),
            "t",
        )
        .unwrap();
        assert_eq!(d.n_ratings(), 2);
    }

    #[test]
    fn parses_csv_with_header() {
        let text = "userId,movieId,rating,timestamp\n7,11,2.5,0\n7,12,4.5,0\n";
        let (d, _) = read_ratings(
            Cursor::new(text),
            Separator::Comma,
            RatingScale::half_stars(),
            "t",
        )
        .unwrap();
        assert_eq!(d.n_ratings(), 2);
        assert_eq!(d.ratings()[0].value, 2.5);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# a comment\n\n1\t2\t3.0\t0\n";
        let (d, _) = read_ratings(
            Cursor::new(text),
            Separator::Tab,
            RatingScale::stars_1_5(),
            "t",
        )
        .unwrap();
        assert_eq!(d.n_ratings(), 1);
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let text = "1\t2\t3.0\t0\nbroken line\n";
        let err = read_ratings(
            Cursor::new(text),
            Separator::Tab,
            RatingScale::stars_1_5(),
            "t",
        )
        .unwrap_err();
        match err {
            DataError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_non_numeric_rating() {
        let text = "1\t2\tNOPE\t0\n";
        let err = read_ratings(
            Cursor::new(text),
            Separator::Tab,
            RatingScale::stars_1_5(),
            "t",
        )
        .unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 1, .. }));
    }

    #[test]
    fn filter_min_ratings_drops_and_compacts() {
        let text = "1\t1\t4.0\t0\n1\t2\t4.0\t0\n1\t3\t4.0\t0\n2\t1\t4.0\t0\n3\t1\t4.0\t0\n3\t2\t4.0\t0\n3\t3\t4.0\t0\n";
        let (d, _) = read_ratings(
            Cursor::new(text),
            Separator::Tab,
            RatingScale::stars_1_5(),
            "t",
        )
        .unwrap();
        let filtered = filter_min_ratings(&d, 3).unwrap();
        assert_eq!(filtered.n_users(), 2); // external users 1 and 3
        assert_eq!(filtered.n_ratings(), 6);
        let m = filtered.interactions();
        assert_eq!(m.user_degree(UserId(0)), 3);
        assert_eq!(m.user_degree(UserId(1)), 3);
    }
}
