//! Sampling substrate: Walker alias tables for O(1) weighted draws and the
//! handful of continuous distributions the synthetic generators need
//! (normal, lognormal, gamma, beta). Implemented here because the allowed
//! dependency set includes `rand` but not `rand_distr`.

use rand::{Rng, RngExt};

/// Walker's alias method: O(n) construction, O(1) sampling from a discrete
/// distribution with arbitrary non-negative weights.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from non-negative weights. Panics if all weights are zero or the
    /// slice is empty.
    pub fn new(weights: &[f64]) -> AliasTable {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "alias table needs positive finite total weight"
        );
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers: anything remaining gets probability 1.
        for &s in small.iter().chain(large.iter()) {
            prob[s as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one category index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let n = self.prob.len();
        let slot = rng.random_range(0..n);
        if rng.random::<f64>() < self.prob[slot] {
            slot as u32
        } else {
            self.alias[slot]
        }
    }
}

/// Standard normal via Box–Muller (the polar form would avoid a trig call
/// but this is nowhere near hot).
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    // Guard the log against u = 0.
    let u: f64 = loop {
        let u = rng.random::<f64>();
        if u > 0.0 {
            break u;
        }
    };
    let v: f64 = rng.random::<f64>();
    let z = (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos();
    mean + std_dev * z
}

/// Lognormal: `exp(N(mu, sigma))` — the user-activity distribution of the
/// synthetic generators.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Gamma(shape, scale=1) via Marsaglia–Tsang, with the Johnk-style boost for
/// shape < 1.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
        let u: f64 = loop {
            let u = rng.random::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = normal(rng, 0.0, 1.0);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random::<f64>();
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u > 0.0 && u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Beta(a, b) via two gamma draws — used for per-user popularity tilt.
pub fn beta<R: Rng + ?Sized>(rng: &mut R, a: f64, b: f64) -> f64 {
    let x = gamma(rng, a);
    let y = gamma(rng, b);
    if x + y == 0.0 {
        0.5
    } else {
        x / (x + y)
    }
}

/// Zipf-like power-law weights `w_k = (k+1)^(-s)` for `k` in `0..n`.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (0..n).map(|k| ((k + 1) as f64).powf(-s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xA11CE)
    }

    #[test]
    fn alias_table_matches_weights() {
        let weights = [1.0, 2.0, 7.0];
        let table = AliasTable::new(&weights);
        let mut counts = [0u64; 3];
        let mut r = rng();
        let draws = 200_000;
        for _ in 0..draws {
            counts[table.sample(&mut r) as usize] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (k, &w) in weights.iter().enumerate() {
            let expect = w / total;
            let got = counts[k] as f64 / draws as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "category {k}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn alias_table_single_category() {
        let table = AliasTable::new(&[3.5]);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(table.sample(&mut r), 0);
        }
    }

    #[test]
    #[should_panic(expected = "positive finite total")]
    fn alias_table_rejects_zero_weights() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut r, 2.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut r = rng();
        for &shape in &[0.5, 1.0, 3.0, 9.0] {
            let n = 50_000;
            let mean = (0..n).map(|_| gamma(&mut r, shape)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.15 * shape.max(1.0),
                "shape {shape}: mean {mean}"
            );
        }
    }

    #[test]
    fn beta_lands_in_unit_interval_with_right_mean() {
        let mut r = rng();
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| beta(&mut r, 2.0, 5.0)).collect();
        assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 2.0 / 7.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn zipf_weights_decrease() {
        let w = zipf_weights(5, 1.0);
        assert_eq!(w.len(), 5);
        assert!(w.windows(2).all(|p| p[0] > p[1]));
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[4] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn log_normal_is_positive() {
        let mut r = rng();
        assert!((0..1000).all(|_| log_normal(&mut r, 1.0, 1.5) > 0.0));
    }
}
