//! Owned rating triplets with dense id spaces and a rating scale.

use crate::error::DataError;
use crate::interactions::Interactions;
use crate::split::TrainTest;
use crate::{ItemId, UserId};

/// A single observed `(user, item, rating)` interaction, `r_ui` in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rating {
    /// The rating user `u`.
    pub user: UserId,
    /// The rated item `i`.
    pub item: ItemId,
    /// The rating value `r_ui` on the dataset's [`RatingScale`].
    pub value: f32,
}

/// The discrete scale ratings are drawn from.
///
/// MovieLens 100K/1M use `{1,...,5}`, ML-10M has half-star increments,
/// MovieTweetings uses `{0,...,10}` (mapped to `[1,5]` before use, following
/// the paper's preprocessing of MT-200K).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RatingScale {
    /// Smallest expressible rating.
    pub min: f32,
    /// Largest expressible rating.
    pub max: f32,
    /// Step between adjacent rating values (e.g. `1.0` or `0.5`).
    pub step: f32,
}

impl RatingScale {
    /// The standard 1–5 star scale with whole-star increments.
    pub const fn stars_1_5() -> Self {
        RatingScale {
            min: 1.0,
            max: 5.0,
            step: 1.0,
        }
    }

    /// The 0.5–5 scale with half-star increments used by ML-10M.
    pub const fn half_stars() -> Self {
        RatingScale {
            min: 0.5,
            max: 5.0,
            step: 0.5,
        }
    }

    /// The 0–10 integer scale of MovieTweetings.
    pub const fn zero_to_ten() -> Self {
        RatingScale {
            min: 0.0,
            max: 10.0,
            step: 1.0,
        }
    }

    /// Whether `value` lies inside the scale (steps are not enforced; real
    /// datasets contain occasional off-step values).
    #[inline]
    pub fn contains(&self, value: f32) -> bool {
        value >= self.min && value <= self.max
    }

    /// Snap an arbitrary real value onto the nearest expressible rating.
    pub fn quantize(&self, raw: f64) -> f32 {
        let clamped = raw.clamp(self.min as f64, self.max as f64);
        let steps = ((clamped - self.min as f64) / self.step as f64).round();
        (self.min as f64 + steps * self.step as f64) as f32
    }

    /// Linearly map a value on this scale to the `[1, 5]` interval used by
    /// every algorithm in the workspace (the paper maps MT-200K this way,
    /// following Hernandez-Lobato et al.).
    #[inline]
    pub fn to_one_five(&self, value: f32) -> f32 {
        if (self.max - self.min).abs() < f32::EPSILON {
            return 3.0;
        }
        1.0 + 4.0 * (value - self.min) / (self.max - self.min)
    }

    /// The relevance threshold on this scale corresponding to "rated highly"
    /// (`r_ui >= 4` on the 1–5 scale, Table III discussion).
    #[inline]
    pub fn relevance_threshold(&self) -> f32 {
        // 4 on [1,5] sits at 3/4 of the scale span.
        self.min + 0.75 * (self.max - self.min)
    }
}

impl Default for RatingScale {
    fn default() -> Self {
        RatingScale::stars_1_5()
    }
}

/// An owned, validated rating dataset `D = { r_ui }` (§II-A).
///
/// Users and items are dense `u32` ids; construction deduplicates repeated
/// `(user, item)` pairs keeping the last observation, mirroring how rating
/// logs are usually compacted.
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    n_users: u32,
    n_items: u32,
    scale: RatingScale,
    ratings: Vec<Rating>,
}

impl Dataset {
    /// Dataset display name (e.g. `"ml-1m-sim"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of users `|U|`.
    #[inline]
    pub fn n_users(&self) -> u32 {
        self.n_users
    }

    /// Number of items `|I|`.
    #[inline]
    pub fn n_items(&self) -> u32 {
        self.n_items
    }

    /// Number of observed ratings `|D|`.
    #[inline]
    pub fn n_ratings(&self) -> usize {
        self.ratings.len()
    }

    /// The scale ratings were recorded on.
    #[inline]
    pub fn scale(&self) -> RatingScale {
        self.scale
    }

    /// All ratings, sorted by `(user, item)`.
    #[inline]
    pub fn ratings(&self) -> &[Rating] {
        &self.ratings
    }

    /// Density `d% = |D| / (|U|·|I|) × 100` (Table II).
    pub fn density_percent(&self) -> f64 {
        if self.n_users == 0 || self.n_items == 0 {
            return 0.0;
        }
        100.0 * self.ratings.len() as f64 / (self.n_users as f64 * self.n_items as f64)
    }

    /// Build the CSR interaction views over the full dataset.
    pub fn interactions(&self) -> Interactions {
        Interactions::from_ratings(self.n_users, self.n_items, &self.ratings)
    }

    /// Split into train/test keeping a `κ` fraction of each user's ratings in
    /// the train set (§IV-A). Every user keeps at least one train rating.
    pub fn split_per_user(&self, kappa: f64, seed: u64) -> Result<TrainTest, DataError> {
        TrainTest::split_per_user(self, kappa, seed)
    }

    /// Re-map every rating onto `[1, 5]`, returning a new dataset on the
    /// 1–5 scale. Used for MT-200K-style data (paper §IV-A).
    pub fn mapped_to_one_five(&self) -> Dataset {
        let scale = self.scale;
        let ratings = self
            .ratings
            .iter()
            .map(|r| Rating {
                value: scale.to_one_five(r.value),
                ..*r
            })
            .collect();
        Dataset {
            name: self.name.clone(),
            n_users: self.n_users,
            n_items: self.n_items,
            scale: RatingScale {
                min: 1.0,
                max: 5.0,
                step: scale.step * 4.0 / (scale.max - scale.min).max(f32::EPSILON),
            },
            ratings,
        }
    }
}

/// Incremental builder for [`Dataset`], used by loaders and generators.
#[derive(Debug)]
pub struct DatasetBuilder {
    name: String,
    scale: RatingScale,
    ratings: Vec<Rating>,
    max_user: Option<u32>,
    max_item: Option<u32>,
    validate: bool,
}

impl DatasetBuilder {
    /// Start a builder for a dataset on the given scale.
    pub fn new(name: impl Into<String>, scale: RatingScale) -> Self {
        DatasetBuilder {
            name: name.into(),
            scale,
            ratings: Vec::new(),
            max_user: None,
            max_item: None,
            validate: true,
        }
    }

    /// Disable scale validation (loaders of known-noisy files may prefer to
    /// clamp instead of fail).
    pub fn without_validation(mut self) -> Self {
        self.validate = false;
        self
    }

    /// Pre-allocate for an expected number of ratings.
    pub fn with_capacity(mut self, n: usize) -> Self {
        self.ratings.reserve(n);
        self
    }

    /// Append one rating.
    pub fn push(&mut self, user: UserId, item: ItemId, value: f32) -> Result<(), DataError> {
        if self.validate && !self.scale.contains(value) {
            return Err(DataError::RatingOutOfScale {
                value,
                min: self.scale.min,
                max: self.scale.max,
            });
        }
        let value = value.clamp(self.scale.min, self.scale.max);
        self.max_user = Some(self.max_user.map_or(user.0, |m| m.max(user.0)));
        self.max_item = Some(self.max_item.map_or(item.0, |m| m.max(item.0)));
        self.ratings.push(Rating { user, item, value });
        Ok(())
    }

    /// Number of ratings pushed so far (before deduplication).
    pub fn len(&self) -> usize {
        self.ratings.len()
    }

    /// Whether no ratings have been pushed.
    pub fn is_empty(&self) -> bool {
        self.ratings.is_empty()
    }

    /// Finalize: sort by `(user, item)`, deduplicate keeping the last
    /// observation, and freeze id-space sizes.
    pub fn build(self) -> Result<Dataset, DataError> {
        let DatasetBuilder {
            name,
            scale,
            mut ratings,
            max_user,
            max_item,
            ..
        } = self;
        if ratings.is_empty() {
            return Err(DataError::Empty);
        }
        // Stable sort keeps insertion order among duplicates so that "last
        // observation wins" is well defined after the dedup pass below.
        ratings.sort_by_key(|r| (r.user.0, r.item.0));
        let mut deduped: Vec<Rating> = Vec::with_capacity(ratings.len());
        for r in ratings {
            match deduped.last_mut() {
                Some(last) if last.user == r.user && last.item == r.item => *last = r,
                _ => deduped.push(r),
            }
        }
        Ok(Dataset {
            name,
            n_users: max_user.unwrap_or(0) + 1,
            n_items: max_item.unwrap_or(0) + 1,
            scale,
            ratings: deduped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(triples: &[(u32, u32, f32)]) -> Dataset {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        for &(u, i, r) in triples {
            b.push(UserId(u), ItemId(i), r).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn builder_sorts_and_sizes() {
        let d = build(&[(1, 2, 3.0), (0, 1, 4.0), (1, 0, 5.0)]);
        assert_eq!(d.n_users(), 2);
        assert_eq!(d.n_items(), 3);
        assert_eq!(d.n_ratings(), 3);
        let users: Vec<u32> = d.ratings().iter().map(|r| r.user.0).collect();
        assert_eq!(users, vec![0, 1, 1]);
    }

    #[test]
    fn builder_dedups_keeping_last() {
        let d = build(&[(0, 0, 1.0), (0, 0, 5.0)]);
        assert_eq!(d.n_ratings(), 1);
        assert_eq!(d.ratings()[0].value, 5.0);
    }

    #[test]
    fn builder_rejects_out_of_scale() {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        let err = b.push(UserId(0), ItemId(0), 9.0).unwrap_err();
        assert!(matches!(err, DataError::RatingOutOfScale { .. }));
    }

    #[test]
    fn builder_without_validation_clamps() {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5()).without_validation();
        b.push(UserId(0), ItemId(0), 9.0).unwrap();
        let d = b.build().unwrap();
        assert_eq!(d.ratings()[0].value, 5.0);
    }

    #[test]
    fn empty_build_fails() {
        let b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        assert!(matches!(b.build(), Err(DataError::Empty)));
    }

    #[test]
    fn density_matches_hand_computation() {
        let d = build(&[(0, 0, 3.0), (0, 1, 3.0), (1, 0, 3.0)]);
        // 3 ratings / (2 users * 2 items) = 75%
        assert!((d.density_percent() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn quantize_snaps_to_steps() {
        let s = RatingScale::half_stars();
        assert_eq!(s.quantize(3.26), 3.5);
        assert_eq!(s.quantize(-2.0), 0.5);
        assert_eq!(s.quantize(9.0), 5.0);
        let whole = RatingScale::stars_1_5();
        assert_eq!(whole.quantize(2.5), 3.0); // round-half-up at midpoints
        assert_eq!(whole.quantize(2.49), 2.0);
    }

    #[test]
    fn map_to_one_five_preserves_order() {
        let s = RatingScale::zero_to_ten();
        assert_eq!(s.to_one_five(0.0), 1.0);
        assert_eq!(s.to_one_five(10.0), 5.0);
        assert!((s.to_one_five(5.0) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn relevance_threshold_is_four_on_star_scale() {
        assert!((RatingScale::stars_1_5().relevance_threshold() - 4.0).abs() < 1e-6);
        // 0..10 maps its threshold at 7.5.
        assert!((RatingScale::zero_to_ten().relevance_threshold() - 7.5).abs() < 1e-6);
    }

    #[test]
    fn mapped_dataset_is_on_one_five() {
        let mut b = DatasetBuilder::new("mt", RatingScale::zero_to_ten());
        b.push(UserId(0), ItemId(0), 0.0).unwrap();
        b.push(UserId(0), ItemId(1), 10.0).unwrap();
        let d = b.build().unwrap().mapped_to_one_five();
        assert_eq!(d.ratings()[0].value, 1.0);
        assert_eq!(d.ratings()[1].value, 5.0);
        assert_eq!(d.scale().min, 1.0);
        assert_eq!(d.scale().max, 5.0);
    }
}
