//! Calibrated synthetic dataset generators.
//!
//! The paper evaluates on ML-100K, ML-1M, ML-10M, MT-200K and Netflix. Those
//! corpora are not redistributable, so this module plants the three
//! statistical properties the paper's phenomena depend on and generates data
//! from them:
//!
//! 1. **Popularity skew** — item consumption follows a lognormal popularity
//!    law whose σ is calibrated per profile so the Pareto long-tail
//!    percentage `L%` lands near Table II.
//! 2. **Sparsity / activity skew** — user activity is lognormal with the
//!    dataset's `τ` floor, scaled to the target rating count, which
//!    reproduces the density `d%` and the large population of infrequent
//!    users (MT-200K, Netflix).
//! 3. **Recoverable preference structure** — ratings come from a planted
//!    latent-factor model (user/item factors + biases + noise) whose item
//!    bias is positively correlated with popularity, reproducing the
//!    popularity bias of real rating data (§VI of the paper).
//!
//! Heavy users exhaust the short head and spill into the tail (plus an
//! explicit exploration mixture), which yields the falling
//! popularity-vs-activity curve of Figure 1 without any special casing.
//!
//! ML-10M and Netflix profiles are **downscaled** (fewer users/items, same
//! density and skew) to fit a laptop budget; scale factors are documented on
//! each constructor and in `EXPERIMENTS.md`.

use crate::dataset::{Dataset, DatasetBuilder, RatingScale};
use crate::sampling::{log_normal, normal, AliasTable};
use crate::{ItemId, UserId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Full configuration of a synthetic dataset generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Dataset display name (suffix `-sim` marks synthetic stand-ins).
    pub name: String,
    /// Number of users `|U|`.
    pub n_users: u32,
    /// Number of items `|I|`.
    pub n_items: u32,
    /// Target number of ratings `|D|` (achieved approximately).
    pub target_ratings: u64,
    /// Minimum ratings per user, `τ` in Table II.
    pub tau: u32,
    /// Train/test ratio `κ` the paper uses for this dataset.
    pub kappa: f64,
    /// Rating scale (MT-200K generates on 0–10 and is mapped to `[1,5]`).
    pub scale: RatingScale,
    /// Lognormal σ of the item popularity law — larger is more skewed.
    /// (A lognormal fits real rating-popularity curves better than a pure
    /// Zipf once per-user de-duplication saturates the head.)
    pub popularity_sigma: f64,
    /// Lognormal σ of user activity — larger means more infrequent users.
    pub activity_sigma: f64,
    /// Base exploration probability: chance a draw is uniform over items
    /// rather than popularity-weighted.
    pub exploration_base: f64,
    /// Additional exploration for the most active users (added pro-rata to
    /// log-activity), producing the Figure 1 downslope.
    pub exploration_activity_boost: f64,
    /// Latent dimensionality of the planted preference model.
    pub latent_dim: usize,
    /// Correlation strength between item popularity and item bias (quality).
    pub popularity_quality: f64,
    /// Rating noise standard deviation (on the 1–5 scale equivalent).
    pub noise: f64,
}

impl DatasetProfile {
    /// ML-100K stand-in at original scale: 943 users × 1682 items, 100K
    /// ratings, τ=20, κ=0.5 (Table II row 1).
    pub fn ml_100k() -> DatasetProfile {
        DatasetProfile {
            name: "ml-100k-sim".into(),
            n_users: 943,
            n_items: 1682,
            target_ratings: 100_000,
            tau: 20,
            kappa: 0.5,
            scale: RatingScale::stars_1_5(),
            popularity_sigma: 2.1,
            activity_sigma: 0.85,
            exploration_base: 0.08,
            exploration_activity_boost: 0.20,
            latent_dim: 12,
            popularity_quality: 0.5,
            noise: 0.9,
        }
    }

    /// ML-1M stand-in at original scale: 6040 × 3706, 1M ratings, τ=20,
    /// κ=0.5 (Table II row 2).
    pub fn ml_1m() -> DatasetProfile {
        DatasetProfile {
            name: "ml-1m-sim".into(),
            n_users: 6040,
            n_items: 3706,
            target_ratings: 1_000_000,
            tau: 20,
            kappa: 0.5,
            scale: RatingScale::stars_1_5(),
            popularity_sigma: 2.05,
            activity_sigma: 0.95,
            exploration_base: 0.08,
            exploration_activity_boost: 0.20,
            latent_dim: 16,
            popularity_quality: 0.5,
            noise: 0.9,
        }
    }

    /// ML-10M stand-in, **downscaled ~4.4× in users and items** with the
    /// original density (1.34%) and τ=20, κ=0.5 (Table II row 3):
    /// 16000 × 2460 ≈ 0.53M ratings (τ-floor inflation included).
    pub fn ml_10m() -> DatasetProfile {
        DatasetProfile {
            name: "ml-10m-sim".into(),
            n_users: 16_000,
            n_items: 2_460,
            target_ratings: 455_000,
            tau: 20,
            kappa: 0.5,
            scale: RatingScale::half_stars(),
            popularity_sigma: 2.8,
            activity_sigma: 1.0,
            exploration_base: 0.08,
            exploration_activity_boost: 0.20,
            latent_dim: 16,
            popularity_quality: 0.5,
            noise: 0.9,
        }
    }

    /// MT-200K stand-in at original scale: 7969 × 13864, ~172.5K ratings on
    /// the 0–10 scale, τ=5, κ=0.8 (Table II row 4). Nearly half the users
    /// have fewer than 10 ratings, as in the real corpus.
    pub fn mt_200k() -> DatasetProfile {
        DatasetProfile {
            name: "mt-200k-sim".into(),
            n_users: 7_969,
            n_items: 13_864,
            target_ratings: 172_506,
            tau: 5,
            kappa: 0.8,
            scale: RatingScale::zero_to_ten(),
            popularity_sigma: 2.85,
            activity_sigma: 1.15,
            exploration_base: 0.08,
            exploration_activity_boost: 0.20,
            latent_dim: 12,
            popularity_quality: 0.55,
            noise: 1.1,
        }
    }

    /// Netflix stand-in, **downscaled ~18× in users, ~3.5× in items** with
    /// the original density (1.21%): 25000 × 5000 ≈ 1.51M ratings, κ=0.9
    /// standing in for the probe split (Table II row 5).
    pub fn netflix() -> DatasetProfile {
        DatasetProfile {
            name: "netflix-sim".into(),
            n_users: 25_000,
            n_items: 5_000,
            target_ratings: 1_512_500,
            tau: 3,
            kappa: 0.9,
            scale: RatingScale::stars_1_5(),
            popularity_sigma: 3.8,
            activity_sigma: 1.25,
            exploration_base: 0.08,
            exploration_activity_boost: 0.20,
            latent_dim: 16,
            popularity_quality: 0.5,
            noise: 0.9,
        }
    }

    /// The five calibrated paper profiles, in Table II order.
    pub fn all_paper() -> Vec<DatasetProfile> {
        vec![
            DatasetProfile::ml_100k(),
            DatasetProfile::ml_1m(),
            DatasetProfile::ml_10m(),
            DatasetProfile::mt_200k(),
            DatasetProfile::netflix(),
        ]
    }

    /// A minuscule profile for unit tests and doc examples (~50 users).
    pub fn tiny() -> DatasetProfile {
        DatasetProfile {
            name: "tiny-sim".into(),
            n_users: 50,
            n_items: 40,
            target_ratings: 600,
            tau: 3,
            kappa: 0.5,
            scale: RatingScale::stars_1_5(),
            popularity_sigma: 2.0,
            activity_sigma: 0.8,
            exploration_base: 0.08,
            exploration_activity_boost: 0.20,
            latent_dim: 4,
            popularity_quality: 0.5,
            noise: 0.8,
        }
    }

    /// A small profile for integration tests and microbenches (~400 users).
    pub fn small() -> DatasetProfile {
        DatasetProfile {
            name: "small-sim".into(),
            n_users: 400,
            n_items: 300,
            target_ratings: 12_000,
            tau: 5,
            kappa: 0.5,
            scale: RatingScale::stars_1_5(),
            popularity_sigma: 2.0,
            activity_sigma: 0.9,
            exploration_base: 0.08,
            exploration_activity_boost: 0.20,
            latent_dim: 8,
            popularity_quality: 0.5,
            noise: 0.9,
        }
    }

    /// A mid-size profile (~2000 users) used by benches that need realistic
    /// skew without full eval cost.
    pub fn medium() -> DatasetProfile {
        DatasetProfile {
            name: "medium-sim".into(),
            n_users: 2_000,
            n_items: 1_200,
            target_ratings: 80_000,
            tau: 10,
            kappa: 0.5,
            scale: RatingScale::stars_1_5(),
            popularity_sigma: 2.0,
            activity_sigma: 0.9,
            exploration_base: 0.08,
            exploration_activity_boost: 0.20,
            latent_dim: 12,
            popularity_quality: 0.5,
            noise: 0.9,
        }
    }

    /// A large profile (~6000 users, 4000 items) for serving benches that
    /// need catalog scale beyond [`DatasetProfile::medium`].
    pub fn large() -> DatasetProfile {
        DatasetProfile {
            name: "large-sim".into(),
            n_users: 6_000,
            n_items: 4_000,
            target_ratings: 300_000,
            tau: 10,
            kappa: 0.5,
            scale: RatingScale::stars_1_5(),
            popularity_sigma: 2.0,
            activity_sigma: 0.9,
            exploration_base: 0.08,
            exploration_activity_boost: 0.20,
            latent_dim: 12,
            popularity_quality: 0.5,
            noise: 0.9,
        }
    }

    /// Generate a dataset from this profile, deterministically in `seed`.
    pub fn generate(&self, seed: u64) -> Dataset {
        Generator::new(self.clone(), seed).run()
    }
}

/// Internal state of one generation run.
struct Generator {
    profile: DatasetProfile,
    rng: StdRng,
}

impl Generator {
    fn new(profile: DatasetProfile, seed: u64) -> Generator {
        Generator {
            profile,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draw per-user activity counts, lognormal with floor `τ`, rescaled so
    /// the total lands near `target_ratings`.
    fn activities(&mut self) -> Vec<u32> {
        let p = &self.profile;
        let n = p.n_users as usize;
        let mean_target = p.target_ratings as f64 / n as f64;
        // lognormal mean is exp(mu + sigma^2/2); pick mu for the target mean.
        let mu = mean_target.ln() - p.activity_sigma * p.activity_sigma / 2.0;
        let cap = (p.n_items as f64 * 0.6) as u32;
        let mut acts: Vec<f64> = (0..n)
            .map(|_| log_normal(&mut self.rng, mu, p.activity_sigma))
            .collect();
        // Rescale to hit the target sum, then clamp into [τ, cap].
        let sum: f64 = acts.iter().sum();
        let scale = p.target_ratings as f64 / sum.max(1.0);
        acts.iter_mut().for_each(|a| *a *= scale);
        acts.iter()
            .map(|&a| (a.round() as u32).clamp(p.tau, cap.max(p.tau)))
            .collect()
    }

    /// Draw lognormal popularity weights per item. Item ids carry no
    /// popularity information because each weight is drawn independently.
    fn item_weights(&mut self) -> Vec<f64> {
        let sigma = self.profile.popularity_sigma;
        (0..self.profile.n_items as usize)
            .map(|_| log_normal(&mut self.rng, 0.0, sigma))
            .collect()
    }

    fn run(mut self) -> Dataset {
        let p = self.profile.clone();
        let weights = self.item_weights();
        let table = AliasTable::new(&weights);
        // Exploration draws come from a *flattened* copy of the popularity
        // law (w^0.35) rather than a uniform distribution: a uniform floor
        // would give every tail item the same expected count and erase the
        // Pareto shape real datasets show.
        let flat_weights: Vec<f64> = weights.iter().map(|&w| w.powf(0.35)).collect();
        let flat_table = AliasTable::new(&flat_weights);
        let activities = self.activities();
        let max_log_act = activities
            .iter()
            .map(|&a| (a.max(1) as f64).ln())
            .fold(1.0f64, f64::max);

        // Planted preference model.
        let d = p.latent_dim;
        let factor_scale = 0.55 / (d as f64).sqrt();
        let user_factors: Vec<f64> = (0..p.n_users as usize * d)
            .map(|_| normal(&mut self.rng, 0.0, factor_scale))
            .collect();
        let item_factors: Vec<f64> = (0..p.n_items as usize * d)
            .map(|_| normal(&mut self.rng, 0.0, factor_scale))
            .collect();
        // Popularity-correlated item bias: z-score of log-weight.
        let log_w: Vec<f64> = weights.iter().map(|&w| w.ln()).collect();
        let mean_lw = log_w.iter().sum::<f64>() / log_w.len() as f64;
        let sd_lw = (log_w.iter().map(|x| (x - mean_lw).powi(2)).sum::<f64>() / log_w.len() as f64)
            .sqrt()
            .max(1e-12);
        let item_bias: Vec<f64> = (0..p.n_items as usize)
            .map(|i| {
                p.popularity_quality * 0.35 * (log_w[i] - mean_lw) / sd_lw
                    + normal(&mut self.rng, 0.0, 0.25)
            })
            .collect();
        let user_bias: Vec<f64> = (0..p.n_users as usize)
            .map(|_| normal(&mut self.rng, 0.0, 0.25))
            .collect();

        let span = (p.scale.max - p.scale.min) as f64;
        let center = p.scale.min as f64 + 0.64 * span;
        let spread = span / 4.0; // 1.0 on the 1–5 scale

        let mut builder =
            DatasetBuilder::new(p.name.clone(), p.scale).with_capacity(p.target_ratings as usize);
        let mut chosen: HashSet<u32> = HashSet::new();
        for u in 0..p.n_users as usize {
            let act = activities[u] as usize;
            chosen.clear();
            chosen.reserve(act);
            let explore = (p.exploration_base
                + p.exploration_activity_boost * (activities[u].max(1) as f64).ln() / max_log_act
                + normal(&mut self.rng, 0.0, 0.04))
            .clamp(0.02, 0.95);
            let mut attempts = 0usize;
            let max_attempts = 30 * act + 100;
            while chosen.len() < act && attempts < max_attempts {
                attempts += 1;
                let item = if self.rng.random::<f64>() < explore {
                    flat_table.sample(&mut self.rng)
                } else {
                    table.sample(&mut self.rng)
                };
                chosen.insert(item);
            }
            // Rare fallback for extremely heavy users: fill from a uniform
            // scan of unseen items.
            if chosen.len() < act {
                let start = self.rng.random_range(0..p.n_items);
                for off in 0..p.n_items {
                    if chosen.len() >= act {
                        break;
                    }
                    chosen.insert((start + off) % p.n_items);
                }
            }
            let pu = &user_factors[u * d..(u + 1) * d];
            let mut items: Vec<u32> = chosen.iter().copied().collect();
            items.sort_unstable();
            for &i in &items {
                let qi = &item_factors[i as usize * d..(i as usize + 1) * d];
                let dot: f64 = pu.iter().zip(qi).map(|(a, b)| a * b).sum();
                let raw = center
                    + spread
                        * (user_bias[u]
                            + item_bias[i as usize]
                            + dot
                            + normal(&mut self.rng, 0.0, self.profile.noise));
                let value = p.scale.quantize(raw);
                builder
                    .push(UserId(u as u32), ItemId(i), value)
                    .expect("quantized rating is always on scale");
            }
        }
        builder.build().expect("generator always emits ratings")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{activity_popularity_curve, LongTail};

    #[test]
    fn tiny_generation_is_deterministic() {
        let a = DatasetProfile::tiny().generate(7);
        let b = DatasetProfile::tiny().generate(7);
        assert_eq!(a.n_ratings(), b.n_ratings());
        assert_eq!(a.ratings()[0].value, b.ratings()[0].value);
        let c = DatasetProfile::tiny().generate(8);
        // Different seeds should differ (overwhelmingly likely).
        let same = a.n_ratings() == c.n_ratings()
            && a.ratings()
                .iter()
                .zip(c.ratings())
                .all(|(x, y)| x.item == y.item && x.value == y.value);
        assert!(!same);
    }

    #[test]
    fn generation_respects_tau_floor() {
        let p = DatasetProfile::tiny();
        let d = p.generate(3);
        let m = d.interactions();
        for u in 0..d.n_users() {
            assert!(
                m.user_degree(UserId(u)) >= p.tau as usize,
                "user {u} below τ"
            );
        }
    }

    #[test]
    fn generation_hits_target_count_roughly() {
        let p = DatasetProfile::small();
        let d = p.generate(11);
        let got = d.n_ratings() as f64;
        let want = p.target_ratings as f64;
        assert!(
            (got - want).abs() / want < 0.25,
            "got {got} ratings, wanted ≈{want}"
        );
    }

    #[test]
    fn ratings_are_on_scale() {
        let p = DatasetProfile::tiny();
        let d = p.generate(5);
        for r in d.ratings() {
            assert!(p.scale.contains(r.value), "rating {} off scale", r.value);
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let d = DatasetProfile::small().generate(13);
        let m = d.interactions();
        let mut pop = m.item_popularity();
        pop.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = pop.iter().map(|&x| x as u64).sum();
        let head_items = pop.len() / 5; // top 20% of items
        let head_mass: u64 = pop.iter().take(head_items).map(|&x| x as u64).sum();
        assert!(
            head_mass as f64 / total as f64 > 0.4,
            "head mass only {:.2}",
            head_mass as f64 / total as f64
        );
    }

    #[test]
    fn figure_one_shape_holds() {
        let d = DatasetProfile::small().generate(17);
        let split = d.split_per_user(0.5, 1).unwrap();
        let curve = activity_popularity_curve(&split.train, 5);
        assert!(curve.len() >= 3);
        // First-bin users (low activity) consume more popular items on
        // average than last-bin users.
        let first = curve.first().unwrap().mean_avg_popularity;
        let last = curve.last().unwrap().mean_avg_popularity;
        assert!(
            first > last,
            "expected downslope, got first={first:.1} last={last:.1}"
        );
    }

    #[test]
    fn long_tail_fraction_is_large() {
        let d = DatasetProfile::small().generate(23);
        let split = d.split_per_user(0.5, 1).unwrap();
        let lt = LongTail::pareto(&split.train);
        let pct = lt.percent_of(&split.train);
        assert!(
            (40.0..99.0).contains(&pct),
            "long-tail percentage {pct:.1} out of plausible band"
        );
    }

    #[test]
    fn paper_profiles_enumerate_in_order() {
        let names: Vec<String> = DatasetProfile::all_paper()
            .into_iter()
            .map(|p| p.name)
            .collect();
        assert_eq!(
            names,
            vec![
                "ml-100k-sim",
                "ml-1m-sim",
                "ml-10m-sim",
                "mt-200k-sim",
                "netflix-sim"
            ]
        );
    }

    /// Calibration harness: prints d% and L% for every paper profile so the
    /// Zipf exponents can be tuned against Table II. Run with
    /// `cargo test -p ganc-dataset --release calibration -- --ignored --nocapture`.
    #[test]
    #[ignore = "manual calibration tool, slow at full scale"]
    fn calibration_report() {
        for p in DatasetProfile::all_paper() {
            let d = p.generate(42);
            let split = d.split_per_user(p.kappa, 7).unwrap();
            let lt = LongTail::pareto(&split.train);
            println!(
                "{:<14} |D|={:>9} d%={:>5.2} L%={:>5.1} (targets in Table II)",
                p.name,
                d.n_ratings(),
                d.density_percent(),
                lt.percent_of(&split.train),
            );
        }
    }

    /// Exponent sweep for calibrating L% per profile.
    #[test]
    #[ignore = "manual calibration tool, slow at full scale"]
    fn calibration_sweep() {
        for base in DatasetProfile::all_paper() {
            for s in [1.2, 1.5, 1.8, 2.1, 2.4, 2.7] {
                let mut p = base.clone();
                p.popularity_sigma = s;
                p.exploration_base = 0.08;
                p.exploration_activity_boost = 0.20;
                let d = p.generate(42);
                let split = d.split_per_user(p.kappa, 7).unwrap();
                let lt = LongTail::pareto(&split.train);
                println!(
                    "{:<14} s={:.1} L%={:>5.1}",
                    p.name,
                    s,
                    lt.percent_of(&split.train),
                );
            }
        }
    }

    #[test]
    fn profile_is_serde() {
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<DatasetProfile>();
    }
}
