//! Per-user ratio train/test splitting (the `κ` split of §IV-A).
//!
//! The paper splits each dataset "by keeping a fixed ratio κ of each user's
//! ratings in the train set and moving the rest to the test set", so an
//! infrequent user with 5 ratings at κ=0.8 keeps 4 in train and 1 in test.
//! Every user is guaranteed at least one train rating so that preference
//! estimation (§II) always has data to learn from.

use crate::dataset::{Dataset, Rating};
use crate::error::DataError;
use crate::interactions::Interactions;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The result of a per-user ratio split: train set `R` and test set `T`.
#[derive(Debug, Clone)]
pub struct TrainTest {
    /// Train interactions `R`.
    pub train: Interactions,
    /// Test interactions `T`.
    pub test: Interactions,
    /// The ratio `κ` used for the split.
    pub kappa: f64,
    /// The RNG seed used for the split (reproducibility handle).
    pub seed: u64,
}

impl TrainTest {
    /// Split `data`, keeping `κ · |I_u|` ratings (rounded, at least one) of
    /// every user in train. Deterministic in `(data, kappa, seed)`: each
    /// user's shuffle is seeded independently, so the assignment of a user's
    /// ratings does not depend on other users.
    pub fn split_per_user(data: &Dataset, kappa: f64, seed: u64) -> Result<TrainTest, DataError> {
        if !(kappa > 0.0 && kappa <= 1.0) {
            return Err(DataError::InvalidSplitRatio(kappa));
        }
        if data.n_ratings() == 0 {
            return Err(DataError::Empty);
        }
        let mut train: Vec<Rating> = Vec::with_capacity((data.n_ratings() as f64 * kappa) as usize);
        let mut test: Vec<Rating> = Vec::new();
        let ratings = data.ratings();
        let mut start = 0usize;
        while start < ratings.len() {
            let user = ratings[start].user;
            let mut end = start + 1;
            while end < ratings.len() && ratings[end].user == user {
                end += 1;
            }
            let block = &ratings[start..end];
            let n = block.len();
            let keep = ((n as f64 * kappa).round() as usize).clamp(1, n);
            if keep == n {
                train.extend_from_slice(block);
            } else {
                let mut order: Vec<usize> = (0..n).collect();
                // Mix the user id into the stream so each user gets an
                // independent, reproducible permutation.
                let mut rng = StdRng::seed_from_u64(
                    seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(user.0 as u64 + 1)),
                );
                order.shuffle(&mut rng);
                for (k, &pos) in order.iter().enumerate() {
                    if k < keep {
                        train.push(block[pos]);
                    } else {
                        test.push(block[pos]);
                    }
                }
            }
            start = end;
        }
        train.sort_by_key(|r| (r.user.0, r.item.0));
        test.sort_by_key(|r| (r.user.0, r.item.0));
        Ok(TrainTest {
            train: Interactions::from_ratings(data.n_users(), data.n_items(), &train),
            test: Interactions::from_ratings(data.n_users(), data.n_items(), &test),
            kappa,
            seed,
        })
    }

    /// Hold out a further validation split from the train set, for
    /// hyper-parameter selection (Appendix A's cross-validation stands on
    /// this). Returns `(sub_train, validation)`.
    pub fn validation_split(
        &self,
        kappa: f64,
        seed: u64,
    ) -> Result<(Interactions, Interactions), DataError> {
        let scale = crate::dataset::RatingScale::stars_1_5();
        let mut b = crate::dataset::DatasetBuilder::new("validation", scale).without_validation();
        for (u, i, v) in self.train.iter() {
            b.push(u, i, v)?;
        }
        let d = b.build()?;
        // The temporary dataset shrinks the id space to the max observed id;
        // rebuild at full width below.
        let inner = TrainTest::split_per_user(&d, kappa, seed)?;
        let widen = |m: &Interactions| {
            let ratings: Vec<Rating> = m
                .iter()
                .map(|(u, i, v)| Rating {
                    user: u,
                    item: i,
                    value: v,
                })
                .collect();
            Interactions::from_ratings(self.train.n_users(), self.train.n_items(), &ratings)
        };
        Ok((widen(&inner.train), widen(&inner.test)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetBuilder, RatingScale};
    use crate::{ItemId, UserId};

    fn dataset(per_user: &[usize]) -> Dataset {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        for (u, &n) in per_user.iter().enumerate() {
            for i in 0..n {
                b.push(UserId(u as u32), ItemId(i as u32), 1.0 + (i % 5) as f32)
                    .unwrap();
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn split_counts_follow_kappa() {
        let d = dataset(&[5, 100]);
        let s = d.split_per_user(0.8, 1).unwrap();
        assert_eq!(s.train.user_degree(UserId(0)), 4);
        assert_eq!(s.test.user_degree(UserId(0)), 1);
        assert_eq!(s.train.user_degree(UserId(1)), 80);
        assert_eq!(s.test.user_degree(UserId(1)), 20);
    }

    #[test]
    fn split_preserves_multiset() {
        let d = dataset(&[7, 13, 4]);
        let s = d.split_per_user(0.5, 3).unwrap();
        assert_eq!(s.train.nnz() + s.test.nnz(), d.n_ratings());
        // every original pair appears in exactly one side
        for r in d.ratings() {
            let in_train = s.train.contains(r.user, r.item);
            let in_test = s.test.contains(r.user, r.item);
            assert!(in_train ^ in_test, "pair must land on exactly one side");
        }
    }

    #[test]
    fn every_user_keeps_a_train_rating() {
        let d = dataset(&[1, 2, 3]);
        let s = d.split_per_user(0.1, 9).unwrap();
        for u in 0..3 {
            assert!(s.train.user_degree(UserId(u)) >= 1);
        }
    }

    #[test]
    fn kappa_one_puts_everything_in_train() {
        let d = dataset(&[4, 4]);
        let s = d.split_per_user(1.0, 5).unwrap();
        assert_eq!(s.train.nnz(), d.n_ratings());
        assert_eq!(s.test.nnz(), 0);
    }

    #[test]
    fn invalid_kappa_rejected() {
        let d = dataset(&[4]);
        assert!(matches!(
            d.split_per_user(0.0, 1),
            Err(DataError::InvalidSplitRatio(_))
        ));
        assert!(matches!(
            d.split_per_user(1.5, 1),
            Err(DataError::InvalidSplitRatio(_))
        ));
    }

    #[test]
    fn split_is_deterministic_in_seed() {
        let d = dataset(&[20, 20]);
        let a = d.split_per_user(0.5, 11).unwrap();
        let b = d.split_per_user(0.5, 11).unwrap();
        let c = d.split_per_user(0.5, 12).unwrap();
        let rows = |s: &TrainTest| {
            (0..2)
                .map(|u| s.train.user_row(UserId(u)).0.to_vec())
                .collect::<Vec<_>>()
        };
        assert_eq!(rows(&a), rows(&b));
        assert_ne!(rows(&a), rows(&c), "different seeds should differ");
    }

    #[test]
    fn validation_split_nests_inside_train() {
        let d = dataset(&[30, 30]);
        let s = d.split_per_user(0.5, 2).unwrap();
        let (sub, val) = s.validation_split(0.8, 3).unwrap();
        assert_eq!(sub.nnz() + val.nnz(), s.train.nnz());
        for (u, i, _) in val.iter() {
            assert!(s.train.contains(u, i));
            assert!(!sub.contains(u, i));
        }
        assert_eq!(sub.n_items(), s.train.n_items());
    }
}
