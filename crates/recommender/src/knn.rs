//! Item-based k-nearest-neighbour collaborative filtering (Sarwar et al.,
//! WWW 2001) — the classic memory-based model from the paper's related
//! work (§VI). Not part of the paper's evaluation (the authors note
//! neighbourhood models do not scale to Netflix), but indispensable in a
//! general-purpose recommender library and useful as an extra baseline.
//!
//! Similarity is the cosine between mean-centered item rating vectors,
//! computed sparsely by co-rating accumulation; only the top-`k` neighbours
//! per item are retained.

use crate::Recommender;
use ganc_dataset::{Interactions, ItemId, UserId};
use std::collections::HashMap;

/// Configuration for the item-kNN model.
#[derive(Debug, Clone, Copy)]
pub struct ItemKnnConfig {
    /// Neighbours retained per item.
    pub k: usize,
    /// Shrinkage term added to the similarity denominator — damps
    /// similarities supported by few co-raters.
    pub shrinkage: f64,
    /// Users with more ratings than this are skipped during co-rating
    /// accumulation (quadratic cost guard; such users carry little signal
    /// per pair anyway).
    pub max_user_degree: usize,
}

impl Default for ItemKnnConfig {
    fn default() -> Self {
        ItemKnnConfig {
            k: 50,
            shrinkage: 10.0,
            max_user_degree: 1_000,
        }
    }
}

/// A fitted item-kNN model: per item, its top-k neighbours with
/// similarities.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ItemKnn {
    /// Flattened neighbour lists: `neighbors[i]` holds `(item, sim)` sorted
    /// by descending similarity.
    neighbors: Vec<Vec<(u32, f64)>>,
    /// Per-item mean rating (for re-centering predictions).
    item_means: Vec<f64>,
    global_mean: f64,
    k: usize,
}

impl ItemKnn {
    /// Fit from a train set.
    pub fn fit(train: &Interactions, cfg: ItemKnnConfig) -> ItemKnn {
        let n_items = train.n_items() as usize;
        let item_means = train.item_means(train.global_mean());
        // Norms of mean-centered item vectors.
        let mut norms = vec![0.0f64; n_items];
        for i in 0..n_items {
            let (_, vals) = train.item_col(ItemId(i as u32));
            let mu = item_means[i];
            norms[i] = vals
                .iter()
                .map(|&v| {
                    let d = v as f64 - mu;
                    d * d
                })
                .sum::<f64>()
                .sqrt();
        }
        // Sparse co-rating dot products, keyed by the (lo, hi) item pair.
        let mut dots: HashMap<u64, f64> = HashMap::new();
        for u in 0..train.n_users() {
            let (items, vals) = train.user_row(UserId(u));
            if items.len() > cfg.max_user_degree {
                continue;
            }
            for a in 0..items.len() {
                let ia = items[a] as usize;
                let da = vals[a] as f64 - item_means[ia];
                if da == 0.0 {
                    continue;
                }
                for b in (a + 1)..items.len() {
                    let ib = items[b] as usize;
                    let db = vals[b] as f64 - item_means[ib];
                    if db == 0.0 {
                        continue;
                    }
                    let key = ((ia as u64) << 32) | ib as u64;
                    *dots.entry(key).or_insert(0.0) += da * db;
                }
            }
        }
        // Assemble shrunk cosine similarities and keep top-k per item.
        let mut neighbors: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n_items];
        for (key, dot) in dots {
            let i = (key >> 32) as usize;
            let j = (key & 0xffff_ffff) as usize;
            let denom = norms[i] * norms[j] + cfg.shrinkage;
            if denom <= 0.0 {
                continue;
            }
            let sim = dot / denom;
            if sim <= 0.0 {
                continue; // negative similarity carries little top-N signal
            }
            neighbors[i].push((j as u32, sim));
            neighbors[j].push((i as u32, sim));
        }
        for list in &mut neighbors {
            list.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            list.truncate(cfg.k);
            // Re-sort by item id for the merge in score_items.
            list.sort_by_key(|&(j, _)| j);
        }
        ItemKnn {
            neighbors,
            item_means,
            global_mean: train.global_mean(),
            k: cfg.k,
        }
    }

    /// The retained neighbour count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Similarity between two items if `j` survived `i`'s top-k truncation.
    pub fn similarity(&self, i: ItemId, j: ItemId) -> Option<f64> {
        self.neighbors[i.idx()]
            .binary_search_by_key(&j.0, |&(n, _)| n)
            .ok()
            .map(|pos| self.neighbors[i.idx()][pos].1)
    }
}

/// Per-request state: kNN scoring needs the user's own ratings, so the
/// recommender borrows the train set.
pub struct ItemKnnRecommender<'a> {
    model: &'a ItemKnn,
    train: &'a Interactions,
}

impl<'a> ItemKnnRecommender<'a> {
    /// Bind a fitted model to its train interactions for scoring.
    pub fn new(model: &'a ItemKnn, train: &'a Interactions) -> ItemKnnRecommender<'a> {
        ItemKnnRecommender { model, train }
    }
}

impl Recommender for ItemKnnRecommender<'_> {
    fn name(&self) -> String {
        format!("ItemKNN{}", self.model.k)
    }

    fn score_items(&self, user: UserId, out: &mut [f64]) {
        // score(u, i) = ī_i + Σ_j sim(i,j)(r_uj − ī_j) / Σ_j |sim(i,j)|
        // over the user's rated items j that are neighbours of i.
        let (items, vals) = self.train.user_row(user);
        // Deviation lookup for the user's rated items.
        let devs: Vec<(u32, f64)> = items
            .iter()
            .zip(vals)
            .map(|(&j, &r)| (j, r as f64 - self.model.item_means[j as usize]))
            .collect();
        for (i, o) in out.iter_mut().enumerate() {
            let neigh = &self.model.neighbors[i];
            if neigh.is_empty() || devs.is_empty() {
                *o = self.model.global_mean - 1.0; // cold: below any rated score
                continue;
            }
            // Both lists are sorted by item id: merge.
            let mut num = 0.0;
            let mut den = 0.0;
            let (mut a, mut b) = (0usize, 0usize);
            while a < neigh.len() && b < devs.len() {
                match neigh[a].0.cmp(&devs[b].0) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        num += neigh[a].1 * devs[b].1;
                        den += neigh[a].1.abs();
                        a += 1;
                        b += 1;
                    }
                }
            }
            *o = if den > 0.0 {
                self.model.item_means[i] + num / den
            } else {
                self.model.global_mean - 1.0
            };
        }
    }

    fn predicts_ratings(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topn::generate_topn_lists;
    use ganc_dataset::{DatasetBuilder, RatingScale};

    /// Two communities with opposite tastes.
    fn blocks() -> Interactions {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        for u in 0..6u32 {
            for i in 0..8u32 {
                let same = (u < 3) == (i < 4);
                let r = if same { 5.0 } else { 1.0 };
                // leave a few holes to predict
                if (u + i) % 5 != 0 {
                    b.push(UserId(u), ItemId(i), r).unwrap();
                }
            }
        }
        b.build().unwrap().interactions()
    }

    #[test]
    fn similar_items_are_neighbors() {
        let m = blocks();
        let knn = ItemKnn::fit(&m, ItemKnnConfig::default());
        // items 0 and 1 are loved/hated by the same users → similar.
        let s_same = knn.similarity(ItemId(0), ItemId(1));
        assert!(s_same.is_some(), "co-liked items must be neighbours");
        assert!(s_same.unwrap() > 0.0);
    }

    #[test]
    fn predictions_follow_community_taste() {
        let m = blocks();
        let knn = ItemKnn::fit(&m, ItemKnnConfig::default());
        let rec = ItemKnnRecommender::new(&knn, &m);
        let mut buf = vec![0.0; m.n_items() as usize];
        rec.score_items(UserId(0), &mut buf);
        // user 0 (community A) should score the missing A item above the
        // missing B item. Holes for u0: (u+i)%5==0 → i=0 (A) and i=5 (B).
        assert!(
            buf[0] > buf[5],
            "in-community {} vs cross-community {}",
            buf[0],
            buf[5]
        );
    }

    #[test]
    fn topn_contract_holds() {
        let m = blocks();
        let knn = ItemKnn::fit(&m, ItemKnnConfig::default());
        let rec = ItemKnnRecommender::new(&knn, &m);
        let lists = generate_topn_lists(&rec, &m, 3, 2);
        for (u, list) in lists.iter().enumerate() {
            for item in list {
                assert!(!m.contains(UserId(u as u32), *item));
            }
        }
    }

    #[test]
    fn k_truncation_limits_neighbors() {
        let m = blocks();
        let knn = ItemKnn::fit(
            &m,
            ItemKnnConfig {
                k: 2,
                ..ItemKnnConfig::default()
            },
        );
        assert!(knn.neighbors.iter().all(|n| n.len() <= 2));
    }

    #[test]
    fn degenerate_data_does_not_panic() {
        // All-identical ratings → zero deviations → no similarities.
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        for u in 0..3u32 {
            for i in 0..3u32 {
                b.push(UserId(u), ItemId(i), 3.0).unwrap();
            }
        }
        let m = b.build().unwrap().interactions();
        let knn = ItemKnn::fit(&m, ItemKnnConfig::default());
        let rec = ItemKnnRecommender::new(&knn, &m);
        let mut buf = vec![0.0; 3];
        rec.score_items(UserId(0), &mut buf);
        assert!(buf.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn heavy_users_are_skipped_by_the_guard() {
        let m = blocks();
        let knn = ItemKnn::fit(
            &m,
            ItemKnnConfig {
                max_user_degree: 0, // skip everyone → no similarities at all
                ..ItemKnnConfig::default()
            },
        );
        assert!(knn.neighbors.iter().all(|n| n.is_empty()));
    }
}
