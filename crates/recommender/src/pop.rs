//! The non-personalized "most popular" recommender (Pop, §III-A).
//!
//! Pop recommends the most-rated unseen items. It exploits the popularity
//! bias of CF data, so it is a surprisingly strong accuracy baseline for
//! ranking ([1], [5] in the paper) while having trivially low coverage and
//! novelty — exactly the trade-off GANC is built to correct.

use crate::Recommender;
use ganc_dataset::{Interactions, UserId};

/// Most-popular recommender: scores every item by its raw train popularity
/// count.
///
/// Scores are deliberately **un-normalized** (the ROADMAP's "normalize
/// lazily per query"): rankings are invariant under the positive affine
/// min–max map, and the GANC accuracy adapters normalize per request
/// anyway, so keeping raw counts makes online popularity refreshes
/// `O(touched items)` ([`MostPopular::bump`]) instead of an `O(|I|)`
/// re-normalization per ingest.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MostPopular {
    scores: Vec<f64>,
}

impl MostPopular {
    /// Fit from a train set: score = `f_i^R` (popularity).
    pub fn fit(train: &Interactions) -> MostPopular {
        MostPopular::from_popularity(&train.item_popularity())
    }

    /// Rebuild from a raw popularity vector `f^R` (one count per item).
    /// The serving path uses this to refresh Pop after ingesting new
    /// interactions without re-walking the train set.
    pub fn from_popularity(popularity: &[u32]) -> MostPopular {
        MostPopular {
            scores: popularity.iter().map(|&f| f as f64).collect(),
        }
    }

    /// Record one more rating of `item` — the `O(1)` serving-ingest
    /// refresh, equivalent to refitting on the bumped popularity vector.
    #[inline]
    pub fn bump(&mut self, item: ganc_dataset::ItemId) {
        self.scores[item.idx()] += 1.0;
    }

    /// The popularity score of one item (its rating count).
    pub fn popularity_score(&self, item: ganc_dataset::ItemId) -> f64 {
        self.scores[item.idx()]
    }
}

impl Recommender for MostPopular {
    fn name(&self) -> String {
        "Pop".into()
    }

    fn score_items(&self, _user: UserId, out: &mut [f64]) {
        out.copy_from_slice(&self.scores);
    }

    fn scores_are_user_independent(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topn::{generate_topn_lists, select_top_n};
    use ganc_dataset::{DatasetBuilder, ItemId, RatingScale};

    fn train() -> Interactions {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        for u in 0..5u32 {
            b.push(UserId(u), ItemId(0), 3.0).unwrap();
        }
        for u in 0..3u32 {
            b.push(UserId(u), ItemId(1), 3.0).unwrap();
        }
        b.push(UserId(0), ItemId(2), 3.0).unwrap();
        b.build().unwrap().interactions()
    }

    #[test]
    fn scores_follow_popularity() {
        let rec = MostPopular::fit(&train());
        let mut buf = vec![0.0; 3];
        rec.score_items(UserId(4), &mut buf);
        assert!(buf[0] > buf[1]);
        assert!(buf[1] > buf[2]);
        assert_eq!(buf, vec![5.0, 3.0, 1.0], "raw counts, no normalization");
    }

    #[test]
    fn bump_matches_refit_on_bumped_counts() {
        let m = train();
        let mut counts = m.item_popularity();
        let mut rec = MostPopular::fit(&m);
        rec.bump(ItemId(2));
        rec.bump(ItemId(2));
        counts[2] += 2;
        assert_eq!(rec, MostPopular::from_popularity(&counts));
    }

    #[test]
    fn same_scores_for_every_user() {
        let rec = MostPopular::fit(&train());
        let mut a = vec![0.0; 3];
        let mut b = vec![0.0; 3];
        rec.score_items(UserId(0), &mut a);
        rec.score_items(UserId(4), &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn recommends_most_popular_unseen() {
        let m = train();
        let rec = MostPopular::fit(&m);
        let lists = generate_topn_lists(&rec, &m, 2, 1);
        // user 4 saw only item 0 → gets items 1 then 2.
        assert_eq!(lists[4], vec![ItemId(1), ItemId(2)]);
        // user 0 saw everything → empty list.
        assert!(lists[0].is_empty());
    }

    #[test]
    fn selection_is_popularity_ordered() {
        let m = train();
        let rec = MostPopular::fit(&m);
        let mut buf = vec![0.0; 3];
        rec.score_items(UserId(4), &mut buf);
        let top = select_top_n(&buf, 0..3, 3);
        assert_eq!(top, vec![ItemId(0), ItemId(1), ItemId(2)]);
    }
}
