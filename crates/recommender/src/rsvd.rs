//! Regularized SVD (RSVD): L2-regularized matrix factorization trained with
//! stochastic gradient descent — the LIBMF stand-in of §IV-A / Appendix A.
//!
//! The model is `r̂_ui = μ + b_u + b_i + p_u·q_i`, minimizing squared error
//! with L2 regularization on all learned parameters. Biases can be disabled
//! for the pure-MF variant; non-negative clamping gives RSVDN (which the
//! paper found indistinguishable from RSVD, Appendix A).

use crate::Recommender;
use ganc_dataset::{Interactions, ItemId, UserId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Hyper-parameters of an RSVD training run (the Table V grid axes).
#[derive(Debug, Clone, Copy)]
pub struct RsvdConfig {
    /// Latent dimensionality `g`.
    pub factors: usize,
    /// SGD learning rate `η`.
    pub learning_rate: f64,
    /// L2 regularization coefficient `λ`.
    pub reg: f64,
    /// Number of SGD passes over the train ratings.
    pub epochs: usize,
    /// Learn the `μ + b_u + b_i` bias terms.
    pub use_biases: bool,
    /// Clamp factors at zero after each update (RSVDN).
    pub non_negative: bool,
    /// RNG seed (initialization + shuffling).
    pub seed: u64,
}

impl Default for RsvdConfig {
    fn default() -> Self {
        RsvdConfig {
            factors: 100,
            learning_rate: 0.01,
            reg: 0.05,
            epochs: 20,
            use_biases: true,
            non_negative: false,
            seed: 0x5E5D_0001,
        }
    }
}

/// A trained RSVD model.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Rsvd {
    factors: usize,
    global_mean: f64,
    user_bias: Vec<f64>,
    item_bias: Vec<f64>,
    /// `n_users × factors`, row-major.
    p: Vec<f64>,
    /// `n_items × factors`, row-major.
    q: Vec<f64>,
    name: String,
}

impl Rsvd {
    /// Train on the given interactions.
    pub fn train(train: &Interactions, cfg: RsvdConfig) -> Rsvd {
        Self::train_with_validation(train, None, cfg).0
    }

    /// Train, optionally tracking RMSE on a held-out set after each epoch
    /// (used by the Table V hyper-parameter study).
    pub fn train_with_validation(
        train: &Interactions,
        validation: Option<&Interactions>,
        cfg: RsvdConfig,
    ) -> (Rsvd, Vec<f64>) {
        let n_users = train.n_users() as usize;
        let n_items = train.n_items() as usize;
        let k = cfg.factors.max(1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // Standard small-random init, scaled so the initial dot product has
        // magnitude well below one rating unit.
        let scale = 0.1 / (k as f64).sqrt();
        let init = |rng: &mut StdRng, len: usize| -> Vec<f64> {
            (0..len)
                .map(|_| {
                    if cfg.non_negative {
                        // RSVDN starts inside the feasible orthant so items
                        // untouched by SGD (e.g. test-only items) stay valid.
                        rng.random::<f64>() * scale
                    } else {
                        (rng.random::<f64>() - 0.5) * 2.0 * scale
                    }
                })
                .collect()
        };
        let mut model = Rsvd {
            factors: k,
            global_mean: if cfg.use_biases {
                train.global_mean()
            } else {
                0.0
            },
            user_bias: vec![0.0; n_users],
            item_bias: vec![0.0; n_items],
            p: init(&mut rng, n_users * k),
            q: init(&mut rng, n_items * k),
            name: format!("RSVD{}", if cfg.non_negative { "N" } else { "" }),
        };
        // Materialize triplets once; shuffle an index array per epoch.
        let triplets: Vec<(u32, u32, f32)> = train.iter().map(|(u, i, r)| (u.0, i.0, r)).collect();
        let mut order: Vec<u32> = (0..triplets.len() as u32).collect();
        let lr = cfg.learning_rate;
        let reg = cfg.reg;
        let mut curve = Vec::new();
        for _epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for &t in &order {
                let (u, i, r) = triplets[t as usize];
                let (u, i) = (u as usize, i as usize);
                let pu = u * k;
                let qi = i * k;
                let mut dot = 0.0;
                for f in 0..k {
                    dot += model.p[pu + f] * model.q[qi + f];
                }
                let pred = model.global_mean + model.user_bias[u] + model.item_bias[i] + dot;
                let err = r as f64 - pred;
                if cfg.use_biases {
                    model.user_bias[u] += lr * (err - reg * model.user_bias[u]);
                    model.item_bias[i] += lr * (err - reg * model.item_bias[i]);
                }
                for f in 0..k {
                    let pf = model.p[pu + f];
                    let qf = model.q[qi + f];
                    let mut new_p = pf + lr * (err * qf - reg * pf);
                    let mut new_q = qf + lr * (err * pf - reg * qf);
                    if cfg.non_negative {
                        new_p = new_p.max(0.0);
                        new_q = new_q.max(0.0);
                    }
                    model.p[pu + f] = new_p;
                    model.q[qi + f] = new_q;
                }
            }
            if let Some(val) = validation {
                curve.push(ganc_metrics_free_rmse(val, &model));
            }
        }
        (model, curve)
    }

    /// Predicted rating `r̂_ui` (unclamped).
    #[inline]
    pub fn predict(&self, u: UserId, i: ItemId) -> f64 {
        let k = self.factors;
        let pu = u.idx() * k;
        let qi = i.idx() * k;
        let mut dot = 0.0;
        for f in 0..k {
            dot += self.p[pu + f] * self.q[qi + f];
        }
        self.global_mean + self.user_bias[u.idx()] + self.item_bias[i.idx()] + dot
    }

    /// RMSE over a held-out set.
    pub fn rmse(&self, held_out: &Interactions) -> f64 {
        ganc_metrics_free_rmse(held_out, self)
    }

    /// Latent dimensionality.
    pub fn factors(&self) -> usize {
        self.factors
    }
}

/// Local RMSE (this crate cannot depend on `ganc-metrics`, which sits next
/// to it in the dependency DAG).
fn ganc_metrics_free_rmse(held_out: &Interactions, model: &Rsvd) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for (u, i, r) in held_out.iter() {
        let e = model.predict(u, i) - r as f64;
        sum += e * e;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        (sum / count as f64).sqrt()
    }
}

impl Recommender for Rsvd {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn score_items(&self, user: UserId, out: &mut [f64]) {
        let k = self.factors;
        let pu = &self.p[user.idx() * k..(user.idx() + 1) * k];
        let base = self.global_mean + self.user_bias[user.idx()];
        for (i, o) in out.iter_mut().enumerate() {
            let qi = &self.q[i * k..(i + 1) * k];
            let dot: f64 = pu.iter().zip(qi).map(|(a, b)| a * b).sum();
            *o = base + self.item_bias[i] + dot;
        }
    }

    fn predicts_ratings(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganc_dataset::synth::DatasetProfile;

    fn quick_cfg() -> RsvdConfig {
        RsvdConfig {
            factors: 8,
            learning_rate: 0.02,
            reg: 0.05,
            epochs: 15,
            use_biases: true,
            non_negative: false,
            seed: 42,
        }
    }

    #[test]
    fn learns_structure_beats_global_mean() {
        let data = DatasetProfile::small().generate(1);
        let split = data.split_per_user(0.5, 2).unwrap();
        let model = Rsvd::train(&split.train, quick_cfg());
        let mu = split.train.global_mean();
        let baseline = {
            let mut sum = 0.0;
            let mut n = 0;
            for (_, _, r) in split.test.iter() {
                sum += (r as f64 - mu) * (r as f64 - mu);
                n += 1;
            }
            (sum / n as f64).sqrt()
        };
        let rmse = model.rmse(&split.test);
        assert!(
            rmse < baseline,
            "rmse {rmse:.4} should beat mean-predictor {baseline:.4}"
        );
    }

    #[test]
    fn training_is_deterministic_in_seed() {
        let data = DatasetProfile::tiny().generate(1);
        let split = data.split_per_user(0.5, 2).unwrap();
        let a = Rsvd::train(&split.train, quick_cfg());
        let b = Rsvd::train(&split.train, quick_cfg());
        assert_eq!(
            a.predict(UserId(0), ItemId(0)),
            b.predict(UserId(0), ItemId(0))
        );
    }

    #[test]
    fn validation_curve_decreases_overall() {
        let data = DatasetProfile::small().generate(5);
        let split = data.split_per_user(0.5, 2).unwrap();
        let (sub, val) = split.validation_split(0.8, 3).unwrap();
        let (_, curve) = Rsvd::train_with_validation(&sub, Some(&val), quick_cfg());
        assert_eq!(curve.len(), quick_cfg().epochs);
        let best = curve.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            best < curve[0],
            "validation RMSE should improve at some epoch: {curve:?}"
        );
    }

    #[test]
    fn nonnegative_variant_clamps_factors() {
        let data = DatasetProfile::tiny().generate(3);
        let split = data.split_per_user(0.5, 2).unwrap();
        let cfg = RsvdConfig {
            non_negative: true,
            ..quick_cfg()
        };
        let model = Rsvd::train(&split.train, cfg);
        assert!(model.p.iter().all(|&x| x >= 0.0));
        assert!(model.q.iter().all(|&x| x >= 0.0));
        assert_eq!(Recommender::name(&model), "RSVDN");
    }

    #[test]
    fn score_items_matches_predict() {
        let data = DatasetProfile::tiny().generate(7);
        let split = data.split_per_user(0.5, 2).unwrap();
        let model = Rsvd::train(&split.train, quick_cfg());
        let mut buf = vec![0.0; split.train.n_items() as usize];
        model.score_items(UserId(3), &mut buf);
        for (i, &s) in buf.iter().enumerate() {
            assert!((s - model.predict(UserId(3), ItemId(i as u32))).abs() < 1e-12);
        }
    }

    #[test]
    fn biasless_model_centers_at_zero() {
        let data = DatasetProfile::tiny().generate(9);
        let split = data.split_per_user(0.5, 2).unwrap();
        let cfg = RsvdConfig {
            use_biases: false,
            epochs: 1,
            ..quick_cfg()
        };
        let model = Rsvd::train(&split.train, cfg);
        assert_eq!(model.global_mean, 0.0);
        assert!(model.user_bias.iter().all(|&b| b == 0.0));
    }
}
