//! Top-N selection: deterministic partial selection from score buffers and
//! parallel list generation for a whole user population.

use crate::Recommender;
use ganc_dataset::{Interactions, ItemId, UserId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A `(score, item)` pair with a total order: higher score wins, ties break
/// toward the smaller item id (deterministic across runs and platforms).
#[derive(Debug, Clone, Copy, PartialEq)]
struct ScoredItem {
    score: f64,
    item: u32,
}

impl Eq for ScoredItem {}

impl Ord for ScoredItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.item.cmp(&self.item))
    }
}

impl PartialOrd for ScoredItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded top-N selector over a stream of already-scored candidates —
/// the single selection semantics every list in the workspace goes
/// through: higher score wins, ties break toward the smaller item id.
///
/// Min-heap of the n best seen so far (`Reverse` turns `BinaryHeap`'s
/// max-heap into a min-heap on our total order), so offering a candidate is
/// `O(1)` when it loses (the common case) and `O(log n)` when it enters.
#[derive(Debug)]
pub struct TopNCollector {
    heap: BinaryHeap<std::cmp::Reverse<ScoredItem>>,
    n: usize,
    /// Cached score of the current heap minimum once the list is full:
    /// the hot-loop reject is then a single `f64` compare instead of a
    /// heap peek and a full tie-breaking comparison. `NEG_INFINITY` while
    /// filling (NaN-safe: `score < NaN` and `NaN < thresh` are both false,
    /// which routes any NaN through the exact comparison path).
    thresh: f64,
}

impl TopNCollector {
    /// A collector for the `n` best candidates.
    pub fn new(n: usize) -> TopNCollector {
        TopNCollector {
            heap: BinaryHeap::with_capacity(n + 1),
            n,
            thresh: f64::NEG_INFINITY,
        }
    }

    #[inline]
    fn refresh_thresh(&mut self) {
        self.thresh = self
            .heap
            .peek()
            .map_or(f64::NEG_INFINITY, |min| min.0.score);
    }

    /// Offer one scored candidate.
    #[inline]
    pub fn offer(&mut self, item: u32, score: f64) {
        if self.heap.len() >= self.n {
            if score < self.thresh {
                return;
            }
            let cand = ScoredItem { score, item };
            if let Some(min) = self.heap.peek() {
                if cand > min.0 {
                    self.heap.pop();
                    self.heap.push(std::cmp::Reverse(cand));
                    self.refresh_thresh();
                }
            }
        } else {
            self.heap
                .push(std::cmp::Reverse(ScoredItem { score, item }));
            if self.heap.len() == self.n {
                self.refresh_thresh();
            }
        }
    }

    /// The current worst score that still makes the list, if the list is
    /// already full.
    #[inline]
    pub fn threshold(&self) -> Option<f64> {
        if self.heap.len() < self.n {
            None
        } else {
            self.heap.peek().map(|r| r.0.score)
        }
    }

    /// The cached heap-minimum score (`NEG_INFINITY` while the list is
    /// filling): callers with an upper bound on future scores use it to
    /// skip candidates that cannot enter. A candidate whose score is
    /// *strictly below* this floor always loses; one exactly at the floor
    /// loses unless its item id wins the tie.
    #[inline]
    pub fn current_floor(&self) -> f64 {
        self.thresh
    }

    /// Finish: items in descending score order.
    pub fn finish(self) -> Vec<ItemId> {
        let mut out: Vec<ScoredItem> = self.heap.into_iter().map(|r| r.0).collect();
        out.sort_unstable_by(|a, b| b.cmp(a));
        out.into_iter().map(|s| ItemId(s.item)).collect()
    }
}

/// Select the `n` best of a stream of already-scored `(item, score)`
/// candidates. Returns items in descending score order (ties toward the
/// smaller item id).
///
/// This is the fused-scoring entry point: callers compute each candidate's
/// score on the fly (e.g. `(1−θ)a + θc`) and stream it straight into the
/// bounded min-heap, so no dense score buffer has to exist. Cost is
/// `O(|candidates| · log n)`.
pub fn select_top_n_scored(scored: impl IntoIterator<Item = (u32, f64)>, n: usize) -> Vec<ItemId> {
    let mut col = TopNCollector::new(n);
    for (item, score) in scored {
        col.offer(item, score);
    }
    col.finish()
}

/// Select the `n` best items from a score buffer, restricted to candidate
/// ids yielded by `candidates`. Returns items in descending score order.
///
/// Uses a bounded min-heap, so the cost is `O(|candidates| · log n)`.
pub fn select_top_n(
    scores: &[f64],
    candidates: impl IntoIterator<Item = u32>,
    n: usize,
) -> Vec<ItemId> {
    select_top_n_scored(
        candidates
            .into_iter()
            .map(|item| (item, scores[item as usize])),
        n,
    )
}

/// Candidate iterator for the paper's main protocol: all train items the
/// user has not rated (`I^R \ I_u^R`).
///
/// `in_train` is the item mask from `ganc_metrics::protocol::train_item_mask`
/// (recomputed here to avoid a cyclic dependency).
pub fn unseen_train_candidates<'a>(
    train: &'a Interactions,
    in_train: &'a [bool],
    u: UserId,
) -> impl Iterator<Item = u32> + 'a {
    let (seen, _) = train.user_row(u);
    let mut seen_iter = seen.iter().copied().peekable();
    (0..train.n_items()).filter(move |&i| {
        if seen_iter.peek() == Some(&i) {
            seen_iter.next();
            return false;
        }
        in_train[i as usize]
    })
}

/// Mask of items with at least one train rating.
pub fn train_item_mask(train: &Interactions) -> Vec<bool> {
    train.item_popularity().iter().map(|&f| f > 0).collect()
}

/// The sorted ids of items with no train rating — the complement of
/// [`train_item_mask`], precomputed once so the fused hot loop can treat
/// "not in train" as one more exclusion list instead of a per-item branch.
pub fn non_train_items(in_train: &[bool]) -> Vec<u32> {
    in_train
        .iter()
        .enumerate()
        .filter(|(_, &t)| !t)
        .map(|(i, _)| i as u32)
        .collect()
}

/// Visit the user's candidate id space as maximal `[lo, hi)` runs that
/// contain no train-seen, no `extra_seen`, and no `non_train` ids (all
/// sorted). Every id inside a run is a true candidate.
///
/// Equivalent to [`unseen_train_candidates`] filtered by `extra_seen`, but
/// shaped for the fused hot loop: the exclusion merge runs once per
/// excluded id instead of once per catalog item, so the inner loops are
/// branch-free range scans.
pub fn for_each_candidate_run(
    train: &Interactions,
    user: UserId,
    extra_seen: &[u32],
    non_train: &[u32],
    mut run: impl FnMut(u32, u32),
) {
    let (seen, _) = train.user_row(user);
    let n_items = train.n_items();
    let (mut ai, mut bi, mut ci) = (0usize, 0usize, 0usize);
    let mut lo = 0u32;
    loop {
        let mut next: Option<u32> = None;
        for head in [
            seen.get(ai).copied(),
            extra_seen.get(bi).copied(),
            non_train.get(ci).copied(),
        ]
        .into_iter()
        .flatten()
        {
            next = Some(next.map_or(head, |n| n.min(head)));
        }
        match next {
            Some(x) if x < n_items => {
                if lo < x {
                    run(lo, x);
                }
                while seen.get(ai) == Some(&x) {
                    ai += 1;
                }
                while extra_seen.get(bi) == Some(&x) {
                    bi += 1;
                }
                while non_train.get(ci) == Some(&x) {
                    ci += 1;
                }
                lo = x + 1;
            }
            _ => {
                if lo < n_items {
                    run(lo, n_items);
                }
                return;
            }
        }
    }
}

/// Generate top-N lists for every user under the all-unrated protocol,
/// in parallel across `threads` OS threads.
///
/// Each thread owns one score buffer and processes a contiguous user range;
/// results are written into disjoint slices of the output, so no
/// synchronization is needed beyond the scope join.
pub fn generate_topn_lists(
    rec: &dyn Recommender,
    train: &Interactions,
    n: usize,
    threads: usize,
) -> Vec<Vec<ItemId>> {
    let n_users = train.n_users() as usize;
    let n_items = train.n_items() as usize;
    let in_train = train_item_mask(train);
    let mut lists: Vec<Vec<ItemId>> = vec![Vec::new(); n_users];
    let threads = threads.max(1).min(n_users.max(1));
    let chunk = n_users.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, out_chunk) in lists.chunks_mut(chunk).enumerate() {
            let in_train = &in_train;
            scope.spawn(move || {
                let mut scores = vec![0.0f64; n_items];
                let base = t * chunk;
                for (off, slot) in out_chunk.iter_mut().enumerate() {
                    let u = UserId((base + off) as u32);
                    rec.score_items(u, &mut scores);
                    *slot = select_top_n(&scores, unseen_train_candidates(train, in_train, u), n);
                }
            });
        }
    });
    lists
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganc_dataset::{DatasetBuilder, RatingScale};

    #[test]
    fn select_picks_best_in_order() {
        let scores = vec![0.1, 0.9, 0.5, 0.7];
        let top = select_top_n(&scores, 0..4, 2);
        assert_eq!(top, vec![ItemId(1), ItemId(3)]);
    }

    #[test]
    fn select_breaks_ties_by_smaller_id() {
        let scores = vec![0.5, 0.5, 0.5, 0.9];
        let top = select_top_n(&scores, 0..4, 3);
        assert_eq!(top, vec![ItemId(3), ItemId(0), ItemId(1)]);
    }

    #[test]
    fn select_respects_candidate_filter() {
        let scores = vec![0.9, 0.8, 0.7];
        let top = select_top_n(&scores, [1u32, 2], 2);
        assert_eq!(top, vec![ItemId(1), ItemId(2)]);
    }

    #[test]
    fn scored_stream_matches_buffered_selection() {
        let scores = vec![0.4, 0.9, 0.9, 0.1, 0.7];
        let buffered = select_top_n(&scores, 0..5, 3);
        let streamed = select_top_n_scored((0..5u32).map(|i| (i, scores[i as usize])), 3);
        assert_eq!(buffered, streamed);
        assert!(select_top_n_scored(std::iter::empty(), 0).is_empty());
    }

    #[test]
    fn select_handles_small_pools() {
        let scores = vec![0.3, 0.2];
        let top = select_top_n(&scores, 0..2, 10);
        assert_eq!(top.len(), 2);
        assert!(select_top_n(&scores, std::iter::empty(), 3).is_empty());
        assert!(select_top_n(&scores, 0..2, 0).is_empty());
    }

    fn small_train() -> Interactions {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        b.push(UserId(0), ItemId(0), 5.0).unwrap();
        b.push(UserId(1), ItemId(1), 5.0).unwrap();
        b.push(UserId(1), ItemId(2), 5.0).unwrap();
        b.push(UserId(2), ItemId(2), 5.0).unwrap();
        b.build().unwrap().interactions()
    }

    #[test]
    fn unseen_candidates_excludes_rated() {
        let m = small_train();
        let mask = train_item_mask(&m);
        let c: Vec<u32> = unseen_train_candidates(&m, &mask, UserId(1)).collect();
        assert_eq!(c, vec![0]);
        let c0: Vec<u32> = unseen_train_candidates(&m, &mask, UserId(0)).collect();
        assert_eq!(c0, vec![1, 2]);
    }

    struct ById;
    impl Recommender for ById {
        fn name(&self) -> String {
            "by-id".into()
        }
        fn score_items(&self, _u: UserId, out: &mut [f64]) {
            for (k, o) in out.iter_mut().enumerate() {
                *o = k as f64;
            }
        }
    }

    #[test]
    fn parallel_generation_matches_serial() {
        let m = small_train();
        let serial = generate_topn_lists(&ById, &m, 2, 1);
        let parallel = generate_topn_lists(&ById, &m, 2, 4);
        assert_eq!(serial, parallel);
        // user 0 has candidates {1,2}, by-id scoring prefers 2.
        assert_eq!(serial[0], vec![ItemId(2), ItemId(1)]);
    }

    #[test]
    fn generated_lists_respect_contract() {
        let m = small_train();
        let lists = generate_topn_lists(&ById, &m, 3, 2);
        for (u, list) in lists.iter().enumerate() {
            for item in list {
                assert!(!m.contains(UserId(u as u32), *item));
            }
            let mut ids: Vec<u32> = list.iter().map(|i| i.0).collect();
            ids.dedup();
            assert_eq!(ids.len(), list.len());
        }
    }
}
