//! PureSVD (Cremonesi et al. [1]): truncated SVD of the **zero-imputed**
//! rating matrix, computed with the randomized solver of `ganc-linalg`
//! directly on the sparse CSR — the `sparsesvd` stand-in of §IV-A.
//!
//! Missing ratings are treated as zeros, so the model learns *association*
//! strength rather than rating value; it is known for strong ranking
//! accuracy and (at high rank) better novelty than rating-prediction MF.
//! The paper's two configurations are PSVD10 (`k = 10`) and PSVD100
//! (`k = 100`).

use crate::Recommender;
use ganc_dataset::{Interactions, ItemId, UserId};
use ganc_linalg::{randomized_svd, DMat, LinOp, SvdConfig};

/// Sparse rating matrix viewed as a linear operator (no densification).
struct CsrOp<'a> {
    m: &'a Interactions,
}

impl LinOp for CsrOp<'_> {
    fn rows(&self) -> usize {
        self.m.n_users() as usize
    }

    fn cols(&self) -> usize {
        self.m.n_items() as usize
    }

    fn apply(&self, x: &DMat) -> DMat {
        let k = x.cols();
        let mut out = DMat::zeros(self.rows(), k);
        for u in 0..self.m.n_users() {
            let (items, vals) = self.m.user_row(UserId(u));
            let row = out.row_mut(u as usize);
            for (&i, &r) in items.iter().zip(vals) {
                let xr = x.row(i as usize);
                for (o, &xv) in row.iter_mut().zip(xr) {
                    *o += r as f64 * xv;
                }
            }
        }
        out
    }

    fn apply_t(&self, x: &DMat) -> DMat {
        let k = x.cols();
        let mut out = DMat::zeros(self.cols(), k);
        for u in 0..self.m.n_users() {
            let (items, vals) = self.m.user_row(UserId(u));
            let xr = x.row(u as usize);
            for (&i, &r) in items.iter().zip(vals) {
                let orow = out.row_mut(i as usize);
                for (o, &xv) in orow.iter_mut().zip(xr) {
                    *o += r as f64 * xv;
                }
            }
        }
        out
    }
}

/// A fitted PureSVD model: `score(u, i) = (U_k Σ_k)_u · (V_k)_i`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Psvd {
    /// `n_users × k` — left singular vectors scaled by Σ.
    user_factors: DMat,
    /// `n_items × k` — right singular vectors.
    item_factors: DMat,
    rank: usize,
}

impl Psvd {
    /// Fit a rank-`k` PureSVD on the train interactions.
    pub fn train(train: &Interactions, rank: usize, seed: u64) -> Psvd {
        let op = CsrOp { m: train };
        let mut cfg = SvdConfig::with_rank(rank);
        cfg.seed = seed;
        let svd = randomized_svd(&op, cfg);
        let mut user_factors = svd.u;
        user_factors.scale_cols(&svd.s);
        Psvd {
            user_factors,
            item_factors: svd.v,
            rank: svd.s.len(),
        }
    }

    /// The truncation rank actually used.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Association score between a user and an item.
    #[inline]
    pub fn score(&self, u: UserId, i: ItemId) -> f64 {
        ganc_linalg::dmat::dot(
            self.user_factors.row(u.idx()),
            self.item_factors.row(i.idx()),
        )
    }
}

impl Recommender for Psvd {
    fn name(&self) -> String {
        format!("PSVD{}", self.rank)
    }

    fn score_items(&self, user: UserId, out: &mut [f64]) {
        let pu = self.user_factors.row(user.idx());
        for (i, o) in out.iter_mut().enumerate() {
            *o = ganc_linalg::dmat::dot(pu, self.item_factors.row(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topn::{generate_topn_lists, train_item_mask, unseen_train_candidates};
    use ganc_dataset::synth::DatasetProfile;
    use ganc_dataset::{DatasetBuilder, RatingScale};

    #[test]
    fn reconstructs_block_structure() {
        // Two disjoint user/item communities: PSVD must score in-community
        // items above cross-community ones.
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        for u in 0..8u32 {
            for i in 0..8u32 {
                let same = (u < 4) == (i < 4);
                if same && (u + i) % 2 == 0 {
                    b.push(UserId(u), ItemId(i), 5.0).unwrap();
                }
            }
        }
        let m = b.build().unwrap().interactions();
        let model = Psvd::train(&m, 2, 1);
        // user 0 (community A): unseen item 2 (A) vs item 5 (B)
        assert!(
            model.score(UserId(0), ItemId(2)) > model.score(UserId(0), ItemId(5)),
            "in-community association should dominate"
        );
    }

    #[test]
    fn rank_is_clamped_to_matrix_size() {
        let data = DatasetProfile::tiny().generate(1);
        let m = data.interactions();
        let model = Psvd::train(&m, 1000, 1);
        assert!(model.rank() <= m.n_users().min(m.n_items()) as usize);
    }

    #[test]
    fn name_includes_rank() {
        let data = DatasetProfile::tiny().generate(2);
        let m = data.interactions();
        let model = Psvd::train(&m, 10, 1);
        assert_eq!(Recommender::name(&model), "PSVD10");
    }

    #[test]
    fn linop_products_agree_with_dense() {
        let data = DatasetProfile::tiny().generate(3);
        let m = data.interactions();
        let op = CsrOp { m: &m };
        let dense = DMat::from_fn(m.n_users() as usize, m.n_items() as usize, |u, i| {
            m.get(UserId(u as u32), ItemId(i as u32)).unwrap_or(0.0) as f64
        });
        let x = DMat::from_fn(m.n_items() as usize, 3, |r, c| ((r + c) as f64).sin());
        let y = DMat::from_fn(m.n_users() as usize, 3, |r, c| ((r * c) as f64).cos());
        assert!(op.apply(&x).max_abs_diff(&dense.matmul(&x)) < 1e-9);
        assert!(op.apply_t(&y).max_abs_diff(&dense.t_matmul(&y)) < 1e-9);
    }

    #[test]
    fn produces_valid_topn_lists() {
        let data = DatasetProfile::tiny().generate(4);
        let split = data.split_per_user(0.5, 1).unwrap();
        let model = Psvd::train(&split.train, 5, 2);
        let lists = generate_topn_lists(&model, &split.train, 5, 2);
        let mask = train_item_mask(&split.train);
        for (u, list) in lists.iter().enumerate() {
            let uid = UserId(u as u32);
            let cands: Vec<u32> = unseen_train_candidates(&split.train, &mask, uid).collect();
            assert_eq!(list.len(), 5.min(cands.len()));
        }
    }
}
