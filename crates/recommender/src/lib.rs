//! # ganc-recommender
//!
//! The base ("accuracy") recommenders of the paper (§III-A, §IV-A), built
//! from scratch:
//!
//! | model | paper role | module |
//! |-------|-----------|--------|
//! | [`pop::MostPopular`] | non-personalized accuracy champion | `pop` |
//! | [`random::RandomRec`] | coverage champion / control | `random` |
//! | [`item_avg::ItemAvg`] | average-rating baseline (RBT's Avg criterion) | `item_avg` |
//! | [`rsvd::Rsvd`] | Regularized SVD — SGD matrix factorization (LIBMF stand-in) | `rsvd` |
//! | [`psvd::Psvd`] | PureSVD via randomized truncated SVD (PSVD10/PSVD100) | `psvd` |
//! | [`rankmf::RankMf`] | pairwise ranking MF (CoFiRank/CofiR100 stand-in) | `rankmf` |
//! | [`knn::ItemKnn`] | item-based kNN (§VI neighbourhood models; library extension) | `knn` |
//!
//! Every model implements [`Recommender`]: it fills a dense per-item score
//! buffer for one user, and the [`topn`] module turns score buffers into
//! top-N lists under a candidate mask (protocol handling lives in
//! `ganc-metrics`; parallel list generation lives here).

pub mod item_avg;
pub mod knn;
pub mod pop;
pub mod psvd;
pub mod random;
pub mod rankmf;
pub mod rsvd;
pub mod topn;

use ganc_dataset::UserId;

/// A top-N scoring model: fills one score per item for a given user.
///
/// Scores are *unnormalized* — only their per-user ordering matters for
/// ranking; GANC's accuracy adapter normalizes them to `[0, 1]` per user
/// (§III-A).
pub trait Recommender: Send + Sync {
    /// Human-readable model name used in experiment tables (e.g.
    /// `"PSVD100"`).
    fn name(&self) -> String;

    /// Write a preference score for every item into `out`
    /// (`out.len() == n_items`). Higher means better.
    fn score_items(&self, user: UserId, out: &mut [f64]);

    /// Whether scores are comparable to ratings on the dataset scale
    /// (true for rating-prediction models like RSVD; re-rankers like RBT
    /// need this to apply rating thresholds).
    fn predicts_ratings(&self) -> bool {
        false
    }

    /// Whether [`Recommender::score_items`] ignores the user (Pop,
    /// ItemAvg). Serving engines exploit this to compute the per-user
    /// normalized accuracy vector once per model version instead of once
    /// per request.
    fn scores_are_user_independent(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake;
    impl Recommender for Fake {
        fn name(&self) -> String {
            "fake".into()
        }
        fn score_items(&self, _u: UserId, out: &mut [f64]) {
            for (k, o) in out.iter_mut().enumerate() {
                *o = k as f64;
            }
        }
    }

    #[test]
    fn trait_object_is_usable() {
        let rec: Box<dyn Recommender> = Box::new(Fake);
        let mut buf = vec![0.0; 3];
        rec.score_items(UserId(0), &mut buf);
        assert_eq!(buf, vec![0.0, 1.0, 2.0]);
        assert!(!rec.predicts_ratings());
    }
}
