//! RankMF: pairwise ranking matrix factorization (BPR-style SGD).
//!
//! Stand-in for CoFiRank/CofiR100 (§IV-A): the evaluation needs a
//! *ranking-loss* latent-factor baseline, distinct from the squared-error
//! RSVD. RankMF maximizes `σ(p_u·q_i − p_u·q_j)` over sampled pairs of a
//! rated item `i` and an unrated item `j` (Rendle et al.'s BPR objective) —
//! like CofiR100 it optimizes list order directly rather than rating values.
//! The substitution is documented in DESIGN.md §2.

use crate::Recommender;
use ganc_dataset::{Interactions, ItemId, UserId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Hyper-parameters for RankMF training.
#[derive(Debug, Clone, Copy)]
pub struct RankMfConfig {
    /// Latent dimensionality (100 mirrors CofiR100).
    pub factors: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// L2 regularization on factors.
    pub reg: f64,
    /// Passes over the positive interactions (one negative sampled per
    /// positive per pass).
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RankMfConfig {
    fn default() -> Self {
        RankMfConfig {
            factors: 100,
            learning_rate: 0.05,
            reg: 0.01,
            epochs: 10,
            seed: 0x000B_A5ED,
        }
    }
}

/// A trained pairwise ranking MF model.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RankMf {
    factors: usize,
    /// `n_users × factors`.
    p: Vec<f64>,
    /// `n_items × factors`.
    q: Vec<f64>,
}

impl RankMf {
    /// Train with BPR sampling: for every `(u, i)` positive, draw an
    /// unrated `j` uniformly and take one gradient step on the pair.
    pub fn train(train: &Interactions, cfg: RankMfConfig) -> RankMf {
        let n_users = train.n_users() as usize;
        let n_items = train.n_items() as usize;
        let k = cfg.factors.max(1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let scale = 0.1 / (k as f64).sqrt();
        let mut p: Vec<f64> = (0..n_users * k)
            .map(|_| (rng.random::<f64>() - 0.5) * 2.0 * scale)
            .collect();
        let mut q: Vec<f64> = (0..n_items * k)
            .map(|_| (rng.random::<f64>() - 0.5) * 2.0 * scale)
            .collect();
        let positives: Vec<(u32, u32)> = train.iter().map(|(u, i, _)| (u.0, i.0)).collect();
        let mut order: Vec<u32> = (0..positives.len() as u32).collect();
        let lr = cfg.learning_rate;
        let reg = cfg.reg;
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for &t in &order {
                let (u, i) = positives[t as usize];
                // Negative sampling with a bounded retry loop; users who
                // rated (almost) everything just skip the pair.
                let mut j = rng.random_range(0..n_items as u32);
                let mut tries = 0;
                while train.contains(UserId(u), ItemId(j)) {
                    j = rng.random_range(0..n_items as u32);
                    tries += 1;
                    if tries > 32 {
                        break;
                    }
                }
                if tries > 32 {
                    continue;
                }
                let (u, i, j) = (u as usize, i as usize, j as usize);
                let pu = u * k;
                let qi = i * k;
                let qj = j * k;
                let mut x = 0.0;
                for f in 0..k {
                    x += p[pu + f] * (q[qi + f] - q[qj + f]);
                }
                // dσ/dx of the BPR log-likelihood: σ(-x)
                let g = 1.0 / (1.0 + x.exp());
                for f in 0..k {
                    let puf = p[pu + f];
                    let qif = q[qi + f];
                    let qjf = q[qj + f];
                    p[pu + f] += lr * (g * (qif - qjf) - reg * puf);
                    q[qi + f] += lr * (g * puf - reg * qif);
                    q[qj + f] += lr * (-g * puf - reg * qjf);
                }
            }
        }
        RankMf { factors: k, p, q }
    }

    /// Ranking score (not a rating).
    #[inline]
    pub fn score(&self, u: UserId, i: ItemId) -> f64 {
        let k = self.factors;
        let pu = &self.p[u.idx() * k..(u.idx() + 1) * k];
        let qi = &self.q[i.idx() * k..(i.idx() + 1) * k];
        pu.iter().zip(qi).map(|(a, b)| a * b).sum()
    }

    /// Latent dimensionality.
    pub fn factors(&self) -> usize {
        self.factors
    }
}

impl Recommender for RankMf {
    fn name(&self) -> String {
        format!("RankMF{}", self.factors)
    }

    fn score_items(&self, user: UserId, out: &mut [f64]) {
        let k = self.factors;
        let pu = &self.p[user.idx() * k..(user.idx() + 1) * k];
        for (i, o) in out.iter_mut().enumerate() {
            let qi = &self.q[i * k..(i + 1) * k];
            *o = pu.iter().zip(qi).map(|(a, b)| a * b).sum();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganc_dataset::{DatasetBuilder, RatingScale};

    fn cfg() -> RankMfConfig {
        RankMfConfig {
            factors: 8,
            learning_rate: 0.1,
            reg: 0.01,
            epochs: 60,
            seed: 5,
        }
    }

    /// Block data: community A users rate items 0..4, community B rate 5..9.
    fn blocks() -> Interactions {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        for u in 0..6u32 {
            for i in 0..10u32 {
                let same = (u < 3) == (i < 5);
                if same && (u + i) % 2 == 0 {
                    b.push(UserId(u), ItemId(i), 5.0).unwrap();
                }
            }
        }
        b.build().unwrap().interactions()
    }

    #[test]
    fn ranks_community_items_above_cross_community() {
        let m = blocks();
        let model = RankMf::train(&m, cfg());
        // user 0 ∈ A; unseen A item 1 vs B item 5.
        assert!(
            model.score(UserId(0), ItemId(1)) > model.score(UserId(0), ItemId(5)),
            "{} !> {}",
            model.score(UserId(0), ItemId(1)),
            model.score(UserId(0), ItemId(5))
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let m = blocks();
        let a = RankMf::train(&m, cfg());
        let b = RankMf::train(&m, cfg());
        assert_eq!(a.score(UserId(0), ItemId(0)), b.score(UserId(0), ItemId(0)));
    }

    #[test]
    fn name_reports_factors() {
        let m = blocks();
        let model = RankMf::train(&m, cfg());
        assert_eq!(Recommender::name(&model), "RankMF8");
    }

    #[test]
    fn score_items_matches_point_scores() {
        let m = blocks();
        let model = RankMf::train(&m, cfg());
        let mut buf = vec![0.0; m.n_items() as usize];
        model.score_items(UserId(2), &mut buf);
        for (i, &s) in buf.iter().enumerate() {
            assert_eq!(s, model.score(UserId(2), ItemId(i as u32)));
        }
    }

    #[test]
    fn survives_user_who_rated_everything() {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        for i in 0..4u32 {
            b.push(UserId(0), ItemId(i), 5.0).unwrap();
        }
        b.push(UserId(1), ItemId(0), 4.0).unwrap();
        let m = b.build().unwrap().interactions();
        // User 0 rated the whole catalog: negative sampling must not hang.
        let model = RankMf::train(&m, cfg());
        let _ = model.score(UserId(0), ItemId(0));
    }
}
