//! The random recommender (Rand, §IV-A): maximal coverage and novelty,
//! minimal accuracy — the other anchor of the trade-off space.
//!
//! Scores are a deterministic hash of `(seed, user, item)` so that repeated
//! runs, threads, and score-buffer reuse all see the same ranking, while
//! different seeds give independent shuffles (the paper averages random
//! variants over 10 runs).

use crate::Recommender;
use ganc_dataset::UserId;

/// Uniform-random scoring with per-`(seed, user, item)` determinism.
#[derive(Debug, Clone, Copy)]
pub struct RandomRec {
    seed: u64,
}

impl RandomRec {
    /// Create with an explicit seed (vary the seed across evaluation runs).
    pub fn new(seed: u64) -> RandomRec {
        RandomRec { seed }
    }
}

/// SplitMix64 finalizer — a well-mixed 64-bit hash.
#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash to a float in `[0, 1)`.
#[inline]
pub fn unit_hash(seed: u64, user: u32, item: u32) -> f64 {
    let h = splitmix(seed ^ ((user as u64) << 32) ^ item as u64);
    // 53 mantissa bits → uniform double in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl Recommender for RandomRec {
    fn name(&self) -> String {
        "Rand".into()
    }

    fn score_items(&self, user: UserId, out: &mut [f64]) {
        for (i, o) in out.iter_mut().enumerate() {
            *o = unit_hash(self.seed, user.0, i as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let rec = RandomRec::new(7);
        let mut a = vec![0.0; 16];
        let mut b = vec![0.0; 16];
        rec.score_items(UserId(3), &mut a);
        rec.score_items(UserId(3), &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn different_users_differ() {
        let rec = RandomRec::new(7);
        let mut a = vec![0.0; 16];
        let mut b = vec![0.0; 16];
        rec.score_items(UserId(0), &mut a);
        rec.score_items(UserId(1), &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = vec![0.0; 16];
        let mut b = vec![0.0; 16];
        RandomRec::new(1).score_items(UserId(0), &mut a);
        RandomRec::new(2).score_items(UserId(0), &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn scores_in_unit_interval_and_spread() {
        let rec = RandomRec::new(11);
        let mut buf = vec![0.0; 10_000];
        rec.score_items(UserId(0), &mut buf);
        assert!(buf.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = buf.iter().sum::<f64>() / buf.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
