//! Average-rating recommender: scores items by their (damped) mean train
//! rating. Used standalone as a quality baseline and by RBT's "Avg"
//! re-ranking criterion (§IV-A).

use crate::Recommender;
use ganc_dataset::{Interactions, ItemId, UserId};

/// Item-average scoring with Bayesian damping toward the global mean, so a
/// single 5-star rating does not outrank a thousand 4.5-star ratings.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ItemAvg {
    means: Vec<f64>,
}

impl ItemAvg {
    /// Fit with damping strength `k` pseudo-ratings at the global mean
    /// (`k = 0` gives raw means; the paper's RBT uses raw averages, our
    /// baseline default uses `k = 5`).
    pub fn fit(train: &Interactions, damping: f64) -> ItemAvg {
        let mu = train.global_mean();
        let means = (0..train.n_items())
            .map(|i| {
                let (_, vals) = train.item_col(ItemId(i));
                let sum: f64 = vals.iter().map(|&v| v as f64).sum();
                (sum + damping * mu) / (vals.len() as f64 + damping).max(1.0)
            })
            .collect();
        ItemAvg { means }
    }

    /// The damped mean rating of an item.
    #[inline]
    pub fn mean(&self, item: ItemId) -> f64 {
        self.means[item.idx()]
    }

    /// All damped means (borrowed; indexed by item id).
    pub fn means(&self) -> &[f64] {
        &self.means
    }
}

impl Recommender for ItemAvg {
    fn name(&self) -> String {
        "ItemAvg".into()
    }

    fn score_items(&self, _user: UserId, out: &mut [f64]) {
        out.copy_from_slice(&self.means);
    }

    fn predicts_ratings(&self) -> bool {
        true
    }

    fn scores_are_user_independent(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganc_dataset::{DatasetBuilder, RatingScale};

    fn train() -> Interactions {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        // item 0: many mediocre ratings; item 1: one perfect rating.
        for u in 0..10u32 {
            b.push(UserId(u), ItemId(0), 4.0).unwrap();
        }
        b.push(UserId(0), ItemId(1), 5.0).unwrap();
        b.build().unwrap().interactions()
    }

    #[test]
    fn raw_means_are_exact() {
        let rec = ItemAvg::fit(&train(), 0.0);
        assert!((rec.mean(ItemId(0)) - 4.0).abs() < 1e-12);
        assert!((rec.mean(ItemId(1)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn damping_pulls_sparse_items_to_global_mean() {
        let rec = ItemAvg::fit(&train(), 5.0);
        // global mean = (40 + 5)/11 ≈ 4.09; the singleton's raw 5.0 is
        // pulled most of the way toward it, while the well-supported item
        // barely moves.
        assert!(rec.mean(ItemId(1)) < 4.35);
        assert!((rec.mean(ItemId(0)) - 4.0).abs() < 0.05);
    }

    #[test]
    fn reports_rating_scale_scores() {
        let rec = ItemAvg::fit(&train(), 0.0);
        assert!(rec.predicts_ratings());
        let mut buf = vec![0.0; 2];
        rec.score_items(UserId(3), &mut buf);
        assert_eq!(buf, vec![4.0, 5.0]);
    }

    #[test]
    fn unrated_items_get_global_mean_under_damping() {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        b.push(UserId(0), ItemId(0), 2.0).unwrap();
        b.push(UserId(0), ItemId(2), 4.0).unwrap();
        let m = b.build().unwrap().interactions();
        let rec = ItemAvg::fit(&m, 3.0);
        assert!((rec.mean(ItemId(1)) - 3.0).abs() < 1e-12); // pure prior
    }
}
