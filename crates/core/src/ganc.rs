//! The GANC builder: assemble `GANC(ARec, θ, CRec)` and produce a top-N
//! collection (§III, Eq. III.1–III.2).
//!
//! With `Rand` or `Stat` coverage the user value functions are independent
//! and optimized exactly, per user, in parallel. With `Dyn` the users are
//! coupled and the [`crate::oslg`] machinery takes over. Every per-user
//! optimization — batch or serving — runs through the fused
//! [`crate::query::UserQuery`] scorer, so the hot path is shared and
//! "served output equals batch output" holds by construction.

use crate::accuracy::{AccuracyMode, AccuracyScorer, NormalizedScores, TopNIndicator};
use crate::coverage::{CoverageKind, RandCoverage, StatCoverage};
use crate::oslg::{oslg_topn, OslgConfig, UserOrdering};
use crate::query::{CoverageProvider, UserQuery};
use ganc_dataset::{Interactions, ItemId, UserId};
use ganc_recommender::topn::train_item_mask;
use ganc_recommender::Recommender;

/// A produced top-N collection: one list per user.
#[derive(Debug, Clone, PartialEq)]
pub struct TopNLists {
    n: usize,
    lists: Vec<Vec<ItemId>>,
}

impl TopNLists {
    /// Wrap raw lists.
    pub fn new(n: usize, lists: Vec<Vec<ItemId>>) -> TopNLists {
        TopNLists { n, lists }
    }

    /// List size `N` the collection was built for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Per-user lists, indexed by user id.
    pub fn lists(&self) -> &[Vec<ItemId>] {
        &self.lists
    }

    /// Consume into the raw lists.
    pub fn into_lists(self) -> Vec<Vec<ItemId>> {
        self.lists
    }
}

/// Builder for GANC runs.
///
/// ```
/// use ganc_core::{CoverageKind, GancBuilder};
/// use ganc_dataset::synth::DatasetProfile;
/// use ganc_preference::GeneralizedConfig;
/// use ganc_recommender::pop::MostPopular;
///
/// let data = DatasetProfile::tiny().generate(1);
/// let split = data.split_per_user(0.5, 2).unwrap();
/// let theta = GeneralizedConfig::default().estimate(&split.train);
/// let pop = MostPopular::fit(&split.train);
/// let top = GancBuilder::new(5)
///     .coverage(CoverageKind::Dynamic)
///     .sample_size(20)
///     .build_topn(&pop, &theta, &split.train, 7);
/// assert_eq!(top.lists().len(), split.train.n_users() as usize);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GancBuilder {
    n: usize,
    coverage: CoverageKind,
    accuracy_mode: AccuracyMode,
    sample_size: usize,
    ordering: UserOrdering,
    threads: usize,
}

impl GancBuilder {
    /// A builder for top-`n` recommendation with the paper's defaults:
    /// Dyn coverage, normalized accuracy scores, `S = 500`.
    pub fn new(n: usize) -> GancBuilder {
        GancBuilder {
            n,
            coverage: CoverageKind::Dynamic,
            accuracy_mode: AccuracyMode::Normalized,
            sample_size: 500,
            ordering: UserOrdering::IncreasingTheta,
            threads: std::thread::available_parallelism().map_or(4, |p| p.get()),
        }
    }

    /// Choose the coverage recommender (`Rand` / `Stat` / `Dyn`).
    pub fn coverage(mut self, kind: CoverageKind) -> Self {
        self.coverage = kind;
        self
    }

    /// Choose how the base recommender becomes `[0,1]` accuracy scores.
    pub fn accuracy_mode(mut self, mode: AccuracyMode) -> Self {
        self.accuracy_mode = mode;
        self
    }

    /// OSLG sample size `S` (only used with Dyn coverage).
    pub fn sample_size(mut self, s: usize) -> Self {
        self.sample_size = s;
        self
    }

    /// Sequential ordering (ablation hook; default increasing θ).
    pub fn ordering(mut self, ordering: UserOrdering) -> Self {
        self.ordering = ordering;
        self
    }

    /// Worker threads for parallel phases.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Run GANC over a base recommender, adapting it per the configured
    /// [`AccuracyMode`].
    pub fn build_topn(
        &self,
        base: &dyn Recommender,
        theta: &[f64],
        train: &Interactions,
        seed: u64,
    ) -> TopNLists {
        match self.accuracy_mode {
            AccuracyMode::Normalized => {
                let scorer = NormalizedScores::new(base);
                self.build_topn_with_scorer(&scorer, theta, train, seed)
            }
            AccuracyMode::TopNIndicator => {
                let scorer = TopNIndicator::new(base, train, self.n);
                self.build_topn_with_scorer(&scorer, theta, train, seed)
            }
        }
    }

    /// Run GANC over an already-adapted accuracy scorer.
    pub fn build_topn_with_scorer(
        &self,
        arec: &dyn AccuracyScorer,
        theta: &[f64],
        train: &Interactions,
        seed: u64,
    ) -> TopNLists {
        let lists = match self.coverage {
            CoverageKind::Dynamic => {
                let cfg = OslgConfig {
                    n: self.n,
                    sample_size: self.sample_size,
                    ordering: self.ordering,
                    threads: self.threads,
                    seed,
                };
                oslg_topn(arec, theta, train, &cfg)
            }
            CoverageKind::Static => {
                let stat = StatCoverage::fit(train);
                self.independent_topn(arec, theta, train, &stat)
            }
            CoverageKind::Random => {
                let rand = RandCoverage::new(seed);
                self.independent_topn(arec, theta, train, &rand)
            }
        };
        TopNLists::new(self.n, lists)
    }

    /// Exact per-user optimization for decoupled coverage recommenders,
    /// parallel over user chunks. Each worker runs the same
    /// [`UserQuery`] computation the online serving path uses.
    fn independent_topn(
        &self,
        arec: &dyn AccuracyScorer,
        theta: &[f64],
        train: &Interactions,
        coverage: &(dyn CoverageProvider + Sync),
    ) -> Vec<Vec<ItemId>> {
        let n_users = train.n_users() as usize;
        assert_eq!(theta.len(), n_users, "one θ per user required");
        let in_train = train_item_mask(train);
        let mut lists: Vec<Vec<ItemId>> = vec![Vec::new(); n_users];
        let threads = self.threads.min(n_users.max(1));
        let chunk = n_users.div_ceil(threads);
        let n = self.n;
        std::thread::scope(|scope| {
            for (t, out_chunk) in lists.chunks_mut(chunk).enumerate() {
                let in_train = &in_train;
                scope.spawn(move || {
                    let mut query = UserQuery::new(arec, train, in_train, n);
                    let base = t * chunk;
                    for (off, slot) in out_chunk.iter_mut().enumerate() {
                        let u = UserId((base + off) as u32);
                        *slot = query.topn(u, theta[base + off], coverage);
                    }
                });
            }
        });
        lists
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganc_dataset::synth::DatasetProfile;
    use ganc_preference::GeneralizedConfig;
    use ganc_recommender::pop::MostPopular;

    fn setup() -> (Interactions, Vec<f64>, MostPopular) {
        let data = DatasetProfile::small().generate(21);
        let split = data.split_per_user(0.5, 1).unwrap();
        let theta = GeneralizedConfig::default().estimate(&split.train);
        let pop = MostPopular::fit(&split.train);
        (split.train, theta, pop)
    }

    fn distinct_items(lists: &[Vec<ItemId>]) -> usize {
        let mut seen = std::collections::HashSet::new();
        for l in lists {
            seen.extend(l.iter().map(|i| i.0));
        }
        seen.len()
    }

    #[test]
    fn all_coverage_kinds_produce_valid_collections() {
        let (train, theta, pop) = setup();
        for kind in [
            CoverageKind::Random,
            CoverageKind::Static,
            CoverageKind::Dynamic,
        ] {
            let top = GancBuilder::new(5)
                .coverage(kind)
                .sample_size(50)
                .build_topn(&pop, &theta, &train, 3);
            assert_eq!(top.lists().len(), train.n_users() as usize);
            for (u, list) in top.lists().iter().enumerate() {
                assert_eq!(list.len(), 5, "{:?} user {u}", kind);
                for item in list {
                    assert!(!train.contains(UserId(u as u32), *item));
                }
            }
        }
    }

    #[test]
    fn every_coverage_kind_beats_pure_arec_on_coverage() {
        let (train, theta, pop) = setup();
        let pure = ganc_recommender::topn::generate_topn_lists(&pop, &train, 5, 2);
        let base_cov = distinct_items(&pure);
        for kind in [
            CoverageKind::Random,
            CoverageKind::Static,
            CoverageKind::Dynamic,
        ] {
            let top = GancBuilder::new(5)
                .coverage(kind)
                .sample_size(60)
                .build_topn(&pop, &theta, &train, 3);
            let cov = distinct_items(top.lists());
            assert!(
                cov > base_cov,
                "{kind:?}: coverage {cov} should beat pure ARec {base_cov}"
            );
        }
    }

    #[test]
    fn dynamic_coverage_spreads_more_than_static() {
        // Stat has constant gain and keeps hammering the same tail items;
        // Dyn discounts already-recommended items — the paper's §V-B
        // observation that Stat "is generally not a strong coverage
        // recommender".
        let (train, theta, pop) = setup();
        let build = |kind| {
            GancBuilder::new(5)
                .coverage(kind)
                .sample_size(60)
                .build_topn(&pop, &theta, &train, 3)
        };
        let dyn_cov = distinct_items(build(CoverageKind::Dynamic).lists());
        let stat_cov = distinct_items(build(CoverageKind::Static).lists());
        assert!(
            dyn_cov > stat_cov,
            "Dyn coverage {dyn_cov} should beat Stat {stat_cov}"
        );
    }

    #[test]
    fn indicator_mode_works_with_pop() {
        let (train, theta, pop) = setup();
        let top = GancBuilder::new(5)
            .accuracy_mode(AccuracyMode::TopNIndicator)
            .sample_size(40)
            .build_topn(&pop, &theta, &train, 5);
        assert_eq!(top.n(), 5);
        assert_eq!(top.lists().len(), train.n_users() as usize);
    }

    #[test]
    fn builder_is_deterministic() {
        let (train, theta, pop) = setup();
        let mk = || {
            GancBuilder::new(5)
                .coverage(CoverageKind::Dynamic)
                .sample_size(30)
                .threads(2)
                .build_topn(&pop, &theta, &train, 11)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn into_lists_round_trip() {
        let lists = vec![vec![ItemId(1)], vec![]];
        let top = TopNLists::new(1, lists.clone());
        assert_eq!(top.n(), 1);
        assert_eq!(top.into_lists(), lists);
    }
}
