//! OSLG — Ordered Sampling-based Locally Greedy (Algorithm 1, §III-C).
//!
//! The Dyn coverage recommender couples users: items recommended to one user
//! are worth less to the next. Maximizing the aggregate value function is
//! then submodular maximization under a partition matroid (Appendix B), for
//! which Fisher et al.'s Locally Greedy gives a 1/2-approximation — but it
//! is sequential in `O(|U|·|I|·N)`.
//!
//! OSLG restores scalability with two changes:
//!
//! 1. **Sampling** — run the sequential greedy only on a sample `S` of users
//!    drawn from the KDE of the long-tail preference distribution, storing
//!    the evolving assignment-frequency snapshots `F(θ_u)`.
//! 2. **Ordering** — process sampled users in *increasing* θ, so popular
//!    items go early to popularity-seeking users and are already discounted
//!    by the time tail-seeking users are served.
//!
//! Every remaining user is served in parallel from the snapshot of the
//! nearest sampled θ (lines 11–15).

use crate::accuracy::AccuracyScorer;
use crate::coverage::{CoverageSnapshots, DynCoverage};
use crate::query::UserQuery;
use ganc_dataset::{Interactions, ItemId, UserId};
use ganc_preference::kde::sample_users_by_kde;
use ganc_recommender::topn::train_item_mask;

/// Processing order of the sequential phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UserOrdering {
    /// Increasing long-tail preference — the OSLG ordering.
    IncreasingTheta,
    /// Sampling order (the "arbitrary order" of plain Locally Greedy);
    /// kept for the ablation benches.
    Arbitrary,
}

/// Configuration of one OSLG run.
#[derive(Debug, Clone, Copy)]
pub struct OslgConfig {
    /// Recommendation list size `N`.
    pub n: usize,
    /// Sequential sample size `S` (the paper fixes 500). Values ≥ `|U|`
    /// degrade to the full Locally Greedy.
    pub sample_size: usize,
    /// Sequential processing order.
    pub ordering: UserOrdering,
    /// Worker threads for the parallel phase.
    pub threads: usize,
    /// Seed for the KDE sampling.
    pub seed: u64,
}

impl OslgConfig {
    /// Paper defaults: `S = 500`, increasing-θ order.
    pub fn new(n: usize) -> OslgConfig {
        OslgConfig {
            n,
            sample_size: 500,
            ordering: UserOrdering::IncreasingTheta,
            threads: std::thread::available_parallelism().map_or(4, |p| p.get()),
            seed: 0x0000_0516,
        }
    }
}

/// The output of OSLG's sequential phase (Algorithm 1, lines 2–10): the
/// sampled users' assignments and the θ-sorted frequency snapshots every
/// remaining user is served from.
///
/// This is the state an online serving path persists: the snapshots are
/// immutable after the sequential phase, so single-user queries
/// ([`crate::query::UserQuery`]) can run against them concurrently — and
/// `ganc-serve` stores exactly this structure in its model bundles.
#[derive(Debug, Clone, PartialEq)]
pub struct OslgSeed {
    /// Sampled users in processing order with their assigned top-N lists.
    /// A user drawn more than once by the KDE sampler appears once per
    /// draw; the final draw's list is the one the batch output keeps.
    pub assignments: Vec<(UserId, Vec<ItemId>)>,
    /// Snapshots `F(θ_s)`, sorted by θ.
    pub snapshots: CoverageSnapshots,
    /// Sampled user ids, sorted and deduplicated — the `O(log S)`
    /// membership index behind [`OslgSeed::contains`].
    sampled: Vec<u32>,
}

impl OslgSeed {
    /// Whether `user` was drawn into the sequential sample.
    pub fn contains(&self, user: UserId) -> bool {
        self.sampled.binary_search(&user.0).is_ok()
    }
}

/// Run OSLG's sequential phase only (Algorithm 1, lines 2–10): sample users
/// by KDE(θ), order them, and run the coupled greedy, recording snapshots.
pub fn oslg_seed_phase(
    arec: &dyn AccuracyScorer,
    theta: &[f64],
    train: &Interactions,
    cfg: &OslgConfig,
) -> OslgSeed {
    seed_phase_with_mask(arec, theta, train, cfg, &train_item_mask(train))
}

/// Seed phase over a caller-provided item mask, so [`oslg_topn`] builds the
/// mask once for both phases.
fn seed_phase_with_mask(
    arec: &dyn AccuracyScorer,
    theta: &[f64],
    train: &Interactions,
    cfg: &OslgConfig,
    in_train: &[bool],
) -> OslgSeed {
    let n_users = train.n_users() as usize;
    assert_eq!(theta.len(), n_users, "one θ per user required");

    // ---- line 2: sample users proportional to KDE(θ) ----
    let mut sample = sample_users_by_kde(theta, cfg.sample_size.max(1), cfg.seed);
    // ---- line 3: sort the sample in increasing θ ----
    if cfg.ordering == UserOrdering::IncreasingTheta {
        sample.sort_by(|&a, &b| {
            theta[a.idx()]
                .partial_cmp(&theta[b.idx()])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
    }

    // ---- lines 4-10: sequential greedy over the sample ----
    let mut dyn_cov = DynCoverage::new(train.n_items());
    let mut query = UserQuery::new(arec, train, in_train, cfg.n);
    // Increasing-θ order keeps the snapshots sorted by construction; the
    // Arbitrary ablation sorts afterwards (a permutation update — the
    // delta-encoded chain itself never moves). Each step records only the
    // N-item delta instead of cloning a dense `O(|I|)` count vector.
    let mut snapshots = CoverageSnapshots::for_items(train.n_items());
    let mut assignments: Vec<(UserId, Vec<ItemId>)> = Vec::with_capacity(sample.len());
    for &u in &sample {
        let list = query.topn(u, theta[u.idx()], &dyn_cov);
        dyn_cov.observe(&list);
        snapshots.push_assigned(theta[u.idx()], &list);
        assignments.push((u, list));
    }
    if cfg.ordering == UserOrdering::Arbitrary {
        snapshots.sort_by_theta();
    }
    let mut sampled: Vec<u32> = sample.iter().map(|u| u.0).collect();
    sampled.sort_unstable();
    sampled.dedup();
    OslgSeed {
        assignments,
        snapshots,
        sampled,
    }
}

/// Run GANC(ARec, θ, Dyn) with OSLG optimization; returns one list per user.
pub fn oslg_topn(
    arec: &dyn AccuracyScorer,
    theta: &[f64],
    train: &Interactions,
    cfg: &OslgConfig,
) -> Vec<Vec<ItemId>> {
    let n_users = train.n_users() as usize;
    let in_train = train_item_mask(train);
    let seed = seed_phase_with_mask(arec, theta, train, cfg, &in_train);
    let mut lists: Vec<Vec<ItemId>> = vec![Vec::new(); n_users];
    let mut in_sample = vec![false; n_users];
    let sample_len = seed.assignments.len();
    for (u, list) in seed.assignments {
        in_sample[u.idx()] = true;
        lists[u.idx()] = list;
    }

    // ---- lines 11-15: parallel phase for users outside the sample ----
    if sample_len < n_users {
        let threads = cfg.threads.max(1);
        let chunk = n_users.div_ceil(threads);
        let snapshots = &seed.snapshots;
        let in_sample = &in_sample;
        let in_train = &in_train;
        std::thread::scope(|scope| {
            for (t, out_chunk) in lists.chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    let mut query = UserQuery::new(arec, train, in_train, cfg.n);
                    let base = t * chunk;
                    for (off, slot) in out_chunk.iter_mut().enumerate() {
                        let uid = base + off;
                        if in_sample[uid] {
                            continue;
                        }
                        // line 12: score against the nearest sampled θ's
                        // snapshot.
                        *slot = query.topn(UserId(uid as u32), theta[uid], snapshots);
                    }
                });
            }
        });
    }
    lists
}

/// The assignment-order objective value `Σ_u v_u(P_u)` (Eq. III.2) of a
/// collection produced with Dyn coverage: accuracy scores are recomputed
/// from the scorer, and each user's coverage term uses the assignment
/// frequencies accumulated over the users *before* them in `order` — the
/// quantity the greedy algorithm maximizes. Used by tests and the ablation
/// benches to compare OSLG against full Locally Greedy.
pub fn assignment_order_objective(
    lists: &[Vec<ItemId>],
    order: &[UserId],
    theta: &[f64],
    arec: &dyn AccuracyScorer,
    n_items: u32,
) -> f64 {
    let mut dyn_cov = DynCoverage::new(n_items);
    let mut a_buf = vec![0.0f64; n_items as usize];
    let mut total = 0.0;
    for &u in order {
        let list = &lists[u.idx()];
        arec.accuracy_scores(u, &mut a_buf);
        let t = theta[u.idx()];
        for item in list {
            total += (1.0 - t) * a_buf[item.idx()] + t * dyn_cov.score(*item);
        }
        dyn_cov.observe(list);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::NormalizedScores;
    use ganc_dataset::synth::DatasetProfile;
    use ganc_preference::GeneralizedConfig;
    use ganc_recommender::pop::MostPopular;

    fn setup() -> (ganc_dataset::Dataset, Interactions, Vec<f64>) {
        let data = DatasetProfile::small().generate(11);
        let split = data.split_per_user(0.5, 1).unwrap();
        let theta = GeneralizedConfig::default().estimate(&split.train);
        (data, split.train, theta)
    }

    #[test]
    fn seed_phase_matches_batch_for_sampled_users() {
        let (_, train, theta) = setup();
        let pop = MostPopular::fit(&train);
        let arec = NormalizedScores::new(&pop);
        let cfg = OslgConfig {
            sample_size: 30,
            ..OslgConfig::new(5)
        };
        let seed = oslg_seed_phase(&arec, &theta, &train, &cfg);
        let batch = oslg_topn(&arec, &theta, &train, &cfg);
        assert!(!seed.assignments.is_empty());
        assert_eq!(seed.assignments.len(), seed.snapshots.len());
        // The batch keeps the final draw's list for each sampled user, so
        // compare against the last occurrence per user.
        let mut last: std::collections::HashMap<UserId, &Vec<ItemId>> = Default::default();
        for (u, list) in &seed.assignments {
            assert!(seed.contains(*u));
            last.insert(*u, list);
        }
        for (u, list) in last {
            assert_eq!(&batch[u.idx()], list, "user {u:?}");
        }
        // Snapshot thetas are sorted ascending under the OSLG ordering.
        let thetas = seed.snapshots.thetas();
        assert!(thetas.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn lists_respect_topn_contract() {
        let (_, train, theta) = setup();
        let pop = MostPopular::fit(&train);
        let arec = NormalizedScores::new(&pop);
        let cfg = OslgConfig {
            sample_size: 40,
            threads: 3,
            ..OslgConfig::new(5)
        };
        let lists = oslg_topn(&arec, &theta, &train, &cfg);
        for (u, list) in lists.iter().enumerate() {
            assert_eq!(list.len(), 5, "user {u}");
            let mut ids: Vec<u32> = list.iter().map(|i| i.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 5, "user {u} has duplicates");
            for item in list {
                assert!(!train.contains(UserId(u as u32), *item));
            }
        }
    }

    #[test]
    fn deterministic_across_runs_and_thread_counts() {
        let (_, train, theta) = setup();
        let pop = MostPopular::fit(&train);
        let arec = NormalizedScores::new(&pop);
        let mk = |threads| OslgConfig {
            sample_size: 30,
            threads,
            ..OslgConfig::new(5)
        };
        let a = oslg_topn(&arec, &theta, &train, &mk(1));
        let b = oslg_topn(&arec, &theta, &train, &mk(4));
        assert_eq!(a, b);
    }

    #[test]
    fn full_sample_equals_locally_greedy() {
        let (_, train, theta) = setup();
        let pop = MostPopular::fit(&train);
        let arec = NormalizedScores::new(&pop);
        let full = OslgConfig {
            sample_size: train.n_users() as usize,
            ..OslgConfig::new(5)
        };
        let lists = oslg_topn(&arec, &theta, &train, &full);
        // Every user must have been served by the sequential phase (all
        // users sampled), so the total assignment frequency is |U|·N.
        let total: usize = lists.iter().map(|l| l.len()).sum();
        assert_eq!(total, train.n_users() as usize * 5);
    }

    #[test]
    fn theta_zero_reduces_to_pure_accuracy() {
        let (_, train, _) = setup();
        let pop = MostPopular::fit(&train);
        let arec = NormalizedScores::new(&pop);
        let theta = vec![0.0; train.n_users() as usize];
        let cfg = OslgConfig {
            sample_size: 25,
            ..OslgConfig::new(5)
        };
        let lists = oslg_topn(&arec, &theta, &train, &cfg);
        let pure = ganc_recommender::topn::generate_topn_lists(&pop, &train, 5, 2);
        assert_eq!(lists, pure, "θ=0 must ignore coverage entirely");
    }

    #[test]
    fn high_theta_spreads_recommendations() {
        let (_, train, _) = setup();
        let pop = MostPopular::fit(&train);
        let arec = NormalizedScores::new(&pop);
        let low = vec![0.0; train.n_users() as usize];
        let high = vec![0.95; train.n_users() as usize];
        let cfg = OslgConfig {
            sample_size: 60,
            ..OslgConfig::new(5)
        };
        let distinct = |lists: &Vec<Vec<ItemId>>| {
            let mut seen = std::collections::HashSet::new();
            for l in lists {
                seen.extend(l.iter().map(|i| i.0));
            }
            seen.len()
        };
        let d_low = distinct(&oslg_topn(&arec, &low, &train, &cfg));
        let d_high = distinct(&oslg_topn(&arec, &high, &train, &cfg));
        assert!(
            d_high > d_low,
            "high θ coverage {d_high} should exceed low θ coverage {d_low}"
        );
    }

    #[test]
    fn increasing_theta_ordering_helps_objective() {
        // On skewed data the OSLG ordering should not lose to arbitrary
        // ordering in assignment-order objective (paper's motivation for
        // the ordering; allow a small tolerance since this is a heuristic).
        let (_, train, theta) = setup();
        let pop = MostPopular::fit(&train);
        let arec = NormalizedScores::new(&pop);
        let n_users = train.n_users() as usize;
        let mk = |ordering| OslgConfig {
            sample_size: n_users,
            ordering,
            ..OslgConfig::new(5)
        };
        let ordered = oslg_topn(&arec, &theta, &train, &mk(UserOrdering::IncreasingTheta));
        let arbitrary = oslg_topn(&arec, &theta, &train, &mk(UserOrdering::Arbitrary));
        let theta_order: Vec<UserId> = {
            let mut o: Vec<UserId> = (0..n_users as u32).map(UserId).collect();
            o.sort_by(|a, b| theta[a.idx()].partial_cmp(&theta[b.idx()]).unwrap());
            o
        };
        let obj_ordered =
            assignment_order_objective(&ordered, &theta_order, &theta, &arec, train.n_items());
        let sample_order = sample_users_by_kde(&theta, n_users, 0x0516);
        let obj_arbitrary =
            assignment_order_objective(&arbitrary, &sample_order, &theta, &arec, train.n_items());
        assert!(
            obj_ordered >= 0.95 * obj_arbitrary,
            "ordered {obj_ordered:.2} vs arbitrary {obj_arbitrary:.2}"
        );
    }

    #[test]
    fn small_sample_approximates_full_greedy_objective() {
        let (_, train, theta) = setup();
        let pop = MostPopular::fit(&train);
        let arec = NormalizedScores::new(&pop);
        let n_users = train.n_users() as usize;
        let theta_order: Vec<UserId> = {
            let mut o: Vec<UserId> = (0..n_users as u32).map(UserId).collect();
            o.sort_by(|a, b| theta[a.idx()].partial_cmp(&theta[b.idx()]).unwrap());
            o
        };
        let full = oslg_topn(
            &arec,
            &theta,
            &train,
            &OslgConfig {
                sample_size: n_users,
                ..OslgConfig::new(5)
            },
        );
        let sampled = oslg_topn(
            &arec,
            &theta,
            &train,
            &OslgConfig {
                sample_size: n_users / 5,
                ..OslgConfig::new(5)
            },
        );
        let obj =
            |lists| assignment_order_objective(lists, &theta_order, &theta, &arec, train.n_items());
        let (f, s) = (obj(&full), obj(&sampled));
        assert!(
            s > 0.8 * f,
            "sampled objective {s:.2} too far below full {f:.2}"
        );
    }
}
