//! OSLG — Ordered Sampling-based Locally Greedy (Algorithm 1, §III-C).
//!
//! The Dyn coverage recommender couples users: items recommended to one user
//! are worth less to the next. Maximizing the aggregate value function is
//! then submodular maximization under a partition matroid (Appendix B), for
//! which Fisher et al.'s Locally Greedy gives a 1/2-approximation — but it
//! is sequential in `O(|U|·|I|·N)`.
//!
//! OSLG restores scalability with two changes:
//!
//! 1. **Sampling** — run the sequential greedy only on a sample `S` of users
//!    drawn from the KDE of the long-tail preference distribution, storing
//!    the evolving assignment-frequency snapshots `F(θ_u)`.
//! 2. **Ordering** — process sampled users in *increasing* θ, so popular
//!    items go early to popularity-seeking users and are already discounted
//!    by the time tail-seeking users are served.
//!
//! Every remaining user is served in parallel from the snapshot of the
//! nearest sampled θ (lines 11–15).

use crate::accuracy::AccuracyScorer;
use crate::coverage::DynCoverage;
use ganc_dataset::{Interactions, ItemId, UserId};
use ganc_preference::kde::sample_users_by_kde;
use ganc_recommender::topn::{select_top_n, train_item_mask, unseen_train_candidates};

/// Processing order of the sequential phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UserOrdering {
    /// Increasing long-tail preference — the OSLG ordering.
    IncreasingTheta,
    /// Sampling order (the "arbitrary order" of plain Locally Greedy);
    /// kept for the ablation benches.
    Arbitrary,
}

/// Configuration of one OSLG run.
#[derive(Debug, Clone, Copy)]
pub struct OslgConfig {
    /// Recommendation list size `N`.
    pub n: usize,
    /// Sequential sample size `S` (the paper fixes 500). Values ≥ `|U|`
    /// degrade to the full Locally Greedy.
    pub sample_size: usize,
    /// Sequential processing order.
    pub ordering: UserOrdering,
    /// Worker threads for the parallel phase.
    pub threads: usize,
    /// Seed for the KDE sampling.
    pub seed: u64,
}

impl OslgConfig {
    /// Paper defaults: `S = 500`, increasing-θ order.
    pub fn new(n: usize) -> OslgConfig {
        OslgConfig {
            n,
            sample_size: 500,
            ordering: UserOrdering::IncreasingTheta,
            threads: std::thread::available_parallelism().map_or(4, |p| p.get()),
            seed: 0x0000_0516,
        }
    }
}

/// Combined GANC score `(1−θ)a + θc` written into `out`.
#[inline]
fn combine_into(theta_u: f64, a: &[f64], c: &[f64], out: &mut [f64]) {
    let w_a = 1.0 - theta_u;
    for ((o, &av), &cv) in out.iter_mut().zip(a).zip(c) {
        *o = w_a * av + theta_u * cv;
    }
}

/// Coverage scores from a raw frequency snapshot.
#[inline]
fn snapshot_scores(snapshot: &[u32], out: &mut [f64]) {
    for (&f, o) in snapshot.iter().zip(out.iter_mut()) {
        *o = 1.0 / ((f as f64) + 1.0).sqrt();
    }
}

/// Run GANC(ARec, θ, Dyn) with OSLG optimization; returns one list per user.
pub fn oslg_topn(
    arec: &dyn AccuracyScorer,
    theta: &[f64],
    train: &Interactions,
    cfg: &OslgConfig,
) -> Vec<Vec<ItemId>> {
    let n_users = train.n_users() as usize;
    let n_items = train.n_items() as usize;
    assert_eq!(theta.len(), n_users, "one θ per user required");
    let in_train = train_item_mask(train);
    let mut lists: Vec<Vec<ItemId>> = vec![Vec::new(); n_users];

    // ---- line 2: sample users proportional to KDE(θ) ----
    let mut sample = sample_users_by_kde(theta, cfg.sample_size.max(1), cfg.seed);
    // ---- line 3: sort the sample in increasing θ ----
    if cfg.ordering == UserOrdering::IncreasingTheta {
        sample.sort_by(|&a, &b| {
            theta[a.idx()]
                .partial_cmp(&theta[b.idx()])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
    }

    // ---- lines 4-10: sequential greedy over the sample ----
    let mut dyn_cov = DynCoverage::new(train.n_items());
    let mut a_buf = vec![0.0f64; n_items];
    let mut c_buf = vec![0.0f64; n_items];
    let mut s_buf = vec![0.0f64; n_items];
    // Snapshots F(θ_u), kept sorted by θ for the nearest-θ lookup below
    // (the increasing-θ order makes them sorted by construction; the
    // Arbitrary ablation sorts afterwards).
    let mut snap_theta: Vec<f64> = Vec::with_capacity(sample.len());
    let mut snapshots: Vec<Box<[u32]>> = Vec::with_capacity(sample.len());
    let mut in_sample = vec![false; n_users];
    for &u in &sample {
        in_sample[u.idx()] = true;
        arec.accuracy_scores(u, &mut a_buf);
        dyn_cov.scores_into(&mut c_buf);
        combine_into(theta[u.idx()], &a_buf, &c_buf, &mut s_buf);
        let list = select_top_n(
            &s_buf,
            unseen_train_candidates(train, &in_train, u),
            cfg.n,
        );
        dyn_cov.observe(&list);
        snap_theta.push(theta[u.idx()]);
        snapshots.push(dyn_cov.snapshot());
        lists[u.idx()] = list;
    }
    if cfg.ordering == UserOrdering::Arbitrary {
        let mut order: Vec<usize> = (0..snap_theta.len()).collect();
        order.sort_by(|&a, &b| {
            snap_theta[a]
                .partial_cmp(&snap_theta[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        snap_theta = order.iter().map(|&k| snap_theta[k]).collect();
        snapshots = order.iter().map(|&k| snapshots[k].clone()).collect();
    }

    // ---- lines 11-15: parallel phase for users outside the sample ----
    if sample.len() < n_users {
        let threads = cfg.threads.max(1);
        let chunk = n_users.div_ceil(threads);
        let snap_theta = &snap_theta;
        let snapshots = &snapshots;
        let in_sample = &in_sample;
        let in_train = &in_train;
        std::thread::scope(|scope| {
            for (t, out_chunk) in lists.chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    let mut a_buf = vec![0.0f64; n_items];
                    let mut c_buf = vec![0.0f64; n_items];
                    let mut s_buf = vec![0.0f64; n_items];
                    let base = t * chunk;
                    for (off, slot) in out_chunk.iter_mut().enumerate() {
                        let uid = base + off;
                        if in_sample[uid] {
                            continue;
                        }
                        let u = UserId(uid as u32);
                        // line 12: nearest sampled θ
                        let snap = nearest_snapshot(snap_theta, theta[uid]);
                        snapshot_scores(&snapshots[snap], &mut c_buf);
                        arec.accuracy_scores(u, &mut a_buf);
                        combine_into(theta[uid], &a_buf, &c_buf, &mut s_buf);
                        *slot = select_top_n(
                            &s_buf,
                            unseen_train_candidates(train, in_train, u),
                            cfg.n,
                        );
                    }
                });
            }
        });
    }
    lists
}

/// Index of the snapshot whose θ is nearest to `t` (`snap_theta` sorted
/// ascending, non-empty). Ties prefer the lower θ, i.e. the earlier, less
/// tail-discounted snapshot.
fn nearest_snapshot(snap_theta: &[f64], t: f64) -> usize {
    debug_assert!(!snap_theta.is_empty());
    let pos = snap_theta.partition_point(|&s| s < t);
    if pos == 0 {
        return 0;
    }
    if pos >= snap_theta.len() {
        return snap_theta.len() - 1;
    }
    let below = pos - 1;
    if (t - snap_theta[below]) <= (snap_theta[pos] - t) {
        below
    } else {
        pos
    }
}

/// The assignment-order objective value `Σ_u v_u(P_u)` (Eq. III.2) of a
/// collection produced with Dyn coverage: accuracy scores are recomputed
/// from the scorer, and each user's coverage term uses the assignment
/// frequencies accumulated over the users *before* them in `order` — the
/// quantity the greedy algorithm maximizes. Used by tests and the ablation
/// benches to compare OSLG against full Locally Greedy.
pub fn assignment_order_objective(
    lists: &[Vec<ItemId>],
    order: &[UserId],
    theta: &[f64],
    arec: &dyn AccuracyScorer,
    n_items: u32,
) -> f64 {
    let mut dyn_cov = DynCoverage::new(n_items);
    let mut a_buf = vec![0.0f64; n_items as usize];
    let mut total = 0.0;
    for &u in order {
        let list = &lists[u.idx()];
        arec.accuracy_scores(u, &mut a_buf);
        let t = theta[u.idx()];
        for item in list {
            total += (1.0 - t) * a_buf[item.idx()] + t * dyn_cov.score(*item);
        }
        dyn_cov.observe(list);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::NormalizedScores;
    use ganc_dataset::synth::DatasetProfile;
    use ganc_preference::GeneralizedConfig;
    use ganc_recommender::pop::MostPopular;

    fn setup() -> (ganc_dataset::Dataset, Interactions, Vec<f64>) {
        let data = DatasetProfile::small().generate(11);
        let split = data.split_per_user(0.5, 1).unwrap();
        let theta = GeneralizedConfig::default().estimate(&split.train);
        (data, split.train, theta)
    }

    #[test]
    fn nearest_snapshot_picks_closest() {
        let t = [0.1, 0.4, 0.9];
        assert_eq!(nearest_snapshot(&t, 0.0), 0);
        assert_eq!(nearest_snapshot(&t, 0.3), 1);
        assert_eq!(nearest_snapshot(&t, 0.2), 0); // closer to 0.1
        assert_eq!(nearest_snapshot(&t, 0.95), 2);
        assert_eq!(nearest_snapshot(&t, 0.65), 1);
    }

    #[test]
    fn lists_respect_topn_contract() {
        let (_, train, theta) = setup();
        let pop = MostPopular::fit(&train);
        let arec = NormalizedScores::new(&pop);
        let cfg = OslgConfig {
            sample_size: 40,
            threads: 3,
            ..OslgConfig::new(5)
        };
        let lists = oslg_topn(&arec, &theta, &train, &cfg);
        for (u, list) in lists.iter().enumerate() {
            assert_eq!(list.len(), 5, "user {u}");
            let mut ids: Vec<u32> = list.iter().map(|i| i.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 5, "user {u} has duplicates");
            for item in list {
                assert!(!train.contains(UserId(u as u32), *item));
            }
        }
    }

    #[test]
    fn deterministic_across_runs_and_thread_counts() {
        let (_, train, theta) = setup();
        let pop = MostPopular::fit(&train);
        let arec = NormalizedScores::new(&pop);
        let mk = |threads| OslgConfig {
            sample_size: 30,
            threads,
            ..OslgConfig::new(5)
        };
        let a = oslg_topn(&arec, &theta, &train, &mk(1));
        let b = oslg_topn(&arec, &theta, &train, &mk(4));
        assert_eq!(a, b);
    }

    #[test]
    fn full_sample_equals_locally_greedy() {
        let (_, train, theta) = setup();
        let pop = MostPopular::fit(&train);
        let arec = NormalizedScores::new(&pop);
        let full = OslgConfig {
            sample_size: train.n_users() as usize,
            ..OslgConfig::new(5)
        };
        let lists = oslg_topn(&arec, &theta, &train, &full);
        // Every user must have been served by the sequential phase (all
        // users sampled), so the total assignment frequency is |U|·N.
        let total: usize = lists.iter().map(|l| l.len()).sum();
        assert_eq!(total, train.n_users() as usize * 5);
    }

    #[test]
    fn theta_zero_reduces_to_pure_accuracy() {
        let (_, train, _) = setup();
        let pop = MostPopular::fit(&train);
        let arec = NormalizedScores::new(&pop);
        let theta = vec![0.0; train.n_users() as usize];
        let cfg = OslgConfig {
            sample_size: 25,
            ..OslgConfig::new(5)
        };
        let lists = oslg_topn(&arec, &theta, &train, &cfg);
        let pure = ganc_recommender::topn::generate_topn_lists(&pop, &train, 5, 2);
        assert_eq!(lists, pure, "θ=0 must ignore coverage entirely");
    }

    #[test]
    fn high_theta_spreads_recommendations() {
        let (_, train, _) = setup();
        let pop = MostPopular::fit(&train);
        let arec = NormalizedScores::new(&pop);
        let low = vec![0.0; train.n_users() as usize];
        let high = vec![0.95; train.n_users() as usize];
        let cfg = OslgConfig {
            sample_size: 60,
            ..OslgConfig::new(5)
        };
        let distinct = |lists: &Vec<Vec<ItemId>>| {
            let mut seen = std::collections::HashSet::new();
            for l in lists {
                seen.extend(l.iter().map(|i| i.0));
            }
            seen.len()
        };
        let d_low = distinct(&oslg_topn(&arec, &low, &train, &cfg));
        let d_high = distinct(&oslg_topn(&arec, &high, &train, &cfg));
        assert!(
            d_high > d_low,
            "high θ coverage {d_high} should exceed low θ coverage {d_low}"
        );
    }

    #[test]
    fn increasing_theta_ordering_helps_objective() {
        // On skewed data the OSLG ordering should not lose to arbitrary
        // ordering in assignment-order objective (paper's motivation for
        // the ordering; allow a small tolerance since this is a heuristic).
        let (_, train, theta) = setup();
        let pop = MostPopular::fit(&train);
        let arec = NormalizedScores::new(&pop);
        let n_users = train.n_users() as usize;
        let mk = |ordering| OslgConfig {
            sample_size: n_users,
            ordering,
            ..OslgConfig::new(5)
        };
        let ordered = oslg_topn(&arec, &theta, &train, &mk(UserOrdering::IncreasingTheta));
        let arbitrary = oslg_topn(&arec, &theta, &train, &mk(UserOrdering::Arbitrary));
        let theta_order: Vec<UserId> = {
            let mut o: Vec<UserId> = (0..n_users as u32).map(UserId).collect();
            o.sort_by(|a, b| theta[a.idx()].partial_cmp(&theta[b.idx()]).unwrap());
            o
        };
        let obj_ordered =
            assignment_order_objective(&ordered, &theta_order, &theta, &arec, train.n_items());
        let sample_order = sample_users_by_kde(&theta, n_users, 0x05_1_6);
        let obj_arbitrary = assignment_order_objective(
            &arbitrary,
            &sample_order,
            &theta,
            &arec,
            train.n_items(),
        );
        assert!(
            obj_ordered >= 0.95 * obj_arbitrary,
            "ordered {obj_ordered:.2} vs arbitrary {obj_arbitrary:.2}"
        );
    }

    #[test]
    fn small_sample_approximates_full_greedy_objective() {
        let (_, train, theta) = setup();
        let pop = MostPopular::fit(&train);
        let arec = NormalizedScores::new(&pop);
        let n_users = train.n_users() as usize;
        let theta_order: Vec<UserId> = {
            let mut o: Vec<UserId> = (0..n_users as u32).map(UserId).collect();
            o.sort_by(|a, b| theta[a.idx()].partial_cmp(&theta[b.idx()]).unwrap());
            o
        };
        let full = oslg_topn(
            &arec,
            &theta,
            &train,
            &OslgConfig {
                sample_size: n_users,
                ..OslgConfig::new(5)
            },
        );
        let sampled = oslg_topn(
            &arec,
            &theta,
            &train,
            &OslgConfig {
                sample_size: n_users / 5,
                ..OslgConfig::new(5)
            },
        );
        let obj = |lists| {
            assignment_order_objective(lists, &theta_order, &theta, &arec, train.n_items())
        };
        let (f, s) = (obj(&full), obj(&sampled));
        assert!(
            s > 0.8 * f,
            "sampled objective {s:.2} too far below full {f:.2}"
        );
    }
}
